"""CellFi: unlicensed cellular networks in TV white spaces (CoNEXT 2017).

A from-scratch Python reproduction of the paper's system and evaluation.
The public surface mirrors the architecture (paper Figure 3):

* :mod:`repro.core` -- CellFi itself: channel selection against a TVWS
  spectrum database, and the decentralized interference-management
  algorithm (PRACH contention sensing, CQI-drop detection, distributed
  share calculation, randomized subchannel hopping with re-use packing).
* :mod:`repro.lte` / :mod:`repro.wifi` -- the LTE and 802.11 substrates,
  each a full simulator.
* :mod:`repro.tvws` -- channel plans, spectrum database, PAWS, ETSI rules.
* :mod:`repro.phy`, :mod:`repro.sim`, :mod:`repro.traffic` -- radio
  primitives, discrete-event engine, workloads.
* :mod:`repro.baselines` -- plain LTE and the centralized oracle.
* :mod:`repro.experiments` -- one module per paper table/figure.

Quickstart::

    from repro.core import CellFiInterferenceManager
    from repro.lte.network import LteNetworkSimulator
    from repro.phy import CompositeChannel, ResourceGrid, UrbanHataPathLoss
    from repro.sim import RngStreams, random_topology

    rngs = RngStreams(42)
    topology = random_topology(rngs.stream("topo"), n_aps=6, clients_per_ap=6)
    net = LteNetworkSimulator(
        topology, ResourceGrid(5e6), CompositeChannel(UrbanHataPathLoss()), rngs
    )
    manager = CellFiInterferenceManager(
        [ap.ap_id for ap in topology.aps], 13, rngs.fork("mgr")
    )
    results = net.run(
        10, manager, lambda e: {c.client_id: float("inf") for c in topology.clients}
    )
"""

__version__ = "1.0.0"

__all__ = [
    "baselines",
    "core",
    "experiments",
    "lte",
    "phy",
    "sim",
    "traffic",
    "tvws",
    "utils",
    "wifi",
]
