"""Path-loss and shadowing models.

The paper's outdoor measurements (Figure 1) were taken in an urban area with
a rooftop small cell at roughly 600-700 MHz (3GPP band 13 in their testbed,
TVWS frequencies in deployment).  :class:`UrbanHataPathLoss` reproduces that
environment with the classic Okumura-Hata urban formula, which at 36 dBm
EIRP gives ~1.3 km of usable range -- matching the paper's drive test.

All models expose ``path_loss_db(distance_m)``; composite behaviour
(model + shadowing + antenna gains) is assembled by
:class:`CompositeChannel` / :class:`repro.phy.link.LinkBudget`.
"""

from __future__ import annotations

import hashlib
import math
from abc import ABC, abstractmethod
from typing import Dict, Optional, Sequence

import numpy as np

SPEED_OF_LIGHT_M_S = 299_792_458.0


class PathLossModel(ABC):
    """Interface: mean path loss in dB as a function of ground distance."""

    @abstractmethod
    def path_loss_db(self, distance_m: float) -> float:
        """Mean path loss in dB at ``distance_m`` metres (>= 1 m enforced)."""

    @staticmethod
    def _clamp_distance(distance_m: float) -> float:
        if distance_m < 0.0:
            raise ValueError(f"distance must be >= 0, got {distance_m!r}")
        # Below 1 m the far-field formulas diverge; clamp as ns-3 does.
        return max(distance_m, 1.0)


class FreeSpacePathLoss(PathLossModel):
    """Friis free-space propagation.  Optimistic; used for sanity checks."""

    def __init__(self, frequency_hz: float) -> None:
        if frequency_hz <= 0.0:
            raise ValueError(f"frequency must be > 0, got {frequency_hz!r}")
        self.frequency_hz = frequency_hz

    def path_loss_db(self, distance_m: float) -> float:
        distance_m = self._clamp_distance(distance_m)
        wavelength = SPEED_OF_LIGHT_M_S / self.frequency_hz
        return 20.0 * math.log10(4.0 * math.pi * distance_m / wavelength)


class LogDistancePathLoss(PathLossModel):
    """Log-distance model: free space to a reference, then exponent ``n``.

    Args:
        frequency_hz: carrier frequency.
        exponent: path-loss exponent beyond the reference distance
            (urban outdoor is typically 3.5-4).
        reference_m: reference distance for the free-space segment.
    """

    def __init__(
        self, frequency_hz: float, exponent: float = 3.7, reference_m: float = 10.0
    ) -> None:
        if exponent < 2.0:
            raise ValueError(f"exponent below free space (2.0): {exponent!r}")
        if reference_m <= 0.0:
            raise ValueError(f"reference distance must be > 0, got {reference_m!r}")
        self.exponent = exponent
        self.reference_m = reference_m
        self._free_space = FreeSpacePathLoss(frequency_hz)

    def path_loss_db(self, distance_m: float) -> float:
        distance_m = self._clamp_distance(distance_m)
        reference_loss = self._free_space.path_loss_db(self.reference_m)
        if distance_m <= self.reference_m:
            return self._free_space.path_loss_db(distance_m)
        return reference_loss + 10.0 * self.exponent * math.log10(
            distance_m / self.reference_m
        )


class UrbanHataPathLoss(PathLossModel):
    """Okumura-Hata urban model (small/medium city correction).

    Valid for 150-1500 MHz, which covers the whole TVWS band (470-790 MHz).
    Calibrated defaults follow the paper's testbed: 15 m rooftop cell,
    handheld client at 1.5 m.

    At 600 MHz / 15 m / 1.5 m this yields ~126 dB at 1 km and a
    37.2 dB/decade slope, placing the 1 Mb/s edge at ~1.3 km for a 36 dBm
    EIRP downlink -- the range the paper measures in Figure 1(a).
    """

    def __init__(
        self,
        frequency_hz: float = 617e6,
        base_height_m: float = 15.0,
        mobile_height_m: float = 1.5,
    ) -> None:
        if not 150e6 <= frequency_hz <= 1500e6:
            raise ValueError(
                f"Hata model valid for 150-1500 MHz, got {frequency_hz / 1e6:.0f} MHz"
            )
        if not 1.0 <= base_height_m <= 200.0:
            raise ValueError(f"base height out of Hata range: {base_height_m!r}")
        if not 1.0 <= mobile_height_m <= 10.0:
            raise ValueError(f"mobile height out of Hata range: {mobile_height_m!r}")
        self.frequency_hz = frequency_hz
        self.base_height_m = base_height_m
        self.mobile_height_m = mobile_height_m

    def path_loss_db(self, distance_m: float) -> float:
        distance_m = self._clamp_distance(distance_m)
        f_mhz = self.frequency_hz / 1e6
        d_km = max(distance_m / 1000.0, 0.01)  # Hata's near-field floor.
        log_f = math.log10(f_mhz)
        log_hb = math.log10(self.base_height_m)
        mobile_correction = (1.1 * log_f - 0.7) * self.mobile_height_m - (
            1.56 * log_f - 0.8
        )
        return (
            69.55
            + 26.16 * log_f
            - 13.82 * log_hb
            - mobile_correction
            + (44.9 - 6.55 * log_hb) * math.log10(d_km)
        )


class LogNormalShadowing:
    """Deterministic per-link log-normal shadowing.

    The shadowing value for a link is a pure function of the two endpoint
    positions and a seed, so (a) the channel is reciprocal, and (b) repeated
    queries for the same link are consistent within a run -- both properties
    the interference-management algorithms rely on.

    Args:
        sigma_db: standard deviation (urban macro: 6-8 dB).
        seed: experiment seed decorrelating shadowing across replications.
    """

    def __init__(self, sigma_db: float = 7.0, seed: int = 0) -> None:
        if sigma_db < 0.0:
            raise ValueError(f"sigma must be >= 0, got {sigma_db!r}")
        self.sigma_db = sigma_db
        self.seed = seed

    def shadowing_db(
        self, ax: float, ay: float, bx: float, by: float
    ) -> float:
        """Shadowing in dB for the link (a) -- (b).  Symmetric in endpoints."""
        if self.sigma_db == 0.0:
            return 0.0
        # Order endpoints canonically for reciprocity.
        if (ax, ay) > (bx, by):
            ax, ay, bx, by = bx, by, ax, ay
        key = f"{self.seed}:{ax:.1f},{ay:.1f}:{bx:.1f},{by:.1f}".encode()
        digest = hashlib.sha256(key).digest()
        # Box-Muller from two uniform doubles derived from the hash.
        u1 = (int.from_bytes(digest[:8], "little") + 1) / (2**64 + 2)
        u2 = int.from_bytes(digest[8:16], "little") / 2**64
        gaussian = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        return self.sigma_db * gaussian


class CompositeChannel:
    """Mean path loss plus optional shadowing, as one callable object.

    This is the object the simulators hold: ``loss_db(a, b)`` takes any two
    positioned nodes (anything with ``x``/``y`` attributes).
    """

    def __init__(
        self,
        path_loss: PathLossModel,
        shadowing: Optional[LogNormalShadowing] = None,
    ) -> None:
        self.path_loss = path_loss
        self.shadowing = shadowing

    def loss_db(self, node_a, node_b) -> float:
        """Total propagation loss in dB between two positioned nodes."""
        distance = math.hypot(node_a.x - node_b.x, node_a.y - node_b.y)
        loss = self.path_loss.path_loss_db(distance)
        if self.shadowing is not None:
            loss += self.shadowing.shadowing_db(
                node_a.x, node_a.y, node_b.x, node_b.y
            )
        return loss


class GainMatrixCache:
    """Cached pairwise AP <-> client link gains for one deployment.

    The epoch simulators query the same (AP, client) losses every epoch;
    this cache computes each link exactly once -- through the *same* scalar
    ``channel.loss_db`` call, so cached values are bit-identical to direct
    queries -- and hands out the full matrix for vectorized kernels.

    Channels are reciprocal (distance and shadowing are symmetric in the
    endpoints, and an AP's antenna gain applies to both link directions),
    so one entry serves downlink and uplink.

    Invalidation is explicit: mobility code calls :meth:`invalidate_client`
    after moving a client (see :meth:`repro.sim.topology.Topology.move_client`);
    only that client's row is recomputed, lazily, on next access.

    Args:
        channel: the composite propagation model.
        aps: access-point sites (column order of the matrix).
        clients: client sites (row order of the matrix).
        ap_antennas: optional per-AP antenna (``ap_id`` -> antenna); its
            bearing-dependent gain toward each client is subtracted from
            the loss.  Omitted APs radiate isotropically.
        cull_loss_db: optional neighbor-culling horizon.  Links whose total
            loss exceeds this are *culled*: consumers treat them as carrying
            exactly zero power (no signal, no interference, no PRACH
            audibility).  ``None`` (the default) disables culling and keeps
            every link live, matching historic behaviour.
    """

    def __init__(
        self,
        channel: CompositeChannel,
        aps: Sequence,
        clients: Sequence,
        ap_antennas: Optional[Dict[int, "object"]] = None,
        cull_loss_db: Optional[float] = None,
    ) -> None:
        if cull_loss_db is not None and not cull_loss_db > 0.0:
            raise ValueError(
                f"cull_loss_db must be > 0 dB or None, got {cull_loss_db!r}"
            )
        self.channel = channel
        self._aps = list(aps)
        self._clients = list(clients)
        self.ap_antennas = dict(ap_antennas or {})
        self.cull_loss_db = cull_loss_db
        self.ap_index: Dict[int, int] = {
            ap.ap_id: j for j, ap in enumerate(self._aps)
        }
        self.client_index: Dict[int, int] = {
            c.client_id: i for i, c in enumerate(self._clients)
        }
        self._loss = np.zeros((len(self._clients), len(self._aps)))
        self._row_valid = np.zeros(len(self._clients), dtype=bool)
        self._readonly = self._loss.view()
        self._readonly.setflags(write=False)

    def _fill_row(self, row: int) -> None:
        client = self._clients[row]
        for col, ap in enumerate(self._aps):
            loss = self.channel.loss_db(ap, client)
            antenna = self.ap_antennas.get(ap.ap_id)
            if antenna is not None:
                loss -= antenna.gain_towards(ap.x, ap.y, client.x, client.y)
            self._loss[row, col] = loss
        self._row_valid[row] = True

    def loss_db(self, client_id: int, ap_id: int) -> float:
        """Cached total link loss between a client and an AP, in dB."""
        row = self.client_index[client_id]
        if not self._row_valid[row]:
            self._fill_row(row)
        return float(self._loss[row, self.ap_index[ap_id]])

    def matrix(self) -> np.ndarray:
        """The full (n_clients, n_aps) loss matrix in dB, read-only.

        Fills any stale rows first, then returns a non-writeable view of
        the cache so callers cannot corrupt it.  Callers that only need a
        few rows should prefer :meth:`rows`, which leaves the rest of the
        cache lazy.
        """
        for row in np.flatnonzero(~self._row_valid):
            self._fill_row(int(row))
        return self._readonly

    def rows(self, client_ids: Sequence[int]) -> np.ndarray:
        """Loss rows for a subset of clients, in the order given.

        Only the requested rows are (re)computed -- unlike :meth:`matrix`
        this does not eagerly fill the whole cache, which is what the
        incremental epoch backend needs when only a few clients moved.
        Returns a read-only ``(len(client_ids), n_aps)`` array.

        An empty subset normalizes to an explicit ``(0, n_aps)`` array of
        the cache's float dtype: fancy-indexing with an empty index list
        is dtype-ambiguous on some NumPy versions (an empty ``asarray``
        defaults to float64 *indices*), which used to surface as a 0-row
        view with the wrong dtype.
        """
        indices = [self.client_index[cid] for cid in client_ids]
        if not indices:
            subset = np.empty((0, len(self._aps)), dtype=self._loss.dtype)
            subset.setflags(write=False)
            return subset
        for row in indices:
            if not self._row_valid[row]:
                self._fill_row(row)
        subset = self._loss[np.asarray(indices, dtype=np.intp)]
        subset.setflags(write=False)
        return subset

    def is_culled(self, client_id: int, ap_id: int) -> bool:
        """True when the link exceeds the culling horizon (if one is set)."""
        if self.cull_loss_db is None:
            return False
        return self.loss_db(client_id, ap_id) > self.cull_loss_db

    def invalidate_client(self, client_id: int, site=None) -> None:
        """Mark one client's links stale, e.g. after a mobility step.

        Args:
            client_id: the moved client.
            site: optionally the client's new :class:`ClientSite`; when
                given, the cached row recomputes against it (the cache
                holds site references, and sites are immutable).
        """
        row = self.client_index[client_id]
        if site is not None:
            self._clients[row] = site
        self._row_valid[row] = False

    def invalidate_all(self) -> None:
        """Mark every link stale (e.g. the propagation model changed)."""
        self._row_valid[:] = False
