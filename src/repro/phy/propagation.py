"""Path-loss and shadowing models.

The paper's outdoor measurements (Figure 1) were taken in an urban area with
a rooftop small cell at roughly 600-700 MHz (3GPP band 13 in their testbed,
TVWS frequencies in deployment).  :class:`UrbanHataPathLoss` reproduces that
environment with the classic Okumura-Hata urban formula, which at 36 dBm
EIRP gives ~1.3 km of usable range -- matching the paper's drive test.

All models expose ``path_loss_db(distance_m)`` plus a batched
``path_loss_db_batch(distances_m)`` that is bit-identical to the scalar
call per element (see :mod:`repro.phy.vecmath` for how transcendentals
stay exact); composite behaviour (model + shadowing + antenna gains) is
assembled by :class:`CompositeChannel` / :class:`repro.phy.link.LinkBudget`.
"""

from __future__ import annotations

import hashlib
import math
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.phy import vecmath

SPEED_OF_LIGHT_M_S = 299_792_458.0

#: Gain-cache fill modes: ``FILL_BATCHED`` routes stale rows through the
#: vectorized kernels; ``FILL_SCALAR`` keeps the per-link loop.  Both are
#: bit-identical (the scalar loop is the retained oracle, same discipline
#: as the epoch backends).
FILL_BATCHED = "batched"
FILL_SCALAR = "scalar"
_FILL_MODES = (FILL_BATCHED, FILL_SCALAR)

#: Rows are filled in chunks of roughly this many links so the ~60 array
#: temporaries of the hypot/log kernels stay cache-resident (measured
#: ~3x faster than whole-matrix temporaries at city scale).
_CHUNK_LINKS = 16384


class PathLossModel(ABC):
    """Interface: mean path loss in dB as a function of ground distance.

    Concrete models implement the scalar :meth:`path_loss_db` *and* the
    batched :meth:`path_loss_db_batch`; the batch must be IEEE-identical
    to the scalar call per element (``tests/test_phy_gain_batch.py``
    enforces both the identity and that every registered subclass
    actually overrides the batch API instead of silently falling back).
    """

    @abstractmethod
    def path_loss_db(self, distance_m: float) -> float:
        """Mean path loss in dB at ``distance_m`` metres (>= 1 m enforced)."""

    @abstractmethod
    def path_loss_db_batch(self, distances_m: np.ndarray) -> np.ndarray:
        """Elementwise :meth:`path_loss_db` over an array, bit-identical."""

    @staticmethod
    def _clamp_distance(distance_m: float) -> float:
        if distance_m < 0.0:
            raise ValueError(f"distance must be >= 0, got {distance_m!r}")
        # Below 1 m the far-field formulas diverge; clamp as ns-3 does.
        return max(distance_m, 1.0)

    @staticmethod
    def _clamp_distances(distances_m: np.ndarray) -> np.ndarray:
        distances_m = np.asarray(distances_m, dtype=np.float64)
        if (distances_m < 0.0).any():
            bad = float(distances_m[distances_m < 0.0].flat[0])
            raise ValueError(f"distance must be >= 0, got {bad!r}")
        return np.maximum(distances_m, 1.0)


class FreeSpacePathLoss(PathLossModel):
    """Friis free-space propagation.  Optimistic; used for sanity checks."""

    def __init__(self, frequency_hz: float) -> None:
        if frequency_hz <= 0.0:
            raise ValueError(f"frequency must be > 0, got {frequency_hz!r}")
        self.frequency_hz = frequency_hz

    def path_loss_db(self, distance_m: float) -> float:
        distance_m = self._clamp_distance(distance_m)
        wavelength = SPEED_OF_LIGHT_M_S / self.frequency_hz
        return 20.0 * math.log10(4.0 * math.pi * distance_m / wavelength)

    def path_loss_db_batch(self, distances_m: np.ndarray) -> np.ndarray:
        distances_m = self._clamp_distances(distances_m)
        wavelength = SPEED_OF_LIGHT_M_S / self.frequency_hz
        # Same left-to-right association as the scalar expression:
        # ((4.0 * pi) * d) / wavelength, then 20.0 * log10.
        return 20.0 * vecmath.vec_log10(
            4.0 * math.pi * distances_m / wavelength
        )


class LogDistancePathLoss(PathLossModel):
    """Log-distance model: free space to a reference, then exponent ``n``.

    Args:
        frequency_hz: carrier frequency.
        exponent: path-loss exponent beyond the reference distance
            (urban outdoor is typically 3.5-4).
        reference_m: reference distance for the free-space segment.
    """

    def __init__(
        self, frequency_hz: float, exponent: float = 3.7, reference_m: float = 10.0
    ) -> None:
        if exponent < 2.0:
            raise ValueError(f"exponent below free space (2.0): {exponent!r}")
        if reference_m <= 0.0:
            raise ValueError(f"reference distance must be > 0, got {reference_m!r}")
        self.exponent = exponent
        self.reference_m = reference_m
        self._free_space = FreeSpacePathLoss(frequency_hz)

    def path_loss_db(self, distance_m: float) -> float:
        distance_m = self._clamp_distance(distance_m)
        reference_loss = self._free_space.path_loss_db(self.reference_m)
        if distance_m <= self.reference_m:
            return self._free_space.path_loss_db(distance_m)
        return reference_loss + 10.0 * self.exponent * math.log10(
            distance_m / self.reference_m
        )

    def path_loss_db_batch(self, distances_m: np.ndarray) -> np.ndarray:
        distances_m = self._clamp_distances(distances_m)
        reference_loss = self._free_space.path_loss_db(self.reference_m)
        out = np.empty_like(distances_m)
        near = distances_m <= self.reference_m
        if near.any():
            out[near] = self._free_space.path_loss_db_batch(distances_m[near])
        far = ~near
        if far.any():
            # (10.0 * exponent) matches the scalar left-to-right product.
            out[far] = reference_loss + (10.0 * self.exponent) * vecmath.vec_log10(
                distances_m[far] / self.reference_m
            )
        return out


class UrbanHataPathLoss(PathLossModel):
    """Okumura-Hata urban model (small/medium city correction).

    Valid for 150-1500 MHz, which covers the whole TVWS band (470-790 MHz).
    Calibrated defaults follow the paper's testbed: 15 m rooftop cell,
    handheld client at 1.5 m.

    At 600 MHz / 15 m / 1.5 m this yields ~126 dB at 1 km and a
    37.2 dB/decade slope, placing the 1 Mb/s edge at ~1.3 km for a 36 dBm
    EIRP downlink -- the range the paper measures in Figure 1(a).
    """

    def __init__(
        self,
        frequency_hz: float = 617e6,
        base_height_m: float = 15.0,
        mobile_height_m: float = 1.5,
    ) -> None:
        if not 150e6 <= frequency_hz <= 1500e6:
            raise ValueError(
                f"Hata model valid for 150-1500 MHz, got {frequency_hz / 1e6:.0f} MHz"
            )
        if not 1.0 <= base_height_m <= 200.0:
            raise ValueError(f"base height out of Hata range: {base_height_m!r}")
        if not 1.0 <= mobile_height_m <= 10.0:
            raise ValueError(f"mobile height out of Hata range: {mobile_height_m!r}")
        self.frequency_hz = frequency_hz
        self.base_height_m = base_height_m
        self.mobile_height_m = mobile_height_m

    def path_loss_db(self, distance_m: float) -> float:
        distance_m = self._clamp_distance(distance_m)
        f_mhz = self.frequency_hz / 1e6
        d_km = max(distance_m / 1000.0, 0.01)  # Hata's near-field floor.
        log_f = math.log10(f_mhz)
        log_hb = math.log10(self.base_height_m)
        mobile_correction = (1.1 * log_f - 0.7) * self.mobile_height_m - (
            1.56 * log_f - 0.8
        )
        return (
            69.55
            + 26.16 * log_f
            - 13.82 * log_hb
            - mobile_correction
            + (44.9 - 6.55 * log_hb) * math.log10(d_km)
        )

    def path_loss_db_batch(self, distances_m: np.ndarray) -> np.ndarray:
        distances_m = self._clamp_distances(distances_m)
        f_mhz = self.frequency_hz / 1e6
        d_km = np.maximum(distances_m / 1000.0, 0.01)
        log_f = math.log10(f_mhz)
        log_hb = math.log10(self.base_height_m)
        mobile_correction = (1.1 * log_f - 0.7) * self.mobile_height_m - (
            1.56 * log_f - 0.8
        )
        # The scalar return is a left-associated sum whose first four terms
        # are distance-free; hoisting them into one constant reproduces the
        # exact partial sum (((69.55 + a) - b) - c) the scalar loop forms,
        # so the final add against the slope term is the same IEEE op.
        constant = 69.55 + 26.16 * log_f - 13.82 * log_hb - mobile_correction
        slope = 44.9 - 6.55 * log_hb
        return constant + slope * vecmath.vec_log10(d_km)


class LogNormalShadowing:
    """Deterministic per-link log-normal shadowing.

    The shadowing value for a link is a pure function of the two endpoint
    positions and a seed, so (a) the channel is reciprocal, and (b) repeated
    queries for the same link are consistent within a run -- both properties
    the interference-management algorithms rely on.

    **Key quantization contract.**  The hash key formats each coordinate
    with ``:.1f``, i.e. positions are quantized to a 0.1 m grid before
    hashing: endpoints within the same grid cell -- in particular, any
    two positions of one endpoint less than 0.05 m apart (round-half-even
    at the cell edge) -- share the *same* shadowing draw, while a step
    across a cell edge redraws the link.  This is pinned, load-bearing
    behaviour, not an implementation detail: every golden digest in the
    regression net depends on the exact key string, and the batched key
    builder in :meth:`shadowing_db_batch` reproduces it byte-for-byte
    (``tests/test_phy_gain_batch.py`` keeps both facts honest).  Changing
    the format (or the canonical endpoint order) silently reshuffles
    every shadowing draw in every experiment.

    Args:
        sigma_db: standard deviation (urban macro: 6-8 dB).
        seed: experiment seed decorrelating shadowing across replications.
    """

    def __init__(self, sigma_db: float = 7.0, seed: int = 0) -> None:
        if sigma_db < 0.0:
            raise ValueError(f"sigma must be >= 0, got {sigma_db!r}")
        self.sigma_db = sigma_db
        self.seed = seed

    def shadowing_db(
        self, ax: float, ay: float, bx: float, by: float
    ) -> float:
        """Shadowing in dB for the link (a) -- (b).  Symmetric in endpoints."""
        if self.sigma_db == 0.0:
            return 0.0
        # Order endpoints canonically for reciprocity.
        if (ax, ay) > (bx, by):
            ax, ay, bx, by = bx, by, ax, ay
        key = f"{self.seed}:{ax:.1f},{ay:.1f}:{bx:.1f},{by:.1f}".encode()
        digest = hashlib.sha256(key).digest()
        # Box-Muller from two uniform doubles derived from the hash.
        u1 = (int.from_bytes(digest[:8], "little") + 1) / (2**64 + 2)
        u2 = int.from_bytes(digest[8:16], "little") / 2**64
        gaussian = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        return self.sigma_db * gaussian

    # -- Batched path ------------------------------------------------------

    @staticmethod
    def endpoint_tag(x: float, y: float) -> bytes:
        """The quantized ``{x:.1f},{y:.1f}`` key fragment for one endpoint.

        Exposed so bulk key builders (the gain-fill kernels) can format
        each *node* once instead of re-formatting both endpoints per
        link; concatenating tags reproduces the scalar key byte-for-byte
        because the format is pure ASCII.
        """
        return f"{x:.1f},{y:.1f}".encode()

    def _values_from_keys(self, keys: List[bytes]) -> np.ndarray:
        """sigma * gaussian for pre-built canonical keys, bit-identical.

        The sha256 pass stays a per-key loop (hashing dominates the
        shadowed fill; see docs/SIMULATION.md), but everything after the
        digests is array arithmetic: ``u2`` vectorizes exactly (uint64 ->
        float64 rounding commutes with the exact power-of-two divide),
        ``u1`` keeps a scalar big-int division per element because
        ``(n + 1) / (2**64 + 2)`` is correctly rounded only as exact
        integer division, and the transcendentals go through the probed
        paths of :mod:`repro.phy.vecmath`.
        """
        n = len(keys)
        if n == 0:
            return np.empty(0, dtype=np.float64)
        sha256 = hashlib.sha256
        buf = b"".join([sha256(key).digest() for key in keys])
        words = np.frombuffer(buf, dtype="<u8").reshape(n, 4)
        den = 2**64 + 2
        u1 = np.fromiter(
            ((v + 1) / den for v in words[:, 0].tolist()), np.float64, count=n
        )
        u2 = words[:, 1].astype(np.float64) / 2.0**64
        gaussian = np.sqrt(-2.0 * vecmath.vec_log(u1)) * vecmath.vec_cos(
            2.0 * math.pi * u2
        )
        return self.sigma_db * gaussian

    def shadowing_db_batch(
        self, ax: np.ndarray, ay: np.ndarray, bx: np.ndarray, by: np.ndarray
    ) -> np.ndarray:
        """Elementwise :meth:`shadowing_db` over coordinate arrays."""
        ax = np.asarray(ax, dtype=np.float64)
        ay = np.asarray(ay, dtype=np.float64)
        bx = np.asarray(bx, dtype=np.float64)
        by = np.asarray(by, dtype=np.float64)
        if self.sigma_db == 0.0:
            return np.zeros(ax.shape, dtype=np.float64)
        # Canonical endpoint order, matching the scalar tuple comparison
        # ((ax, ay) > (bx, by)): a tuple compare falls through to the
        # second coordinate exactly when the first compares equal (which,
        # as for 0.0 vs -0.0, is not the same as being identical).
        swap = (ax > bx) | ((ax == bx) & (ay > by))
        prefix = f"{self.seed}:".encode()
        tag = self.endpoint_tag
        keys = [
            prefix + tag(qx, qy) + b":" + tag(px, py)
            if swapped
            else prefix + tag(px, py) + b":" + tag(qx, qy)
            for px, py, qx, qy, swapped in zip(
                ax.ravel().tolist(),
                ay.ravel().tolist(),
                bx.ravel().tolist(),
                by.ravel().tolist(),
                swap.ravel().tolist(),
            )
        ]
        return self._values_from_keys(keys).reshape(ax.shape)


class CompositeChannel:
    """Mean path loss plus optional shadowing, as one callable object.

    This is the object the simulators hold: ``loss_db(a, b)`` takes any two
    positioned nodes (anything with ``x``/``y`` attributes).
    """

    def __init__(
        self,
        path_loss: PathLossModel,
        shadowing: Optional[LogNormalShadowing] = None,
    ) -> None:
        self.path_loss = path_loss
        self.shadowing = shadowing

    def loss_db(self, node_a, node_b) -> float:
        """Total propagation loss in dB between two positioned nodes."""
        distance = math.hypot(node_a.x - node_b.x, node_a.y - node_b.y)
        loss = self.path_loss.path_loss_db(distance)
        if self.shadowing is not None:
            loss += self.shadowing.shadowing_db(
                node_a.x, node_a.y, node_b.x, node_b.y
            )
        return loss

    def _ap_side_arrays(self, aps: Sequence) -> tuple:
        """Memoized per-AP columns: positions and quantized key tags.

        Keyed on the identity of the ``aps`` sequence (the gain cache
        passes its own stable list, and AP sites never move), so single-
        row refills after mobility don't re-format 10k tags.  A different
        sequence object simply replaces the one-entry memo.
        """
        cached = getattr(self, "_ap_memo", None)
        if cached is not None and cached[0] is aps:
            return cached[1]
        ap_x = np.fromiter((ap.x for ap in aps), np.float64, count=len(aps))
        ap_y = np.fromiter((ap.y for ap in aps), np.float64, count=len(aps))
        tags = None
        if self.shadowing is not None:
            tag = self.shadowing.endpoint_tag
            tags = [tag(ap.x, ap.y) for ap in aps]
        arrays = (ap_x, ap_y, tags)
        self._ap_memo = (aps, arrays)
        return arrays

    def loss_db_rows(self, aps: Sequence, clients: Sequence) -> np.ndarray:
        """Batched :meth:`loss_db`: a ``(len(clients), len(aps))`` block.

        Bit-identical per element to ``loss_db(ap, client)`` -- distances
        through :func:`repro.phy.vecmath.vec_hypot`, path loss through the
        model's batch kernel, shadowing through bulk key construction over
        per-node tags -- so batched and scalar cache fills interleave
        freely (the gain-fill oracle discipline; see docs/SIMULATION.md).
        """
        n_aps = len(aps)
        ap_x, ap_y, ap_tags = self._ap_side_arrays(aps)
        cl_x = np.fromiter(
            (c.x for c in clients), np.float64, count=len(clients)
        )
        cl_y = np.fromiter(
            (c.y for c in clients), np.float64, count=len(clients)
        )
        # loss_db(ap, client) computes hypot(ap.x - c.x, ap.y - c.y).
        dx = ap_x[np.newaxis, :] - cl_x[:, np.newaxis]
        dy = ap_y[np.newaxis, :] - cl_y[:, np.newaxis]
        block = self.path_loss.path_loss_db_batch(vecmath.vec_hypot(dx, dy))
        if self.shadowing is not None and self.shadowing.sigma_db != 0.0:
            shadowing = self.shadowing
            prefix = f"{shadowing.seed}:".encode()
            tag = shadowing.endpoint_tag
            # Canonical endpoint order per link: the scalar call compares
            # (ap.x, ap.y) > (client.x, client.y) tuple-wise.
            swap = (ap_x[np.newaxis, :] > cl_x[:, np.newaxis]) | (
                (ap_x[np.newaxis, :] == cl_x[:, np.newaxis])
                & (ap_y[np.newaxis, :] > cl_y[:, np.newaxis])
            )
            keys: List[bytes] = []
            for i, client in enumerate(clients):
                ctag = tag(client.x, client.y)
                # swapped means ap > client: the client tag leads the key.
                client_first = prefix + ctag + b":"
                row_swap = swap[i].tolist()
                keys.extend(
                    client_first + ap_tag
                    if swapped
                    else prefix + ap_tag + b":" + ctag
                    for ap_tag, swapped in zip(ap_tags, row_swap)
                )
            block += shadowing._values_from_keys(keys).reshape(block.shape)
        return block


class GainMatrixCache:
    """Cached pairwise AP <-> client link gains for one deployment.

    The epoch simulators query the same (AP, client) losses every epoch;
    this cache computes each link exactly once and hands out the full
    matrix for vectorized kernels.  By default stale rows fill in bulk
    through the batched kernels (``fill_mode="batched"``:
    :meth:`CompositeChannel.loss_db_rows` plus batched antenna gains),
    which are bit-identical per link to the scalar ``channel.loss_db``
    call; ``fill_mode="scalar"`` keeps the original per-link loop as the
    retained oracle, so either mode's cached values equal direct queries
    exactly and the two modes may be mixed freely across caches.

    Channels are reciprocal (distance and shadowing are symmetric in the
    endpoints, and an AP's antenna gain applies to both link directions),
    so one entry serves downlink and uplink.

    Invalidation is explicit: mobility code calls :meth:`invalidate_client`
    after moving a client (see :meth:`repro.sim.topology.Topology.move_client`);
    only that client's row is recomputed, lazily, on next access.

    Args:
        channel: the composite propagation model.
        aps: access-point sites (column order of the matrix).
        clients: client sites (row order of the matrix).
        ap_antennas: optional per-AP antenna (``ap_id`` -> antenna); its
            bearing-dependent gain toward each client is subtracted from
            the loss.  Omitted APs radiate isotropically.
        cull_loss_db: optional neighbor-culling horizon.  Links whose total
            loss exceeds this are *culled*: consumers treat them as carrying
            exactly zero power (no signal, no interference, no PRACH
            audibility).  ``None`` (the default) disables culling and keeps
            every link live, matching historic behaviour.
        fill_mode: :data:`FILL_BATCHED` (default) fills stale rows through
            the vectorized kernels; :data:`FILL_SCALAR` keeps the per-link
            loop (the bit-identity oracle).
    """

    def __init__(
        self,
        channel: CompositeChannel,
        aps: Sequence,
        clients: Sequence,
        ap_antennas: Optional[Dict[int, "object"]] = None,
        cull_loss_db: Optional[float] = None,
        fill_mode: str = FILL_BATCHED,
    ) -> None:
        if cull_loss_db is not None and not cull_loss_db > 0.0:
            raise ValueError(
                f"cull_loss_db must be > 0 dB or None, got {cull_loss_db!r}"
            )
        if fill_mode not in _FILL_MODES:
            raise ValueError(
                f"fill_mode must be one of {_FILL_MODES!r}, got {fill_mode!r}"
            )
        self.fill_mode = fill_mode
        self.channel = channel
        self._aps = list(aps)
        self._clients = list(clients)
        self.ap_antennas = dict(ap_antennas or {})
        self.cull_loss_db = cull_loss_db
        self.ap_index: Dict[int, int] = {
            ap.ap_id: j for j, ap in enumerate(self._aps)
        }
        self.client_index: Dict[int, int] = {
            c.client_id: i for i, c in enumerate(self._clients)
        }
        self._loss = np.zeros((len(self._clients), len(self._aps)))
        self._row_valid = np.zeros(len(self._clients), dtype=bool)
        self._readonly = self._loss.view()
        self._readonly.setflags(write=False)

    def _fill_row(self, row: int) -> None:
        """Scalar reference fill: the bit-identity oracle for one row."""
        client = self._clients[row]
        for col, ap in enumerate(self._aps):
            loss = self.channel.loss_db(ap, client)
            antenna = self.ap_antennas.get(ap.ap_id)
            if antenna is not None:
                loss -= antenna.gain_towards(ap.x, ap.y, client.x, client.y)
            self._loss[row, col] = loss
        self._row_valid[row] = True

    def _fill_rows(self, rows: Sequence[int]) -> None:
        """Fill many stale rows in one shot (kernels or oracle loop).

        Rows chunk to ~``_CHUNK_LINKS`` links so kernel temporaries stay
        cache-resident; antenna gains subtract column-wise through the
        antennas' batched ``gains_towards`` (one IEEE subtract per link,
        exactly as the scalar loop performs it).
        """
        if self.fill_mode == FILL_SCALAR:
            for row in rows:
                self._fill_row(int(row))
            return
        n_aps = len(self._aps)
        if n_aps == 0:
            self._row_valid[list(rows)] = True
            return
        step = max(1, _CHUNK_LINKS // n_aps)
        rows = [int(row) for row in rows]
        for start in range(0, len(rows), step):
            chunk = rows[start : start + step]
            clients = [self._clients[row] for row in chunk]
            block = self.channel.loss_db_rows(self._aps, clients)
            if self.ap_antennas:
                cl_x = np.fromiter(
                    (c.x for c in clients), np.float64, count=len(clients)
                )
                cl_y = np.fromiter(
                    (c.y for c in clients), np.float64, count=len(clients)
                )
                for col, ap in enumerate(self._aps):
                    antenna = self.ap_antennas.get(ap.ap_id)
                    if antenna is not None:
                        block[:, col] -= antenna.gains_towards(
                            ap.x, ap.y, cl_x, cl_y
                        )
            self._loss[chunk] = block
            self._row_valid[chunk] = True

    def prefill(self, client_ids: Optional[Sequence[int]] = None) -> None:
        """Eagerly fill stale rows (all, or a client subset) in bulk.

        Unlike :meth:`rows` this returns nothing and copies nothing --
        it exists so builders (network construction, shard workers) can
        push the whole population through the batched kernels up front
        instead of faulting rows in one ``loss_db`` call at a time.
        """
        if client_ids is None:
            stale = np.flatnonzero(~self._row_valid)
        else:
            indices = [self.client_index[cid] for cid in client_ids]
            stale = [row for row in indices if not self._row_valid[row]]
        self._fill_rows(stale)

    def loss_db(self, client_id: int, ap_id: int) -> float:
        """Cached total link loss between a client and an AP, in dB."""
        row = self.client_index[client_id]
        if not self._row_valid[row]:
            self._fill_rows([row])
        return float(self._loss[row, self.ap_index[ap_id]])

    def matrix(self) -> np.ndarray:
        """The full (n_clients, n_aps) loss matrix in dB, read-only.

        Fills any stale rows first, then returns a non-writeable view of
        the cache so callers cannot corrupt it.  Callers that only need a
        few rows should prefer :meth:`rows`, which leaves the rest of the
        cache lazy.
        """
        self._fill_rows(np.flatnonzero(~self._row_valid))
        return self._readonly

    def rows(self, client_ids: Sequence[int]) -> np.ndarray:
        """Loss rows for a subset of clients, in the order given.

        Only the requested rows are (re)computed -- unlike :meth:`matrix`
        this does not eagerly fill the whole cache, which is what the
        incremental epoch backend needs when only a few clients moved.
        Returns a read-only ``(len(client_ids), n_aps)`` array.

        An empty subset normalizes to an explicit ``(0, n_aps)`` array of
        the cache's float dtype: fancy-indexing with an empty index list
        is dtype-ambiguous on some NumPy versions (an empty ``asarray``
        defaults to float64 *indices*), which used to surface as a 0-row
        view with the wrong dtype.
        """
        indices = [self.client_index[cid] for cid in client_ids]
        if not indices:
            subset = np.empty((0, len(self._aps)), dtype=self._loss.dtype)
            subset.setflags(write=False)
            return subset
        self._fill_rows([row for row in indices if not self._row_valid[row]])
        subset = self._loss[np.asarray(indices, dtype=np.intp)]
        subset.setflags(write=False)
        return subset

    def is_culled(self, client_id: int, ap_id: int) -> bool:
        """True when the link exceeds the culling horizon (if one is set)."""
        if self.cull_loss_db is None:
            return False
        return self.loss_db(client_id, ap_id) > self.cull_loss_db

    def invalidate_client(self, client_id: int, site=None) -> None:
        """Mark one client's links stale, e.g. after a mobility step.

        Args:
            client_id: the moved client.
            site: optionally the client's new :class:`ClientSite`; when
                given, the cached row recomputes against it (the cache
                holds site references, and sites are immutable).
        """
        row = self.client_index[client_id]
        if site is not None:
            self._clients[row] = site
        self._row_valid[row] = False

    def invalidate_all(self) -> None:
        """Mark every link stale (e.g. the propagation model changed)."""
        self._row_valid[:] = False
