"""Exactness-probed vectorized math for the gain-fill kernels.

The repo's bit-identity discipline (see ``_elementwise_db`` in
:mod:`repro.lte.network`) pins every derived quantity to the scalar
``math.*`` calls of the reference implementation: golden digests depend
on every last ulp.  NumPy's SIMD transcendental kernels (AVX2/AVX512
``log10``/``log``/``cos``/``atan2``) differ from libm in the last ulp on
a small fraction of inputs, so a naive ``np.log10`` would silently shift
digests depending on the host CPU.

This module provides two kinds of vector primitives that are *always*
bit-identical to their scalar counterparts:

* :func:`vec_hypot` -- a NumPy replication of CPython's own
  ``math.hypot`` algorithm (scaled Dekker/2Sum compensated squares with
  a one-step Newton correction).  It uses only IEEE-754 basic operations
  (+, -, *, /, sqrt), which are correctly rounded everywhere, so the
  replication is exact *by construction* in every CPU mode.  Elements the
  replication cannot guarantee (zero/inf/nan, subnormal maxima, and
  component ratios so extreme the Dekker error term would underflow) are
  recomputed through scalar ``math.hypot``.

* Probed transcendentals (:data:`vec_log10`, :data:`vec_log`,
  :data:`vec_cos`, :func:`vec_bearing_deg`) -- on first use each path
  compares the NumPy ufunc against a ``math.*`` loop over deterministic
  probe domains.  When the probe passes (NumPy dispatched its scalar
  libm loop -- e.g. under ``NPY_DISABLE_CPU_FEATURES``, see below), the
  vector path is used; otherwise every call transparently falls back to
  a scalar ``map``.  Results are bit-identical either way; only the
  speed differs.

Running with the SIMD dispatch disabled makes the probed paths vector::

    NPY_DISABLE_CPU_FEATURES="AVX512_SPR AVX512_ICL AVX512_CNL AVX512_CLX \
        AVX512_SKX AVX512F AVX512CD AVX512VL AVX512BW AVX512DQ AVX512VNNI \
        AVX512IFMA AVX512VBMI AVX512VBMI2 AVX512BITALG AVX512FP16 AVX512BF16 \
        AVX512VPOPCNTDQ X86_V4 AVX2 FMA3 F16C X86_V3 AVX"

(the list is :data:`LIBM_MODE_DISABLE_FEATURES`; ``make bench-gainfill``
sets it).  NumPy then compiles its baseline loops, which call libm
element by element -- same results, vector-speed memory traffic.

Setting ``REPRO_VECMATH=scalar`` forces every probed path (and
:func:`vec_hypot`) onto the scalar fallback, as a debugging escape
hatch.
"""

from __future__ import annotations

import math
import os
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

__all__ = [
    "LIBM_MODE_DISABLE_FEATURES",
    "vec_bearing_deg",
    "vec_cos",
    "vec_hypot",
    "vec_log",
    "vec_log10",
    "vectorized_report",
]

#: CPU features to disable (via ``NPY_DISABLE_CPU_FEATURES``) so NumPy's
#: transcendental ufuncs fall back to their libm baseline loops and the
#: probed paths below go vector.  Harmless on CPUs lacking some entries
#: (NumPy warns and ignores unknown/absent features).
LIBM_MODE_DISABLE_FEATURES = (
    "AVX512_SPR AVX512_ICL AVX512_CNL AVX512_CLX AVX512_SKX AVX512F "
    "AVX512CD AVX512VL AVX512BW AVX512DQ AVX512VNNI AVX512IFMA AVX512VBMI "
    "AVX512VBMI2 AVX512BITALG AVX512FP16 AVX512BF16 AVX512VPOPCNTDQ "
    "X86_V4 AVX2 FMA3 F16C X86_V3 AVX"
)

_FORCE_SCALAR = os.environ.get("REPRO_VECMATH", "") == "scalar"


def _scalar_map(fn: Callable[[float], float], values: np.ndarray) -> np.ndarray:
    """Apply a scalar math function elementwise (the exact reference)."""
    flat = np.ascontiguousarray(values, dtype=np.float64).ravel()
    out = np.fromiter(map(fn, flat.tolist()), np.float64, count=flat.size)
    return out.reshape(np.shape(values))


class _ProbedUnary:
    """A NumPy ufunc gated behind a bit-identity probe vs ``math.*``.

    The probe runs once per process on first use: the ufunc output over
    deterministic domain samples (several sizes, so remainder loops are
    exercised too) must equal the scalar loop bit-for-bit.  NumPy picks
    its inner loop (SIMD vs libm baseline) at import time, so a passing
    probe means the dispatch *is* the element-by-element libm loop and
    the ufunc is safe for every input; a failing probe routes every call
    through the scalar map.
    """

    def __init__(
        self,
        name: str,
        np_fn: Callable[[np.ndarray], np.ndarray],
        py_fn: Callable[[float], float],
        samples: Callable[[], Iterable[np.ndarray]],
    ) -> None:
        self.name = name
        self._np_fn = np_fn
        self._py_fn = py_fn
        self._samples = samples
        self._ok: Optional[bool] = None

    @property
    def vectorized(self) -> bool:
        if self._ok is None:
            if _FORCE_SCALAR:
                self._ok = False
            else:
                self._ok = all(
                    np.array_equal(self._np_fn(arr), _scalar_map(self._py_fn, arr))
                    for arr in self._samples()
                )
        return self._ok

    def __call__(self, values: np.ndarray) -> np.ndarray:
        if self.vectorized:
            return self._np_fn(np.asarray(values, dtype=np.float64))
        return _scalar_map(self._py_fn, values)


def _probe_sizes(flat: np.ndarray) -> List[np.ndarray]:
    """Split one sample pool into several sizes (SIMD remainder coverage)."""
    return [flat[:7], flat[7:1007], flat]


def _log_samples() -> List[np.ndarray]:
    rng = np.random.default_rng(20170607)
    pools = [
        rng.uniform(1e-3, 5e4, 1 << 15),  # d_km / metre working range
        np.exp(rng.uniform(-700.0, 700.0, 1 << 15)),  # full normal range
        rng.uniform(np.nextafter(0.0, 1.0), 1.0, 1 << 15),  # u1 domain
        1.0 + rng.uniform(-1e-6, 1e-6, 1 << 12),  # near-one cancellation
    ]
    return _probe_sizes(np.concatenate(pools))


def _cos_samples() -> List[np.ndarray]:
    rng = np.random.default_rng(20170608)
    pools = [
        rng.uniform(0.0, 2.0 * math.pi, 1 << 16),  # Box-Muller phase domain
        np.array([0.0, math.pi / 2.0, math.pi, 2.0 * math.pi]),
    ]
    return _probe_sizes(np.concatenate(pools))


vec_log10 = _ProbedUnary("log10", np.log10, math.log10, _log_samples)
vec_log = _ProbedUnary("log", np.log, math.log, _log_samples)
vec_cos = _ProbedUnary("cos", np.cos, math.cos, _cos_samples)


class _ProbedBearing:
    """``degrees(atan2(y, x))`` as one probed composite path."""

    def __init__(self) -> None:
        self._ok: Optional[bool] = None

    @staticmethod
    def _np_fn(ys: np.ndarray, xs: np.ndarray) -> np.ndarray:
        return np.degrees(np.arctan2(ys, xs))

    @staticmethod
    def _py_fn(y: float, x: float) -> float:
        return math.degrees(math.atan2(y, x))

    def _scalar(self, ys: np.ndarray, xs: np.ndarray) -> np.ndarray:
        yf = np.ascontiguousarray(ys, dtype=np.float64).ravel()
        xf = np.ascontiguousarray(xs, dtype=np.float64).ravel()
        out = np.fromiter(
            map(self._py_fn, yf.tolist(), xf.tolist()), np.float64, count=yf.size
        )
        return out.reshape(np.shape(ys))

    @property
    def vectorized(self) -> bool:
        if self._ok is None:
            if _FORCE_SCALAR:
                self._ok = False
            else:
                rng = np.random.default_rng(20170609)
                ys = np.concatenate(
                    [
                        rng.uniform(-5e4, 5e4, 1 << 15),
                        np.array([0.0, -0.0, 1.0, -1.0, 0.0, -0.0]),
                    ]
                )
                xs = np.concatenate(
                    [
                        rng.uniform(-5e4, 5e4, 1 << 15),
                        np.array([0.0, -0.0, 0.0, -0.0, 1.0, -1.0]),
                    ]
                )
                self._ok = all(
                    np.array_equal(self._np_fn(y, x), self._scalar(y, x))
                    for y, x in zip(_probe_sizes(ys), _probe_sizes(xs))
                )
        return self._ok

    def __call__(self, ys: np.ndarray, xs: np.ndarray) -> np.ndarray:
        if self.vectorized:
            return self._np_fn(
                np.asarray(ys, dtype=np.float64), np.asarray(xs, dtype=np.float64)
            )
        return self._scalar(ys, xs)


vec_bearing_deg = _ProbedBearing()


# ---------------------------------------------------------------------------
# Exact math.hypot replication
# ---------------------------------------------------------------------------

_SPLIT = 134217729.0  # 2**27 + 1, Dekker's splitter
#: Scaled components below this make the Dekker product's error term
#: underflow, where it would no longer equal the fma()-computed remainder
#: CPython uses; such elements take the scalar fix-up path.  The bound is
#: generous: the error term of x*x sits near x**2 * 2**-53, which stays
#: comfortably normal for x >= 2**-500.
_TINY_SCALED = 2.0**-500


def _dl_mul_sq(x: np.ndarray):
    """Error-free x*x -> (fl(x*x), exact remainder), Dekker two-product.

    Equals CPython's ``dl_mul(x, x)`` (an ``fma(x, x, -z)`` remainder)
    whenever no intermediate underflows -- the caller masks the rest.
    """
    z = x * x
    c = _SPLIT * x
    hi = c - (c - x)
    lo = x - hi
    zz = ((hi * hi - z) + 2.0 * hi * lo) + lo * lo
    return z, zz


def _vec_hypot_core(ax: np.ndarray, ay: np.ndarray, scale: np.ndarray):
    """CPython 3.11 ``vector_norm`` for n=2, elementwise over arrays.

    Operation-for-operation the same arithmetic as Modules/mathmodule.c:
    lossless scaling by a power of two, compensated summation of the
    squares (csum seeded at 1.0), then a differential-correction step on
    the square root.  Only IEEE basic ops -- exact on every CPU.
    """
    csum = np.ones_like(ax)
    frac1 = np.zeros_like(ax)
    frac2 = np.zeros_like(ax)
    for a in (ax, ay):
        x = a * scale
        prh, prl = _dl_mul_sq(x)
        smh = csum + prh
        sml = (csum - smh) + prh
        csum = smh
        frac1 = frac1 + prl
        frac2 = frac2 + sml
    h = np.sqrt(csum - 1.0 + (frac1 + frac2))
    prh, prl = _dl_mul_sq(h)
    smh = csum + (-prh)
    sml = (csum - smh) + (-prh)
    frac1 = frac1 - prl
    frac2 = frac2 + sml
    x = smh - 1.0 + (frac1 + frac2)
    return (h + x / (2.0 * h)) / scale


class _HypotPath:
    """Bit-identical ``math.hypot`` over arrays, with scalar fix-ups.

    The replication is exact by construction, but a belt-and-braces probe
    (run once, on first use) still compares it against ``math.hypot``
    over adversarial domains -- if a future CPython changes the hypot
    algorithm, the probe fails closed onto the scalar map.
    """

    def __init__(self) -> None:
        self._ok: Optional[bool] = None

    @staticmethod
    def _scalar(dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
        xf = np.ascontiguousarray(dx, dtype=np.float64).ravel()
        yf = np.ascontiguousarray(dy, dtype=np.float64).ravel()
        out = np.fromiter(
            map(math.hypot, xf.tolist(), yf.tolist()), np.float64, count=xf.size
        )
        return out.reshape(np.shape(dx))

    @staticmethod
    def _vector(dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
        dx = np.asarray(dx, dtype=np.float64)
        dy = np.asarray(dy, dtype=np.float64)
        ax = np.abs(dx)
        ay = np.abs(dy)
        mx = np.maximum(ax, ay)
        with np.errstate(all="ignore"):
            _, max_e = np.frexp(mx)
            # CPython special-cases inf/nan/zero and recurses for
            # subnormal maxima; extreme component ratios would underflow
            # the Dekker error term.  All of those go to the scalar loop.
            tiny = np.minimum(ax, ay)
            special = (
                (mx == 0.0)
                | ~np.isfinite(mx)
                | (max_e - 1 < -1022)
                | ((tiny != 0.0) & (tiny < mx * _TINY_SCALED))
            )
            scale = np.ldexp(1.0, -max_e)
            out = _vec_hypot_core(ax, ay, scale)
        if special.any():
            idx = np.flatnonzero(special.ravel())
            xf = ax.ravel()
            yf = ay.ravel()
            flat = out.ravel()
            for i in idx:
                flat[i] = math.hypot(xf[i], yf[i])
            out = flat.reshape(out.shape)
        return out

    @property
    def vectorized(self) -> bool:
        if self._ok is None:
            if _FORCE_SCALAR:
                self._ok = False
            else:
                rng = np.random.default_rng(20170610)
                mag = 10.0 ** rng.integers(-320, 300, 1 << 14)
                pools_x = [
                    rng.uniform(-5e4, 5e4, 1 << 15),
                    rng.uniform(-1.0, 1.0, 1 << 14) * mag,
                    np.array([0.0, -0.0, np.inf, -np.inf, np.nan, 5e-324, 1e-308]),
                ]
                pools_y = [
                    rng.uniform(-5e4, 5e4, 1 << 15),
                    rng.uniform(-1.0, 1.0, 1 << 14) * mag[::-1],
                    np.array([1.0, 0.0, 1.0, np.nan, -2.0, 5e-324, -1e300]),
                ]
                xs = np.concatenate(pools_x)
                ys = np.concatenate(pools_y)
                got = self._vector(xs, ys)
                ref = self._scalar(xs, ys)
                eq = (got == ref) | (np.isnan(got) & np.isnan(ref))
                self._ok = bool(eq.all())
        return self._ok

    def __call__(self, dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
        if self.vectorized:
            return self._vector(dx, dy)
        return self._scalar(dx, dy)


_hypot_path = _HypotPath()


def vec_hypot(dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Elementwise ``math.hypot(dx, dy)``, bit-identical, array speed."""
    return _hypot_path(dx, dy)


def vectorized_report() -> Dict[str, bool]:
    """Which primitives currently run vectorized (probes pass) vs scalar.

    Forces every lazy probe; useful for benchmark provenance records.
    """
    return {
        "hypot": _hypot_path.vectorized,
        "log10": vec_log10.vectorized,
        "log": vec_log.vectorized,
        "cos": vec_cos.vectorized,
        "bearing_deg": vec_bearing_deg.vectorized,
    }
