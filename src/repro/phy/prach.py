"""PRACH preambles and detectors (paper Section 6.3.3).

LTE clients announce themselves by transmitting a PRACH preamble -- a
Zadoff-Chu (ZC) sequence selected by a root index and a cyclic shift.
CellFi access points overhear preambles from clients of *other* cells to
estimate contention (Section 5.1).  The challenge: an overhearing AP knows
neither the preamble sequence number nor the timing.

Two detectors are implemented:

* :class:`NaivePrachDetector` -- correlates the received window against every
  candidate root sequence (the "naive implementation" the paper mentions).
* :class:`FastPrachDetector` -- the paper's low-complexity detector.  A time
  offset of a ZC sequence appears as a linear phase (equivalently, a cyclic
  shift maps between domains), so one frequency-domain correlation finds the
  most likely cyclic shift and a second check validates its correlation
  value.  Only presence/absence is needed, not the identity of the preamble.

Both detectors count complex multiply-accumulate operations so benchmarks
can report the complexity ratio; the paper measured its detector at 16x the
required line rate on a 10 MHz channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.obs import runtime as _obs_runtime
from repro.utils.dbmath import db_to_linear

#: Zadoff-Chu sequence length for PRACH preamble formats 0-3 (TS 36.211).
ZC_LENGTH = 839

#: Number of preambles per cell (TS 36.211): 64 signatures.
N_PREAMBLES = 64


def zadoff_chu(root: int, length: int = ZC_LENGTH) -> np.ndarray:
    """Generate a Zadoff-Chu sequence ``x_u(n) = exp(-j pi u n (n+1) / N)``.

    Args:
        root: root index ``u``; must be coprime with ``length`` for the CAZAC
            (constant amplitude, zero autocorrelation) property to hold.
        length: sequence length ``N`` (prime for PRACH).

    Raises:
        ValueError: if the root is out of range ``1..length-1``.
    """
    if not 1 <= root < length:
        raise ValueError(f"ZC root must be in 1..{length - 1}, got {root!r}")
    n = np.arange(length)
    return np.exp(-1j * np.pi * root * n * (n + 1) / length)


@dataclass(frozen=True)
class PrachPreamble:
    """A preamble signature: ZC root plus cyclic shift.

    Within one cell all 64 signatures are typically cyclic shifts of a small
    number of roots; the shift spacing ``N_cs`` guards against round-trip
    delay ambiguity.
    """

    root: int
    cyclic_shift: int
    length: int = ZC_LENGTH

    def samples(self) -> np.ndarray:
        """Baseband samples of this preamble."""
        base = zadoff_chu(self.root, self.length)
        return np.roll(base, -self.cyclic_shift)


def transmit_preamble(
    preamble: PrachPreamble,
    snr_db: float,
    rng: np.random.Generator,
    delay_samples: int = 0,
) -> np.ndarray:
    """Produce a received window containing the preamble in AWGN.

    Args:
        preamble: the transmitted signature.
        snr_db: per-sample SNR at the receiver.
        rng: noise stream.
        delay_samples: propagation delay, modelled as a cyclic rotation of
            the observation window (the preamble's cyclic prefix makes the
            delayed preamble look cyclically rotated within the window).
    """
    signal = np.roll(preamble.samples(), delay_samples)
    noise_power = 1.0 / db_to_linear(snr_db)
    noise = rng.normal(0.0, np.sqrt(noise_power / 2.0), size=(2, preamble.length))
    return signal + noise[0] + 1j * noise[1]


def noise_only_window(
    length: int, rng: np.random.Generator, noise_power: float = 1.0
) -> np.ndarray:
    """A received window containing only noise (for false-alarm tests)."""
    noise = rng.normal(0.0, np.sqrt(noise_power / 2.0), size=(2, length))
    return noise[0] + 1j * noise[1]


@dataclass
class DetectionResult:
    """Outcome of a detection attempt.

    Attributes:
        detected: whether a preamble was declared present.
        metric: peak-to-average correlation ratio used for the decision.
        cyclic_shift: estimated shift (only meaningful when detected).
        root: estimated root (naive detector only; the fast detector does
            not identify the root, by design).
        complex_macs: complex multiply-accumulate operations spent.
    """

    detected: bool
    metric: float
    cyclic_shift: Optional[int] = None
    root: Optional[int] = None
    complex_macs: int = 0


#: Detection threshold on the peak-to-average power ratio of the correlator
#: output.  With N=839 a matched preamble at -10 dB SNR yields a PAPR of
#: several tens; pure noise stays near ~7 (max of 839 exponentials).  The
#: threshold of 13 gives a false-alarm rate well below 1e-3.
DETECTION_THRESHOLD_PAPR = 13.0


def _correlation_papr(received: np.ndarray, reference: np.ndarray) -> tuple:
    """Cyclic correlation via FFT; returns (papr, argmax, mac_count)."""
    n = len(reference)
    fft_rx = np.fft.fft(received)
    fft_ref = np.fft.fft(reference)
    corr = np.fft.ifft(fft_rx * np.conj(fft_ref))
    power = np.abs(corr) ** 2
    mean_power = float(np.mean(power))
    if mean_power == 0.0:
        return 0.0, 0, 0
    peak_index = int(np.argmax(power))
    papr = float(power[peak_index] / mean_power)
    # Complexity accounting: two FFTs + pointwise multiply + one IFFT,
    # ~ 3 * (N/2) log2 N + N complex MACs.
    log_n = max(1, int(np.ceil(np.log2(n))))
    macs = 3 * (n // 2) * log_n + n
    return papr, peak_index, macs


class NaivePrachDetector:
    """Reference detector: tries every candidate root sequence.

    This is the "naive implementation [that] would correlate several long
    PRACH sequences, one for each preamble sequence number, whenever new
    samples are received".
    """

    def __init__(self, candidate_roots: Sequence[int], length: int = ZC_LENGTH) -> None:
        if not candidate_roots:
            raise ValueError("need at least one candidate root")
        self.length = length
        self._references = {root: zadoff_chu(root, length) for root in candidate_roots}

    def detect(self, received: np.ndarray) -> DetectionResult:
        """Correlate against every root; declare the best match."""
        best = DetectionResult(detected=False, metric=0.0)
        total_macs = 0
        for root, reference in self._references.items():
            papr, shift, macs = _correlation_papr(received, reference)
            total_macs += macs
            if papr > best.metric:
                best = DetectionResult(
                    detected=papr >= DETECTION_THRESHOLD_PAPR,
                    metric=papr,
                    cyclic_shift=shift,
                    root=root,
                )
        best.complex_macs = total_macs
        tel = _obs_runtime.active()
        if tel is not None:
            tel.inc("prach.windows")
            tel.inc("prach.complex_macs", total_macs)
            if best.detected:
                tel.inc("prach.detections")
        return best


class FastPrachDetector:
    """The paper's low-complexity detector.

    Correlates against a *single* root sequence.  A received preamble with
    unknown timing or unknown signature number shows up as a cyclic shift of
    the correlation peak -- so presence detection needs only (1) finding the
    most likely cyclic shift and (2) checking its correlation value, i.e.
    "only two correlations" worth of work instead of one per signature.
    """

    def __init__(self, root: int, length: int = ZC_LENGTH) -> None:
        self.length = length
        self._reference = zadoff_chu(root, length)
        self._fft_ref_conj = np.conj(np.fft.fft(self._reference))

    def detect(self, received: np.ndarray) -> DetectionResult:
        """Single frequency-domain correlation + peak validation."""
        n = self.length
        fft_rx = np.fft.fft(received)
        corr = np.fft.ifft(fft_rx * self._fft_ref_conj)
        power = np.abs(corr) ** 2
        mean_power = float(np.mean(power))
        peak_index = int(np.argmax(power))
        papr = 0.0 if mean_power == 0.0 else float(power[peak_index] / mean_power)
        # One FFT (reference FFT is precomputed), one pointwise multiply, one
        # IFFT, plus the N-point peak scan: ~ 2 * (N/2) log2 N + 2N MACs.
        log_n = max(1, int(np.ceil(np.log2(n))))
        macs = 2 * (n // 2) * log_n + 2 * n
        detected = papr >= DETECTION_THRESHOLD_PAPR
        tel = _obs_runtime.active()
        if tel is not None:
            tel.inc("prach.windows")
            tel.inc("prach.complex_macs", macs)
            if detected:
                tel.inc("prach.detections")
        return DetectionResult(
            detected=detected,
            metric=papr,
            cyclic_shift=peak_index,
            complex_macs=macs,
        )

    def detect_batch(self, windows: np.ndarray) -> np.ndarray:
        """Vectorised presence detection over many received windows.

        A streaming deployment processes PRACH occasions back to back; the
        FFTs across windows batch into single vectorised calls, which is
        how the throughput numbers of Section 6.3.3 are achieved.

        Args:
            windows: complex array of shape ``(n_windows, length)``.

        Returns:
            Boolean detection flags, shape ``(n_windows,)``.

        Raises:
            ValueError: on a shape mismatch.
        """
        if windows.ndim != 2 or windows.shape[1] != self.length:
            raise ValueError(
                f"expected (n, {self.length}) windows, got {windows.shape}"
            )
        fft_rx = np.fft.fft(windows, axis=1)
        corr = np.fft.ifft(fft_rx * self._fft_ref_conj[None, :], axis=1)
        power = np.abs(corr) ** 2
        mean_power = power.mean(axis=1)
        peak_power = power.max(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            papr = np.where(mean_power > 0.0, peak_power / mean_power, 0.0)
        flags = papr >= DETECTION_THRESHOLD_PAPR
        tel = _obs_runtime.active()
        if tel is not None:
            tel.inc("prach.windows", len(flags))
            tel.inc("prach.detections", int(flags.sum()))
        return flags


def detection_probability(
    detector,
    snr_db: float,
    rng: np.random.Generator,
    trials: int = 100,
    preamble: Optional[PrachPreamble] = None,
) -> float:
    """Monte-Carlo probability of detecting a preamble at ``snr_db``."""
    target = preamble or PrachPreamble(root=25, cyclic_shift=0)
    hits = 0
    for _ in range(trials):
        delay = int(rng.integers(0, target.length))
        window = transmit_preamble(target, snr_db, rng, delay_samples=delay)
        if detector.detect(window).detected:
            hits += 1
    return hits / trials


def false_alarm_rate(
    detector, rng: np.random.Generator, trials: int = 100, length: int = ZC_LENGTH
) -> float:
    """Monte-Carlo false-alarm rate on noise-only windows."""
    alarms = 0
    for _ in range(trials):
        if detector.detect(noise_only_window(length, rng)).detected:
            alarms += 1
    return alarms / trials
