"""OFDMA resource grid: resource blocks, subchannels and TDD frames.

Terminology (paper Section 5): LTE schedules *resource blocks* (RBs), each
180 kHz x 1 ms.  CellFi manages interference at *subchannel* granularity --
"the minimal set of resource blocks that can be scheduled in LTE and for
which we can get channel quality information".  On a 5 MHz carrier (25 RBs)
there are 13 subchannels; on 20 MHz (100 RBs) there are 25, matching the
3GPP subband sizes of 2 and 4 RBs respectively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

#: Resource-block width in hertz.
RB_BANDWIDTH_HZ = 180_000.0

#: Scheduling interval (one subframe / TTI) in seconds.
TTI_S = 1e-3

#: Resource elements in one RB over one TTI (12 subcarriers x 14 symbols).
RES_ELEMENTS_PER_RB_TTI = 168

#: Fraction of resource elements consumed by PDCCH, reference and sync
#: signals.  With a 2-symbol control region plus CRS this is ~25%, the value
#: system simulators commonly use.
CONTROL_OVERHEAD_FRACTION = 0.25

#: Data-bearing resource elements per RB per TTI.
DATA_RES_ELEMENTS_PER_RB_TTI = int(RES_ELEMENTS_PER_RB_TTI * (1.0 - CONTROL_OVERHEAD_FRACTION))

#: Supported LTE carrier bandwidths (Hz) and their RB counts (3GPP 36.101).
RB_COUNT_BY_BANDWIDTH = {
    1.4e6: 6,
    3e6: 15,
    5e6: 25,
    10e6: 50,
    15e6: 75,
    20e6: 100,
}


def subband_size_rbs(n_rbs: int) -> int:
    """Subband (subchannel) size in RBs as a function of carrier width.

    Follows the UE-selected subband CQI sizing of TS 36.213 so that a 5 MHz
    carrier yields 13 subchannels and a 20 MHz carrier yields 25 -- the
    counts quoted in the paper.
    """
    if n_rbs <= 7:
        return 1
    if n_rbs <= 26:
        return 2
    if n_rbs <= 63:
        return 3
    return 4


@dataclass(frozen=True)
class TddConfig:
    """TDD uplink/downlink subframe split over a 10 ms frame.

    The paper uses "TDD type 2, configuration 4, which grants 7 downlink
    (7 ms) and 2 uplink (2 ms) subframes in every 10 ms frame" (one special
    subframe carries the switch guard and is counted as neither here).
    """

    name: str
    downlink_subframes: int
    uplink_subframes: int
    special_subframes: int = 1

    def __post_init__(self) -> None:
        total = self.downlink_subframes + self.uplink_subframes + self.special_subframes
        if total != 10:
            raise ValueError(
                f"TDD frame must have 10 subframes, {self.name!r} has {total}"
            )

    @property
    def downlink_fraction(self) -> float:
        """Fraction of airtime available to the downlink."""
        return self.downlink_subframes / 10.0

    @property
    def uplink_fraction(self) -> float:
        """Fraction of airtime available to the uplink."""
        return self.uplink_subframes / 10.0


#: The paper's configuration: 7 DL + 2 UL + 1 special.
TDD_CONFIG_4 = TddConfig(name="tdd-config-4", downlink_subframes=7, uplink_subframes=2)

#: An FDD-like grid (continuous downlink), used for the Figure 1 drive test
#: whose testbed ran FDD band 13.
FDD_DOWNLINK = TddConfig(name="fdd-downlink", downlink_subframes=9, uplink_subframes=0)


class ResourceGrid:
    """The frequency/time resource layout of one LTE carrier.

    Args:
        bandwidth_hz: one of the 3GPP carrier bandwidths.
        tdd: TDD subframe configuration (defaults to the paper's config 4).

    Raises:
        ValueError: for a bandwidth LTE does not define.
    """

    def __init__(self, bandwidth_hz: float, tdd: TddConfig = TDD_CONFIG_4) -> None:
        if bandwidth_hz not in RB_COUNT_BY_BANDWIDTH:
            supported = sorted(RB_COUNT_BY_BANDWIDTH)
            raise ValueError(
                f"unsupported LTE bandwidth {bandwidth_hz!r}; expected one of {supported}"
            )
        self.bandwidth_hz = bandwidth_hz
        self.tdd = tdd
        self.n_rbs = RB_COUNT_BY_BANDWIDTH[bandwidth_hz]
        self.subband_rbs = subband_size_rbs(self.n_rbs)

    @property
    def n_subchannels(self) -> int:
        """Number of subchannels (last one may be fractional-size)."""
        return -(-self.n_rbs // self.subband_rbs)  # ceil division

    def subchannel_rbs(self, subchannel: int) -> int:
        """How many RBs subchannel ``subchannel`` spans (the tail may be short)."""
        self._check_subchannel(subchannel)
        start = subchannel * self.subband_rbs
        return min(self.subband_rbs, self.n_rbs - start)

    def subchannel_rb_range(self, subchannel: int) -> Tuple[int, int]:
        """Half-open RB index range [start, stop) of a subchannel."""
        self._check_subchannel(subchannel)
        start = subchannel * self.subband_rbs
        return start, start + self.subchannel_rbs(subchannel)

    def subchannel_bandwidth_hz(self, subchannel: int) -> float:
        """Occupied bandwidth of one subchannel."""
        return self.subchannel_rbs(subchannel) * RB_BANDWIDTH_HZ

    def _check_subchannel(self, subchannel: int) -> None:
        if not 0 <= subchannel < self.n_subchannels:
            raise ValueError(
                f"subchannel {subchannel} out of range 0..{self.n_subchannels - 1}"
            )

    # -- Rate computation ---------------------------------------------------

    def downlink_rate_bps(self, efficiency_bits_per_re: float, n_rbs: int) -> float:
        """Downlink data rate over ``n_rbs`` at a given spectral efficiency.

        Accounts for control overhead and the TDD downlink duty cycle.
        """
        if n_rbs < 0 or n_rbs > self.n_rbs:
            raise ValueError(f"n_rbs {n_rbs} out of range 0..{self.n_rbs}")
        bits_per_tti = efficiency_bits_per_re * DATA_RES_ELEMENTS_PER_RB_TTI * n_rbs
        return bits_per_tti / TTI_S * self.tdd.downlink_fraction

    def uplink_rate_bps(self, efficiency_bits_per_re: float, n_rbs: int) -> float:
        """Uplink data rate over ``n_rbs`` at a given spectral efficiency."""
        if n_rbs < 0 or n_rbs > self.n_rbs:
            raise ValueError(f"n_rbs {n_rbs} out of range 0..{self.n_rbs}")
        bits_per_tti = efficiency_bits_per_re * DATA_RES_ELEMENTS_PER_RB_TTI * n_rbs
        return bits_per_tti / TTI_S * self.tdd.uplink_fraction

    def subchannel_downlink_rate_bps(
        self, efficiency_bits_per_re: float, subchannel: int
    ) -> float:
        """Downlink rate of one subchannel at the given efficiency."""
        return self.downlink_rate_bps(
            efficiency_bits_per_re, self.subchannel_rbs(subchannel)
        )

    def peak_downlink_rate_bps(self, efficiency_bits_per_re: float = 5.55) -> float:
        """Carrier-wide downlink rate at (default) the top-CQI efficiency."""
        return self.downlink_rate_bps(efficiency_bits_per_re, self.n_rbs)

    def all_subchannels(self) -> List[int]:
        """Indices of every subchannel, ``[0, n_subchannels)``."""
        return list(range(self.n_subchannels))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResourceGrid({self.bandwidth_hz / 1e6:.0f} MHz, {self.n_rbs} RBs, "
            f"{self.n_subchannels} subchannels, {self.tdd.name})"
        )
