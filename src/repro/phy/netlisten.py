"""Network listen: signal-level channel-occupancy classification.

Paper Section 4.2: "CellFi uses standard LTE mechanisms such as network
listen to find an idle channel from the ones offered by the database, if
such exists.  If not, CellFi tries to find a channel that is used by other
CellFi cells (rather than other non-LTE wireless technologies)."

The classifier implemented here does what an LTE modem's network-listen
does: correlate the received baseband against the three LTE primary
synchronization sequences (PSS -- length-63 Zadoff-Chu with roots 25, 29
and 34).  A strong PSS correlation identifies an LTE/CellFi occupant; high
energy without PSS is some other technology (e.g. 802.11af); low energy is
an idle channel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

#: PSS Zadoff-Chu length (TS 36.211: length 63 with the DC element punctured).
PSS_LENGTH = 63

#: The three PSS root indices (NID2 = 0, 1, 2).
PSS_ROOTS = (25, 29, 34)

#: Energy threshold above the noise floor (in linear power ratio) that marks
#: a channel as occupied at all.  3 dB over the floor.
ENERGY_DETECT_RATIO = 2.0

#: Normalized matched-filter coefficient (0..1) that declares a PSS
#: present.  A clean PSS at 3 dB SNR scores ~0.8; Gaussian bursts (Wi-Fi
#: OFDM) stay below ~0.3 regardless of their power.
PSS_DETECT_COEFF = 0.5

#: Occupancy labels (shared with repro.core.channel_selection).
IDLE = "idle"
CELLFI = "cellfi"
OTHER = "other"


def pss_sequence(root: int) -> np.ndarray:
    """The length-63 PSS Zadoff-Chu sequence for one root, DC punctured.

    Raises:
        ValueError: for a root outside the PSS set.
    """
    if root not in PSS_ROOTS:
        raise ValueError(f"PSS root must be one of {PSS_ROOTS}, got {root!r}")
    n = np.arange(PSS_LENGTH)
    seq = np.where(
        n <= 30,
        np.exp(-1j * np.pi * root * n * (n + 1) / 63),
        np.exp(-1j * np.pi * root * (n + 1) * (n + 2) / 63),
    )
    seq[31] = 0.0  # The DC subcarrier is punctured.
    return seq


def synth_lte_burst(
    root: int,
    n_samples: int,
    snr_db: float,
    rng: np.random.Generator,
    offset: Optional[int] = None,
) -> np.ndarray:
    """A synthetic LTE capture: PSS embedded in OFDM-like filler + noise."""
    if n_samples < PSS_LENGTH:
        raise ValueError(f"need >= {PSS_LENGTH} samples, got {n_samples}")
    signal_power = 10.0 ** (snr_db / 10.0)
    amplitude = np.sqrt(signal_power)
    # OFDM-looking filler: Gaussian (large subcarrier count -> CLT).
    capture = amplitude * _complex_noise(n_samples, rng)
    start = int(rng.integers(0, n_samples - PSS_LENGTH)) if offset is None else offset
    capture[start : start + PSS_LENGTH] = amplitude * np.sqrt(3.0) * pss_sequence(root)
    return capture + _complex_noise(n_samples, rng)


def synth_wifi_burst(
    n_samples: int, snr_db: float, rng: np.random.Generator, duty: float = 0.6
) -> np.ndarray:
    """A synthetic Wi-Fi capture: bursty OFDM energy, no PSS."""
    signal_power = 10.0 ** (snr_db / 10.0)
    capture = _complex_noise(n_samples, rng)
    on = int(duty * n_samples)
    start = int(rng.integers(0, max(1, n_samples - on)))
    capture[start : start + on] += np.sqrt(signal_power) * _complex_noise(on, rng)
    return capture


def synth_idle(n_samples: int, rng: np.random.Generator) -> np.ndarray:
    """A noise-only capture."""
    return _complex_noise(n_samples, rng)


def _complex_noise(n: int, rng: np.random.Generator) -> np.ndarray:
    return (rng.normal(0.0, np.sqrt(0.5), n)
            + 1j * rng.normal(0.0, np.sqrt(0.5), n))


@dataclass(frozen=True)
class ListenVerdict:
    """Outcome of classifying one capture.

    Attributes:
        occupancy: "idle", "cellfi" or "other".
        energy_ratio: measured power over the assumed unit noise floor.
        pss_coefficient: best normalized PSS correlation (0..1).
        pss_root: the detected PSS root, when LTE was identified.
    """

    occupancy: str
    energy_ratio: float
    pss_coefficient: float
    pss_root: Optional[int] = None


class NetworkListener:
    """Classify channel captures as idle / LTE(CellFi) / other technology.

    Args:
        noise_floor_power: linear noise power the energy detector is
            referenced to (captures from the synth helpers use 1.0).
        energy_ratio: occupancy threshold over the floor.
        pss_coefficient: PSS declaration threshold (normalized, 0..1).
    """

    def __init__(
        self,
        noise_floor_power: float = 1.0,
        energy_ratio: float = ENERGY_DETECT_RATIO,
        pss_coefficient: float = PSS_DETECT_COEFF,
    ) -> None:
        if noise_floor_power <= 0.0:
            raise ValueError(f"noise floor must be > 0, got {noise_floor_power!r}")
        self.noise_floor_power = noise_floor_power
        self.energy_ratio = energy_ratio
        self.pss_coefficient = pss_coefficient
        self._references = {root: pss_sequence(root) for root in PSS_ROOTS}
        self._ref_energy = {
            root: float(np.sum(np.abs(seq) ** 2))
            for root, seq in self._references.items()
        }

    def classify(self, capture: np.ndarray) -> ListenVerdict:
        """Classify one baseband capture.

        Raises:
            ValueError: for captures shorter than one PSS.
        """
        if len(capture) < PSS_LENGTH:
            raise ValueError(
                f"capture must be >= {PSS_LENGTH} samples, got {len(capture)}"
            )
        energy_ratio = float(np.mean(np.abs(capture) ** 2)) / self.noise_floor_power

        # Sliding-window capture energy for the normalized matched filter.
        sample_power = np.abs(capture) ** 2
        cumulative = np.concatenate(([0.0], np.cumsum(sample_power)))
        window_energy = cumulative[PSS_LENGTH:] - cumulative[:-PSS_LENGTH]
        window_energy = np.maximum(window_energy, 1e-12)

        best_coeff, best_root = 0.0, None
        for root, reference in self._references.items():
            # numpy.correlate conjugates its second argument internally.
            correlation = np.abs(np.correlate(capture, reference, "valid"))
            coeff = correlation**2 / (self._ref_energy[root] * window_energy)
            peak = float(coeff.max())
            if peak > best_coeff:
                best_coeff, best_root = peak, root

        if best_coeff >= self.pss_coefficient:
            return ListenVerdict(CELLFI, energy_ratio, best_coeff, best_root)
        if energy_ratio >= self.energy_ratio:
            return ListenVerdict(OTHER, energy_ratio, best_coeff)
        return ListenVerdict(IDLE, energy_ratio, best_coeff)

    def probe_fn(self, capture_fn):
        """Adapt into a :class:`repro.core.channel_selection.OccupancyProbe`
        classifier: ``capture_fn(channel) -> np.ndarray``."""

        def classify_channel(channel: int) -> str:
            return self.classify(capture_fn(channel)).occupancy

        return classify_channel
