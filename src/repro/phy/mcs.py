"""CQI / MCS tables: mapping SINR to modulation, code rate and efficiency.

The LTE table follows 3GPP TS 36.213 Table 7.2.3-1 (the 15-entry CQI table)
with the SINR switching thresholds commonly used in system-level simulators
(10% BLER operating points).  Two properties of this table drive the paper's
Section 3.1 argument:

* the lowest entries use code rates down to ~0.08 -- far below 802.11af's
  minimum of 1/2 -- which is what lets LTE hold a link at SINR < 0 dB;
* CQI 7 (~QPSK, rate 0.59) sits near 6 dB, so a mid-range drive test
  naturally reports a *median* coding rate around 1/2, as in Figure 1(b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.utils.dbmath import db_to_linear


@dataclass(frozen=True)
class CqiEntry:
    """One row of the LTE CQI table.

    Attributes:
        cqi: index 1..15.
        modulation: "QPSK", "16QAM" or "64QAM".
        bits_per_symbol: modulation order (2, 4, 6).
        code_rate: effective channel-coding rate in (0, 1).
        efficiency: information bits per resource element (= bits/symbol x rate).
        min_sinr_db: lowest SINR at which this CQI meets the 10% BLER target.
    """

    cqi: int
    modulation: str
    bits_per_symbol: int
    code_rate: float
    efficiency: float
    min_sinr_db: float


def _entry(cqi, modulation, bits, rate_x1024, sinr):
    rate = rate_x1024 / 1024.0
    return CqiEntry(cqi, modulation, bits, rate, bits * rate, sinr)


#: 3GPP TS 36.213 Table 7.2.3-1 with 10%-BLER SINR thresholds.
LTE_CQI_TABLE: List[CqiEntry] = [
    _entry(1, "QPSK", 2, 78, -6.7),
    _entry(2, "QPSK", 2, 120, -4.7),
    _entry(3, "QPSK", 2, 193, -2.3),
    _entry(4, "QPSK", 2, 308, 0.2),
    _entry(5, "QPSK", 2, 449, 2.4),
    _entry(6, "QPSK", 2, 602, 4.3),
    _entry(7, "16QAM", 4, 378, 5.9),
    _entry(8, "16QAM", 4, 490, 8.1),
    _entry(9, "16QAM", 4, 616, 10.3),
    _entry(10, "64QAM", 6, 466, 11.7),
    _entry(11, "64QAM", 6, 567, 14.1),
    _entry(12, "64QAM", 6, 666, 16.3),
    _entry(13, "64QAM", 6, 772, 18.7),
    _entry(14, "64QAM", 6, 873, 21.0),
    _entry(15, "64QAM", 6, 948, 22.7),
]

#: CQI reported when the SINR is below the lowest operating point.
CQI_OUT_OF_RANGE = 0

#: The minimum code rate LTE offers (CQI 1) -- cf. Table 1 "Coding rate >= 0.1".
LTE_MIN_CODE_RATE = LTE_CQI_TABLE[0].code_rate

#: The minimum code rate 802.11af/ac offers -- cf. Table 1 "Coding rate >= 0.5".
WIFI_MIN_CODE_RATE = 0.5


def cqi_from_sinr(sinr_db: float) -> int:
    """Quantise an SINR into a CQI index (0 = out of range, else 1..15)."""
    best = CQI_OUT_OF_RANGE
    for entry in LTE_CQI_TABLE:
        if sinr_db >= entry.min_sinr_db:
            best = entry.cqi
        else:
            break
    return best


def entry_for_cqi(cqi: int) -> CqiEntry:
    """Return the table row for ``cqi``.

    Raises:
        ValueError: if ``cqi`` is not in 1..15 (CQI 0 has no MCS: the link is
            out of range and nothing can be scheduled).
    """
    if not 1 <= cqi <= 15:
        raise ValueError(f"CQI must be in 1..15, got {cqi!r}")
    return LTE_CQI_TABLE[cqi - 1]


def efficiency_from_cqi(cqi: int) -> float:
    """Spectral efficiency (bit per resource element) for a CQI; 0 for CQI 0."""
    if cqi == CQI_OUT_OF_RANGE:
        return 0.0
    return entry_for_cqi(cqi).efficiency


def efficiency_from_sinr(sinr_db: float) -> float:
    """Convenience: quantised LTE spectral efficiency for an SINR."""
    return efficiency_from_cqi(cqi_from_sinr(sinr_db))


def code_rate_from_sinr(sinr_db: float) -> float:
    """The channel code rate LTE link adaptation picks at ``sinr_db``.

    Returns 0.0 when out of range (nothing transmitted).
    """
    cqi = cqi_from_sinr(sinr_db)
    if cqi == CQI_OUT_OF_RANGE:
        return 0.0
    return entry_for_cqi(cqi).code_rate


def shannon_efficiency(
    sinr_db: float, gap_db: float = 3.0, max_efficiency: float = 5.55
) -> float:
    """Shannon efficiency with implementation gap, capped at the top MCS.

    The cap defaults to the CQI-15 efficiency (5.55 bit/RE) so analytic
    cross-checks line up with the quantised table.
    """
    sinr_linear = db_to_linear(sinr_db) / db_to_linear(gap_db)
    return min(max_efficiency, math.log2(1.0 + sinr_linear))
