"""Radio substrate shared by the LTE, Wi-Fi and CellFi simulators.

Contents
--------
* :mod:`repro.phy.propagation` -- path-loss models (free space, log-distance,
  urban Hata calibrated to the paper's band-13 drive test) and log-normal
  shadowing.
* :mod:`repro.phy.antenna` -- omni and 120-degree sector antennas.
* :mod:`repro.phy.link` -- link budget and SINR computation.
* :mod:`repro.phy.mcs` -- CQI/MCS tables mapping SINR to coding rate and
  spectral efficiency for both LTE and 802.11.
* :mod:`repro.phy.resource_grid` -- OFDMA resource blocks, subchannels and
  TDD frame structure.
* :mod:`repro.phy.harq` -- hybrid-ARQ soft-combining model.
* :mod:`repro.phy.prach` -- Zadoff-Chu PRACH preambles and the paper's
  low-complexity cyclic-shift detector (Section 6.3.3).
"""

from repro.phy.antenna import Antenna, OmniAntenna, SectorAntenna
from repro.phy.link import LinkBudget, Radio, sinr_db
from repro.phy.mcs import (
    LTE_CQI_TABLE,
    CqiEntry,
    cqi_from_sinr,
    efficiency_from_cqi,
    shannon_efficiency,
)
from repro.phy.propagation import (
    CompositeChannel,
    FreeSpacePathLoss,
    LogDistancePathLoss,
    LogNormalShadowing,
    PathLossModel,
    UrbanHataPathLoss,
)
from repro.phy.resource_grid import ResourceGrid, TddConfig

__all__ = [
    "Antenna",
    "CompositeChannel",
    "CqiEntry",
    "FreeSpacePathLoss",
    "LTE_CQI_TABLE",
    "LinkBudget",
    "LogDistancePathLoss",
    "LogNormalShadowing",
    "OmniAntenna",
    "PathLossModel",
    "Radio",
    "ResourceGrid",
    "SectorAntenna",
    "TddConfig",
    "UrbanHataPathLoss",
    "cqi_from_sinr",
    "efficiency_from_cqi",
    "shannon_efficiency",
    "sinr_db",
]
