"""Hybrid-ARQ model: block error rates and chase-combining retransmissions.

The paper highlights HARQ as one of the three LTE PHY features that enable
long range (Table 1, Section 3.1): "25% of packets sent from distances
larger than 500 m use hybrid ARQ".  This module provides

* a block-error-rate curve per CQI, anchored so each CQI meets its 10% BLER
  target exactly at its switching threshold;
* :class:`HarqProcess`, a per-transport-block retransmission simulator with
  chase combining (retransmissions add SINR in the linear domain);
* closed-form helpers for effective goodput used by the system simulators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.obs import runtime as _obs_runtime
from repro.phy.mcs import CQI_OUT_OF_RANGE, entry_for_cqi
from repro.utils.dbmath import db_to_linear, linear_to_db

#: LTE allows up to 3 HARQ retransmissions (4 transmissions total).
MAX_TRANSMISSIONS = 4

#: Target BLER at the CQI switching threshold (link adaptation operating point).
TARGET_BLER = 0.1

#: Logistic slope of the BLER waterfall, per dB.  Turbo-coded LTE blocks have
#: steep waterfalls; ~1.5 dB from 90% to 10% BLER.
_BLER_SLOPE_PER_DB = 1.6


def block_error_rate(sinr_db: float, cqi: int) -> float:
    """BLER of one transmission at ``sinr_db`` using the MCS of ``cqi``.

    Anchored to ``TARGET_BLER`` at the CQI's switching threshold, with a
    logistic waterfall.  CQI 0 means nothing can be transmitted: BLER 1.
    """
    if cqi == CQI_OUT_OF_RANGE:
        return 1.0
    threshold = entry_for_cqi(cqi).min_sinr_db
    # Offset such that bler(threshold) == TARGET_BLER.
    offset = math.log(1.0 / TARGET_BLER - 1.0) / _BLER_SLOPE_PER_DB
    x = _BLER_SLOPE_PER_DB * (sinr_db - threshold - (-offset))
    # Guard the exponent to avoid overflow on extreme SINRs.
    if x > 40.0:
        return 0.0
    if x < -40.0:
        return 1.0
    return 1.0 / (1.0 + math.exp(x))


@dataclass
class HarqResult:
    """Outcome of delivering one transport block.

    Attributes:
        delivered: whether the block was decoded within the HARQ budget.
        transmissions: number of over-the-air attempts used (1..4).
    """

    delivered: bool
    transmissions: int

    @property
    def used_retransmission(self) -> bool:
        """True when HARQ actually kicked in (more than one attempt)."""
        return self.transmissions > 1


@dataclass
class HarqProcess:
    """Simulates HARQ delivery of transport blocks with chase combining.

    Each retransmission repeats the block; the receiver combines soft
    energy, so the effective SINR after ``k`` transmissions is ``k`` times
    the per-transmission SINR (linear domain) -- the standard chase model.

    Attributes:
        rng: random stream for per-attempt error draws.
        blocks_sent: total transport blocks attempted.
        blocks_delivered: blocks decoded within the HARQ budget.
        retransmissions: total extra attempts beyond first transmissions.
    """

    rng: np.random.Generator
    blocks_sent: int = 0
    blocks_delivered: int = 0
    retransmissions: int = 0
    _attempts_histogram: list = field(default_factory=lambda: [0] * MAX_TRANSMISSIONS)

    def deliver_block(self, sinr_db: float, cqi: int) -> HarqResult:
        """Attempt delivery of one block; draws errors from ``rng``."""
        self.blocks_sent += 1
        tel = _obs_runtime.active()
        if tel is not None:
            tel.inc("harq.blocks")
        sinr_linear = db_to_linear(sinr_db)
        for attempt in range(1, MAX_TRANSMISSIONS + 1):
            combined_db = linear_to_db(sinr_linear * attempt)
            if self.rng.random() >= block_error_rate(combined_db, cqi):
                self.blocks_delivered += 1
                self.retransmissions += attempt - 1
                self._attempts_histogram[attempt - 1] += 1
                if tel is not None:
                    tel.inc("harq.retransmissions", attempt - 1)
                    tel.observe(
                        "harq.attempts", attempt, edges=(1.0, 2.0, 3.0, 4.0)
                    )
                return HarqResult(delivered=True, transmissions=attempt)
        self.retransmissions += MAX_TRANSMISSIONS - 1
        self._attempts_histogram[MAX_TRANSMISSIONS - 1] += 1
        if tel is not None:
            tel.inc("harq.retransmissions", MAX_TRANSMISSIONS - 1)
            tel.inc("harq.delivery_failures")
            tel.observe(
                "harq.attempts", MAX_TRANSMISSIONS, edges=(1.0, 2.0, 3.0, 4.0)
            )
        return HarqResult(delivered=False, transmissions=MAX_TRANSMISSIONS)

    @property
    def retransmission_fraction(self) -> float:
        """Fraction of blocks that needed at least one retransmission."""
        if self.blocks_sent == 0:
            return 0.0
        return 1.0 - self._attempts_histogram[0] / self.blocks_sent


def expected_attempts(sinr_db: float, cqi: int) -> float:
    """Expected number of transmissions per block under chase combining."""
    if cqi == CQI_OUT_OF_RANGE:
        return float(MAX_TRANSMISSIONS)
    sinr_linear = db_to_linear(sinr_db)
    expected = 0.0
    p_all_failed = 1.0
    for attempt in range(1, MAX_TRANSMISSIONS + 1):
        combined_db = linear_to_db(sinr_linear * attempt)
        p_fail = block_error_rate(combined_db, cqi)
        p_success_now = p_all_failed * (1.0 - p_fail)
        expected += attempt * p_success_now
        p_all_failed *= p_fail
    expected += MAX_TRANSMISSIONS * p_all_failed
    return expected


def delivery_probability(sinr_db: float, cqi: int) -> float:
    """Probability a block is decoded within the HARQ budget."""
    if cqi == CQI_OUT_OF_RANGE:
        return 0.0
    sinr_linear = db_to_linear(sinr_db)
    p_all_failed = 1.0
    for attempt in range(1, MAX_TRANSMISSIONS + 1):
        combined_db = linear_to_db(sinr_linear * attempt)
        p_all_failed *= block_error_rate(combined_db, cqi)
    return 1.0 - p_all_failed


def harq_goodput_scale(sinr_db: float, cqi: int) -> float:
    """Goodput multiplier capturing HARQ cost and benefit.

    Effective goodput = nominal rate x delivered fraction / mean attempts.
    This is what the system-level LTE simulator multiplies into per-CQI
    rates instead of simulating every block.
    """
    if cqi == CQI_OUT_OF_RANGE:
        return 0.0
    delivered = delivery_probability(sinr_db, cqi)
    attempts = expected_attempts(sinr_db, cqi)
    tel = _obs_runtime.active()
    if tel is not None:
        tel.inc("harq.evaluations")
        tel.observe(
            "harq.expected_attempts",
            attempts,
            edges=(1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0),
        )
    return delivered / attempts


def first_attempt_failure_rate(sinr_db: float, cqi: Optional[int] = None) -> float:
    """Probability the *first* transmission fails (HARQ gets used).

    If ``cqi`` is omitted, uses the CQI link adaptation would pick, which is
    how the Figure 1 drive-test experiment measures "fraction of packets
    using hybrid ARQ".
    """
    from repro.phy.mcs import cqi_from_sinr

    chosen = cqi_from_sinr(sinr_db) if cqi is None else cqi
    return block_error_rate(sinr_db, chosen)
