"""Link budget and SINR computation.

A :class:`Radio` couples a positioned node with its transmit power and
antenna.  :class:`LinkBudget` evaluates received power, SNR and SINR over a
:class:`repro.phy.propagation.CompositeChannel`.  These are the primitives
every simulator in the repo builds rates from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.phy.antenna import Antenna, OmniAntenna
from repro.phy.propagation import CompositeChannel
from repro.utils.dbmath import (
    db_to_linear,
    dbm_to_watt,
    linear_to_db,
)
from repro.utils.dbmath import thermal_noise_dbm


@dataclass
class Radio:
    """A transceiver: a positioned node plus RF parameters.

    Attributes:
        node: any object with ``x`` and ``y`` attributes (metres).
        tx_power_dbm: conducted transmit power.
        antenna: azimuth gain pattern (default isotropic 0 dBi).
        noise_figure_db: receiver noise figure (UE ~9 dB, eNB ~5 dB).
    """

    node: object
    tx_power_dbm: float
    antenna: Antenna = field(default_factory=OmniAntenna)
    noise_figure_db: float = 7.0

    @property
    def x(self) -> float:
        """Convenience passthrough to the node position."""
        return self.node.x

    @property
    def y(self) -> float:
        """Convenience passthrough to the node position."""
        return self.node.y

    def eirp_dbm_towards(self, other: "Radio") -> float:
        """Effective isotropic radiated power toward ``other``."""
        return self.tx_power_dbm + self.antenna.gain_towards(
            self.x, self.y, other.x, other.y
        )


class LinkBudget:
    """Evaluates received power and SINR over a propagation channel.

    Args:
        channel: path loss + shadowing model.
        bandwidth_hz: bandwidth over which noise is integrated.  Per-subchannel
            SINRs pass the subchannel bandwidth instead via method arguments.
    """

    def __init__(self, channel: CompositeChannel, bandwidth_hz: float) -> None:
        if bandwidth_hz <= 0.0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth_hz!r}")
        self.channel = channel
        self.bandwidth_hz = bandwidth_hz

    def rx_power_dbm(self, tx: Radio, rx: Radio) -> float:
        """Received power at ``rx`` from ``tx``, both antenna gains applied."""
        loss_db = self.channel.loss_db(tx, rx)
        tx_gain = tx.antenna.gain_towards(tx.x, tx.y, rx.x, rx.y)
        rx_gain = rx.antenna.gain_towards(rx.x, rx.y, tx.x, tx.y)
        return tx.tx_power_dbm + tx_gain + rx_gain - loss_db

    def noise_dbm(self, rx: Radio, bandwidth_hz: float | None = None) -> float:
        """Noise floor at ``rx`` over ``bandwidth_hz`` (defaults to link bw)."""
        bw = self.bandwidth_hz if bandwidth_hz is None else bandwidth_hz
        return thermal_noise_dbm(bw, rx.noise_figure_db)

    def snr_db(self, tx: Radio, rx: Radio, bandwidth_hz: float | None = None) -> float:
        """Signal-to-noise ratio in dB, no interference."""
        return self.rx_power_dbm(tx, rx) - self.noise_dbm(rx, bandwidth_hz)

    def sinr_db(
        self,
        tx: Radio,
        rx: Radio,
        interferers: Sequence[Radio] = (),
        bandwidth_hz: float | None = None,
        interferer_activity: Sequence[float] | None = None,
    ) -> float:
        """Signal-to-interference-plus-noise ratio in dB.

        Args:
            tx: serving transmitter.
            rx: receiver.
            interferers: co-channel transmitters (excluding ``tx``).
            bandwidth_hz: noise/interference bandwidth (defaults to link bw).
            interferer_activity: optional per-interferer duty-cycle weights in
                [0, 1]; lets callers model partially loaded interferers.

        Raises:
            ValueError: if activity weights are provided but mismatched.
        """
        signal_w = dbm_to_watt(self.rx_power_dbm(tx, rx))
        noise_w = dbm_to_watt(self.noise_dbm(rx, bandwidth_hz))
        if interferer_activity is not None and len(interferer_activity) != len(
            interferers
        ):
            raise ValueError(
                f"{len(interferer_activity)} activity weights for "
                f"{len(interferers)} interferers"
            )
        interference_w = 0.0
        for idx, source in enumerate(interferers):
            weight = 1.0 if interferer_activity is None else interferer_activity[idx]
            if weight < 0.0 or weight > 1.0:
                raise ValueError(f"activity weight out of [0,1]: {weight!r}")
            if weight == 0.0:
                continue
            interference_w += weight * dbm_to_watt(self.rx_power_dbm(source, rx))
        return linear_to_db(signal_w / (noise_w + interference_w))


def sinr_db(
    signal_dbm: float, interference_dbm_list: Iterable[float], noise_dbm: float
) -> float:
    """SINR from already-computed powers (all in dBm).

    A convenience for callers that cache received powers instead of Radio
    objects (the system-level simulators do this for speed).
    """
    noise_w = dbm_to_watt(noise_dbm)
    interference_w = sum(dbm_to_watt(p) for p in interference_dbm_list)
    signal_w = dbm_to_watt(signal_dbm)
    return linear_to_db(signal_w / (noise_w + interference_w))


def capped_spectral_efficiency(
    sinr_value_db: float, gap_db: float = 3.0, max_efficiency: float = 6.0
) -> float:
    """Shannon capacity with an implementation gap, capped at a top MCS.

    ``eff = min(max_efficiency, log2(1 + SINR / gap))`` in bit/s/Hz.  Used by
    the Wi-Fi ideal rate adaptation and as a cross-check for the LTE tables.
    """
    import math

    sinr_linear = db_to_linear(sinr_value_db) / db_to_linear(gap_db)
    return min(max_efficiency, math.log2(1.0 + sinr_linear))
