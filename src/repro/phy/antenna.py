"""Antenna gain patterns.

The paper's access points use an "Amphenol directional antenna with 7 dBi
gain and about 120 degree sector width"; clients are omnidirectional.
:class:`SectorAntenna` implements the standard 3GPP parabolic sector pattern,
which produces the strong front/back asymmetry behind the paper's Figure 7
interference walk (SINR from -15 dB to +30 dB depending on bearing).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from repro.phy import vecmath


class Antenna(ABC):
    """Interface: gain toward a bearing, in dBi.

    ``gains_towards`` (the batched form used by the gain-fill kernels)
    must be *bit-identical* per element to looping :meth:`gain_towards`:
    the gain cache subtracts it from losses that feed golden-digest
    regression nets, so an ulp of drift in a batch path would silently
    fork the physics between fill modes.  The base implementation loops
    and is therefore identical by construction; overrides are pinned by
    ``tests/test_phy_gain_batch.py``.
    """

    @abstractmethod
    def gain_dbi(self, bearing_deg: float) -> float:
        """Gain in dBi toward absolute bearing ``bearing_deg`` (degrees)."""

    def gain_towards(self, from_x: float, from_y: float, to_x: float, to_y: float) -> float:
        """Gain toward the point ``(to_x, to_y)`` seen from ``(from_x, from_y)``."""
        bearing = math.degrees(math.atan2(to_y - from_y, to_x - from_x))
        return self.gain_dbi(bearing)

    def gains_towards(
        self, from_x: float, from_y: float, to_xs, to_ys
    ) -> np.ndarray:
        """Gains toward many points at once, in dBi (bit-identical).

        The base implementation simply loops :meth:`gain_towards`;
        subclasses with closed-form patterns override it with array
        computation for gain-matrix construction, under the same
        bit-identity contract.
        """
        return np.array(
            [self.gain_towards(from_x, from_y, x, y) for x, y in zip(to_xs, to_ys)]
        )


class OmniAntenna(Antenna):
    """Isotropic-in-azimuth antenna with a fixed gain."""

    def __init__(self, gain_dbi: float = 0.0) -> None:
        self._gain_dbi = gain_dbi

    def gain_dbi(self, bearing_deg: float) -> float:
        return self._gain_dbi

    def gains_towards(
        self, from_x: float, from_y: float, to_xs, to_ys
    ) -> np.ndarray:
        # Bearing-independent: the constant *is* the scalar result.
        return np.full(len(to_xs), self._gain_dbi)


class SectorAntenna(Antenna):
    """3GPP TR 36.814 parabolic azimuth pattern.

    ``G(theta) = peak - min(12 * (theta / theta_3dB)^2, front_back_db)``

    Args:
        peak_gain_dbi: boresight gain (paper: 7 dBi).
        boresight_deg: pointing direction in absolute degrees.
        beamwidth_deg: 3 dB beamwidth (paper sector: ~120 degrees).
        front_back_db: maximum attenuation off the back (3GPP default 20 dB).
    """

    def __init__(
        self,
        peak_gain_dbi: float = 7.0,
        boresight_deg: float = 0.0,
        beamwidth_deg: float = 120.0,
        front_back_db: float = 20.0,
    ) -> None:
        if beamwidth_deg <= 0.0:
            raise ValueError(f"beamwidth must be > 0, got {beamwidth_deg!r}")
        if front_back_db < 0.0:
            raise ValueError(f"front/back ratio must be >= 0, got {front_back_db!r}")
        self.peak_gain_dbi = peak_gain_dbi
        self.boresight_deg = boresight_deg
        self.beamwidth_deg = beamwidth_deg
        self.front_back_db = front_back_db

    def gain_dbi(self, bearing_deg: float) -> float:
        offset = _wrap_angle_deg(bearing_deg - self.boresight_deg)
        attenuation = min(
            12.0 * (offset / self.beamwidth_deg) ** 2, self.front_back_db
        )
        return self.peak_gain_dbi - attenuation

    def gains_towards(
        self, from_x: float, from_y: float, to_xs, to_ys
    ) -> np.ndarray:
        bearings = vecmath.vec_bearing_deg(
            np.asarray(to_ys, dtype=np.float64) - from_y,
            np.asarray(to_xs, dtype=np.float64) - from_x,
        )
        # _wrap_angle_deg, vectorized: fmod is an exact IEEE remainder and
        # the +-360 adjustments are exact adds, so this wrap is the scalar
        # wrap bit-for-bit.
        wrapped = np.fmod(bearings - self.boresight_deg, 360.0)
        wrapped = np.where(wrapped > 180.0, wrapped - 360.0, wrapped)
        wrapped = np.where(wrapped <= -180.0, wrapped + 360.0, wrapped)
        ratios = wrapped / self.beamwidth_deg
        # ``r ** 2`` stays a scalar loop: neither np.power(x, 2.0) nor
        # x*x reproduces CPython's libm pow in the last ulp.
        fb = self.front_back_db
        attenuation = np.fromiter(
            (min(12.0 * r**2, fb) for r in ratios.tolist()),
            np.float64,
            count=ratios.size,
        )
        return self.peak_gain_dbi - attenuation


def _wrap_angle_deg(angle: float) -> float:
    """Wrap an angle to (-180, 180]."""
    wrapped = math.fmod(angle, 360.0)
    if wrapped > 180.0:
        wrapped -= 360.0
    elif wrapped <= -180.0:
        wrapped += 360.0
    return wrapped
