"""Figure 9: the large-scale comparison of CellFi, plain LTE, Wi-Fi, Oracle.

Three experiments on shared random deployments in a 2 km x 2 km area:

* 9(a) coverage (fraction of connected users) versus AP density;
* 9(b) per-client throughput CDFs at the densest setting, including the
  centralized oracle upper bound;
* 9(c) page-load-time CDFs under the dynamic web workload.

"Connected" follows the simulator's starvation threshold (a client whose
unmet demand leaves it below ~50 kb/s is starved).  Every scenario is
repeated over multiple seeds, as in the paper ("every scenario is repeated
20 times on a new topology") -- the repetition count scales down for CI via
``REPRO_FULL``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.oracle import OracleAllocator
from repro.baselines.plain_lte import PlainLtePolicy
from repro.core.interference.manager import CellFiInterferenceManager
from repro.experiments.common import Scenario, build_scenario
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.obs import runtime as _obs_runtime
from repro.lte.network import (
    BACKEND_INCREMENTAL,
    BACKEND_VECTORIZED,
    LteNetworkSimulator,
)
from repro.sim.shard import ChaosPolicy, ShardedNetwork, SupervisionConfig
from repro.sim.topology import grid_partition
from repro.sim.checkpoint import (
    CheckpointRegistry,
    Snapshot,
    from_jsonable,
    latest_checkpoint,
    to_jsonable,
)
from repro.traffic.backlogged import saturated_demand_fn
from repro.traffic.flows import Flow, FlowTracker
from repro.traffic.web import WebPage, WebWorkloadConfig, generate_web_sessions
from repro.wifi.network import (
    STANDARD_80211AF,
    WifiNetworkSimulator,
)

#: Epochs to settle before measuring (CellFi converges in a few epochs).
WARMUP_EPOCHS = 5

TECH_CELLFI = "CellFi"
TECH_LTE = "LTE"
TECH_WIFI = "802.11af"
TECH_ORACLE = "Oracle"


def _supervision_config(
    shard_retry_budget: Optional[int],
    shard_checkpoint_every: Optional[int],
) -> Optional[SupervisionConfig]:
    """Overrides -> a SupervisionConfig, or None to take the defaults."""
    if shard_retry_budget is None and shard_checkpoint_every is None:
        return None
    kwargs: Dict[str, int] = {}
    if shard_retry_budget is not None:
        kwargs["retry_budget"] = int(shard_retry_budget)
    if shard_checkpoint_every is not None:
        kwargs["checkpoint_every"] = int(shard_checkpoint_every)
    return SupervisionConfig(**kwargs)


def _make_lte_net(
    scenario: Scenario,
    stream_label: str,
    backend: str = BACKEND_VECTORIZED,
    shards: int = 1,
    shard_mode: str = "auto",
    shard_supervise: bool = False,
    shard_retry_budget: Optional[int] = None,
    shard_checkpoint_every: Optional[int] = None,
    chaos: Optional[str] = None,
):
    if shards <= 1:
        return LteNetworkSimulator(
            topology=scenario.topology,
            grid=scenario.grid(),
            channel=scenario.channel,
            rngs=scenario.rngs.fork(stream_label),
            backend=backend,
        )
    # Sharded city-scale path: every worker rebuilds the same seeded
    # scenario (fork() is a pure seed derivation, so the parent's RNG
    # mirror and each worker's streams are identical objects-by-value) and
    # owns one rectangular tile of APs.  Only default-geometry scenarios
    # shard faithfully, matching the snapshot-restore contract below.
    seed = scenario.seed
    n_aps = scenario.n_aps
    clients_per_ap = scenario.clients_per_ap

    def factory(ap_ids):
        worker_scenario = build_scenario(seed, n_aps, clients_per_ap)
        return LteNetworkSimulator(
            topology=worker_scenario.topology,
            grid=worker_scenario.grid(),
            channel=worker_scenario.channel,
            rngs=worker_scenario.rngs.fork(stream_label),
            backend=BACKEND_INCREMENTAL,
            shard_ap_ids=ap_ids,
        )

    return ShardedNetwork(
        scenario.topology,
        grid_partition(scenario.topology, shards),
        factory,
        scenario.rngs.fork(stream_label),
        scenario.grid(),
        mode=shard_mode,
        supervise=shard_supervise,
        supervision=_supervision_config(
            shard_retry_budget, shard_checkpoint_every
        ),
        chaos=ChaosPolicy.parse(chaos) if chaos else None,
    )


def _make_policy(tech: str, scenario: Scenario, net: LteNetworkSimulator):
    grid = net.grid
    if tech == TECH_CELLFI:
        return CellFiInterferenceManager(
            scenario.ap_ids, grid.n_subchannels, scenario.rngs.fork("manager")
        )
    if tech == TECH_LTE:
        return PlainLtePolicy(scenario.ap_ids, grid.n_subchannels)
    if tech == TECH_ORACLE:
        return OracleAllocator(net, grid.n_subchannels)
    raise ValueError(f"unknown LTE-family technology {tech!r}")


# -- Saturated experiments (Figures 9(a) and 9(b)) ---------------------------


@dataclass
class SaturatedRun:
    """Per-client saturated-throughput outcome for one technology/topology.

    Attributes:
        throughput_bps: mean per-client throughput over measured epochs.
        connected_fraction: mean fraction of connected clients.
    """

    tech: str
    throughput_bps: List[float]
    connected_fraction: float


class SaturatedLteRun:
    """Resumable epoch-boundary runner for one LTE-family saturated cell.

    Checkpoint granularity is the epoch: a snapshot after epoch ``k``
    captures everything the loop carries across the boundary -- the
    network's cross-epoch state, every RNG stream, the policy (for CellFi:
    stats and per-AP hoppers), the inter-epoch observations and the metric
    accumulators.  Restore follows the build-then-load protocol of
    :mod:`repro.sim.checkpoint`: the constructor rebuilds the object graph
    from ``config`` exactly as a fresh run would, then
    :meth:`CheckpointRegistry.restore` overwrites the mutable state.

    A custom prebuilt ``scenario`` may be injected for tests, but snapshot
    reconstruction always rebuilds via :func:`build_scenario` with default
    geometry, so only default-geometry scenarios restore faithfully.
    """

    def __init__(
        self,
        tech: str,
        seed: int,
        n_aps: int,
        clients_per_ap: int = 6,
        epochs: int = 15,
        backend: str = BACKEND_VECTORIZED,
        scenario: Optional[Scenario] = None,
        shards: int = 1,
        shard_mode: str = "auto",
        shard_supervise: bool = False,
        shard_retry_budget: Optional[int] = None,
        shard_checkpoint_every: Optional[int] = None,
        chaos: Optional[str] = None,
    ) -> None:
        if tech == TECH_WIFI:
            raise ValueError(
                "the Wi-Fi comparison is event-driven; only LTE-family "
                "technologies support epoch checkpointing"
            )
        if shards > 1 and tech == TECH_ORACLE:
            raise ValueError(
                "the Oracle allocator queries live radio state at "
                "construction; run it unsharded"
            )
        supervised = bool(
            shard_supervise
            or shard_retry_budget is not None
            or shard_checkpoint_every is not None
            or chaos
        )
        if supervised and shards <= 1:
            raise ValueError(
                "shard supervision / chaos injection needs the shard "
                "engine; pass shards > 1"
            )
        self.tech = tech
        self.epochs = epochs
        self.config: Dict[str, Any] = {
            "tech": tech,
            "seed": seed,
            "n_aps": n_aps,
            "clients_per_ap": clients_per_ap,
            "epochs": epochs,
            "backend": backend,
            "shards": shards,
            "shard_mode": shard_mode,
        }
        # Only non-default supervision knobs enter the config: sweep cache
        # keys and old snapshots hash the config dict, so defaults must
        # round-trip to the exact historical dict.
        if shard_supervise:
            self.config["shard_supervise"] = True
        if shard_retry_budget is not None:
            self.config["shard_retry_budget"] = int(shard_retry_budget)
        if shard_checkpoint_every is not None:
            self.config["shard_checkpoint_every"] = int(shard_checkpoint_every)
        if chaos:
            self.config["chaos"] = chaos
        self.scenario = (
            scenario
            if scenario is not None
            else build_scenario(seed, n_aps, clients_per_ap)
        )
        self.net = _make_lte_net(
            self.scenario,
            f"net-{tech}",
            backend=backend,
            shards=shards,
            shard_mode=shard_mode,
            shard_supervise=shard_supervise,
            shard_retry_budget=shard_retry_budget,
            shard_checkpoint_every=shard_checkpoint_every,
            chaos=chaos,
        )
        self.policy = _make_policy(tech, self.scenario, self.net)
        self._demand_fn = saturated_demand_fn(self.scenario.topology)
        self._epoch = 0
        self._observations = None
        self._throughput_epochs: List[Dict[int, float]] = []
        self._connected_epochs: List[Dict[int, bool]] = []

        self.registry = CheckpointRegistry()
        self.registry.register("rng", self.scenario.rngs)
        self.registry.register("net-rng", self.net.rngs)
        self.registry.register("net", self.net)
        if hasattr(self.policy, "state_dict"):
            # CellFi: hopper/stats state plus the manager's stream fork.
            # The baselines compute their allocation at construction time
            # and carry nothing across epochs.
            self.registry.register("policy", self.policy)
            self.registry.register("policy-rng", self.policy.rngs)
        self.registry.register("driver", self)

    # -- Epoch loop -------------------------------------------------------------

    def step_epoch(self):
        """Run exactly one epoch; returns its :class:`EpochResult`."""
        if self._epoch >= self.epochs:
            raise RuntimeError(f"run already finished its {self.epochs} epochs")
        allowed = self.policy.decide(self._epoch, self._observations)
        tel = _obs_runtime.active()
        if tel is not None:
            # One driver-loop span per epoch on the parent (supervisor)
            # track, so the merged cross-shard timeline shows policy
            # decide/epoch boundaries next to the shard worker tracks.
            # Pin the clock to the epoch boundary first: a preceding
            # event-driven phase (Wi-Fi CSMA) may have left it ahead of
            # where run_epoch resets it, and spans must not run backward.
            tel.set_time(self._epoch * self.net.epoch_s)
            with tel.span(
                "exp.epoch", "experiment",
                args={"tech": self.tech, "epoch": self._epoch},
            ):
                result = self.net.run_epoch(
                    self._epoch, allowed, self._demand_fn(self._epoch)
                )
        else:
            result = self.net.run_epoch(
                self._epoch, allowed, self._demand_fn(self._epoch)
            )
        self._observations = result.observations
        self._throughput_epochs.append(dict(result.throughput_bps))
        self._connected_epochs.append(dict(result.connected))
        self._epoch += 1
        return result

    def run(
        self,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        halt_at: Optional[int] = None,
    ) -> Optional[SaturatedRun]:
        """Run to completion (or to epoch ``halt_at``), checkpointing.

        Returns the :class:`SaturatedRun`, or ``None`` when halted early.
        """
        stop = self.epochs if halt_at is None else min(int(halt_at), self.epochs)
        while self._epoch < stop:
            self.step_epoch()
            if (
                checkpoint_dir is not None
                and checkpoint_every
                and self._epoch % int(checkpoint_every) == 0
            ):
                self.save_checkpoint(checkpoint_dir)
        if stop < self.epochs:
            if checkpoint_dir is not None:
                self.save_checkpoint(checkpoint_dir)
            return None
        return self.result()

    def result(self) -> SaturatedRun:
        """Aggregate the per-epoch accumulators (post-warmup epochs only)."""
        measured_from = min(WARMUP_EPOCHS, self.epochs - 1)
        clients = [c.client_id for c in self.scenario.topology.clients]
        measured_t = self._throughput_epochs[measured_from:]
        measured_c = self._connected_epochs[measured_from:]
        throughput = [
            float(np.mean([t[cid] for t in measured_t])) for cid in clients
        ]
        connected = float(
            np.mean([np.mean([c[cid] for cid in clients]) for c in measured_c])
        )
        return SaturatedRun(
            tech=self.tech,
            throughput_bps=throughput,
            connected_fraction=connected,
        )

    # -- Checkpointing ----------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """The loop-carried state: position, observations, accumulators."""
        return {
            "epoch": self._epoch,
            "observations": self._observations,
            "throughput_epochs": self._throughput_epochs,
            "connected_epochs": self._connected_epochs,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self._epoch = state["epoch"]
        self._observations = state["observations"]
        self._throughput_epochs = list(state["throughput_epochs"])
        self._connected_epochs = list(state["connected_epochs"])

    def save_checkpoint(self, directory: str) -> str:
        """Write a snapshot named by the epoch just finished."""
        os.makedirs(directory, exist_ok=True)
        snapshot = self.registry.snapshot(
            meta={
                "driver": SCENARIO_SATURATED,
                "config": to_jsonable(self.config),
            }
        )
        path = os.path.join(directory, f"ckpt_epoch_{self._epoch:06d}.json")
        snapshot.save(path)
        return path

    def run_digest(self) -> str:
        """Canonical digest over all registered state (for replay checks)."""
        return self.registry.run_digest()

    def supervision_stats(self) -> Optional[Dict[str, int]]:
        """Failure/recovery counters, or None when unsupervised."""
        supervisor = getattr(self.net, "supervisor", None)
        if supervisor is None:
            return None
        return dict(supervisor.stats)

    def close(self) -> None:
        """Release shard worker processes, if the network holds any."""
        close = getattr(self.net, "close", None)
        if close is not None:
            close()

    @classmethod
    def from_snapshot(cls, snapshot: Snapshot) -> "SaturatedLteRun":
        """Build-then-load: reconstruct from the embedded config, restore."""
        config = from_jsonable(snapshot.meta["config"])
        run = cls(**config)
        run.registry.restore(snapshot)
        return run

    @classmethod
    def restore(cls, path: str) -> "SaturatedLteRun":
        """Load a snapshot file and restore a run from it."""
        return cls.from_snapshot(Snapshot.load(path))


def run_lte_family_saturated(
    tech: str,
    scenario: Scenario,
    epochs: int = 15,
    backend: str = BACKEND_VECTORIZED,
) -> SaturatedRun:
    """Run CellFi / plain LTE / Oracle with backlogged traffic."""
    run = SaturatedLteRun(
        tech,
        scenario.seed,
        scenario.n_aps,
        scenario.clients_per_ap,
        epochs=epochs,
        backend=backend,
        scenario=scenario,
    )
    return run.run()


def run_wifi_saturated(
    scenario: Scenario, duration_s: float = 6.0, standard=STANDARD_80211AF
) -> SaturatedRun:
    """Run 802.11af with backlogged traffic on the same topology."""
    net = WifiNetworkSimulator(
        topology=scenario.topology,
        channel=scenario.channel,
        standard=standard,
        rngs=scenario.rngs.fork(f"wifi-{standard.name}"),
    )
    result = net.run_saturated(duration_s)
    clients = [c.client_id for c in scenario.topology.clients]
    throughput = [result.throughput_bps[cid] for cid in clients]
    from repro.lte.network import STARVATION_THRESHOLD_BPS

    connected = float(
        np.mean([t >= STARVATION_THRESHOLD_BPS for t in throughput])
    )
    return SaturatedRun(
        tech=standard.name, throughput_bps=throughput, connected_fraction=connected
    )


# -- Sweep-spec plumbing ------------------------------------------------------
#
# Figures 9(a) and 9(b) are grids of independent (seed, density, tech)
# cells over the *same* cell evaluator, so both are expressed as sweep
# specs and executed by :func:`repro.experiments.sweep.run_sweep` --
# serially in-process by default, or fanned out over worker processes
# via the ``jobs`` argument / ``python -m repro.cli sweep``.

SCENARIO_SATURATED = "large_scale_saturated"


def _supervision_cell_params(
    shard_supervise: bool,
    shard_retry_budget: Optional[int],
    chaos: Optional[str],
) -> Dict[str, object]:
    """Non-default supervision knobs as sweep cell params (else empty)."""
    params: Dict[str, object] = {}
    if shard_supervise:
        params["shard_supervise"] = True
    if shard_retry_budget is not None:
        params["shard_retry_budget"] = int(shard_retry_budget)
    if chaos:
        # Validate eagerly: a typo should fail at spec build time, not in
        # a worker process half-way through the grid.
        ChaosPolicy.parse(chaos)
        params["chaos"] = chaos
    return params


def large_scale_saturated_cell(
    seed: int,
    n_aps: int,
    tech: str,
    clients_per_ap: int = 6,
    epochs: int = 15,
    wifi_duration_s: float = 6.0,
    shards: int = 1,
    shard_supervise: bool = False,
    shard_retry_budget: Optional[int] = None,
    chaos: Optional[str] = None,
    checkpoint: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """One Figure 9(a)/9(b) grid cell: a single (seed, density, tech) run.

    ``shards > 1`` runs LTE-family cells on the spatial shard engine
    (:mod:`repro.sim.shard`): worker processes own rectangular tiles of
    the map, and the merged result -- metrics and run digest alike -- is
    bitwise identical to the unsharded run.  Wi-Fi cells are event-driven
    and ignore the setting.

    All randomness derives from ``seed`` via the scenario's
    :class:`~repro.sim.rng.RngStreams`, so the metrics are identical no
    matter which worker process (or how many) evaluates the cell.

    ``checkpoint`` (injected by the sweep runner when checkpointing is on)
    is a dict with ``dir`` and optional ``every`` (epochs): LTE-family
    cells then snapshot mid-run and resume from the latest snapshot in
    ``dir`` when re-executed after a crash or timeout.  Wi-Fi cells are
    event-driven and ignore it.
    """
    ckpt_dir = checkpoint.get("dir") if checkpoint else None
    ckpt_every = checkpoint.get("every", 5) if checkpoint else None
    if tech == TECH_WIFI:
        scenario = build_scenario(seed, n_aps, clients_per_ap)
        run = run_wifi_saturated(scenario, duration_s=wifi_duration_s)
        digest = None
        supervision = None
    else:
        resume_from = latest_checkpoint(ckpt_dir) if ckpt_dir else None
        if resume_from is not None:
            sat = SaturatedLteRun.restore(resume_from)
        else:
            sat = SaturatedLteRun(
                tech, seed, n_aps, clients_per_ap, epochs=epochs,
                shards=shards,
                shard_supervise=shard_supervise,
                shard_retry_budget=shard_retry_budget,
                chaos=chaos,
            )
        run = sat.run(checkpoint_dir=ckpt_dir, checkpoint_every=ckpt_every)
        digest = sat.run_digest()
        supervision = sat.supervision_stats()
        sat.close()
    throughput = [float(t) for t in run.throughput_bps]
    metrics: Dict[str, object] = {
        "tech": run.tech,
        "connected_fraction": float(run.connected_fraction),
        "throughput_bps": throughput,
        "median_bps": float(np.median(throughput)),
    }
    if digest is not None:
        metrics["run_digest"] = digest
    if supervision is not None:
        metrics["shard_supervision"] = {
            key: int(value) for key, value in sorted(supervision.items())
        }
    return metrics


#: The sweep runner injects ``checkpoint={"dir": ..., "every": ...}`` into
#: cell functions that advertise support.
large_scale_saturated_cell.supports_checkpoint = True


def fig9a_sweep_spec(
    densities: Sequence[int] = (6, 10, 14),
    seeds: Sequence[int] = (1, 2),
    techs: Sequence[str] = (TECH_WIFI, TECH_LTE, TECH_CELLFI),
    clients_per_ap: int = 6,
    epochs: int = 12,
    wifi_duration_s: float = 5.0,
    shards: int = 1,
    shard_supervise: bool = False,
    shard_retry_budget: Optional[int] = None,
    chaos: Optional[str] = None,
) -> SweepSpec:
    """The Figure 9(a) grid: density x seed x technology."""
    base: Dict[str, object] = {
        "clients_per_ap": clients_per_ap,
        "epochs": epochs,
        "wifi_duration_s": wifi_duration_s,
        "shards": shards,
    }
    # Default supervision knobs stay out of the cell params so historical
    # sweep caches (keyed on the param dict) still hit.
    base.update(
        _supervision_cell_params(shard_supervise, shard_retry_budget, chaos)
    )
    return SweepSpec.from_grid(
        "fig9a",
        SCENARIO_SATURATED,
        grid={"n_aps": list(densities), "seed": list(seeds), "tech": list(techs)},
        base=base,
    )


def fig9b_sweep_spec(
    seeds: Sequence[int] = (1,),
    n_aps: int = 14,
    techs: Sequence[str] = (TECH_WIFI, TECH_LTE, TECH_CELLFI, TECH_ORACLE),
    clients_per_ap: int = 6,
    epochs: int = 15,
    wifi_duration_s: float = 6.0,
    shards: int = 1,
    shard_supervise: bool = False,
    shard_retry_budget: Optional[int] = None,
    chaos: Optional[str] = None,
) -> SweepSpec:
    """The Figure 9(b) grid: seed x technology at the densest setting."""
    base: Dict[str, object] = {
        "n_aps": n_aps,
        "clients_per_ap": clients_per_ap,
        "epochs": epochs,
        "wifi_duration_s": wifi_duration_s,
        "shards": shards,
    }
    base.update(
        _supervision_cell_params(shard_supervise, shard_retry_budget, chaos)
    )
    return SweepSpec.from_grid(
        "fig9b",
        SCENARIO_SATURATED,
        grid={"seed": list(seeds), "tech": list(techs)},
        base=base,
    )


def _metrics_by_cell(
    spec: SweepSpec, jobs: int, **sweep_kwargs
) -> Dict[tuple, Dict[str, object]]:
    """Run a spec and key each cell's metrics by (seed, n_aps, tech)."""
    result = run_sweep(spec, jobs=jobs, **sweep_kwargs)
    result.raise_on_failures()
    keyed: Dict[tuple, Dict[str, object]] = {}
    for record in result.records:
        params = record.params
        keyed[(params["seed"], params["n_aps"], params["tech"])] = record.metrics
    return keyed


@dataclass
class CoverageVsDensity:
    """Figure 9(a): connected-user fraction per technology and density."""

    densities: List[int]
    coverage: Dict[str, List[float]] = field(default_factory=dict)

    def series(self, tech: str) -> List[float]:
        """Coverage fractions for one technology, ordered by density."""
        return self.coverage[tech]


def run_coverage_vs_density(
    densities: Sequence[int],
    seeds: Sequence[int],
    clients_per_ap: int = 6,
    epochs: int = 12,
    wifi_duration_s: float = 5.0,
    include_wifi: bool = True,
    jobs: int = 0,
    shards: int = 1,
    shard_supervise: bool = False,
    shard_retry_budget: Optional[int] = None,
    chaos: Optional[str] = None,
    **sweep_kwargs,
) -> CoverageVsDensity:
    """Sweep AP density and measure coverage for each technology.

    The grid is expressed as a sweep spec; ``jobs``/``sweep_kwargs`` pass
    straight to :func:`repro.experiments.sweep.run_sweep` (``jobs=0``
    keeps the historical serial in-process behaviour).  ``shards`` runs
    the LTE-family cells on the spatial shard engine without changing any
    metric bit.
    """
    result = CoverageVsDensity(densities=list(densities))
    techs = [TECH_WIFI, TECH_LTE, TECH_CELLFI] if include_wifi else [TECH_LTE, TECH_CELLFI]
    spec = fig9a_sweep_spec(
        densities=densities,
        seeds=seeds,
        techs=techs,
        clients_per_ap=clients_per_ap,
        epochs=epochs,
        wifi_duration_s=wifi_duration_s,
        shards=shards,
        shard_supervise=shard_supervise,
        shard_retry_budget=shard_retry_budget,
        chaos=chaos,
    )
    cells = _metrics_by_cell(spec, jobs, **sweep_kwargs)
    result.coverage = {
        tech: [
            float(
                np.mean(
                    [
                        cells[(seed, density, tech)]["connected_fraction"]
                        for seed in seeds
                    ]
                )
            )
            for density in densities
        ]
        for tech in techs
    }
    return result


@dataclass
class ThroughputCdfs:
    """Figure 9(b): pooled per-client throughput samples per technology."""

    samples_bps: Dict[str, List[float]] = field(default_factory=dict)

    def starved_fraction(self, tech: str, threshold_bps: float = 50e3) -> float:
        """Fraction of clients below the starvation threshold."""
        samples = self.samples_bps[tech]
        return float(np.mean([s < threshold_bps for s in samples]))

    def median_bps(self, tech: str) -> float:
        """Median client throughput."""
        return float(np.median(self.samples_bps[tech]))


def run_throughput_cdfs(
    seeds: Sequence[int],
    n_aps: int = 14,
    clients_per_ap: int = 6,
    epochs: int = 15,
    wifi_duration_s: float = 6.0,
    include_oracle: bool = True,
    jobs: int = 0,
    shards: int = 1,
    shard_supervise: bool = False,
    shard_retry_budget: Optional[int] = None,
    chaos: Optional[str] = None,
    **sweep_kwargs,
) -> ThroughputCdfs:
    """The densest-scenario throughput comparison, pooled over seeds.

    Expressed as a sweep spec over (seed, tech); see
    :func:`run_coverage_vs_density` for the ``jobs`` semantics.  The
    Oracle baseline needs live radio-state queries, so ``shards > 1``
    drops it from the grid.
    """
    techs = [TECH_WIFI, TECH_LTE, TECH_CELLFI] + (
        [TECH_ORACLE] if include_oracle and shards <= 1 else []
    )
    spec = fig9b_sweep_spec(
        seeds=seeds,
        n_aps=n_aps,
        techs=techs,
        clients_per_ap=clients_per_ap,
        epochs=epochs,
        wifi_duration_s=wifi_duration_s,
        shards=shards,
        shard_supervise=shard_supervise,
        shard_retry_budget=shard_retry_budget,
        chaos=chaos,
    )
    cells = _metrics_by_cell(spec, jobs, **sweep_kwargs)
    pooled: Dict[str, List[float]] = {t: [] for t in techs}
    for seed in seeds:
        for tech in techs:
            pooled[tech].extend(cells[(seed, n_aps, tech)]["throughput_bps"])
    return ThroughputCdfs(samples_bps=pooled)


# -- Dynamic web workload (Figure 9(c)) ------------------------------------------


@dataclass
class PageLoadResult:
    """Figure 9(c): page-load-time samples per technology.

    Pages still unfinished when the simulation ends are *censored*: a
    technology that starves clients would otherwise look fast because only
    its easy pages complete.  Medians therefore treat each unfinished page
    as an infinite load time, exactly once per unfinished page.
    """

    load_times_s: Dict[str, List[float]] = field(default_factory=dict)
    unfinished: Dict[str, int] = field(default_factory=dict)

    def median_s(self, tech: str) -> float:
        """Censored median page load time."""
        samples = list(self.load_times_s[tech])
        samples += [float("inf")] * self.unfinished.get(tech, 0)
        if not samples:
            raise ValueError(f"no pages recorded for {tech!r}")
        return float(np.median(samples))

    def completed_median_s(self, tech: str) -> float:
        """Median over completed pages only (the optimistic view)."""
        return float(np.median(self.load_times_s[tech]))

    def completion_fraction(self, tech: str) -> float:
        """Fraction of offered pages that completed."""
        done = len(self.load_times_s[tech])
        total = done + self.unfinished.get(tech, 0)
        return done / total if total else 0.0


def _run_lte_family_web(
    tech: str,
    scenario: Scenario,
    pages: List[WebPage],
    duration_s: float,
    backend: str = BACKEND_VECTORIZED,
) -> tuple:
    """Epoch-driven web workload for an LTE-family technology."""
    net = _make_lte_net(scenario, f"web-{tech}", backend=backend)
    policy = _make_policy(tech, scenario, net)
    tracker = FlowTracker()
    pending = sorted(pages, key=lambda p: p.arrival_s)
    cursor = 0
    observations = None
    epochs = int(np.ceil(duration_s))
    for epoch in range(epochs):
        t0, t1 = float(epoch), float(epoch + 1)
        while cursor < len(pending) and pending[cursor].arrival_s < t1:
            page = pending[cursor]
            tracker.arrive(
                Flow(
                    client_id=page.client_id,
                    arrival_s=page.arrival_s,
                    size_bits=page.total_bytes * 8.0,
                )
            )
            cursor += 1
        demands = {
            c.client_id: tracker.queued_bits(c.client_id)
            for c in scenario.topology.clients
        }
        allowed = policy.decide(epoch, observations)
        result = net.run_epoch(epoch, allowed, demands)
        observations = result.observations
        for cid, bits in result.served_bits.items():
            if bits > 0.0:
                tracker.serve(cid, bits, t0, t1)
    return tracker.completion_times(), tracker.in_flight()


def _run_wifi_web(
    scenario: Scenario, pages: List[WebPage], duration_s: float
) -> tuple:
    """Event-driven web workload for 802.11af."""
    net = WifiNetworkSimulator(
        topology=scenario.topology,
        channel=scenario.channel,
        standard=STANDARD_80211AF,
        rngs=scenario.rngs.fork("wifi-web"),
    )
    tracker = FlowTracker()

    def on_delivery(client_id: int, bits: float) -> None:
        tracker.serve(client_id, bits, net.sim.now, net.sim.now)

    net.set_delivery_callback(on_delivery)
    arrivals = []
    for page in pages:
        tracker.arrive(
            Flow(
                client_id=page.client_id,
                arrival_s=page.arrival_s,
                size_bits=page.total_bytes * 8.0,
            )
        )
        arrivals.append((page.arrival_s, page.client_id, page.total_bytes * 8.0))
    net.run_dynamic(duration_s, arrivals)
    return tracker.completion_times(), tracker.in_flight()


def run_page_load_times(
    seeds: Sequence[int],
    n_aps: int = 10,
    clients_per_ap: int = 6,
    duration_s: float = 30.0,
    workload: WebWorkloadConfig = WebWorkloadConfig(),
    include_wifi: bool = True,
) -> PageLoadResult:
    """Figure 9(c): page-load-time comparison under web traffic."""
    techs = ([TECH_WIFI] if include_wifi else []) + [TECH_LTE, TECH_CELLFI]
    result = PageLoadResult(
        load_times_s={t: [] for t in techs}, unfinished={t: 0 for t in techs}
    )
    for seed in seeds:
        scenario = build_scenario(seed, n_aps, clients_per_ap)
        pages = generate_web_sessions(
            [c.client_id for c in scenario.topology.clients],
            duration_s,
            scenario.rngs.stream("web-arrivals"),
            config=workload,
        )
        for tech in techs:
            if tech == TECH_WIFI:
                times, unfinished = _run_wifi_web(scenario, pages, duration_s)
            else:
                times, unfinished = _run_lte_family_web(
                    tech, scenario, pages, duration_s
                )
            result.load_times_s[tech].extend(times)
            result.unfinished[tech] += unfinished
    return result
