"""Experiment reproductions, one module per paper table/figure.

=============================  ==========================================
Module                         Reproduces
=============================  ==========================================
:mod:`~repro.experiments.coverage`          Figure 1 (a)(b)(c): drive test
:mod:`~repro.experiments.wifi_macs`         Figure 2: af vs ac MAC gap
:mod:`~repro.experiments.db_timeline`       Figure 6: vacate/reacquire
:mod:`~repro.experiments.interference_exp`  Figure 7 (b)(c): two-cell walk
:mod:`~repro.experiments.cqi_detector`      Figure 8: CQI detector trace
:mod:`~repro.experiments.prach_eval`        Section 6.3.3: PRACH detector
:mod:`~repro.experiments.large_scale`       Figure 9 (a)(b)(c)
:mod:`~repro.experiments.convergence`       Theorem 1 + Section 5.3 re-use
:mod:`~repro.experiments.sweep`             Parallel fault-tolerant grid runner
=============================  ==========================================

Each module exposes ``run_*`` functions returning plain result dataclasses;
the benchmark harness formats them into the paper's tables/series.  Grid
experiments additionally expose ``*_sweep_spec`` builders that express
the figure's (seed x config x technology) grid for
:func:`repro.experiments.sweep.run_sweep` (see ``docs/SWEEPS.md``).
"""
