"""Figure 1: the single-cell outdoor drive test.

Reproduces the paper's Section 3.1 experiment: an LTE small cell on a
rooftop (36 dBm EIRP: 29 dBm conducted + 7 dBi sector antenna), a client
walked through the coverage area recording downlink TCP rate, the coding
rates used, the fraction of the channel occupied, and HARQ usage.

The headline observations to reproduce:

* 1 Mb/s TCP at >= 85% of locations, usable range ~1.3 km (Fig 1(a));
* a *median* coding rate around 1/2 -- the minimum 802.11af supports --
  with a long tail of much lower rates (Fig 1(b));
* the uplink (TCP ACKs) rides in a single resource block, so the fraction
  of channel used is tiny on the uplink and large on the downlink
  (Fig 1(c));
* ~25% of packets sent beyond 500 m use hybrid ARQ.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.phy.antenna import OmniAntenna, SectorAntenna
from repro.phy.harq import block_error_rate
from repro.phy.mcs import (
    CQI_OUT_OF_RANGE,
    cqi_from_sinr,
    efficiency_from_cqi,
    entry_for_cqi,
)
from repro.phy.propagation import (
    CompositeChannel,
    LogNormalShadowing,
    UrbanHataPathLoss,
)
from repro.phy.resource_grid import FDD_DOWNLINK, RB_BANDWIDTH_HZ, ResourceGrid
from repro.sim.rng import RngStreams
from repro.utils.dbmath import thermal_noise_dbm

#: Drive-test radio parameters (paper Section 3.1 / 6.1).
AP_TX_POWER_DBM = 29.0
AP_ANTENNA_GAIN_DBI = 7.0
UE_TX_POWER_DBM = 20.0
UE_NOISE_FIGURE_DB = 9.0
ENB_NOISE_FIGURE_DB = 5.0

#: Fast-fading deviation per CQI sample, representing multipath as the
#: client moves (Figure 8 shows throughput swinging with no interference).
FADING_SIGMA_DB = 2.5

#: TCP efficiency over the PHY goodput (header + ACK-clocking overhead).
TCP_EFFICIENCY = 0.92


@dataclass
class DrivePoint:
    """Measurements at one location of the walk.

    Attributes:
        distance_m: ground distance from the cell.
        tcp_mbps: downlink TCP goodput.
        dl_code_rates / ul_code_rates: coding rates used across samples.
        dl_channel_fraction / ul_channel_fraction: fraction of the carrier
            occupied by each direction's transmissions.
        harq_fraction: fraction of transport blocks needing retransmission.
    """

    distance_m: float
    tcp_mbps: float
    dl_code_rates: List[float]
    ul_code_rates: List[float]
    dl_channel_fraction: float
    ul_channel_fraction: float
    harq_fraction: float


@dataclass
class DriveTestResult:
    """The full Figure 1 dataset."""

    points: List[DrivePoint] = field(default_factory=list)

    def throughput_curve(self) -> List[Tuple[float, float]]:
        """(distance, TCP Mb/s) pairs -- Figure 1(a)."""
        return [(p.distance_m, p.tcp_mbps) for p in self.points]

    def coverage_fraction(self, min_mbps: float = 1.0) -> float:
        """Fraction of locations at or above ``min_mbps``."""
        if not self.points:
            raise ValueError("drive test has no points")
        return float(np.mean([p.tcp_mbps >= min_mbps for p in self.points]))

    def max_range_m(self, min_mbps: float = 1.0) -> float:
        """Furthest location still achieving ``min_mbps``."""
        reachable = [p.distance_m for p in self.points if p.tcp_mbps >= min_mbps]
        return max(reachable) if reachable else 0.0

    def all_code_rates(self, direction: str) -> List[float]:
        """Pooled coding-rate samples -- Figure 1(b)."""
        if direction == "downlink":
            return [r for p in self.points for r in p.dl_code_rates]
        if direction == "uplink":
            return [r for p in self.points for r in p.ul_code_rates]
        raise ValueError(f"direction must be downlink/uplink, got {direction!r}")

    def channel_fractions(self, direction: str) -> List[float]:
        """Per-location channel-occupancy samples -- Figure 1(c)."""
        if direction == "downlink":
            return [p.dl_channel_fraction for p in self.points]
        if direction == "uplink":
            return [p.ul_channel_fraction for p in self.points]
        raise ValueError(f"direction must be downlink/uplink, got {direction!r}")

    def harq_usage_beyond(self, distance_m: float) -> float:
        """Mean HARQ-retransmission fraction beyond ``distance_m``."""
        far = [p.harq_fraction for p in self.points if p.distance_m > distance_m]
        if not far:
            raise ValueError(f"no drive points beyond {distance_m} m")
        return float(np.mean(far))


def run_drive_test(
    seed: int = 1,
    bandwidth_hz: float = 5e6,
    max_distance_m: float = 1700.0,
    step_m: float = 25.0,
    samples_per_point: int = 60,
) -> DriveTestResult:
    """Walk a client away from the cell and record Figure 1's metrics.

    The client CQI feedback is one sample stale when the scheduler picks
    the MCS -- exactly the mechanism that makes real links use HARQ: the
    channel faded since the last report.
    """
    rngs = RngStreams(seed)
    fading_rng = rngs.stream("fading")
    channel = CompositeChannel(
        UrbanHataPathLoss(), LogNormalShadowing(sigma_db=3.0, seed=seed)
    )
    grid = ResourceGrid(bandwidth_hz, tdd=FDD_DOWNLINK)
    antenna = SectorAntenna(peak_gain_dbi=AP_ANTENNA_GAIN_DBI, boresight_deg=0.0)

    class _Node:
        def __init__(self, x, y):
            self.x, self.y = x, y

    cell = _Node(0.0, 0.0)
    dl_noise_dbm = thermal_noise_dbm(
        grid.n_rbs * RB_BANDWIDTH_HZ, UE_NOISE_FIGURE_DB
    )
    ul_rb_noise_dbm = thermal_noise_dbm(RB_BANDWIDTH_HZ, ENB_NOISE_FIGURE_DB)

    result = DriveTestResult()
    distance = step_m
    while distance <= max_distance_m:
        client = _Node(distance, 0.0)  # Walk along the boresight.
        loss_db = channel.loss_db(cell, client)
        dl_mean_snr = (
            AP_TX_POWER_DBM
            + antenna.gain_towards(cell.x, cell.y, client.x, client.y)
            - loss_db
            - dl_noise_dbm
        )
        # Uplink: TCP ACKs scheduled in the single best resource block, so
        # the UE pours its whole (power-controlled) budget into 180 kHz.
        ul_mean_snr = UE_TX_POWER_DBM - loss_db - ul_rb_noise_dbm

        point = _measure_point(
            distance, dl_mean_snr, ul_mean_snr, grid, fading_rng, samples_per_point
        )
        result.points.append(point)
        distance += step_m
    return result


def _measure_point(
    distance_m: float,
    dl_mean_snr: float,
    ul_mean_snr: float,
    grid: ResourceGrid,
    rng: np.random.Generator,
    n_samples: int,
) -> DrivePoint:
    dl_rates: List[float] = []
    ul_rates: List[float] = []
    goodput_bits = 0.0
    harq_first_failures = 0
    dl_transport_blocks = 0

    previous_dl_snr = dl_mean_snr
    for _ in range(n_samples):
        dl_snr = dl_mean_snr + rng.normal(0.0, FADING_SIGMA_DB)
        ul_snr = ul_mean_snr + rng.normal(0.0, FADING_SIGMA_DB)
        # Link adaptation uses the *previous* (stale) report.
        dl_cqi = cqi_from_sinr(previous_dl_snr)
        previous_dl_snr = dl_snr
        if dl_cqi != CQI_OUT_OF_RANGE:
            entry = entry_for_cqi(dl_cqi)
            dl_rates.append(entry.code_rate)
            dl_transport_blocks += 1
            bler = block_error_rate(dl_snr, dl_cqi)
            if rng.random() < bler:
                harq_first_failures += 1
                # Chase combining: second attempt almost always lands, at
                # the cost of a second TTI (halved goodput for the block).
                goodput_bits += 0.5 * grid.downlink_rate_bps(
                    entry.efficiency, grid.n_rbs
                ) * 1e-3
            else:
                goodput_bits += grid.downlink_rate_bps(
                    entry.efficiency, grid.n_rbs
                ) * 1e-3
        ul_cqi = cqi_from_sinr(ul_snr)
        if ul_cqi != CQI_OUT_OF_RANGE:
            ul_rates.append(entry_for_cqi(ul_cqi).code_rate)

    elapsed_s = n_samples * 1e-3
    tcp_mbps = goodput_bits / elapsed_s * TCP_EFFICIENCY / 1e6
    harq_fraction = (
        harq_first_failures / dl_transport_blocks if dl_transport_blocks else 0.0
    )
    return DrivePoint(
        distance_m=distance_m,
        tcp_mbps=tcp_mbps,
        dl_code_rates=dl_rates,
        ul_code_rates=ul_rates,
        dl_channel_fraction=1.0 if dl_rates else 0.0,
        ul_channel_fraction=(1.0 / grid.n_rbs) if ul_rates else 0.0,
        harq_fraction=harq_fraction,
    )


# -- Sweep-spec plumbing ------------------------------------------------------

SCENARIO_FIG1 = "fig1_drive_test"


def fig1_cell(
    seed: int = 1,
    bandwidth_hz: float = 5e6,
    max_distance_m: float = 1700.0,
    step_m: float = 25.0,
    samples_per_point: int = 60,
):
    """One Figure 1 sweep cell: a full drive test at one seed.

    Returns the figure's headline metrics as a flat, JSON-able dict so
    the sweep runner can log and regression-check them.
    """
    result = run_drive_test(
        seed=seed,
        bandwidth_hz=bandwidth_hz,
        max_distance_m=max_distance_m,
        step_m=step_m,
        samples_per_point=samples_per_point,
    )
    dl_rates = result.all_code_rates("downlink")
    return {
        "coverage_fraction_1mbps": float(result.coverage_fraction(1.0)),
        "max_range_1mbps_m": float(result.max_range_m(1.0)),
        "median_dl_code_rate": float(np.median(dl_rates)),
        "min_dl_code_rate": float(min(dl_rates)),
        "harq_usage_beyond_500m": float(result.harq_usage_beyond(500.0)),
        "peak_tcp_mbps": float(max(t for _, t in result.throughput_curve())),
    }


def fig1_sweep_spec(
    seeds=(1,),
    bandwidth_hz: float = 5e6,
    max_distance_m: float = 1700.0,
    step_m: float = 25.0,
    samples_per_point: int = 60,
):
    """The Figure 1 grid: one drive test per seed."""
    from repro.experiments.sweep import SweepSpec

    return SweepSpec.from_grid(
        "fig1",
        SCENARIO_FIG1,
        grid={"seed": list(seeds)},
        base={
            "bandwidth_hz": bandwidth_hz,
            "max_distance_m": max_distance_m,
            "step_m": step_m,
            "samples_per_point": samples_per_point,
        },
    )
