"""Figure 2: Wi-Fi MAC inefficiency on long links (802.11af vs 802.11ac).

Paper Section 3.2: "In both cases we use 20 MHz channels, and we use
RTS/CTS ...  In both cases we consider the same network of access points
and place the same number of clients within the corresponding range of
each access point.  The network range is smaller in case of 802.11ac (home
Wi-Fi) than 802.11af (outdoor cellular) because of lower power (20 dBm vs
36 dBm) and worse propagation, but the average SNR at the receiver is same
in both scenarios."

Construction here mirrors that exactly: the 802.11ac scenario keeps the AP
locations but pulls every client radially toward its AP by the ratio of
the two technologies' ranges, and uses an indoor log-distance channel at
5 GHz.  A calibration step verifies the mean client SNR matches within
1 dB.  The long-range network then collapses under hidden/exposed
terminals while the short-range one does not -- Figure 2's gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.phy.propagation import (
    CompositeChannel,
    LogDistancePathLoss,
    LogNormalShadowing,
    UrbanHataPathLoss,
)
from repro.sim.rng import RngStreams
from repro.sim.topology import ClientSite, Topology, random_topology, reassociate_strongest
from repro.utils.dbmath import thermal_noise_dbm
from repro.wifi.network import WifiNetworkSimulator, WifiStandard

#: Figure 2 uses 20 MHz channels for both technologies.
FIG2_BANDWIDTH_HZ = 20e6

#: Outdoor 802.11af at TVWS fixed-device power.
AF_OUTDOOR = WifiStandard(
    name="802.11af", bandwidth_hz=FIG2_BANDWIDTH_HZ,
    ap_tx_power_dbm=36.0, client_tx_power_dbm=20.0,
)

#: Indoor 802.11ac home configuration.
AC_INDOOR = WifiStandard(
    name="802.11ac", bandwidth_hz=FIG2_BANDWIDTH_HZ,
    ap_tx_power_dbm=20.0, client_tx_power_dbm=20.0,
)


@dataclass
class Fig2Result:
    """Per-client throughput samples for the two standards.

    Attributes:
        throughput_bps: samples per standard name.
        mean_snr_db: calibration check -- mean client SNR per standard.
    """

    throughput_bps: Dict[str, List[float]] = field(default_factory=dict)
    mean_snr_db: Dict[str, float] = field(default_factory=dict)

    def median_bps(self, standard: str) -> float:
        """Median client throughput of one standard."""
        return float(np.median(self.throughput_bps[standard]))


def _shrink_clients(topology: Topology, scale: float) -> Topology:
    """Pull every client toward its AP by ``scale`` (same bearings)."""
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1], got {scale!r}")
    clients = []
    ap_by_id = {ap.ap_id: ap for ap in topology.aps}
    for client in topology.clients:
        ap = ap_by_id[client.ap_id]
        clients.append(
            ClientSite(
                client_id=client.client_id,
                x=ap.x + (client.x - ap.x) * scale,
                y=ap.y + (client.y - ap.y) * scale,
                ap_id=client.ap_id,
                height_m=client.height_m,
            )
        )
    return Topology(area_m=topology.area_m, aps=list(topology.aps), clients=clients)


def _mean_client_snr_db(
    topology: Topology, channel: CompositeChannel, ap_power_dbm: float,
    bandwidth_hz: float, noise_figure_db: float = 7.0,
) -> float:
    noise = thermal_noise_dbm(bandwidth_hz, noise_figure_db)
    snrs = []
    for client in topology.clients:
        ap = topology.ap(client.ap_id)
        snrs.append(ap_power_dbm - channel.loss_db(ap, client) - noise)
    return float(np.mean(snrs))


def calibrate_client_scale(
    topology: Topology,
    outdoor_channel: CompositeChannel,
    indoor_channel: CompositeChannel,
    tolerance_db: float = 1.0,
) -> float:
    """Find the client-distance scale equalising mean SNR across scenarios."""
    target = _mean_client_snr_db(
        topology, outdoor_channel, AF_OUTDOOR.ap_tx_power_dbm, FIG2_BANDWIDTH_HZ
    )
    lo, hi = 0.005, 1.0
    for _ in range(40):
        mid = (lo + hi) / 2.0
        shrunk = _shrink_clients(topology, mid)
        snr = _mean_client_snr_db(
            shrunk, indoor_channel, AC_INDOOR.ap_tx_power_dbm, FIG2_BANDWIDTH_HZ
        )
        if abs(snr - target) <= tolerance_db:
            return mid
        if snr > target:
            # Clients too close (too strong): push them further out.
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def run_fig2(
    seed: int = 1,
    n_aps: int = 8,
    clients_per_ap: int = 6,
    duration_s: float = 4.0,
    area_m: float = 2000.0,
    client_range_m: float = 800.0,
) -> Fig2Result:
    """Run the Figure 2 comparison on matched scenarios."""
    rngs = RngStreams(seed)
    outdoor_channel = CompositeChannel(
        UrbanHataPathLoss(), LogNormalShadowing(6.0, seed=seed)
    )
    # Indoor at 5 GHz: faster decay, more obstruction loss.
    indoor_channel = CompositeChannel(
        LogDistancePathLoss(frequency_hz=5.2e9, exponent=3.5, reference_m=5.0),
        LogNormalShadowing(4.0, seed=seed + 1),
    )
    af_topology = random_topology(
        rngs.stream("topology"),
        n_aps=n_aps,
        clients_per_ap=clients_per_ap,
        area_m=area_m,
        client_range_m=client_range_m,
    )
    af_topology = reassociate_strongest(af_topology, outdoor_channel.loss_db)
    scale = calibrate_client_scale(af_topology, outdoor_channel, indoor_channel)
    ac_topology = _shrink_clients(af_topology, scale)

    result = Fig2Result()
    result.mean_snr_db[AF_OUTDOOR.name] = _mean_client_snr_db(
        af_topology, outdoor_channel, AF_OUTDOOR.ap_tx_power_dbm, FIG2_BANDWIDTH_HZ
    )
    result.mean_snr_db[AC_INDOOR.name] = _mean_client_snr_db(
        ac_topology, indoor_channel, AC_INDOOR.ap_tx_power_dbm, FIG2_BANDWIDTH_HZ
    )

    af_net = WifiNetworkSimulator(
        af_topology, outdoor_channel, AF_OUTDOOR, rngs.fork("af")
    )
    af_run = af_net.run_saturated(duration_s)
    result.throughput_bps[AF_OUTDOOR.name] = list(af_run.throughput_bps.values())

    ac_net = WifiNetworkSimulator(
        ac_topology, indoor_channel, AC_INDOOR, rngs.fork("ac")
    )
    ac_run = ac_net.run_saturated(duration_s)
    result.throughput_bps[AC_INDOOR.name] = list(ac_run.throughput_bps.values())
    return result


# -- Sweep-spec plumbing ------------------------------------------------------

SCENARIO_FIG2 = "fig2_wifi_macs"


def fig2_cell(
    seed: int = 1,
    n_aps: int = 8,
    clients_per_ap: int = 6,
    duration_s: float = 4.0,
) -> Dict[str, object]:
    """One Figure 2 sweep cell: the af-vs-ac comparison at one seed."""
    result = run_fig2(
        seed=seed, n_aps=n_aps, clients_per_ap=clients_per_ap, duration_s=duration_s
    )
    metrics: Dict[str, object] = {}
    for standard, samples in result.throughput_bps.items():
        arr = np.array(samples)
        key = standard.replace(".", "_")
        metrics[f"median_bps[{key}]"] = float(np.median(arr))
        metrics[f"starved_fraction[{key}]"] = float((arr < 50e3).mean())
        metrics[f"mean_snr_db[{key}]"] = float(result.mean_snr_db[standard])
    return metrics


def fig2_sweep_spec(
    seeds=(1,),
    n_aps: int = 8,
    clients_per_ap: int = 6,
    duration_s: float = 4.0,
):
    """The Figure 2 grid: one matched af/ac comparison per seed."""
    from repro.experiments.sweep import SweepSpec

    return SweepSpec.from_grid(
        "fig2",
        SCENARIO_FIG2,
        grid={"seed": list(seeds)},
        base={
            "n_aps": n_aps,
            "clients_per_ap": clients_per_ap,
            "duration_s": duration_s,
        },
    )
