"""Figure 7: the two-cell outdoor interference experiment.

Section 6.3.1 deploys two small cells on a rooftop with sector antennas
pointing different ways and walks a client along a path where the SINR
swings from -15 dB to +30 dB.  Three conditions are measured:

(i)   serving cell only;
(ii)  interfering cell on but idle -- only control signalling (CRS/PDCCH)
      interferes;
(iii) interfering cell fully backlogged -- data interference.

Findings to reproduce:

* goodput (coding rate x (1 - BLER), the paper's bit/symbol metric) under
  signalling-only interference stays within ~20% of no-interference
  (Figure 7(b));
* full data interference can halve goodput at SINR < 10 dB and causes
  disconnections, which signalling interference does not (Figure 7(c)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.sweep import SweepSpec
from repro.lte.network import rlf_probability
from repro.phy.antenna import SectorAntenna
from repro.phy.harq import block_error_rate
from repro.phy.mcs import CQI_OUT_OF_RANGE, cqi_from_sinr, entry_for_cqi
from repro.phy.propagation import (
    CompositeChannel,
    LogNormalShadowing,
    UrbanHataPathLoss,
)
from repro.phy.resource_grid import RB_BANDWIDTH_HZ, ResourceGrid
from repro.sim.rng import RngStreams
from repro.utils.dbmath import dbm_to_watt, linear_to_db, thermal_noise_dbm

#: Control-channel interference ceiling, from the Figure 7(b) measurement.
SIGNALLING_MAX_LOSS = 0.20

#: Serving/interfering cell parameters (both E40s at 23 dBm + 7 dBi).
CELL_TX_POWER_DBM = 23.0
CELL_ANTENNA_GAIN_DBI = 7.0


@dataclass
class WalkSample:
    """One measurement location on the walk.

    Attributes:
        rssi_dbm: received signal strength from the serving cell.
        sinr_db: SINR against the fully-loaded interferer.
        goodput_none / goodput_signalling / goodput_full: the paper's
            bit/symbol metric under the three conditions.
        disconnected_full: whether the client dropped under full
            interference at this location.
    """

    rssi_dbm: float
    sinr_db: float
    goodput_none: float
    goodput_signalling: float
    goodput_full: float
    disconnected_full: bool


@dataclass
class Fig7Result:
    """The full two-cell walk dataset."""

    samples: List[WalkSample] = field(default_factory=list)

    def signalling_vs_none_max_gap(self) -> float:
        """Largest relative goodput loss attributable to signalling alone."""
        gaps = [
            1.0 - s.goodput_signalling / s.goodput_none
            for s in self.samples
            if s.goodput_none > 0.0
        ]
        return max(gaps) if gaps else 0.0

    def low_sinr_samples(self, threshold_db: float = 10.0) -> List[WalkSample]:
        """Locations with SINR below ``threshold_db`` (the Fig 7(c) subset)."""
        return [s for s in self.samples if s.sinr_db < threshold_db]

    def full_interference_median_loss(self) -> float:
        """Median relative goodput loss of full vs signalling interference
        over the low-SINR subset."""
        subset = self.low_sinr_samples()
        # The paper excludes disconnected intervals ("we cannot register
        # goodput during these intervals").
        losses = [
            1.0 - s.goodput_full / s.goodput_signalling
            for s in subset
            if s.goodput_signalling > 0.0 and not s.disconnected_full
        ]
        if not losses:
            raise ValueError("no low-SINR samples on the walk")
        return float(np.median(losses))

    def disconnection_count(self) -> int:
        """Locations that dropped the connection under full interference."""
        return sum(1 for s in self.samples if s.disconnected_full)


def _goodput_bit_per_symbol(sinr_db: float) -> float:
    """The paper's metric: coding rate x (1 - BLER) at link adaptation."""
    cqi = cqi_from_sinr(sinr_db)
    if cqi == CQI_OUT_OF_RANGE:
        return 0.0
    entry = entry_for_cqi(cqi)
    return entry.code_rate * (1.0 - block_error_rate(sinr_db, cqi))


def _signalling_scale(sir_db: float) -> float:
    """Goodput multiplier under control-signalling-only interference."""
    loss = SIGNALLING_MAX_LOSS * math.exp(-max(sir_db, 0.0) / 10.0)
    return 1.0 - min(loss, SIGNALLING_MAX_LOSS)


SCENARIO_FIG7 = "fig7_walk"


def fig7_cell(
    seed: int = 3,
    bandwidth_hz: float = 5e6,
    n_points: int = 120,
    path_length_m: float = 260.0,
) -> Dict[str, object]:
    """One Figure 7 sweep cell: a full two-cell walk at one seed."""
    result = run_two_cell_walk(
        seed=seed,
        bandwidth_hz=bandwidth_hz,
        n_points=n_points,
        path_length_m=path_length_m,
    )
    sinrs = [s.sinr_db for s in result.samples]
    return {
        "signalling_max_gap": float(result.signalling_vs_none_max_gap()),
        "full_interference_median_loss": float(
            result.full_interference_median_loss()
        ),
        "disconnections": int(result.disconnection_count()),
        "min_sinr_db": float(min(sinrs)),
        "max_sinr_db": float(max(sinrs)),
    }


def fig7_sweep_spec(
    seeds: Sequence[int] = (3,),
    bandwidth_hz: float = 5e6,
    n_points: int = 120,
    path_length_m: float = 260.0,
) -> SweepSpec:
    """The Figure 7 grid: one walk per seed (the paper walks once)."""
    return SweepSpec.from_grid(
        "fig7",
        SCENARIO_FIG7,
        grid={"seed": list(seeds)},
        base={
            "bandwidth_hz": bandwidth_hz,
            "n_points": n_points,
            "path_length_m": path_length_m,
        },
    )


def run_two_cell_walk(
    seed: int = 3,
    bandwidth_hz: float = 5e6,
    n_points: int = 120,
    path_length_m: float = 260.0,
) -> Fig7Result:
    """Walk a client past two co-located, differently-aimed cells.

    The serving cell's boresight points along +x, the interferer's rotates
    toward the end of the path, so the walk sweeps from "deep inside
    serving coverage" to "facing the interferer", spanning the paper's
    -15..+30 dB SINR range.
    """
    rngs = RngStreams(seed)
    fading = rngs.stream("fading")
    rlf = rngs.stream("rlf")
    channel = CompositeChannel(
        UrbanHataPathLoss(base_height_m=15.0),
        LogNormalShadowing(sigma_db=4.0, seed=seed),
    )
    grid = ResourceGrid(bandwidth_hz)
    noise_dbm = thermal_noise_dbm(grid.n_rbs * RB_BANDWIDTH_HZ, 9.0)

    class _Node:
        def __init__(self, x, y):
            self.x, self.y = x, y

    serving = _Node(0.0, 0.0)
    interferer = _Node(12.0, 0.0)  # Both on the same rooftop.
    serving_antenna = SectorAntenna(
        peak_gain_dbi=CELL_ANTENNA_GAIN_DBI, boresight_deg=40.0, front_back_db=25.0
    )
    interferer_antenna = SectorAntenna(
        peak_gain_dbi=CELL_ANTENNA_GAIN_DBI, boresight_deg=-100.0, front_back_db=25.0
    )

    result = Fig7Result()
    for i in range(n_points):
        progress = (i + 1) / n_points
        # The path curves from the serving boresight into the interferer's.
        angle = math.radians(40.0 - 125.0 * progress)
        distance = 40.0 + path_length_m * progress
        client = _Node(distance * math.cos(angle), distance * math.sin(angle))

        serving_rx = (
            CELL_TX_POWER_DBM
            + serving_antenna.gain_towards(serving.x, serving.y, client.x, client.y)
            - channel.loss_db(serving, client)
            + fading.normal(0.0, 2.0)
        )
        interferer_rx = (
            CELL_TX_POWER_DBM
            + interferer_antenna.gain_towards(
                interferer.x, interferer.y, client.x, client.y
            )
            - channel.loss_db(interferer, client)
            + fading.normal(0.0, 2.0)
        )
        snr_db = serving_rx - noise_dbm
        sinr_db = linear_to_db(
            dbm_to_watt(serving_rx)
            / (dbm_to_watt(noise_dbm) + dbm_to_watt(interferer_rx))
        )
        sir_db = serving_rx - interferer_rx

        goodput_none = _goodput_bit_per_symbol(snr_db)
        goodput_signalling = goodput_none * _signalling_scale(sir_db)
        disconnected = rlf.random() < rlf_probability(sinr_db)
        goodput_full = 0.0 if disconnected else _goodput_bit_per_symbol(sinr_db)

        result.samples.append(
            WalkSample(
                rssi_dbm=serving_rx,
                sinr_db=sinr_db,
                goodput_none=goodput_none,
                goodput_signalling=goodput_signalling,
                goodput_full=goodput_full,
                disconnected_full=disconnected,
            )
        )
    return result
