"""Database-outage robustness experiment (Figure 6 under faults).

Figure 6 shows the vacate/reacquire timeline when the database *cleanly*
withdraws a channel.  Real deployments -- especially the rural links
TVWS targets -- lose the database itself: the backhaul drops, the server
times out, responses arrive garbled.  This experiment replays the
Figure 6 scenario through a :class:`~repro.tvws.transport.FaultyTransport`
with scheduled full outages plus probabilistic wire faults, and measures

* the selector timeline (retry, backoff, grace-entered, forced-vacate,
  grace-exited, failover) as a structured robustness log,
* ETSI EN 301 598 compliance along the whole run (the monitor is fed
  ground-truth channel-loss times, not the client's guess),
* throughput loss versus outage duration: a short outage is ridden out
  in lease-grace mode at **zero** cost, while one longer than the 60 s
  deadline forces a vacate and costs the reboot + cell-search
  reacquisition on top.

Everything derives from the experiment seed and the outage schedule, so
the timeline and robustness log are bit-identical across runs and
``--jobs`` levels (asserted via :attr:`DbOutageResult.digest`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cellfi import CellFiAccessPoint
from repro.lte.rrc import ReacquisitionTiming
from repro.lte.ue import UserEquipment
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.tvws.channels import US_CHANNEL_PLAN
from repro.tvws.database import SpectrumDatabase
from repro.tvws.paws import PawsServer
from repro.tvws.regulatory import EtsiComplianceRules
from repro.tvws.transport import (
    DirectTransport,
    FaultSpec,
    FaultyTransport,
    RetryPolicy,
    RobustnessLog,
)

#: Default outage schedule, offsets from the end of boot: one short
#: outage grace mode absorbs entirely, one long enough to force a vacate.
DEFAULT_OUTAGES: Tuple[Tuple[float, float], ...] = ((60.0, 30.0), (240.0, 90.0))

#: Settle time after boot before the measurement window opens.
BOOT_MARGIN_S = 10.0

#: Measurement continues this long after the last outage ends, covering
#: the reboot + cell-search reacquisition.
TAIL_S = 300.0


@dataclass
class DbOutageResult:
    """Outcome of one outage run.

    Attributes:
        boot_s: when the measurement window opened (AP fully up).
        window_s: length of the measurement window.
        outages: absolute ``(start, end)`` outage windows.
        downtime_s: total time the AP radio was off inside the window.
        loss_fraction: ``downtime_s / window_s`` -- the throughput loss
            proxy (the carrier serves nothing while the radio is off).
        counts: robustness-event tallies by kind.
        violations: ETSI violations recorded by the monitor.
        compliant: no violation along the whole timeline.
        timeline: merged (time, event) log -- AP events, selector events
            and robustness events -- sorted by time.
        selector_timeline: the selector's own (time, kind, detail) rows.
        robustness_rows: structured robustness log as dict rows.
        digest: SHA-256 over the canonical JSON of selector timeline +
            robustness log; bit-equal digests mean bit-equal runs.
    """

    boot_s: float
    window_s: float
    outages: Tuple[Tuple[float, float], ...]
    downtime_s: float
    loss_fraction: float
    counts: Dict[str, int]
    violations: List
    compliant: bool
    timeline: List[Tuple[float, str]]
    selector_timeline: List[Tuple[float, str, str]]
    robustness_rows: List[Dict[str, object]] = field(default_factory=list)
    digest: str = ""


def _canonical_digest(
    selector_timeline: List[Tuple[float, str, str]],
    robustness_rows: List[Dict[str, object]],
) -> str:
    blob = json.dumps(
        {"selector": selector_timeline, "robustness": robustness_rows},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def _radio_downtime_s(
    timeline: Sequence[Tuple[float, str]], start: float, end: float
) -> float:
    """Total radio-off time inside [start, end] from AP timeline events."""
    on = False
    for t, event in timeline:
        if t > start:
            break
        if event == "radio-on":
            on = True
        elif event == "radio-off":
            on = False
    downtime = 0.0
    off_since = None if on else start
    for t, event in timeline:
        if t <= start or t > end:
            continue
        if event == "radio-off" and off_since is None:
            off_since = t
        elif event == "radio-on" and off_since is not None:
            downtime += t - off_since
            off_since = None
    if off_since is not None:
        downtime += end - off_since
    return downtime


def run_db_outage(
    seed: int = 1,
    outages: Sequence[Tuple[float, float]] = DEFAULT_OUTAGES,
    timeout_prob: float = 0.0,
    drop_prob: float = 0.0,
    error_prob: float = 0.0,
    malformed_prob: float = 0.0,
    latency_s: float = 0.02,
    latency_spike_prob: float = 0.0,
    latency_spike_s: float = 2.0,
    poll_interval_s: float = 2.0,
    lease_duration_s: float = 3600.0,
    withdraw_in_outage: Optional[int] = None,
    secondary: bool = False,
    tail_s: float = TAIL_S,
    timing: Optional[ReacquisitionTiming] = None,
    retry: Optional[RetryPolicy] = None,
) -> DbOutageResult:
    """Run the outage scenario and collect the robustness story.

    Args:
        seed: drives the fault RNG and backoff jitter.
        outages: ``(start_offset_s, duration_s)`` windows, offsets from
            the end of boot, during which the database is unreachable.
        timeout_prob / drop_prob / error_prob / malformed_prob /
        latency_spike_prob: probabilistic wire faults outside outages.
        withdraw_in_outage: index of the outage during which the held
            channel is *actually* withdrawn from the database (and
            restored at outage end) -- exercises the case where the
            unreachable database really did revoke the channel; the
            compliance monitor is fed the ground-truth loss time.
        secondary: add a reliable secondary database endpoint; the
            selector fails over to it instead of entering grace mode.
        tail_s: measurement continues this long after the last outage.
    """
    timing = timing or ReacquisitionTiming()
    sim = Simulator()
    database = SpectrumDatabase(US_CHANNEL_PLAN, lease_duration_s=lease_duration_s)
    paws = PawsServer(database)
    compliance = EtsiComplianceRules()
    robustness = RobustnessLog()
    streams = RngStreams(seed)

    boot = timing.time_to_resume() + BOOT_MARGIN_S
    abs_outages = tuple(
        (boot + start, boot + start + duration) for start, duration in outages
    )
    fault_spec = FaultSpec(
        timeout_prob=timeout_prob,
        drop_prob=drop_prob,
        error_prob=error_prob,
        malformed_prob=malformed_prob,
        latency_s=latency_s,
        latency_spike_prob=latency_spike_prob,
        latency_spike_s=latency_spike_s,
        outages=abs_outages,
    )
    transport = FaultyTransport(
        inner=DirectTransport(paws, name="primary-db"),
        clock=lambda: sim.now,
        rng=streams.stream("transport-faults"),
        spec=fault_spec,
        log=robustness,
        name="primary-db",
    )
    secondary_transport = None
    if secondary:
        secondary_transport = DirectTransport(paws, name="secondary-db")

    ap = CellFiAccessPoint(
        sim=sim,
        paws=paws,
        x=1000.0,
        y=1000.0,
        serial="outage-ap",
        timing=timing,
        compliance=compliance,
        transport=transport,
        secondary=secondary_transport,
        retry=retry,
        robustness=robustness,
        rng=streams.stream("retry-jitter"),
    )
    ap.selector.poll_interval_s = poll_interval_s
    client = UserEquipment(ue_id=0, node=type("N", (), {"x": 1200.0, "y": 1000.0})())
    ap.register_client(client)
    ap.start()

    sim.run(until=boot)
    if ap.selector.current_channel is None or not ap.radio_on:
        raise RuntimeError("AP failed to come up before the measurement window")

    # The paper's site had effectively one usable channel: remove all
    # others so a withdrawal leaves the AP with no spectrum at all.
    held = ap.selector.current_channel
    for tv_channel in database.plan.channels:
        if tv_channel.number != held:
            database.withdraw_channel(tv_channel.number)

    if withdraw_in_outage is not None:
        start, end_w = abs_outages[withdraw_in_outage]
        # The withdrawal lands shortly after the outage begins -- the
        # client cannot observe it, only ride its cached lease.
        withdraw_at = start + min(5.0, (end_w - start) / 2.0)

        def _withdraw() -> None:
            channel = ap.selector.current_channel
            if channel is None:
                return
            database.withdraw_channel(channel)
            # Ground truth for the monitor: the channel ceased to be
            # available *now*, whatever the unreachable client believes.
            compliance.channel_lost(ap.device.serial_number, sim.now)

        sim.schedule_at(withdraw_at, _withdraw)
        sim.schedule_at(end_w, lambda: database.restore_channel(held))

    sim.schedule_every(5.0, lambda: compliance.check_time(sim.now))
    end = (abs_outages[-1][1] if abs_outages else boot) + tail_s
    sim.run(until=end)

    selector_timeline = ap.selector.timeline()
    robustness_rows = robustness.to_rows()
    timeline = ap.timeline + [
        (t, f"{kind}:{detail}") for t, kind, detail in selector_timeline
    ]
    timeline.sort(key=lambda item: item[0])
    window = end - boot
    downtime = _radio_downtime_s(ap.timeline, boot, end)
    return DbOutageResult(
        boot_s=boot,
        window_s=window,
        outages=abs_outages,
        downtime_s=downtime,
        loss_fraction=downtime / window if window > 0 else 0.0,
        counts=robustness.counts(),
        violations=list(compliance.violations),
        compliant=compliance.compliant,
        timeline=timeline,
        selector_timeline=selector_timeline,
        robustness_rows=robustness_rows,
        digest=_canonical_digest(selector_timeline, robustness_rows),
    )


# -- Sweep integration ---------------------------------------------------------


def db_outage_cell(
    seed: int,
    outage_s: float,
    timeout_prob: float = 0.05,
    drop_prob: float = 0.05,
    error_prob: float = 0.02,
    malformed_prob: float = 0.02,
    latency_spike_prob: float = 0.05,
    withdraw: bool = False,
    secondary: bool = False,
    tail_s: float = 200.0,
) -> Dict[str, object]:
    """One sweep cell: a single outage of ``outage_s`` seconds.

    Returns scalar metrics (throughput loss, event counts, compliance)
    plus the run digest, so determinism across ``--jobs`` levels is
    checkable cell by cell.
    """
    result = run_db_outage(
        seed=seed,
        outages=((60.0, outage_s),),
        timeout_prob=timeout_prob,
        drop_prob=drop_prob,
        error_prob=error_prob,
        malformed_prob=malformed_prob,
        latency_spike_prob=latency_spike_prob,
        withdraw_in_outage=0 if withdraw else None,
        secondary=secondary,
        tail_s=tail_s,
    )
    counts = result.counts
    return {
        "outage_s": outage_s,
        "throughput_loss_fraction": round(result.loss_fraction, 6),
        "downtime_s": round(result.downtime_s, 3),
        "window_s": round(result.window_s, 3),
        "faults_injected": counts.get("fault-injected", 0),
        "retries": counts.get("retry", 0),
        "backoffs": counts.get("backoff", 0),
        "graces": counts.get("grace-entered", 0),
        "failovers": counts.get("failover", 0),
        "forced_vacates": counts.get("forced-vacate", 0),
        "violations": len(result.violations),
        "compliant": result.compliant,
        "digest": result.digest,
    }


def db_outage_sweep_spec(
    durations: Sequence[float] = (15.0, 45.0, 90.0, 180.0),
    seeds: Sequence[int] = (1, 2),
    withdraw: bool = False,
    secondary: bool = False,
):
    """Throughput-loss-vs-outage-duration grid as a SweepSpec."""
    from repro.experiments.sweep import SweepSpec

    return SweepSpec.from_grid(
        name="db_outage",
        scenario_name="db_outage",
        grid={"outage_s": [float(d) for d in durations], "seed": list(seeds)},
        base={"withdraw": withdraw, "secondary": secondary},
    )
