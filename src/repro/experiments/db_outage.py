"""Database-outage robustness experiment (Figure 6 under faults).

Figure 6 shows the vacate/reacquire timeline when the database *cleanly*
withdraws a channel.  Real deployments -- especially the rural links
TVWS targets -- lose the database itself: the backhaul drops, the server
times out, responses arrive garbled.  This experiment replays the
Figure 6 scenario through a :class:`~repro.tvws.transport.FaultyTransport`
with scheduled full outages plus probabilistic wire faults, and measures

* the selector timeline (retry, backoff, grace-entered, forced-vacate,
  grace-exited, failover) as a structured robustness log,
* ETSI EN 301 598 compliance along the whole run (the monitor is fed
  ground-truth channel-loss times, not the client's guess),
* throughput loss versus outage duration: a short outage is ridden out
  in lease-grace mode at **zero** cost, while one longer than the 60 s
  deadline forces a vacate and costs the reboot + cell-search
  reacquisition on top.

Everything derives from the experiment seed and the outage schedule, so
the timeline and robustness log are bit-identical across runs and
``--jobs`` levels (asserted via :attr:`DbOutageResult.digest`).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cellfi import CellFiAccessPoint
from repro.lte.rrc import ReacquisitionTiming
from repro.lte.ue import UserEquipment
from repro.sim.checkpoint import (
    CheckpointRegistry,
    Snapshot,
    from_jsonable,
    latest_checkpoint,
    to_jsonable,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.tvws.channels import US_CHANNEL_PLAN
from repro.tvws.database import SpectrumDatabase
from repro.tvws.paws import PawsServer
from repro.tvws.regulatory import EtsiComplianceRules
from repro.tvws.transport import (
    DirectTransport,
    FaultSpec,
    FaultyTransport,
    RetryPolicy,
    RobustnessLog,
)

#: Default outage schedule, offsets from the end of boot: one short
#: outage grace mode absorbs entirely, one long enough to force a vacate.
DEFAULT_OUTAGES: Tuple[Tuple[float, float], ...] = ((60.0, 30.0), (240.0, 90.0))

#: Settle time after boot before the measurement window opens.
BOOT_MARGIN_S = 10.0

#: Measurement continues this long after the last outage ends, covering
#: the reboot + cell-search reacquisition.
TAIL_S = 300.0


@dataclass
class DbOutageResult:
    """Outcome of one outage run.

    Attributes:
        boot_s: when the measurement window opened (AP fully up).
        window_s: length of the measurement window.
        outages: absolute ``(start, end)`` outage windows.
        downtime_s: total time the AP radio was off inside the window.
        loss_fraction: ``downtime_s / window_s`` -- the throughput loss
            proxy (the carrier serves nothing while the radio is off).
        counts: robustness-event tallies by kind.
        violations: ETSI violations recorded by the monitor.
        compliant: no violation along the whole timeline.
        timeline: merged (time, event) log -- AP events, selector events
            and robustness events -- sorted by time.
        selector_timeline: the selector's own (time, kind, detail) rows.
        robustness_rows: structured robustness log as dict rows.
        digest: SHA-256 over the canonical JSON of selector timeline +
            robustness log; bit-equal digests mean bit-equal runs.
    """

    boot_s: float
    window_s: float
    outages: Tuple[Tuple[float, float], ...]
    downtime_s: float
    loss_fraction: float
    counts: Dict[str, int]
    violations: List
    compliant: bool
    timeline: List[Tuple[float, str]]
    selector_timeline: List[Tuple[float, str, str]]
    robustness_rows: List[Dict[str, object]] = field(default_factory=list)
    digest: str = ""


def _canonical_digest(
    selector_timeline: List[Tuple[float, str, str]],
    robustness_rows: List[Dict[str, object]],
) -> str:
    blob = json.dumps(
        {"selector": selector_timeline, "robustness": robustness_rows},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def _radio_downtime_s(
    timeline: Sequence[Tuple[float, str]], start: float, end: float
) -> float:
    """Total radio-off time inside [start, end] from AP timeline events."""
    on = False
    for t, event in timeline:
        if t > start:
            break
        if event == "radio-on":
            on = True
        elif event == "radio-off":
            on = False
    downtime = 0.0
    off_since = None if on else start
    for t, event in timeline:
        if t <= start or t > end:
            continue
        if event == "radio-off" and off_since is None:
            off_since = t
        elif event == "radio-on" and off_since is not None:
            downtime += t - off_since
            off_since = None
    if off_since is not None:
        downtime += end - off_since
    return downtime


class DbOutageRun:
    """One outage scenario as a checkpointable run object.

    The constructor builds the *entire* object graph from the config and
    schedules nothing, so a restore can rebuild it identically and then
    overwrite the mutable state in place (the build-then-load protocol of
    :mod:`repro.sim.checkpoint`).  :meth:`run` executes the scenario,
    optionally writing periodic snapshots; :meth:`from_snapshot`
    reconstructs a run mid-flight from one.

    Args:
        seed: drives the fault RNG and backoff jitter.
        outages: ``(start_offset_s, duration_s)`` windows, offsets from
            the end of boot, during which the database is unreachable.
        timeout_prob / drop_prob / error_prob / malformed_prob /
        latency_spike_prob: probabilistic wire faults outside outages.
        withdraw_in_outage: index of the outage during which the held
            channel is *actually* withdrawn from the database (and
            restored at outage end) -- exercises the case where the
            unreachable database really did revoke the channel; the
            compliance monitor is fed the ground-truth loss time.
        secondary: add a reliable secondary database endpoint; the
            selector fails over to it instead of entering grace mode.
        tail_s: measurement continues this long after the last outage.
    """

    def __init__(
        self,
        seed: int = 1,
        outages: Sequence[Tuple[float, float]] = DEFAULT_OUTAGES,
        timeout_prob: float = 0.0,
        drop_prob: float = 0.0,
        error_prob: float = 0.0,
        malformed_prob: float = 0.0,
        latency_s: float = 0.02,
        latency_spike_prob: float = 0.0,
        latency_spike_s: float = 2.0,
        poll_interval_s: float = 2.0,
        lease_duration_s: float = 3600.0,
        withdraw_in_outage: Optional[int] = None,
        secondary: bool = False,
        tail_s: float = TAIL_S,
        timing: Optional[ReacquisitionTiming] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        # Everything needed to rebuild this object graph; embedded in
        # snapshot metadata so from_snapshot() works in a fresh process.
        self.config: Dict[str, object] = {
            "seed": seed,
            "outages": [list(window) for window in outages],
            "timeout_prob": timeout_prob,
            "drop_prob": drop_prob,
            "error_prob": error_prob,
            "malformed_prob": malformed_prob,
            "latency_s": latency_s,
            "latency_spike_prob": latency_spike_prob,
            "latency_spike_s": latency_spike_s,
            "poll_interval_s": poll_interval_s,
            "lease_duration_s": lease_duration_s,
            "withdraw_in_outage": withdraw_in_outage,
            "secondary": secondary,
            "tail_s": tail_s,
            "timing": timing,
            "retry": retry,
        }
        self.timing = timing or ReacquisitionTiming()
        self.sim = Simulator()
        self.database = SpectrumDatabase(
            US_CHANNEL_PLAN, lease_duration_s=lease_duration_s
        )
        self.paws = PawsServer(self.database)
        self.compliance = EtsiComplianceRules()
        self.robustness = RobustnessLog()
        self.streams = RngStreams(seed)

        self.boot = self.timing.time_to_resume() + BOOT_MARGIN_S
        self.abs_outages: Tuple[Tuple[float, float], ...] = tuple(
            (self.boot + start, self.boot + start + duration)
            for start, duration in outages
        )
        fault_spec = FaultSpec(
            timeout_prob=timeout_prob,
            drop_prob=drop_prob,
            error_prob=error_prob,
            malformed_prob=malformed_prob,
            latency_s=latency_s,
            latency_spike_prob=latency_spike_prob,
            latency_spike_s=latency_spike_s,
            outages=self.abs_outages,
        )
        self.transport = FaultyTransport(
            inner=DirectTransport(self.paws, name="primary-db"),
            clock=lambda: self.sim.now,
            rng=self.streams.stream("transport-faults"),
            spec=fault_spec,
            log=self.robustness,
            name="primary-db",
        )
        secondary_transport = None
        if secondary:
            secondary_transport = DirectTransport(self.paws, name="secondary-db")

        self.ap = CellFiAccessPoint(
            sim=self.sim,
            paws=self.paws,
            x=1000.0,
            y=1000.0,
            serial="outage-ap",
            timing=self.timing,
            compliance=self.compliance,
            transport=self.transport,
            secondary=secondary_transport,
            retry=retry,
            robustness=self.robustness,
            rng=self.streams.stream("retry-jitter"),
        )
        self.ap.selector.poll_interval_s = poll_interval_s
        self.client = UserEquipment(
            ue_id=0, node=type("N", (), {"x": 1200.0, "y": 1000.0})()
        )
        self.ap.register_client(self.client)

        self.withdraw_in_outage = withdraw_in_outage
        self.tail_s = tail_s
        self.end = (
            self.abs_outages[-1][1] if self.abs_outages else self.boot
        ) + tail_s
        self._held: Optional[int] = None
        self._booted = False

        self.registry = CheckpointRegistry(self.sim)
        self.registry.register("rng", self.streams)
        self.registry.register("database", self.database)
        self.registry.register("paws", self.paws)
        self.registry.register("compliance", self.compliance)
        self.registry.register("robustness", self.robustness)
        self.registry.register("transport", self.transport)
        self.registry.register("ap", self.ap)
        self.registry.register("selector", self.ap.selector)
        self.registry.register("driver", self)

    # -- Driver checkpoint state ---------------------------------------------

    def state_dict(self) -> Dict[str, object]:
        return {"held": self._held, "booted": self._booted}

    def load_state(self, state: Dict[str, object]) -> None:
        self._held = state["held"]
        self._booted = state["booted"]

    # -- Scheduled callbacks (checkpointable bound methods) -------------------

    def _withdraw(self) -> None:
        channel = self.ap.selector.current_channel
        if channel is None:
            return
        self.database.withdraw_channel(channel)
        # Ground truth for the monitor: the channel ceased to be
        # available *now*, whatever the unreachable client believes.
        self.compliance.channel_lost(self.ap.device.serial_number, self.sim.now)

    def _restore_held(self) -> None:
        self.database.restore_channel(self._held)

    def _compliance_tick(self) -> None:
        self.compliance.check_time(self.sim.now)

    # -- Execution ------------------------------------------------------------

    def run_to_boot(self) -> None:
        """Bring the AP up and arm the measurement-window schedule."""
        if self._booted:
            raise RuntimeError("run_to_boot() called twice")
        self.ap.start()
        self.sim.run(until=self.boot)
        if self.ap.selector.current_channel is None or not self.ap.radio_on:
            raise RuntimeError("AP failed to come up before the measurement window")

        # The paper's site had effectively one usable channel: remove all
        # others so a withdrawal leaves the AP with no spectrum at all.
        self._held = self.ap.selector.current_channel
        for tv_channel in self.database.plan.channels:
            if tv_channel.number != self._held:
                self.database.withdraw_channel(tv_channel.number)

        if self.withdraw_in_outage is not None:
            start, end_w = self.abs_outages[self.withdraw_in_outage]
            # The withdrawal lands shortly after the outage begins -- the
            # client cannot observe it, only ride its cached lease.
            withdraw_at = start + min(5.0, (end_w - start) / 2.0)
            self.sim.schedule_at(withdraw_at, self._withdraw)
            self.sim.schedule_at(end_w, self._restore_held)
        # Scheduled after the withdraw/restore events: the restore can tie
        # with a compliance tick and must keep its lower event seq.
        self.sim.schedule_every(5.0, self._compliance_tick)
        self._booted = True

    def run(
        self,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: Optional[float] = None,
        halt_at: Optional[float] = None,
    ) -> Optional[DbOutageResult]:
        """Execute (or continue) the scenario.

        Args:
            checkpoint_dir: write periodic snapshots into this directory.
            checkpoint_every: snapshot period in simulation seconds
                (measured from the current time; requires
                ``checkpoint_dir``).
            halt_at: stop at this simulation time instead of the end of
                the measurement window -- the deterministic "preemption"
                the resume smoke tests use.

        Returns:
            The result, or ``None`` when halted before the window closed.
        """
        if not self._booted:
            self.run_to_boot()
        stop = self.end if halt_at is None else min(float(halt_at), self.end)
        if checkpoint_dir is not None and checkpoint_every:
            while self.sim.now < stop:
                self.sim.run(until=min(self.sim.now + checkpoint_every, stop))
                self.save_checkpoint(checkpoint_dir)
        else:
            self.sim.run(until=stop)
        if stop < self.end:
            return None
        return self.result()

    # -- Snapshots ------------------------------------------------------------

    def save_checkpoint(self, directory: str) -> str:
        """Snapshot the full run state into ``directory``; returns the path."""
        os.makedirs(directory, exist_ok=True)
        snapshot = self.registry.snapshot(
            meta={"driver": "db_outage", "config": to_jsonable(self.config)}
        )
        path = os.path.join(directory, f"ckpt_{self.sim.now:012.3f}.json")
        snapshot.save(path)
        return path

    @classmethod
    def from_snapshot(cls, snapshot: Snapshot) -> "DbOutageRun":
        """Rebuild the object graph from the embedded config, then load."""
        config = from_jsonable(snapshot.meta["config"])
        run = cls(**config)
        run.registry.restore(snapshot)
        return run

    @classmethod
    def restore(cls, path: str) -> "DbOutageRun":
        """Load a snapshot file and resume-construct the run from it."""
        return cls.from_snapshot(Snapshot.load(path))

    def run_digest(self) -> str:
        """Current full-state digest (engine + every registered subsystem)."""
        return self.registry.run_digest()

    # -- Result assembly -------------------------------------------------------

    def result(self) -> DbOutageResult:
        selector_timeline = self.ap.selector.timeline()
        robustness_rows = self.robustness.to_rows()
        timeline = self.ap.timeline + [
            (t, f"{kind}:{detail}") for t, kind, detail in selector_timeline
        ]
        timeline.sort(key=lambda item: item[0])
        window = self.end - self.boot
        downtime = _radio_downtime_s(self.ap.timeline, self.boot, self.end)
        return DbOutageResult(
            boot_s=self.boot,
            window_s=window,
            outages=self.abs_outages,
            downtime_s=downtime,
            loss_fraction=downtime / window if window > 0 else 0.0,
            counts=self.robustness.counts(),
            violations=list(self.compliance.violations),
            compliant=self.compliance.compliant,
            timeline=timeline,
            selector_timeline=selector_timeline,
            robustness_rows=robustness_rows,
            digest=_canonical_digest(selector_timeline, robustness_rows),
        )


def run_db_outage(
    seed: int = 1,
    outages: Sequence[Tuple[float, float]] = DEFAULT_OUTAGES,
    timeout_prob: float = 0.0,
    drop_prob: float = 0.0,
    error_prob: float = 0.0,
    malformed_prob: float = 0.0,
    latency_s: float = 0.02,
    latency_spike_prob: float = 0.0,
    latency_spike_s: float = 2.0,
    poll_interval_s: float = 2.0,
    lease_duration_s: float = 3600.0,
    withdraw_in_outage: Optional[int] = None,
    secondary: bool = False,
    tail_s: float = TAIL_S,
    timing: Optional[ReacquisitionTiming] = None,
    retry: Optional[RetryPolicy] = None,
    checkpoint_dir: Optional[str] = None,
    checkpoint_every: Optional[float] = None,
    restore_from: Optional[str] = None,
    halt_at: Optional[float] = None,
) -> Optional[DbOutageResult]:
    """Run the outage scenario and collect the robustness story.

    A thin wrapper over :class:`DbOutageRun`.  With ``restore_from`` the
    scenario configuration comes from the snapshot and every other
    scenario argument is ignored; the checkpoint arguments still apply.
    Returns ``None`` only when ``halt_at`` stops the run early.
    """
    if restore_from is not None:
        run = DbOutageRun.restore(restore_from)
    else:
        run = DbOutageRun(
            seed=seed,
            outages=outages,
            timeout_prob=timeout_prob,
            drop_prob=drop_prob,
            error_prob=error_prob,
            malformed_prob=malformed_prob,
            latency_s=latency_s,
            latency_spike_prob=latency_spike_prob,
            latency_spike_s=latency_spike_s,
            poll_interval_s=poll_interval_s,
            lease_duration_s=lease_duration_s,
            withdraw_in_outage=withdraw_in_outage,
            secondary=secondary,
            tail_s=tail_s,
            timing=timing,
            retry=retry,
        )
    return run.run(
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
        halt_at=halt_at,
    )


# -- Sweep integration ---------------------------------------------------------


def db_outage_cell(
    seed: int,
    outage_s: float,
    timeout_prob: float = 0.05,
    drop_prob: float = 0.05,
    error_prob: float = 0.02,
    malformed_prob: float = 0.02,
    latency_spike_prob: float = 0.05,
    withdraw: bool = False,
    secondary: bool = False,
    tail_s: float = 200.0,
    checkpoint: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """One sweep cell: a single outage of ``outage_s`` seconds.

    Returns scalar metrics (throughput loss, event counts, compliance)
    plus the run digest, so determinism across ``--jobs`` levels is
    checkable cell by cell.

    ``checkpoint`` (injected by the sweep runner) carries ``dir`` and
    optional ``every`` (sim seconds); a re-executed cell resumes from the
    latest snapshot in ``dir`` instead of replaying from t=0.
    """
    ckpt_dir = checkpoint.get("dir") if checkpoint else None
    ckpt_every = checkpoint.get("every", 60.0) if checkpoint else None
    resume_from = latest_checkpoint(ckpt_dir) if ckpt_dir else None
    if resume_from is not None:
        run = DbOutageRun.restore(resume_from)
    else:
        run = DbOutageRun(
            seed=seed,
            outages=((60.0, outage_s),),
            timeout_prob=timeout_prob,
            drop_prob=drop_prob,
            error_prob=error_prob,
            malformed_prob=malformed_prob,
            latency_spike_prob=latency_spike_prob,
            withdraw_in_outage=0 if withdraw else None,
            secondary=secondary,
            tail_s=tail_s,
        )
    result = run.run(checkpoint_dir=ckpt_dir, checkpoint_every=ckpt_every)
    counts = result.counts
    return {
        "outage_s": outage_s,
        "throughput_loss_fraction": round(result.loss_fraction, 6),
        "downtime_s": round(result.downtime_s, 3),
        "window_s": round(result.window_s, 3),
        "faults_injected": counts.get("fault-injected", 0),
        "retries": counts.get("retry", 0),
        "backoffs": counts.get("backoff", 0),
        "graces": counts.get("grace-entered", 0),
        "failovers": counts.get("failover", 0),
        "forced_vacates": counts.get("forced-vacate", 0),
        "violations": len(result.violations),
        "compliant": result.compliant,
        "digest": result.digest,
    }


#: The sweep runner injects ``checkpoint={"dir": ..., "every": ...}`` into
#: cell functions that advertise support.
db_outage_cell.supports_checkpoint = True


def db_outage_sweep_spec(
    durations: Sequence[float] = (15.0, 45.0, 90.0, 180.0),
    seeds: Sequence[int] = (1, 2),
    withdraw: bool = False,
    secondary: bool = False,
):
    """Throughput-loss-vs-outage-duration grid as a SweepSpec."""
    from repro.experiments.sweep import SweepSpec

    return SweepSpec.from_grid(
        name="db_outage",
        scenario_name="db_outage",
        grid={"outage_s": [float(d) for d in durations], "seed": list(seeds)},
        base={"withdraw": withdraw, "secondary": secondary},
    )
