"""Section 6.3.3: PRACH preamble detector evaluation.

Three claims to reproduce:

* preambles are reliably detectable at **-10 dB SNR** (the operating point
  the contention estimator counts clients at);
* the low-complexity detector needs only "two correlations" regardless of
  the preamble signature or timing, versus one correlation per candidate
  signature for the naive detector -- a large complexity ratio;
* the detector runs faster than the line rate (the paper measured 16x on
  an Intel i7 for a 10 MHz channel; we report the ratio measured on the
  host running the benchmark).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.phy.prach import (
    FastPrachDetector,
    NaivePrachDetector,
    PrachPreamble,
    ZC_LENGTH,
    detection_probability,
    false_alarm_rate,
    transmit_preamble,
)

#: Candidate roots a naive overhearing detector must scan: with the typical
#: urban cyclic-shift configuration (Ncs=13 -> 64 signatures from 16 roots)
#: a cell's 64 preambles derive from 16 root sequences.
NAIVE_ROOT_SET = tuple(range(22, 22 + 16))

#: Sampling rate of a 10 MHz LTE channel (the paper's line-rate reference).
LINE_RATE_SAMPLES_PER_S = 15.36e6


@dataclass
class PrachEvalResult:
    """Detector evaluation outcomes.

    Attributes:
        detection_by_snr: SNR (dB) -> detection probability (fast detector).
        false_alarm: fast-detector false-alarm rate on noise.
        complexity_ratio: naive MACs / fast MACs for one window.
        speed_factor_vs_line_rate: measured host throughput over the raw
            10 MHz sample rate (the paper's C implementation managed 16x;
            a numpy implementation lands near 1x).
        speed_factor_vs_occasion_rate: measured throughput over what a
            deployment actually needs -- one 839-sample PRACH occasion per
            10 ms radio frame.
        shift_identified: whether the fast detector recovered the cyclic
            shift of a delayed preamble (sanity property).
    """

    detection_by_snr: Dict[float, float] = field(default_factory=dict)
    false_alarm: float = 0.0
    complexity_ratio: float = 0.0
    speed_factor_vs_line_rate: float = 0.0
    speed_factor_vs_occasion_rate: float = 0.0
    shift_identified: bool = False


def run_prach_eval(
    seed: int = 11,
    snrs_db: Sequence[float] = (-20.0, -16.0, -13.0, -10.0, -7.0, -4.0),
    trials: int = 40,
    speed_trials: int = 50,
) -> PrachEvalResult:
    """Sweep SNR, measure false alarms, complexity and host speed."""
    rng = np.random.default_rng(seed)
    fast = FastPrachDetector(root=NAIVE_ROOT_SET[0])
    naive = NaivePrachDetector(candidate_roots=NAIVE_ROOT_SET)
    result = PrachEvalResult()

    probe = PrachPreamble(root=NAIVE_ROOT_SET[0], cyclic_shift=29)
    for snr in snrs_db:
        result.detection_by_snr[snr] = detection_probability(
            fast, snr, rng, trials=trials, preamble=probe
        )
    result.false_alarm = false_alarm_rate(fast, rng, trials=max(200, trials))

    # Complexity: the same received window through both detectors.
    window = transmit_preamble(
        PrachPreamble(root=NAIVE_ROOT_SET[0], cyclic_shift=17),
        snr_db=-10.0,
        rng=rng,
        delay_samples=123,
    )
    fast_result = fast.detect(window)
    naive_result = naive.detect(window)
    result.complexity_ratio = naive_result.complex_macs / fast_result.complex_macs
    # A preamble with cyclic shift c and delay d appears at shift c + d... the
    # detector must land on a peak, and identify *a* shift deterministically.
    result.shift_identified = fast_result.detected

    # Host-speed measurement: streamed (batched) windows per second.
    batch = np.tile(window, (speed_trials, 1))
    fast.detect_batch(batch)  # Warm-up (FFT planning, allocation).
    start = time.perf_counter()
    fast.detect_batch(batch)
    elapsed = time.perf_counter() - start
    samples_per_s = speed_trials * ZC_LENGTH / elapsed
    # A PRACH occasion occupies ~1 ms every radio frame; detection must keep
    # up with the preamble sample rate.  Compare against the raw channel
    # sample rate as the paper does.
    result.speed_factor_vs_line_rate = samples_per_s / LINE_RATE_SAMPLES_PER_S
    # One PRACH occasion (839 samples) arrives every 10 ms radio frame.
    occasion_rate_samples_per_s = ZC_LENGTH / 10e-3
    result.speed_factor_vs_occasion_rate = (
        samples_per_s / occasion_rate_samples_per_s
    )
    return result
