"""Figure 6: the spectrum-database vacate/reacquire timeline.

Section 6.2's experiment: "At 57 sec channel is removed from the DB for
5 min, 2 sec later the AP radio is turned off and the client stops
transmitting."  After the channel returns, the AP needs 1 min 36 s to
reboot with the new radio parameters and the client another 56 s of cell
search before traffic resumes.

ETSI EN 301 598 requires transmissions to stop within **one minute** of
the channel ceasing to be available; the timeline must show compliance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.cellfi import CellFiAccessPoint
from repro.lte.rrc import ReacquisitionTiming
from repro.lte.ue import UserEquipment
from repro.sim.engine import Simulator
from repro.tvws.channels import US_CHANNEL_PLAN
from repro.tvws.database import SpectrumDatabase
from repro.tvws.paws import PawsServer
from repro.tvws.regulatory import EtsiComplianceRules

#: The experiment script (paper Figure 6).
WITHDRAW_AT_S = 57.0
RESTORE_AFTER_S = 300.0
TOTAL_DURATION_S = 700.0


@dataclass
class Fig6Result:
    """Timeline milestones of the vacate/reacquire cycle.

    Attributes:
        withdraw_time_s: when the channel left the database.
        radio_off_time_s: when the AP stopped transmitting.
        restore_time_s: when the channel returned to the database.
        radio_on_time_s: when the AP was back on the air.
        client_reconnect_time_s: when a client resumed traffic.
        compliant: no ETSI violations recorded.
    """

    withdraw_time_s: float
    radio_off_time_s: Optional[float]
    restore_time_s: float
    radio_on_time_s: Optional[float]
    client_reconnect_time_s: Optional[float]
    compliant: bool
    timeline: List[Tuple[float, str]]

    @property
    def vacate_latency_s(self) -> Optional[float]:
        """Seconds from withdrawal to silence (must be < 60)."""
        if self.radio_off_time_s is None:
            return None
        return self.radio_off_time_s - self.withdraw_time_s

    @property
    def resume_latency_s(self) -> Optional[float]:
        """Seconds from restoration to client traffic."""
        if self.client_reconnect_time_s is None:
            return None
        return self.client_reconnect_time_s - self.restore_time_s


def run_db_timeline(
    poll_interval_s: float = 2.0,
    timing: Optional[ReacquisitionTiming] = None,
) -> Fig6Result:
    """Execute the Figure 6 script and extract the milestones."""
    sim = Simulator()
    database = SpectrumDatabase(US_CHANNEL_PLAN, lease_duration_s=3600.0)
    paws = PawsServer(database)
    compliance = EtsiComplianceRules()
    ap = CellFiAccessPoint(
        sim=sim,
        paws=paws,
        x=1000.0,
        y=1000.0,
        serial="fig6-ap",
        timing=timing or ReacquisitionTiming(),
        compliance=compliance,
    )
    ap.selector.poll_interval_s = poll_interval_s
    client = UserEquipment(ue_id=0, node=type("N", (), {"x": 1200.0, "y": 1000.0})())
    ap.register_client(client)
    ap.start()

    # Bring the network fully up (reboot + cell search happen off-camera in
    # the paper's figure, which starts with an operational AP).
    boot = (timing or ReacquisitionTiming()).time_to_resume() + 10.0
    sim.run(until=boot)
    channel = ap.selector.current_channel
    if channel is None or not ap.radio_on:
        raise RuntimeError("AP failed to come up before the measurement window")

    # The paper's site had effectively one usable channel: remove all others
    # so losing this one leaves the AP with no spectrum at all.
    for tv_channel in database.plan.channels:
        if tv_channel.number != channel:
            database.withdraw_channel(tv_channel.number)

    withdraw_at = sim.now + WITHDRAW_AT_S
    restore_at = withdraw_at + RESTORE_AFTER_S
    sim.schedule_at(withdraw_at, lambda: database.withdraw_channel(channel))
    sim.schedule_at(restore_at, lambda: database.restore_channel(channel))
    # Periodic regulatory audit.
    sim.schedule_every(5.0, lambda: compliance.check_time(sim.now))
    sim.run(until=restore_at + TOTAL_DURATION_S)

    timeline = ap.timeline + [
        (t, f"{kind}:{detail}") for t, kind, detail in ap.selector.timeline()
    ]
    timeline.sort(key=lambda item: item[0])

    radio_off = _first_after(timeline, withdraw_at, "radio-off")
    radio_on = _first_after(timeline, restore_at, "radio-on")
    reconnect = _first_after(timeline, restore_at, "ue-0-connected")
    return Fig6Result(
        withdraw_time_s=withdraw_at,
        radio_off_time_s=radio_off,
        restore_time_s=restore_at,
        radio_on_time_s=radio_on,
        client_reconnect_time_s=reconnect,
        compliant=compliance.compliant,
        timeline=timeline,
    )


def _first_after(
    timeline: List[Tuple[float, str]], after_s: float, event: str
) -> Optional[float]:
    for time_s, name in timeline:
        if time_s >= after_s and name == event:
            return time_s
    return None
