"""Shared scenario construction for the large-scale experiments.

Every technology comparison in the paper runs on the *same* topology with
the same propagation, so differences are attributable to the MAC.  A
:class:`Scenario` bundles that common substrate; per-technology runners
live in :mod:`repro.experiments.large_scale`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.phy.propagation import (
    CompositeChannel,
    LogNormalShadowing,
    UrbanHataPathLoss,
)
from repro.phy.resource_grid import ResourceGrid
from repro.sim.rng import RngStreams
from repro.sim.topology import Topology, random_topology, reassociate_strongest

#: Simulation area side (paper: "We simulate an area of 2 km x 2 km").
AREA_M = 2000.0

#: Clients are placed within this range of their AP (cell range ~1 km; the
#: strongest-cell reassociation then shortens most links).
CLIENT_RANGE_M = 800.0

#: LTE carrier for the large-scale runs (paper: "We choose 5 MHz channel").
LTE_BANDWIDTH_HZ = 5e6

#: Shadowing deviation for the urban area.
SHADOWING_SIGMA_DB = 7.0


#: Values of ``REPRO_FULL`` that enable paper-scale runs.
_TRUTHY = frozenset({"1", "true", "yes", "on"})


def full_scale() -> bool:
    """Whether to run paper-scale experiments (``REPRO_FULL`` truthy) or CI-scale.

    Accepts the usual truthy spellings (``1``/``true``/``yes``/``on``,
    any case); everything else -- including unset -- is CI scale.
    """
    return os.environ.get("REPRO_FULL", "").strip().lower() in _TRUTHY


@dataclass
class Scenario:
    """One evaluated deployment: topology + propagation + carrier.

    Construct via :func:`build_scenario` so all technologies share the
    association and shadowing draws.
    """

    seed: int
    n_aps: int
    clients_per_ap: int
    topology: Topology
    channel: CompositeChannel
    rngs: RngStreams

    @property
    def ap_ids(self) -> List[int]:
        """All access-point ids."""
        return [ap.ap_id for ap in self.topology.aps]

    def grid(self) -> ResourceGrid:
        """A fresh LTE resource grid for this scenario."""
        return ResourceGrid(LTE_BANDWIDTH_HZ)


def build_scenario(
    seed: int,
    n_aps: int,
    clients_per_ap: int = 6,
    area_m: float = AREA_M,
    client_range_m: float = CLIENT_RANGE_M,
) -> Scenario:
    """Create a deployment: random APs, clients, strongest-cell association.

    Args:
        seed: experiment seed; every stochastic component derives from it.
        n_aps: deployment density (paper sweeps 6..14).
        clients_per_ap: clients spawned per AP (paper: 6, denser: 16).
    """
    rngs = RngStreams(seed)
    channel = CompositeChannel(
        UrbanHataPathLoss(),
        LogNormalShadowing(SHADOWING_SIGMA_DB, seed=seed),
    )
    topology = random_topology(
        rngs.stream("topology"),
        n_aps=n_aps,
        clients_per_ap=clients_per_ap,
        area_m=area_m,
        client_range_m=client_range_m,
    )
    topology = reassociate_strongest(topology, channel.loss_db)
    return Scenario(
        seed=seed,
        n_aps=n_aps,
        clients_per_ap=clients_per_ap,
        topology=topology,
        channel=channel,
        rngs=rngs,
    )
