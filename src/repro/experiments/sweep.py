"""Parallel, fault-tolerant sweep runner for experiment grids.

Every paper figure is a grid of independent scenario cells
(seed x configuration x technology).  This module turns such a grid into
a :class:`SweepSpec` and fans it out across worker processes:

* **Caching / resume** -- each cell is keyed by a stable hash of its
  (scenario, params) config; a re-run against an existing JSONL results
  log skips cells that already completed, recomputing only the missing
  or failed ones.
* **Fault tolerance** -- each cell runs in its own worker process with a
  per-task timeout and bounded retry, so one hung or crashed scenario
  degrades to a recorded ``timeout``/``failed`` record instead of
  killing the sweep (or its sibling tasks).
* **JSONL results log** -- one record per cell (config hash, params,
  outcome, wall time, metrics) appended as cells complete (crash-safe)
  and canonically rewritten in task order when the sweep finishes, so
  :mod:`repro.utils.reportgen` can aggregate paper-vs-measured tables
  from it.

Determinism discipline: a scenario cell must derive *all* randomness
from its own params (see :class:`repro.sim.rng.RngStreams`), never from
process-global state, so the same grid produces identical metrics at any
``jobs`` level and in any completion order.

Example::

    from repro.experiments.large_scale import fig9a_sweep_spec
    from repro.experiments.sweep import run_sweep

    result = run_sweep(fig9a_sweep_spec(densities=(6, 10), seeds=(1, 2)),
                       jobs=4, timeout_s=300.0, retries=1,
                       out_path="sweep.jsonl", resume=True)
"""

from __future__ import annotations

import hashlib
import importlib
import itertools
import json
import multiprocessing as mp
import multiprocessing.connection
import os
import pathlib
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

#: Task outcome labels recorded in the JSONL log.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"

#: Built-in scenario cells, resolved lazily (``module:function``) so the
#: registry never imports the heavy experiment modules until a worker
#: actually needs one, and so spawned workers can resolve them by name.
_BUILTIN_SCENARIOS: Dict[str, str] = {
    "large_scale_saturated": "repro.experiments.large_scale:large_scale_saturated_cell",
    "convergence": "repro.experiments.convergence:convergence_cell",
    "fig7_walk": "repro.experiments.interference_exp:fig7_cell",
    "fig1_drive_test": "repro.experiments.coverage:fig1_cell",
    "fig2_wifi_macs": "repro.experiments.wifi_macs:fig2_cell",
    "db_outage": "repro.experiments.db_outage:db_outage_cell",
}

#: Scenarios registered at runtime (tests, downstream extensions).
_SCENARIOS: Dict[str, Callable[..., Mapping[str, Any]]] = {}


def scenario(name: str) -> Callable:
    """Decorator: register a scenario cell function under ``name``.

    Runtime-registered callables are only visible to worker processes
    under the ``fork`` start method (the default on Linux); with
    ``spawn``, register via a ``module:function`` path instead.
    """

    def _register(fn: Callable[..., Mapping[str, Any]]) -> Callable:
        _SCENARIOS[name] = fn
        return fn

    return _register


def register_scenario(name: str, target: Union[str, Callable]) -> None:
    """Register a scenario by callable or importable ``module:function``."""
    if callable(target):
        _SCENARIOS[name] = target
    else:
        _BUILTIN_SCENARIOS[name] = target


def get_scenario(name: str) -> Callable[..., Mapping[str, Any]]:
    """Resolve a scenario name to its cell function."""
    if name in _SCENARIOS:
        return _SCENARIOS[name]
    if name in _BUILTIN_SCENARIOS:
        module_name, _, attr = _BUILTIN_SCENARIOS[name].partition(":")
        return getattr(importlib.import_module(module_name), attr)
    raise KeyError(
        f"unknown sweep scenario {name!r}; known: "
        f"{sorted(set(_SCENARIOS) | set(_BUILTIN_SCENARIOS))}"
    )


def _json_default(value: Any) -> Any:
    """Coerce numpy scalars (and similar) for canonical JSON."""
    for attr in ("item",):
        if hasattr(value, attr):
            return value.item()
    raise TypeError(f"not JSON-serialisable: {value!r} ({type(value).__name__})")


def canonical_json(payload: Any) -> str:
    """Canonical JSON used for both hashing and the results log."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=_json_default
    )


def config_hash(scenario_name: str, params: Mapping[str, Any]) -> str:
    """Stable hash of one cell's full configuration (the cache key)."""
    blob = canonical_json({"scenario": scenario_name, "params": dict(params)})
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class SweepTask:
    """One grid cell: a scenario name plus its JSON-able parameters."""

    scenario: str
    params: Tuple[Tuple[str, Any], ...]

    @staticmethod
    def make(scenario_name: str, params: Mapping[str, Any]) -> "SweepTask":
        """Build a task, normalising params into a hashable sorted tuple."""
        return SweepTask(
            scenario=scenario_name, params=tuple(sorted(params.items()))
        )

    @property
    def params_dict(self) -> Dict[str, Any]:
        """The cell parameters as a plain dict."""
        return dict(self.params)

    @property
    def config_hash(self) -> str:
        """The cell's stable cache key."""
        return config_hash(self.scenario, self.params_dict)


@dataclass
class SweepSpec:
    """A named, ordered list of grid cells to evaluate."""

    name: str
    tasks: List[SweepTask] = field(default_factory=list)

    @classmethod
    def from_grid(
        cls,
        name: str,
        scenario_name: str,
        grid: Mapping[str, Sequence[Any]],
        base: Optional[Mapping[str, Any]] = None,
    ) -> "SweepSpec":
        """Cartesian-product a grid of axes into cells, in axis order.

        ``grid`` maps parameter name to the values it sweeps; ``base``
        holds parameters common to every cell.  Later axes vary fastest,
        matching nested-loop order.
        """
        axes = list(grid.items())
        base = dict(base or {})
        tasks = []
        for combo in itertools.product(*(values for _, values in axes)):
            params = dict(base)
            params.update({key: value for (key, _), value in zip(axes, combo)})
            tasks.append(SweepTask.make(scenario_name, params))
        return cls(name=name, tasks=tasks)

    def __len__(self) -> int:
        return len(self.tasks)


@dataclass
class TaskRecord:
    """Outcome of one cell, as serialised into the JSONL log."""

    task_id: int
    config_hash: str
    scenario: str
    params: Dict[str, Any]
    status: str
    attempts: int
    wall_time_s: float
    metrics: Dict[str, Any]
    error: Optional[str] = None
    worker_pid: Optional[int] = None
    cached: bool = False
    telemetry: Optional[Dict[str, Any]] = None

    def to_json(self) -> str:
        """One canonical JSONL line (``cached`` is runtime-only state).

        The ``telemetry`` key only appears when a snapshot was collected,
        so logs from plain sweeps stay byte-identical to older ones.
        """
        payload = {
            "task_id": self.task_id,
            "config_hash": self.config_hash,
            "scenario": self.scenario,
            "params": self.params,
            "status": self.status,
            "attempts": self.attempts,
            "wall_time_s": round(self.wall_time_s, 6),
            "metrics": self.metrics,
            "error": self.error,
            "worker_pid": self.worker_pid,
        }
        if self.telemetry is not None:
            payload["telemetry"] = self.telemetry
        return canonical_json(payload)

    @staticmethod
    def from_json(line: str) -> "TaskRecord":
        payload = json.loads(line)
        return TaskRecord(
            task_id=int(payload["task_id"]),
            config_hash=payload["config_hash"],
            scenario=payload["scenario"],
            params=payload.get("params", {}),
            status=payload["status"],
            attempts=int(payload.get("attempts", 1)),
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
            metrics=payload.get("metrics", {}),
            error=payload.get("error"),
            worker_pid=payload.get("worker_pid"),
            telemetry=payload.get("telemetry"),
        )


@dataclass
class SweepResult:
    """All cell records of one sweep, ordered by task id."""

    spec_name: str
    records: List[TaskRecord]
    computed: int = 0
    reused: int = 0

    def by_status(self, status: str) -> List[TaskRecord]:
        """Records with the given outcome."""
        return [r for r in self.records if r.status == status]

    @property
    def ok(self) -> List[TaskRecord]:
        """Successfully-computed (or cache-reused) records."""
        return self.by_status(STATUS_OK)

    def metrics_by_hash(self) -> Dict[str, Dict[str, Any]]:
        """Map config hash -> metrics for every successful cell."""
        return {r.config_hash: r.metrics for r in self.ok}

    def raise_on_failures(self) -> None:
        """Raise if any cell did not complete successfully."""
        bad = [r for r in self.records if r.status != STATUS_OK]
        if bad:
            detail = "; ".join(
                f"task {r.task_id} ({r.scenario} {r.config_hash}): "
                f"{r.status}: {r.error}"
                for r in bad[:5]
            )
            raise RuntimeError(
                f"sweep {self.spec_name!r}: {len(bad)} cell(s) did not "
                f"complete: {detail}"
            )


def load_records(path: Union[str, pathlib.Path]) -> List[TaskRecord]:
    """Parse a JSONL results log, skipping blank or half-written lines.

    A crashed run can leave a truncated final line; tolerating it is what
    makes ``--resume`` safe against mid-write interruption.
    """
    records: List[TaskRecord] = []
    path = pathlib.Path(path)
    if not path.exists():
        return records
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(TaskRecord.from_json(line))
            except (json.JSONDecodeError, KeyError, ValueError):
                continue
    return records


def _task_checkpoint(
    checkpoint_dir: Optional[Union[str, pathlib.Path]],
    checkpoint_every: Optional[float],
    task: SweepTask,
) -> Optional[Dict[str, Any]]:
    """Per-cell checkpoint spec: a subdirectory keyed by the config hash.

    The key is the same stable hash the results cache uses, so a retried
    or resumed cell always finds its own snapshots and never a sibling's.
    """
    if checkpoint_dir is None:
        return None
    spec: Dict[str, Any] = {
        "dir": os.path.join(str(checkpoint_dir), task.config_hash)
    }
    if checkpoint_every is not None:
        spec["every"] = checkpoint_every
    return spec


def _run_cell(
    scenario_name: str,
    params: Dict[str, Any],
    collect_telemetry: bool,
    checkpoint: Optional[Dict[str, Any]] = None,
) -> Tuple[Dict[str, Any], float, Optional[Dict[str, Any]]]:
    """Run one cell; returns (metrics, wall_s, telemetry-or-None).

    With ``collect_telemetry`` the cell runs under its *own* cell-local
    :class:`~repro.obs.Telemetry` (metrics only -- no tracer, no
    profiler), so the snapshot it ships back depends only on the cell's
    params, never on which worker ran it or what ran before.  Metrics
    and snapshot both round-trip through canonical JSON so parent-side
    values are exactly what a resume would read back from the log.

    ``checkpoint`` is only forwarded to cell functions that advertise
    ``supports_checkpoint``; it stays out of the cell's params so the
    config hash (the cache key) is unaffected.
    """
    fn = get_scenario(scenario_name)
    kwargs = dict(params)
    if checkpoint is not None and getattr(fn, "supports_checkpoint", False):
        kwargs["checkpoint"] = checkpoint
    telemetry: Optional[Dict[str, Any]] = None
    start = time.perf_counter()
    if collect_telemetry:
        from repro.obs import Telemetry, activated

        cell_tel = Telemetry()
        with activated(cell_tel):
            metrics = fn(**kwargs)
        telemetry = json.loads(canonical_json(cell_tel.snapshot()))
    else:
        metrics = fn(**kwargs)
    wall = time.perf_counter() - start
    return json.loads(canonical_json(dict(metrics))), wall, telemetry


def _worker_entry(
    conn,
    scenario_name: str,
    params: Dict[str, Any],
    collect_telemetry: bool = False,
    checkpoint: Optional[Dict[str, Any]] = None,
) -> None:
    """Run one cell in a worker process and ship the outcome back."""
    try:
        metrics, wall, telemetry = _run_cell(
            scenario_name, params, collect_telemetry, checkpoint=checkpoint
        )
        conn.send((STATUS_OK, metrics, wall, telemetry))
    except BaseException as error:  # noqa: BLE001 - report, don't crash silently
        conn.send((STATUS_FAILED, f"{type(error).__name__}: {error}", 0.0, None))
    finally:
        conn.close()


def _default_context() -> mp.context.BaseContext:
    """Prefer ``fork`` (fast, sees runtime-registered scenarios)."""
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return mp.get_context("spawn")


@dataclass
class _Active:
    """Book-keeping for one in-flight worker process."""

    task_id: int
    attempt: int
    process: mp.process.BaseProcess
    conn: multiprocessing.connection.Connection
    started: float
    deadline: Optional[float]


def _run_inline(
    spec: SweepSpec,
    skip: Dict[str, TaskRecord],
    collect_telemetry: bool = False,
    checkpoint_dir: Optional[Union[str, pathlib.Path]] = None,
    checkpoint_every: Optional[float] = None,
) -> Iterable[TaskRecord]:
    """In-process execution (``jobs=0``): no isolation, no timeouts.

    Telemetry collection uses the same cell-local instance as the worker
    path, so inline and pooled sweeps produce identical snapshots.
    """
    for task_id, task in enumerate(spec.tasks):
        key = task.config_hash
        if key in skip:
            yield _as_cached(task_id, skip[key])
            continue
        start = time.perf_counter()
        try:
            metrics, wall, telemetry = _run_cell(
                task.scenario,
                task.params_dict,
                collect_telemetry,
                checkpoint=_task_checkpoint(
                    checkpoint_dir, checkpoint_every, task
                ),
            )
            yield TaskRecord(
                task_id=task_id,
                config_hash=key,
                scenario=task.scenario,
                params=task.params_dict,
                status=STATUS_OK,
                attempts=1,
                wall_time_s=wall,
                metrics=metrics,
                worker_pid=os.getpid(),
                telemetry=telemetry,
            )
        except Exception as error:  # noqa: BLE001
            yield TaskRecord(
                task_id=task_id,
                config_hash=key,
                scenario=task.scenario,
                params=task.params_dict,
                status=STATUS_FAILED,
                attempts=1,
                wall_time_s=time.perf_counter() - start,
                metrics={},
                error=f"{type(error).__name__}: {error}",
                worker_pid=os.getpid(),
            )


def _as_cached(task_id: int, prior: TaskRecord) -> TaskRecord:
    """Re-emit a prior successful record under the current task id."""
    return TaskRecord(
        task_id=task_id,
        config_hash=prior.config_hash,
        scenario=prior.scenario,
        params=prior.params,
        status=prior.status,
        attempts=prior.attempts,
        wall_time_s=prior.wall_time_s,
        metrics=prior.metrics,
        error=prior.error,
        worker_pid=prior.worker_pid,
        cached=True,
        telemetry=prior.telemetry,
    )


def _run_pool(
    spec: SweepSpec,
    skip: Dict[str, TaskRecord],
    jobs: int,
    timeout_s: Optional[float],
    retries: int,
    ctx: mp.context.BaseContext,
    join_grace_s: float = 5.0,
    collect_telemetry: bool = False,
    checkpoint_dir: Optional[Union[str, pathlib.Path]] = None,
    checkpoint_every: Optional[float] = None,
) -> Iterable[TaskRecord]:
    """Process-per-task pool: up to ``jobs`` cells in flight at once.

    Yields records in *completion* order; the caller re-orders for the
    canonical log.  A cell that raises is retried up to ``retries``
    times; one that outlives ``timeout_s`` is terminated and retried the
    same way.  Either way the final record carries the outcome instead
    of propagating into the sweep.

    With ``checkpoint_dir`` set, a checkpoint-capable cell snapshots
    mid-run; its retry after a crash or timeout then restores from the
    latest snapshot instead of replaying the cell from the start.
    """
    for task_id, task in enumerate(spec.tasks):
        if task.config_hash in skip:
            yield _as_cached(task_id, skip[task.config_hash])
    pending = deque(
        (task_id, 1)
        for task_id, task in enumerate(spec.tasks)
        if task.config_hash not in skip
    )
    active: List[_Active] = []
    errors: Dict[int, str] = {}

    def _launch(task_id: int, attempt: int) -> None:
        task = spec.tasks[task_id]
        recv, send = ctx.Pipe(duplex=False)
        process = ctx.Process(
            target=_worker_entry,
            args=(
                send,
                task.scenario,
                task.params_dict,
                collect_telemetry,
                _task_checkpoint(checkpoint_dir, checkpoint_every, task),
            ),
            daemon=True,
        )
        process.start()
        send.close()
        now = time.monotonic()
        active.append(
            _Active(
                task_id=task_id,
                attempt=attempt,
                process=process,
                conn=recv,
                started=now,
                deadline=now + timeout_s if timeout_s else None,
            )
        )

    def _reap(worker: _Active) -> Tuple[str, Any, float, Optional[Dict[str, Any]]]:
        """Collect (status, payload, wall, telemetry) from a worker."""
        outcome: Tuple[str, Any, float, Optional[Dict[str, Any]]]
        if worker.conn.poll():
            try:
                outcome = worker.conn.recv()
            except (EOFError, OSError):
                worker.process.join(join_grace_s)
                outcome = (
                    STATUS_FAILED,
                    "worker died without reporting "
                    f"(exit code {worker.process.exitcode})",
                    time.monotonic() - worker.started,
                    None,
                )
        elif worker.deadline is not None and time.monotonic() >= worker.deadline:
            outcome = (
                STATUS_TIMEOUT,
                f"exceeded timeout of {timeout_s:g} s",
                time.monotonic() - worker.started,
                None,
            )
            worker.process.terminate()
        else:
            code = worker.process.exitcode
            outcome = (
                STATUS_FAILED,
                f"worker exited without reporting (exit code {code})",
                time.monotonic() - worker.started,
                None,
            )
        worker.process.join(join_grace_s)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(join_grace_s)
        worker.conn.close()
        return outcome

    try:
        while pending or active:
            while pending and len(active) < max(jobs, 1):
                _launch(*pending.popleft())
            if not active:
                continue
            next_deadline = min(
                (w.deadline for w in active if w.deadline is not None),
                default=None,
            )
            wait_s = 0.05
            if next_deadline is not None:
                wait_s = min(wait_s, max(next_deadline - time.monotonic(), 0.0))
            multiprocessing.connection.wait(
                [w.conn for w in active], timeout=wait_s
            )
            still_active: List[_Active] = []
            for worker in active:
                done = (
                    worker.conn.poll()
                    or not worker.process.is_alive()
                    or (
                        worker.deadline is not None
                        and time.monotonic() >= worker.deadline
                    )
                )
                if not done:
                    still_active.append(worker)
                    continue
                status, payload, wall, telemetry = _reap(worker)
                task = spec.tasks[worker.task_id]
                if status == STATUS_OK:
                    yield TaskRecord(
                        task_id=worker.task_id,
                        config_hash=task.config_hash,
                        scenario=task.scenario,
                        params=task.params_dict,
                        status=STATUS_OK,
                        attempts=worker.attempt,
                        wall_time_s=wall,
                        metrics=payload,
                        worker_pid=worker.process.pid,
                        telemetry=telemetry,
                    )
                elif worker.attempt <= retries:
                    errors[worker.task_id] = payload
                    pending.append((worker.task_id, worker.attempt + 1))
                else:
                    yield TaskRecord(
                        task_id=worker.task_id,
                        config_hash=task.config_hash,
                        scenario=task.scenario,
                        params=task.params_dict,
                        status=status,
                        attempts=worker.attempt,
                        wall_time_s=wall,
                        metrics={},
                        error=str(payload),
                        worker_pid=worker.process.pid,
                    )
            active = still_active
    finally:
        for worker in active:
            worker.process.terminate()
            worker.process.join(join_grace_s)
            if worker.process.is_alive():
                worker.process.kill()
            worker.conn.close()


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    out_path: Optional[Union[str, pathlib.Path]] = None,
    resume: bool = False,
    start_method: Optional[str] = None,
    collect_telemetry: bool = False,
    checkpoint_dir: Optional[Union[str, pathlib.Path]] = None,
    checkpoint_every: Optional[float] = None,
) -> SweepResult:
    """Evaluate every cell of ``spec`` and return the ordered records.

    Args:
        jobs: worker processes to keep in flight.  ``0`` runs the cells
            inline in this process (no isolation; ``timeout_s`` and
            ``retries`` are ignored) -- the mode the figure drivers use.
        timeout_s: per-cell wall-clock limit; a cell past it is
            terminated and recorded as ``timeout`` (after retries).
        retries: extra attempts granted to a failed/timed-out cell.
        out_path: JSONL results log.  Records append as cells complete
            (crash-safe) and the file is rewritten in canonical task
            order when the sweep finishes.
        resume: reuse successful records found in ``out_path`` whose
            config hash matches a cell of this sweep; only missing or
            unsuccessful cells are recomputed.
        start_method: multiprocessing start method override
            (default: ``fork`` where available, else ``spawn``).
        collect_telemetry: run each cell under a cell-local metrics-only
            :class:`~repro.obs.Telemetry` and embed its snapshot in the
            record (and the JSONL log, under a ``telemetry`` key).
            Snapshots are deterministic: identical at any ``jobs`` level.
        checkpoint_dir: root directory for mid-cell snapshots.  Each
            checkpoint-capable cell writes to ``<dir>/<config_hash>/``
            and, when re-executed (a retry after a crash/timeout, or a
            fresh sweep over the same directory), resumes from the latest
            snapshot found there.  Cells without checkpoint support run
            unchanged.
        checkpoint_every: snapshot cadence, in each driver's own unit
            (sim seconds, epochs or replications); drivers default it
            when omitted.
    """
    skip: Dict[str, TaskRecord] = {}
    wanted = {task.config_hash for task in spec.tasks}
    if resume and out_path is not None:
        for record in load_records(out_path):
            if record.status == STATUS_OK and record.config_hash in wanted:
                skip[record.config_hash] = record

    if jobs <= 0:
        produced = _run_inline(
            spec,
            skip,
            collect_telemetry=collect_telemetry,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
        )
    else:
        ctx = (
            mp.get_context(start_method) if start_method else _default_context()
        )
        produced = _run_pool(
            spec, skip, jobs, timeout_s, retries, ctx,
            collect_telemetry=collect_telemetry,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
        )

    records: List[TaskRecord] = []
    log_handle = None
    if out_path is not None:
        path = pathlib.Path(out_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        log_handle = path.open("a" if resume else "w")
    try:
        for record in produced:
            records.append(record)
            if log_handle is not None and not record.cached:
                log_handle.write(record.to_json() + "\n")
                log_handle.flush()
    finally:
        if log_handle is not None:
            log_handle.close()

    records.sort(key=lambda r: r.task_id)
    if out_path is not None:
        _rewrite_canonical(pathlib.Path(out_path), records)
    return SweepResult(
        spec_name=spec.name,
        records=records,
        computed=sum(1 for r in records if not r.cached),
        reused=sum(1 for r in records if r.cached),
    )


def _rewrite_canonical(path: pathlib.Path, records: List[TaskRecord]) -> None:
    """Atomically replace the log with records in canonical task order."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    with tmp.open("w") as handle:
        for record in records:
            handle.write(record.to_json() + "\n")
    os.replace(tmp, path)
