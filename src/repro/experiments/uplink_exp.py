"""Uplink protection (extension of paper Section 5).

"The following discussion focuses on the downlink because the uplink is
much less saturated; yet, the uplink can be managed similarly."  In TDD
the subchannel allocation applies to both directions, so CellFi's
downlink decisions protect the uplink for free.  This experiment
quantifies that: run the downlink algorithms to steady state, then
evaluate the uplink under the converged allocations for plain LTE
(everyone everywhere) vs CellFi (disentangled holdings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from repro.baselines.plain_lte import PlainLtePolicy
from repro.core.interference.manager import CellFiInterferenceManager
from repro.experiments.common import Scenario, build_scenario
from repro.lte.network import LteNetworkSimulator
from repro.lte.uplink import UplinkModel
from repro.traffic.backlogged import saturated_demand_fn


@dataclass
class UplinkComparison:
    """Uplink outcomes under each technology's converged allocation.

    Attributes:
        sinr_db: per-client uplink SINR samples per technology.
        throughput_bps: per-client uplink throughput per technology.
    """

    sinr_db: Dict[str, List[float]] = field(default_factory=dict)
    throughput_bps: Dict[str, List[float]] = field(default_factory=dict)

    def median_sinr_db(self, tech: str) -> float:
        """Median uplink SINR."""
        return float(np.median(self.sinr_db[tech]))

    def median_bps(self, tech: str) -> float:
        """Median uplink throughput."""
        return float(np.median(self.throughput_bps[tech]))


def run_uplink_comparison(
    seed: int = 2,
    n_aps: int = 8,
    clients_per_ap: int = 5,
    epochs: int = 10,
) -> UplinkComparison:
    """Converge each downlink policy, then score the uplink under it."""
    scenario = build_scenario(seed, n_aps, clients_per_ap)
    result = UplinkComparison()
    demands = {c.client_id: float("inf") for c in scenario.topology.clients}

    for tech in ("LTE", "CellFi"):
        net = LteNetworkSimulator(
            scenario.topology, scenario.grid(), scenario.channel,
            scenario.rngs.fork(f"ul-{tech}"),
        )
        if tech == "CellFi":
            policy = CellFiInterferenceManager(
                scenario.ap_ids, net.grid.n_subchannels,
                scenario.rngs.fork("ul-mgr"),
            )
        else:
            policy = PlainLtePolicy(scenario.ap_ids, net.grid.n_subchannels)
        observations = None
        allowed = None
        for epoch in range(epochs):
            allowed = policy.decide(epoch, observations)
            observations = net.run_epoch(epoch, allowed, demands).observations

        uplink = UplinkModel(scenario.topology, net.grid, scenario.channel)
        outcome = uplink.run_epoch(allowed, demands)
        clients = [c.client_id for c in scenario.topology.clients]
        result.sinr_db[tech] = [
            outcome.sinr_db.get(cid, -30.0) for cid in clients
        ]
        result.throughput_bps[tech] = [
            outcome.throughput_bps.get(cid, 0.0) for cid in clients
        ]
    return result
