"""Theorem 1 validation and the Section 5.3 channel re-use experiment.

Two studies:

* **Convergence scaling** -- run the abstract hopping game
  (:class:`repro.core.interference.theory.HoppingGame`) across network
  sizes, fading probabilities and demand slacks and verify the empirical
  convergence time stays under the Theorem 1 bound
  ``O(M log n / ((1-p) gamma))`` and scales like it.

* **Channel re-use gain** -- the paper's packing heuristic lets exposed
  clients ("very close to their respective access points") share the same
  subchannels across networks, "up to 2x gain in throughput for exposed
  clients".  We reproduce the two-cell exposed topology and compare the
  hopper with and without re-use.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.interference.manager import CellFiInterferenceManager
from repro.core.interference.theory import (
    HoppingGame,
    feasible_uniform_demands,
    random_conflict_graph,
    theorem1_round_bound,
)
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.lte.network import LteNetworkSimulator
from repro.phy.propagation import CompositeChannel, UrbanHataPathLoss
from repro.phy.resource_grid import ResourceGrid
from repro.sim.checkpoint import (
    CheckpointRegistry,
    Snapshot,
    from_jsonable,
    latest_checkpoint,
    to_jsonable,
)
from repro.sim.rng import RngStreams
from repro.sim.topology import AccessPointSite, ClientSite, Topology


@dataclass
class ConvergencePoint:
    """Empirical convergence at one parameter setting.

    Attributes:
        n_nodes / fading_p / gamma: the game parameters.
        mean_rounds: average rounds to convergence over replications.
        bound_rounds: the Theorem 1 bound at unit constant.
        converged_all: whether every replication converged.
    """

    n_nodes: int
    fading_p: float
    gamma: float
    mean_rounds: float
    bound_rounds: float
    converged_all: bool


SCENARIO_CONVERGENCE = "convergence"


class ConvergenceRun:
    """Resumable replication-boundary runner for one Theorem-1 grid cell.

    The unit of progress is one hopping game: a snapshot after replication
    ``k`` captures the shared RNG stream plus the accumulated rounds, so a
    restored run replays replications ``k+1..n`` with the exact draws an
    uninterrupted run would have made.
    """

    def __init__(
        self,
        n_nodes: int,
        fading_p: float,
        m_subchannels: int = 13,
        gamma: float = 0.25,
        replications: int = 10,
        mean_degree: float = 3.0,
        seed: int = 17,
    ) -> None:
        self.config: Dict[str, Any] = {
            "n_nodes": n_nodes,
            "fading_p": fading_p,
            "m_subchannels": m_subchannels,
            "gamma": gamma,
            "replications": replications,
            "mean_degree": mean_degree,
            "seed": seed,
        }
        self.n_nodes = n_nodes
        self.fading_p = fading_p
        self.m_subchannels = m_subchannels
        self.gamma = gamma
        self.replications = replications
        self.mean_degree = mean_degree
        self.rngs = RngStreams(seed)
        self._rng = self.rngs.stream(f"convergence:{n_nodes}:{fading_p}")
        self._completed = 0
        self._rounds: List[int] = []
        self._all_converged = True
        self.registry = CheckpointRegistry()
        self.registry.register("rng", self.rngs)
        self.registry.register("driver", self)

    # -- Replication loop -------------------------------------------------------

    def step_replication(self) -> None:
        """Run one hopping game to convergence (or the round cap)."""
        if self._completed >= self.replications:
            raise RuntimeError(
                f"run already finished its {self.replications} replications"
            )
        graph = random_conflict_graph(self.n_nodes, self.mean_degree, self._rng)
        demands = feasible_uniform_demands(graph, self.m_subchannels, self.gamma)
        game = HoppingGame(
            graph, demands, self.m_subchannels, self.fading_p, self._rng
        )
        outcome = game.run(max_rounds=2000)
        self._all_converged = bool(self._all_converged and outcome.converged)
        if outcome.rounds_to_converge is not None:
            self._rounds.append(int(outcome.rounds_to_converge))
        self._completed += 1

    def run(
        self,
        checkpoint_dir: Optional[str] = None,
        checkpoint_every: Optional[int] = None,
        halt_at: Optional[int] = None,
    ) -> Optional[Dict[str, object]]:
        """Run to completion (or to replication ``halt_at``), checkpointing.

        Returns the cell metrics, or ``None`` when halted early.
        """
        stop = (
            self.replications
            if halt_at is None
            else min(int(halt_at), self.replications)
        )
        while self._completed < stop:
            self.step_replication()
            if (
                checkpoint_dir is not None
                and checkpoint_every
                and self._completed % int(checkpoint_every) == 0
            ):
                self.save_checkpoint(checkpoint_dir)
        if stop < self.replications:
            if checkpoint_dir is not None:
                self.save_checkpoint(checkpoint_dir)
            return None
        return self.result()

    def result(self) -> Dict[str, object]:
        """The cell metrics dict the sweep records."""
        return {
            "mean_rounds": (
                float(np.mean(self._rounds)) if self._rounds else float("nan")
            ),
            "bound_rounds": theorem1_round_bound(
                self.n_nodes, self.m_subchannels, self.gamma, self.fading_p
            ),
            "converged_all": bool(self._all_converged),
        }

    # -- Checkpointing ----------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        return {
            "completed": self._completed,
            "rounds": list(self._rounds),
            "all_converged": self._all_converged,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self._completed = state["completed"]
        self._rounds = [int(r) for r in state["rounds"]]
        self._all_converged = state["all_converged"]

    def save_checkpoint(self, directory: str) -> str:
        """Write a snapshot named by the replication just finished."""
        os.makedirs(directory, exist_ok=True)
        snapshot = self.registry.snapshot(
            meta={
                "driver": SCENARIO_CONVERGENCE,
                "config": to_jsonable(self.config),
            }
        )
        path = os.path.join(directory, f"ckpt_rep_{self._completed:06d}.json")
        snapshot.save(path)
        return path

    def run_digest(self) -> str:
        """Canonical digest over all registered state (for replay checks)."""
        return self.registry.run_digest()

    @classmethod
    def from_snapshot(cls, snapshot: Snapshot) -> "ConvergenceRun":
        """Build-then-load: reconstruct from the embedded config, restore."""
        config = from_jsonable(snapshot.meta["config"])
        run = cls(**config)
        run.registry.restore(snapshot)
        return run

    @classmethod
    def restore(cls, path: str) -> "ConvergenceRun":
        """Load a snapshot file and restore a run from it."""
        return cls.from_snapshot(Snapshot.load(path))


def convergence_cell(
    n_nodes: int,
    fading_p: float,
    m_subchannels: int = 13,
    gamma: float = 0.25,
    replications: int = 10,
    mean_degree: float = 3.0,
    seed: int = 17,
    checkpoint: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """One Theorem-1 grid cell: ``replications`` games at (n, p).

    The cell's generator derives from (seed, n, p) via
    :class:`~repro.sim.rng.RngStreams`, so every cell is independent of
    its position in the grid and of which worker evaluates it.

    ``checkpoint`` (injected by the sweep runner) carries ``dir`` and
    optional ``every`` (replications); a re-executed cell resumes from the
    latest snapshot in ``dir``.
    """
    ckpt_dir = checkpoint.get("dir") if checkpoint else None
    ckpt_every = checkpoint.get("every", 5) if checkpoint else None
    resume_from = latest_checkpoint(ckpt_dir) if ckpt_dir else None
    if resume_from is not None:
        run = ConvergenceRun.restore(resume_from)
    else:
        run = ConvergenceRun(
            n_nodes,
            fading_p,
            m_subchannels=m_subchannels,
            gamma=gamma,
            replications=replications,
            mean_degree=mean_degree,
            seed=seed,
        )
    metrics = run.run(checkpoint_dir=ckpt_dir, checkpoint_every=ckpt_every)
    metrics = dict(metrics)
    metrics["run_digest"] = run.run_digest()
    return metrics


convergence_cell.supports_checkpoint = True


def convergence_sweep_spec(
    n_nodes_list: Sequence[int] = (8, 16, 32, 64),
    fading_list: Sequence[float] = (0.0, 0.3),
    m_subchannels: int = 13,
    gamma: float = 0.25,
    replications: int = 10,
    mean_degree: float = 3.0,
    seed: int = 17,
) -> SweepSpec:
    """The Theorem-1 grid: network size x fading probability."""
    return SweepSpec.from_grid(
        "convergence",
        SCENARIO_CONVERGENCE,
        grid={"n_nodes": list(n_nodes_list), "fading_p": list(fading_list)},
        base={
            "m_subchannels": m_subchannels,
            "gamma": gamma,
            "replications": replications,
            "mean_degree": mean_degree,
            "seed": seed,
        },
    )


def run_convergence_sweep(
    n_nodes_list: Sequence[int] = (8, 16, 32, 64),
    fading_list: Sequence[float] = (0.0, 0.3),
    m_subchannels: int = 13,
    gamma: float = 0.25,
    replications: int = 10,
    mean_degree: float = 3.0,
    seed: int = 17,
    jobs: int = 0,
    **sweep_kwargs,
) -> List[ConvergencePoint]:
    """Sweep network size and fading; measure rounds to convergence.

    The (n, p) grid runs through the sweep runner; ``jobs=0`` stays
    serial in-process, ``jobs>=1`` fans cells out over workers.
    """
    spec = convergence_sweep_spec(
        n_nodes_list=n_nodes_list,
        fading_list=fading_list,
        m_subchannels=m_subchannels,
        gamma=gamma,
        replications=replications,
        mean_degree=mean_degree,
        seed=seed,
    )
    result = run_sweep(spec, jobs=jobs, **sweep_kwargs)
    result.raise_on_failures()
    points: List[ConvergencePoint] = []
    for record in result.records:
        params, metrics = record.params, record.metrics
        points.append(
            ConvergencePoint(
                n_nodes=params["n_nodes"],
                fading_p=params["fading_p"],
                gamma=params["gamma"],
                mean_rounds=metrics["mean_rounds"],
                bound_rounds=metrics["bound_rounds"],
                converged_all=metrics["converged_all"],
            )
        )
    return points


# -- Channel re-use (packing) gain --------------------------------------------


def _exposed_two_cell_topology(separation_m: float = 450.0) -> Topology:
    """Two interfering cells, each with close ("exposed") and edge clients.

    The edge clients sit between the cells, so each AP overhears their
    PRACH and the share calculation splits the carrier.  The close clients
    (50 m from their AP) are the paper's exposed case: they "are not
    likely to interfere with anyone else", so scheduling them on the same
    subchannels across both cells is pure gain -- exactly what the re-use
    packing heuristic arranges by drifting interference-free holdings to
    low indices in both cells.
    """
    aps = [
        AccessPointSite(ap_id=0, x=0.0, y=0.0),
        AccessPointSite(ap_id=1, x=separation_m, y=0.0),
    ]
    clients = []
    cid = 0
    for ap, towards in ((aps[0], 1.0), (aps[1], -1.0)):
        # Two close clients, off-axis.
        for dy in (50.0, -50.0):
            clients.append(
                ClientSite(client_id=cid, x=ap.x, y=ap.y + dy, ap_id=ap.ap_id)
            )
            cid += 1
        # Two edge clients toward the other cell.
        for offset in (0.42, 0.46):
            clients.append(
                ClientSite(
                    client_id=cid,
                    x=ap.x + towards * separation_m * offset,
                    y=30.0,
                    ap_id=ap.ap_id,
                )
            )
            cid += 1
    return Topology(area_m=separation_m + 200.0, aps=aps, clients=clients)


@dataclass
class ReuseResult:
    """Throughput with and without the channel re-use heuristic.

    Attributes:
        median_with_reuse_bps / median_without_reuse_bps: median client
            throughput at steady state.
        exposed_with_reuse_bps / exposed_without_reuse_bps: median over
            the *close* (exposed) clients only -- the class the paper says
            gains "up to 2x".
        reuse_moves: packing moves executed with the heuristic on.
        overlap_with / overlap_without: subchannels both cells hold.
    """

    median_with_reuse_bps: float
    median_without_reuse_bps: float
    exposed_with_reuse_bps: float
    exposed_without_reuse_bps: float
    reuse_moves: int
    overlap_with: int
    overlap_without: int

    @property
    def gain(self) -> float:
        """Overall median throughput ratio attributable to packing."""
        if self.median_without_reuse_bps <= 0.0:
            return float("inf")
        return self.median_with_reuse_bps / self.median_without_reuse_bps

    @property
    def exposed_gain(self) -> float:
        """Exposed-client throughput ratio attributable to packing."""
        if self.exposed_without_reuse_bps <= 0.0:
            return float("inf")
        return self.exposed_with_reuse_bps / self.exposed_without_reuse_bps


def run_reuse_experiment(
    seed: int = 23, epochs: int = 25, separation_m: float = 450.0
) -> ReuseResult:
    """Compare the hopper with and without packing on the exposed topology."""
    medians: Dict[bool, float] = {}
    exposed_medians: Dict[bool, float] = {}
    moves = 0
    overlaps: Dict[bool, int] = {}
    for reuse_enabled in (True, False):
        rngs = RngStreams(seed)
        topology = _exposed_two_cell_topology(separation_m)
        channel = CompositeChannel(UrbanHataPathLoss())
        grid = ResourceGrid(5e6)
        net = LteNetworkSimulator(topology, grid, channel, rngs.fork("net"))
        manager = CellFiInterferenceManager(
            [0, 1],
            grid.n_subchannels,
            rngs.fork("mgr"),
            reuse_enabled=reuse_enabled,
        )
        demands = {c.client_id: float("inf") for c in topology.clients}
        results = net.run(epochs, manager, lambda e: demands)
        tail = results[epochs // 2:]
        throughput = {
            c.client_id: float(np.mean([r.throughput_bps[c.client_id] for r in tail]))
            for c in topology.clients
        }
        medians[reuse_enabled] = float(np.median(list(throughput.values())))
        # Close clients are within 100 m of their AP by construction.
        exposed = [
            throughput[c.client_id]
            for c in topology.clients
            if c.distance_to(topology.ap(c.ap_id)) < 100.0
        ]
        exposed_medians[reuse_enabled] = float(np.median(exposed))
        holdings = manager.holdings()
        overlaps[reuse_enabled] = len(holdings[0] & holdings[1])
        if reuse_enabled:
            moves = manager.stats.total_reuse_moves
    return ReuseResult(
        median_with_reuse_bps=medians[True],
        median_without_reuse_bps=medians[False],
        exposed_with_reuse_bps=exposed_medians[True],
        exposed_without_reuse_bps=exposed_medians[False],
        reuse_moves=moves,
        overlap_with=overlaps[True],
        overlap_without=overlaps[False],
    )
