"""Theorem 1 validation and the Section 5.3 channel re-use experiment.

Two studies:

* **Convergence scaling** -- run the abstract hopping game
  (:class:`repro.core.interference.theory.HoppingGame`) across network
  sizes, fading probabilities and demand slacks and verify the empirical
  convergence time stays under the Theorem 1 bound
  ``O(M log n / ((1-p) gamma))`` and scales like it.

* **Channel re-use gain** -- the paper's packing heuristic lets exposed
  clients ("very close to their respective access points") share the same
  subchannels across networks, "up to 2x gain in throughput for exposed
  clients".  We reproduce the two-cell exposed topology and compare the
  hopper with and without re-use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.interference.manager import CellFiInterferenceManager
from repro.core.interference.theory import (
    HoppingGame,
    feasible_uniform_demands,
    random_conflict_graph,
    theorem1_round_bound,
)
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.lte.network import LteNetworkSimulator
from repro.phy.propagation import CompositeChannel, UrbanHataPathLoss
from repro.phy.resource_grid import ResourceGrid
from repro.sim.rng import RngStreams
from repro.sim.topology import AccessPointSite, ClientSite, Topology


@dataclass
class ConvergencePoint:
    """Empirical convergence at one parameter setting.

    Attributes:
        n_nodes / fading_p / gamma: the game parameters.
        mean_rounds: average rounds to convergence over replications.
        bound_rounds: the Theorem 1 bound at unit constant.
        converged_all: whether every replication converged.
    """

    n_nodes: int
    fading_p: float
    gamma: float
    mean_rounds: float
    bound_rounds: float
    converged_all: bool


SCENARIO_CONVERGENCE = "convergence"


def convergence_cell(
    n_nodes: int,
    fading_p: float,
    m_subchannels: int = 13,
    gamma: float = 0.25,
    replications: int = 10,
    mean_degree: float = 3.0,
    seed: int = 17,
) -> Dict[str, object]:
    """One Theorem-1 grid cell: ``replications`` games at (n, p).

    The cell's generator derives from (seed, n, p) via
    :class:`~repro.sim.rng.RngStreams`, so every cell is independent of
    its position in the grid and of which worker evaluates it.
    """
    rng = RngStreams(seed).stream(f"convergence:{n_nodes}:{fading_p}")
    rounds: List[int] = []
    all_converged = True
    for _ in range(replications):
        graph = random_conflict_graph(n_nodes, mean_degree, rng)
        demands = feasible_uniform_demands(graph, m_subchannels, gamma)
        game = HoppingGame(graph, demands, m_subchannels, fading_p, rng)
        outcome = game.run(max_rounds=2000)
        all_converged &= outcome.converged
        if outcome.rounds_to_converge is not None:
            rounds.append(outcome.rounds_to_converge)
    return {
        "mean_rounds": float(np.mean(rounds)) if rounds else float("nan"),
        "bound_rounds": theorem1_round_bound(n_nodes, m_subchannels, gamma, fading_p),
        "converged_all": bool(all_converged),
    }


def convergence_sweep_spec(
    n_nodes_list: Sequence[int] = (8, 16, 32, 64),
    fading_list: Sequence[float] = (0.0, 0.3),
    m_subchannels: int = 13,
    gamma: float = 0.25,
    replications: int = 10,
    mean_degree: float = 3.0,
    seed: int = 17,
) -> SweepSpec:
    """The Theorem-1 grid: network size x fading probability."""
    return SweepSpec.from_grid(
        "convergence",
        SCENARIO_CONVERGENCE,
        grid={"n_nodes": list(n_nodes_list), "fading_p": list(fading_list)},
        base={
            "m_subchannels": m_subchannels,
            "gamma": gamma,
            "replications": replications,
            "mean_degree": mean_degree,
            "seed": seed,
        },
    )


def run_convergence_sweep(
    n_nodes_list: Sequence[int] = (8, 16, 32, 64),
    fading_list: Sequence[float] = (0.0, 0.3),
    m_subchannels: int = 13,
    gamma: float = 0.25,
    replications: int = 10,
    mean_degree: float = 3.0,
    seed: int = 17,
    jobs: int = 0,
    **sweep_kwargs,
) -> List[ConvergencePoint]:
    """Sweep network size and fading; measure rounds to convergence.

    The (n, p) grid runs through the sweep runner; ``jobs=0`` stays
    serial in-process, ``jobs>=1`` fans cells out over workers.
    """
    spec = convergence_sweep_spec(
        n_nodes_list=n_nodes_list,
        fading_list=fading_list,
        m_subchannels=m_subchannels,
        gamma=gamma,
        replications=replications,
        mean_degree=mean_degree,
        seed=seed,
    )
    result = run_sweep(spec, jobs=jobs, **sweep_kwargs)
    result.raise_on_failures()
    points: List[ConvergencePoint] = []
    for record in result.records:
        params, metrics = record.params, record.metrics
        points.append(
            ConvergencePoint(
                n_nodes=params["n_nodes"],
                fading_p=params["fading_p"],
                gamma=params["gamma"],
                mean_rounds=metrics["mean_rounds"],
                bound_rounds=metrics["bound_rounds"],
                converged_all=metrics["converged_all"],
            )
        )
    return points


# -- Channel re-use (packing) gain --------------------------------------------


def _exposed_two_cell_topology(separation_m: float = 450.0) -> Topology:
    """Two interfering cells, each with close ("exposed") and edge clients.

    The edge clients sit between the cells, so each AP overhears their
    PRACH and the share calculation splits the carrier.  The close clients
    (50 m from their AP) are the paper's exposed case: they "are not
    likely to interfere with anyone else", so scheduling them on the same
    subchannels across both cells is pure gain -- exactly what the re-use
    packing heuristic arranges by drifting interference-free holdings to
    low indices in both cells.
    """
    aps = [
        AccessPointSite(ap_id=0, x=0.0, y=0.0),
        AccessPointSite(ap_id=1, x=separation_m, y=0.0),
    ]
    clients = []
    cid = 0
    for ap, towards in ((aps[0], 1.0), (aps[1], -1.0)):
        # Two close clients, off-axis.
        for dy in (50.0, -50.0):
            clients.append(
                ClientSite(client_id=cid, x=ap.x, y=ap.y + dy, ap_id=ap.ap_id)
            )
            cid += 1
        # Two edge clients toward the other cell.
        for offset in (0.42, 0.46):
            clients.append(
                ClientSite(
                    client_id=cid,
                    x=ap.x + towards * separation_m * offset,
                    y=30.0,
                    ap_id=ap.ap_id,
                )
            )
            cid += 1
    return Topology(area_m=separation_m + 200.0, aps=aps, clients=clients)


@dataclass
class ReuseResult:
    """Throughput with and without the channel re-use heuristic.

    Attributes:
        median_with_reuse_bps / median_without_reuse_bps: median client
            throughput at steady state.
        exposed_with_reuse_bps / exposed_without_reuse_bps: median over
            the *close* (exposed) clients only -- the class the paper says
            gains "up to 2x".
        reuse_moves: packing moves executed with the heuristic on.
        overlap_with / overlap_without: subchannels both cells hold.
    """

    median_with_reuse_bps: float
    median_without_reuse_bps: float
    exposed_with_reuse_bps: float
    exposed_without_reuse_bps: float
    reuse_moves: int
    overlap_with: int
    overlap_without: int

    @property
    def gain(self) -> float:
        """Overall median throughput ratio attributable to packing."""
        if self.median_without_reuse_bps <= 0.0:
            return float("inf")
        return self.median_with_reuse_bps / self.median_without_reuse_bps

    @property
    def exposed_gain(self) -> float:
        """Exposed-client throughput ratio attributable to packing."""
        if self.exposed_without_reuse_bps <= 0.0:
            return float("inf")
        return self.exposed_with_reuse_bps / self.exposed_without_reuse_bps


def run_reuse_experiment(
    seed: int = 23, epochs: int = 25, separation_m: float = 450.0
) -> ReuseResult:
    """Compare the hopper with and without packing on the exposed topology."""
    medians: Dict[bool, float] = {}
    exposed_medians: Dict[bool, float] = {}
    moves = 0
    overlaps: Dict[bool, int] = {}
    for reuse_enabled in (True, False):
        rngs = RngStreams(seed)
        topology = _exposed_two_cell_topology(separation_m)
        channel = CompositeChannel(UrbanHataPathLoss())
        grid = ResourceGrid(5e6)
        net = LteNetworkSimulator(topology, grid, channel, rngs.fork("net"))
        manager = CellFiInterferenceManager(
            [0, 1],
            grid.n_subchannels,
            rngs.fork("mgr"),
            reuse_enabled=reuse_enabled,
        )
        demands = {c.client_id: float("inf") for c in topology.clients}
        results = net.run(epochs, manager, lambda e: demands)
        tail = results[epochs // 2:]
        throughput = {
            c.client_id: float(np.mean([r.throughput_bps[c.client_id] for r in tail]))
            for c in topology.clients
        }
        medians[reuse_enabled] = float(np.median(list(throughput.values())))
        # Close clients are within 100 m of their AP by construction.
        exposed = [
            throughput[c.client_id]
            for c in topology.clients
            if c.distance_to(topology.ap(c.ap_id)) < 100.0
        ]
        exposed_medians[reuse_enabled] = float(np.median(exposed))
        holdings = manager.holdings()
        overlaps[reuse_enabled] = len(holdings[0] & holdings[1])
        if reuse_enabled:
            moves = manager.stats.total_reuse_moves
    return ReuseResult(
        median_with_reuse_bps=medians[True],
        median_without_reuse_bps=medians[False],
        exposed_with_reuse_bps=exposed_medians[True],
        exposed_without_reuse_bps=exposed_medians[False],
        reuse_moves=moves,
        overlap_with=overlaps[True],
        overlap_without=overlaps[False],
    )
