"""Figure 8 / Section 6.3.2: CQI as an interference estimator.

Reproduces the testbed trace: PHY throughput and reported CQI over ~5 s
while an interfering radio toggles OFF / ON / OFF / ON, where the final ON
period is *faded* -- interference present but too weak to hurt throughput,
which the detector must not flag.

The estimator under test is the paper's rule (implemented in
:class:`repro.lte.cqi.SubbandCqiReporter`): track the max CQI in a window
as the interference-free estimate; declare interference after 10
consecutive samples below 60% of that max.  Measured on the testbed this
gave "less than 2% false positives" and 80% true detection under strong
interference -- this experiment measures the same two numbers on the
synthetic trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.lte.cqi import CqiReport, SubbandCqiReporter, measure_report
from repro.phy.mcs import CQI_OUT_OF_RANGE, cqi_from_sinr, efficiency_from_cqi
from repro.phy.resource_grid import ResourceGrid
from repro.sim.rng import RngStreams
from repro.utils.dbmath import db_to_linear, linear_to_db

#: CQI reporting period (paper: every 2 ms).
SAMPLE_PERIOD_S = 2e-3


@dataclass(frozen=True)
class InterferencePhase:
    """One segment of the interferer's schedule.

    Attributes:
        duration_s: segment length.
        interferer_on: whether the interferer transmits.
        faded: when on, whether fading weakens it below significance.
    """

    duration_s: float
    interferer_on: bool
    faded: bool = False


#: The Figure 8 schedule: OFF, ON, OFF, ON(faded).
FIG8_SCHEDULE: Tuple[InterferencePhase, ...] = (
    InterferencePhase(1.25, interferer_on=False),
    InterferencePhase(1.25, interferer_on=True),
    InterferencePhase(1.25, interferer_on=False),
    InterferencePhase(1.25, interferer_on=True, faded=True),
)


@dataclass
class Fig8Result:
    """The detector-evaluation trace and scores.

    Attributes:
        times_s: sample timestamps.
        throughput_mbps: instantaneous PHY throughput.
        cqi: reported wideband CQI.
        detector_state: whether interference was being declared.
        interferer_on: ground-truth strong interference per sample.
        false_positive_rate: detector on clean samples.
        true_positive_rate: detector on strong-interference samples.
        faded_flag_rate: detector on faded-interference samples (should be
            low: weak interference must not trigger reallocation).
    """

    times_s: List[float] = field(default_factory=list)
    throughput_mbps: List[float] = field(default_factory=list)
    cqi: List[int] = field(default_factory=list)
    detector_state: List[bool] = field(default_factory=list)
    interferer_on: List[bool] = field(default_factory=list)
    false_positive_rate: float = 0.0
    true_positive_rate: float = 0.0
    faded_flag_rate: float = 0.0


def run_fig8(
    seed: int = 5,
    mean_snr_db: float = 22.0,
    interference_drop_db: float = 16.0,
    faded_drop_db: float = 1.5,
    channel_sigma_db: float = 2.5,
    schedule: Tuple[InterferencePhase, ...] = FIG8_SCHEDULE,
) -> Fig8Result:
    """Synthesize the Figure 8 trace and score the detector.

    Args:
        seed: randomness seed.
        mean_snr_db: interference-free operating point.
        interference_drop_db: SINR loss when the interferer is on & strong.
        faded_drop_db: SINR loss when the interferer is on but faded.
        channel_sigma_db: AR(1) channel fluctuation deviation ("throughput
            varies significantly ... even when no interference is present").
    """
    rngs = RngStreams(seed)
    rng = rngs.stream("trace")
    grid = ResourceGrid(5e6)
    reporter = SubbandCqiReporter(n_subbands=1)

    result = Fig8Result()
    t = 0.0
    # AR(1) fluctuation with ~50-sample correlation time.
    rho = 0.98
    fluctuation = 0.0
    for phase in schedule:
        n = int(round(phase.duration_s / SAMPLE_PERIOD_S))
        for _ in range(n):
            fluctuation = rho * fluctuation + rng.normal(
                0.0, channel_sigma_db * np.sqrt(1 - rho * rho)
            )
            sinr = mean_snr_db + fluctuation
            strong = phase.interferer_on and not phase.faded
            if strong:
                sinr -= interference_drop_db
            elif phase.interferer_on:
                sinr -= faded_drop_db
            report = measure_report([sinr], time=t, measurement_noise_db=0.5, rng=rng)
            reporter.ingest(report)
            detected = reporter.interference_detected(0)

            cqi = report.subband_cqi[0]
            eff = efficiency_from_cqi(cqi)
            throughput = grid.downlink_rate_bps(eff, grid.n_rbs) / 1e6

            result.times_s.append(t)
            result.throughput_mbps.append(throughput)
            result.cqi.append(cqi)
            result.detector_state.append(detected)
            result.interferer_on.append(strong)
            t += SAMPLE_PERIOD_S

    clean = [
        d
        for d, phase_on, faded_on in zip(
            result.detector_state,
            result.interferer_on,
            _faded_mask(schedule),
        )
        if not phase_on and not faded_on
    ]
    strong = [
        d for d, on in zip(result.detector_state, result.interferer_on) if on
    ]
    faded = [
        d
        for d, m in zip(result.detector_state, _faded_mask(schedule))
        if m
    ]
    result.false_positive_rate = float(np.mean(clean)) if clean else 0.0
    result.true_positive_rate = float(np.mean(strong)) if strong else 0.0
    result.faded_flag_rate = float(np.mean(faded)) if faded else 0.0
    return result


def _faded_mask(schedule: Tuple[InterferencePhase, ...]) -> List[bool]:
    mask: List[bool] = []
    for phase in schedule:
        n = int(round(phase.duration_s / SAMPLE_PERIOD_S))
        mask.extend([phase.interferer_on and phase.faded] * n)
    return mask
