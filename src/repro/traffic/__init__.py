"""Traffic models (paper Section 6.3.4 "Workloads").

"We consider two types of traffic workloads and focus on downlink traffic.
First, backlogged flows for all clients are used for throughput
measurements.  Second, we model web-like traffic based on realistic
parameters regarding flow size, number of objects per page and object size
from [28] using thinking time distributions [29] to get flow inter arrival
times."

* :mod:`repro.traffic.backlogged` -- saturated demand helpers.
* :mod:`repro.traffic.web` -- the web-page workload generator.
* :mod:`repro.traffic.flows` -- FIFO flow tracking / completion times,
  shared by the epoch-driven LTE simulator and the event-driven Wi-Fi one.
"""

from repro.traffic.backlogged import saturated_demands
from repro.traffic.flows import Flow, FlowTracker
from repro.traffic.web import WebPage, WebWorkloadConfig, generate_web_sessions

__all__ = [
    "Flow",
    "FlowTracker",
    "WebPage",
    "WebWorkloadConfig",
    "generate_web_sessions",
    "saturated_demands",
]
