"""Backlogged (full-buffer) workload helpers.

The throughput and coverage experiments (Figures 2 and 9(a)/(b)) use
saturated downlink queues for every client: the network is always the
bottleneck, so measured throughput reflects MAC efficiency alone.
"""

from __future__ import annotations

from typing import Dict

from repro.sim.topology import Topology


def saturated_demands(topology: Topology) -> Dict[int, float]:
    """Infinite downlink demand for every client in the topology."""
    return {client.client_id: float("inf") for client in topology.clients}


def saturated_demand_fn(topology: Topology):
    """An epoch-indexed demand function for ``LteNetworkSimulator.run``."""
    demands = saturated_demands(topology)

    def demand(epoch_index: int) -> Dict[int, float]:
        return dict(demands)

    return demand
