"""FIFO flow tracking and completion-time accounting.

Both simulators drive this the same way: flows :meth:`FlowTracker.arrive`,
and delivered bits are credited per client -- either at exact delivery
instants (the event-driven Wi-Fi MAC) or as an amount spread over an epoch
(the fluid LTE model, which interpolates the completion instant inside the
epoch).  Completion records feed the page-load-time CDFs of Figure 9(c).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim.checkpoint import register_dataclass


@dataclass
class Flow:
    """One downlink flow (a web page, in the Figure 9(c) workload).

    Attributes:
        client_id: destination client.
        arrival_s: when the request was issued.
        size_bits: total bits to deliver.
        remaining_bits: bits still queued.
        completed_s: completion instant, or ``None`` while in flight.
    """

    client_id: int
    arrival_s: float
    size_bits: float
    remaining_bits: float = field(default=0.0)
    completed_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size_bits <= 0.0:
            raise ValueError(f"flow size must be > 0, got {self.size_bits!r}")
        self.remaining_bits = self.size_bits

    @property
    def completion_time_s(self) -> Optional[float]:
        """Flow completion time (FCT), or ``None`` if still in flight."""
        if self.completed_s is None:
            return None
        return self.completed_s - self.arrival_s


# Checkpoint reconstruction force-sets every field, so a partially
# drained flow round-trips without __post_init__ resetting remaining_bits.
register_dataclass(Flow)


class FlowTracker:
    """Per-client FIFO queues with completion bookkeeping."""

    def __init__(self) -> None:
        self._queues: Dict[int, List[Flow]] = {}
        self.completed: List[Flow] = []

    def arrive(self, flow: Flow) -> None:
        """Register a new flow at its arrival time."""
        self._queues.setdefault(flow.client_id, []).append(flow)

    def queued_bits(self, client_id: int) -> float:
        """Bits outstanding for one client."""
        return sum(f.remaining_bits for f in self._queues.get(client_id, []))

    def total_queued_bits(self) -> float:
        """Bits outstanding across all clients."""
        return sum(self.queued_bits(cid) for cid in self._queues)

    def active_clients(self) -> List[int]:
        """Clients with non-empty queues."""
        return [cid for cid, q in self._queues.items() if q]

    def serve(
        self,
        client_id: int,
        bits: float,
        start_s: float,
        end_s: float,
    ) -> List[Flow]:
        """Credit ``bits`` delivered to ``client_id`` over [start, end].

        Flows drain FIFO; a flow finishing mid-interval gets a completion
        instant linearly interpolated by bits (the fluid approximation the
        epoch simulator needs; event simulators pass ``start == end``).

        Returns:
            Flows completed by this delivery.

        Raises:
            ValueError: for negative bits or a reversed interval.
        """
        if bits < 0.0:
            raise ValueError(f"cannot serve negative bits: {bits!r}")
        if end_s < start_s:
            raise ValueError(f"reversed interval [{start_s}, {end_s}]")
        queue = self._queues.get(client_id, [])
        finished: List[Flow] = []
        delivered = 0.0
        budget = bits
        while queue and budget > 0.0:
            flow = queue[0]
            take = min(flow.remaining_bits, budget)
            flow.remaining_bits -= take
            budget -= take
            delivered += take
            if flow.remaining_bits <= 1e-9:
                if bits > 0.0 and end_s > start_s:
                    fraction = delivered / bits
                    flow.completed_s = start_s + fraction * (end_s - start_s)
                else:
                    flow.completed_s = end_s
                finished.append(flow)
                queue.pop(0)
        self.completed.extend(finished)
        return finished

    def completion_times(self) -> List[float]:
        """All recorded flow completion times, in seconds."""
        return [f.completion_time_s for f in self.completed]

    def in_flight(self) -> int:
        """Number of flows still queued (for drain checks in tests)."""
        return sum(len(q) for q in self._queues.values())

    # -- Checkpointing -----------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Queued and completed flows (the ``Flow`` dataclass is whitelisted)."""
        return {
            "queues": {cid: list(q) for cid, q in self._queues.items()},
            "completed": list(self.completed),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self._queues = {cid: list(q) for cid, q in state["queues"].items()}
        self.completed = list(state["completed"])
