"""Web-browsing workload: pages of objects separated by think times.

Models the paper's dynamic workload (Section 6.3.4): page structure follows
the measurement literature it cites -- tens of objects per page with
heavy-tailed object sizes [Lee & Gupta; Butkiewicz et al.] -- and user
think times between pages follow a heavy-tailed distribution with a mean of
roughly ten seconds.

A *page* is treated as one downlink flow of its total byte size (the paper
reports page load times, i.e. whole-page completion).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

import numpy as np


@dataclass(frozen=True)
class WebPage:
    """One page download request.

    Attributes:
        client_id: destination client.
        arrival_s: request time.
        total_bytes: page weight (sum of its objects).
        n_objects: number of objects the page comprised.
    """

    client_id: int
    arrival_s: float
    total_bytes: int
    n_objects: int


@dataclass(frozen=True)
class WebWorkloadConfig:
    """Distribution parameters of the web model.

    Defaults follow the website-complexity measurements the paper cites:
    a median of ~12 objects per page, lognormal object sizes with a median
    of ~12 kB (mean ~30 kB), and lognormal think times with a mean of
    ~10 s.  Medians/means are reproduced by the tests.

    Attributes:
        objects_mu / objects_sigma: lognormal parameters of objects/page.
        object_bytes_mu / object_bytes_sigma: lognormal object size (bytes).
        think_mu / think_sigma: lognormal think time (seconds).
        max_objects: clip for the object count.
        max_object_bytes: clip for individual objects.
    """

    objects_mu: float = math.log(12.0)
    objects_sigma: float = 0.8
    object_bytes_mu: float = math.log(12_000.0)
    object_bytes_sigma: float = 1.3
    think_mu: float = math.log(6.0)
    think_sigma: float = 1.0
    max_objects: int = 100
    max_object_bytes: int = 5_000_000

    def draw_page_bytes(self, rng: np.random.Generator) -> tuple:
        """Sample one page: returns ``(total_bytes, n_objects)``."""
        n_objects = int(
            min(
                self.max_objects,
                max(1, round(rng.lognormal(self.objects_mu, self.objects_sigma))),
            )
        )
        sizes = rng.lognormal(
            self.object_bytes_mu, self.object_bytes_sigma, size=n_objects
        )
        total = int(np.minimum(sizes, self.max_object_bytes).sum())
        return max(total, 200), n_objects

    def draw_think_s(self, rng: np.random.Generator) -> float:
        """Sample a user think time between consecutive pages."""
        return float(rng.lognormal(self.think_mu, self.think_sigma))


def generate_web_sessions(
    client_ids,
    duration_s: float,
    rng: np.random.Generator,
    config: WebWorkloadConfig = WebWorkloadConfig(),
    initial_stagger_s: float = 5.0,
) -> List[WebPage]:
    """Generate page requests for every client over ``duration_s``.

    Each client browses independently: request a page, (download it,) think,
    request the next.  Think times start the stream; the first request of
    each client is staggered uniformly over ``initial_stagger_s`` to avoid
    a synchronized thundering herd at t=0.

    Returns:
        All page requests sorted by arrival time.
    """
    if duration_s <= 0.0:
        raise ValueError(f"duration must be > 0, got {duration_s!r}")
    pages: List[WebPage] = []
    for client_id in client_ids:
        t = float(rng.uniform(0.0, initial_stagger_s))
        while t < duration_s:
            total_bytes, n_objects = config.draw_page_bytes(rng)
            pages.append(
                WebPage(
                    client_id=client_id,
                    arrival_s=t,
                    total_bytes=total_bytes,
                    n_objects=n_objects,
                )
            )
            t += config.draw_think_s(rng)
    pages.sort(key=lambda p: p.arrival_s)
    return pages


def offered_load_bps(pages: List[WebPage], duration_s: float) -> float:
    """Aggregate offered load of a generated session list."""
    if duration_s <= 0.0:
        raise ValueError(f"duration must be > 0, got {duration_s!r}")
    return sum(p.total_bytes for p in pages) * 8.0 / duration_s
