"""CellFi channel selection (paper Section 4.2).

Responsibilities of the component:

* keep a list of available channels from the spectrum database (PAWS),
  querying with the AP's GPS location on behalf of the AP and all its
  clients ("a single database client manages both the access point and all
  its mobile clients");
* pick the best TV channel: the database only protects incumbents, so
  CellFi additionally *network-listens* and prefers an idle channel, then a
  channel used by other CellFi cells (whose interference management it can
  share the channel with), and only lastly a channel occupied by a non-LTE
  technology;
* vacate immediately when the lease disappears -- the AP silencing its
  radio instantly silences every client, because LTE uplink is grant-based;
* reacquire when spectrum returns (AP reboot + client cell search, the
  Figure 6 timeline);
* **survive a flaky database**: the selector talks PAWS over a
  :class:`~repro.tvws.transport.PawsTransport` with a per-request timeout
  and bounded exponential backoff, fails over to a secondary database if
  one is configured, and -- when every endpoint is unreachable -- enters a
  degraded *lease-grace mode* that keeps transmitting on the still-valid
  cached lease and force-vacates at the lease expiry or the ETSI 60 s
  deadline (measured from the last successful validation), whichever is
  sooner.  A transient fault therefore never silences the cell, while the
  EN 301 598 vacate invariant holds under every fault schedule.

The vacate logic distinguishes three situations cleanly:

================================  =============================================
observation                       reaction
================================  =============================================
transport failure (timeout,       retry with backoff, then failover, then
dropped/malformed reply,          grace mode on the cached lease
transient server error)
authoritative error response      vacate: the database answered and the answer
(outside coverage, unsupported)   is "you have no authorization"
channel withdrawal (response OK   vacate immediately and move to another
but our channel is gone) or       offered channel if one exists
lease expiry
================================  =============================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs import runtime as _obs_runtime
from repro.sim.checkpoint import BoundCall, register_dataclass
from repro.sim.engine import Event, Simulator
from repro.tvws.paws import (
    AUTHORITATIVE_DENIALS,
    AvailableSpectrumRequest,
    AvailableSpectrumResponse,
    DeviceDescriptor,
    ERROR_MISSING,
    GeoLocation,
    SpectrumSpec,
)
from repro.tvws.regulatory import EtsiComplianceRules, VACATE_DEADLINE_S
from repro.tvws.transport import (
    PawsTransport,
    RetryPolicy,
    RobustnessLog,
    TransportError,
    as_transport,
)

#: Network-listen occupancy classes, in descending preference order.
OCCUPANCY_IDLE = "idle"
OCCUPANCY_CELLFI = "cellfi"
OCCUPANCY_OTHER = "other"

_PREFERENCE = {OCCUPANCY_IDLE: 0, OCCUPANCY_CELLFI: 1, OCCUPANCY_OTHER: 2}

#: Fixed bucket edges for the PAWS request-latency histogram (seconds).
#: Fixed at import time so latency percentiles aggregate deterministically
#: across sweep cells (see repro.obs.metrics).
PAWS_LATENCY_EDGES = (0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0)


class OccupancyProbe:
    """Network listen: classify who occupies each TV channel.

    The default probe reports everything idle; simulations install a
    callback reflecting their scenario.
    """

    def __init__(
        self, classify: Optional[Callable[[int], str]] = None
    ) -> None:
        self._classify = classify or (lambda channel: OCCUPANCY_IDLE)

    def probe(self, channel: int) -> str:
        """Occupancy class of ``channel``.

        Raises:
            ValueError: if the callback returns an unknown class.
        """
        result = self._classify(channel)
        if result not in _PREFERENCE:
            raise ValueError(f"unknown occupancy class {result!r}")
        return result


@dataclass
class SelectorEvent:
    """One timeline entry (drives the Figure 6 reproduction)."""

    time: float
    kind: str
    detail: str = ""


register_dataclass(SelectorEvent)


class ChannelSelector:
    """The channel-selection component of one CellFi access point.

    Args:
        sim: discrete-event simulator (shared with the rest of the AP).
        paws: the spectrum database endpoint -- a bare
            :class:`~repro.tvws.paws.PawsServer` (wrapped in a
            zero-latency :class:`~repro.tvws.transport.DirectTransport`)
            or any :class:`~repro.tvws.transport.PawsTransport`.
        device: this AP's PAWS identity.
        location: the AP's GPS position.
        probe: network-listen classifier.
        radio_start: callback ``(channel_number, spec)`` bringing the LTE
            carrier up (the AP applies its reboot latency inside).
        radio_stop: callback silencing the carrier immediately.
        poll_interval_s: database re-validation period.  ETSI demands
            vacating within 60 s; polling at 1 s gives the 2 s observed
            response of the paper's testbed.
        compliance: optional ETSI monitor to report events to.
        secondary: optional failover database endpoint (server or
            transport); tried after the primary exhausts its retries.
        retry: timeout/retry/backoff policy for every PAWS exchange.
        robustness: shared structured event log; one is created when not
            given so :attr:`robustness` is always inspectable.
        rng: seeded source of backoff jitter (anything with
            ``.random()``); defaults to a fixed-seed ``random.Random`` so
            unconfigured selectors stay deterministic.
    """

    def __init__(
        self,
        sim: Simulator,
        paws,
        device: DeviceDescriptor,
        location: GeoLocation,
        probe: OccupancyProbe,
        radio_start: Callable[[int, SpectrumSpec], None],
        radio_stop: Callable[[], None],
        poll_interval_s: float = 1.0,
        compliance: Optional[EtsiComplianceRules] = None,
        secondary=None,
        retry: Optional[RetryPolicy] = None,
        robustness: Optional[RobustnessLog] = None,
        rng=None,
    ) -> None:
        if poll_interval_s <= 0.0:
            raise ValueError(f"poll interval must be > 0, got {poll_interval_s!r}")
        self.sim = sim
        self.paws = paws
        self.device = device
        self.location = location
        self.probe = probe
        self._radio_start = radio_start
        self._radio_stop = radio_stop
        self.poll_interval_s = poll_interval_s
        self.compliance = compliance
        self.retry = retry or RetryPolicy()
        self.robustness = robustness if robustness is not None else RobustnessLog()
        self._rng = rng if rng is not None else random.Random(0)
        self._transports: List[PawsTransport] = [as_transport(paws)]
        if secondary is not None:
            self._transports.append(as_transport(secondary))
        self._active_idx = 0
        self.current_channel: Optional[int] = None
        self.current_spec: Optional[SpectrumSpec] = None
        self.events: List[SelectorEvent] = []
        self._started = False
        self._registered = False
        self._inflight = False
        #: When the database became unreachable with a channel held.
        self._grace_since: Optional[float] = None
        self._grace_event: Optional[Event] = None
        # Event seq stashed by load_state until link_events re-binds it.
        self._grace_event_seq: Optional[int] = None
        #: Last time the database confirmed our channel was still ours.
        #: The ETSI grace deadline anchors here, not at grace entry, so a
        #: withdrawal that lands just before the outage is still vacated
        #: within 60 s of the channel actually ceasing to be available.
        self._last_confirmed_s: Optional[float] = None
        self._no_spectrum_streak = 0

    # -- Lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Register with the database and acquire an initial channel."""
        if self._started:
            raise RuntimeError("channel selector already started")
        self._started = True
        self._begin_cycle()
        self.sim.schedule(self.poll_interval_s, self._poll)

    @property
    def in_grace(self) -> bool:
        """Whether the selector is riding out a database outage."""
        return self._grace_since is not None

    @property
    def active_transport(self) -> PawsTransport:
        """The endpoint the next request will go to (failover-aware)."""
        return self._transports[self._active_idx]

    # -- Polling ----------------------------------------------------------------

    def _poll(self) -> None:
        self.sim.schedule(self.poll_interval_s, self._poll)
        tel = _obs_runtime.active()
        if tel is not None:
            tel.gauge("paws.in_grace", 1.0 if self.in_grace else 0.0)
            tel.gauge(
                "paws.channel_held", 1.0 if self.current_channel is not None else 0.0
            )
            tel.tick(self.sim.now)
        if self._inflight:
            # The previous cycle is still retrying/backing off (or its
            # reply is in flight); don't pile a second request onto it.
            return
        self._begin_cycle()

    def _begin_cycle(self) -> None:
        """Start one validate-or-acquire request cycle."""
        self._inflight = True
        self._attempt(attempt=0, idx=self._active_idx,
                      fallbacks=len(self._transports) - 1)

    def _attempt(self, attempt: int, idx: int, fallbacks: int) -> None:
        transport = self._transports[idx]
        if attempt > 0:
            self._robust("retry", f"attempt {attempt + 1} via {transport.name}")
        if not self._registered:
            try:
                transport.init_device(self.device)
                self._registered = True
            except TransportError as error:
                self._attempt_failed(attempt, idx, fallbacks, error)
                return
        request = AvailableSpectrumRequest(
            device=self.device,
            location=self.location,
            request_time=self.sim.now,
        )
        tel = _obs_runtime.active()
        span = (
            tel.span(
                "paws.request",
                cat="paws",
                args={
                    "attempt": attempt,
                    "transport": transport.name,
                    "device": self.device.serial_number,
                },
            )
            if tel is not None
            else None
        )
        if span is not None:
            span.__enter__()
            tel.inc("paws.requests")
        try:
            reply = transport.available_spectrum(
                request, timeout_s=self.retry.timeout_s
            )
        except TransportError as error:
            if span is not None:
                span.__exit__(None, None, None)
                tel.inc("paws.transport_errors")
                tel.observe(
                    "paws.latency_s",
                    max(float(getattr(error, "elapsed_s", 0.0)), 0.0),
                    edges=PAWS_LATENCY_EDGES,
                )
            self._attempt_failed(attempt, idx, fallbacks, error)
            return
        if span is not None:
            span.__exit__(None, None, None)
            tel.observe("paws.latency_s", reply.latency_s, edges=PAWS_LATENCY_EDGES)
        response = reply.response
        if response.error_code is not None and response.error_code not in (
            AUTHORITATIVE_DENIALS
        ):
            # Transient server-side error: retryable, not a withdrawal.
            if response.error_code == ERROR_MISSING:
                self._registered = False  # Re-INIT on the next attempt.
            error = TransportError(
                f"server error {response.error_code} via {transport.name}",
                reply.latency_s,
            )
            self._attempt_failed(attempt, idx, fallbacks, error)
            return
        if reply.latency_s > 0.0:
            self.sim.schedule(
                reply.latency_s, BoundCall(self, "_handle_response", response)
            )
        else:
            self._handle_response(response)

    def _attempt_failed(
        self, attempt: int, idx: int, fallbacks: int, error: Exception
    ) -> None:
        elapsed = max(float(getattr(error, "elapsed_s", 0.0)), 0.0)
        if attempt < self.retry.max_retries:
            delay = elapsed + self.retry.backoff_delay(
                attempt, float(self._rng.random())
            )
            self._robust("backoff", f"{error}; retry in {delay:.3f}s")
            self.sim.schedule(
                delay, BoundCall(self, "_attempt", attempt + 1, idx, fallbacks)
            )
            return
        if fallbacks > 0:
            nxt = (idx + 1) % len(self._transports)
            self._active_idx = nxt
            self._robust(
                "failover",
                f"{self._transports[idx].name} -> {self._transports[nxt].name} "
                f"after {error}",
            )
            self.sim.schedule(
                elapsed, BoundCall(self, "_attempt", 0, nxt, fallbacks - 1)
            )
            return
        self._cycle_failed(error)

    def _cycle_failed(self, error: Exception) -> None:
        """Retries and failover exhausted: the database is unreachable."""
        self._inflight = False
        if self.current_channel is None:
            self._log_no_spectrum(f"database unreachable: {error}")
            return
        if self._grace_since is None:
            self._enter_grace(error)
        # Already in grace: the deadline stands; the next poll retries.

    # -- Response handling -------------------------------------------------------

    def _handle_response(self, response: AvailableSpectrumResponse) -> None:
        """Process a delivered response (OK or authoritative denial)."""
        self._inflight = False
        self._exit_grace()
        now = self.sim.now
        if not response.ok:
            # The database answered: this device has no authorization
            # here.  Unlike a transport fault, that is final -- vacate.
            detail = f"authorization denied (code {response.error_code})"
            if self.current_channel is not None:
                self._vacate(detail)
            else:
                self._log_no_spectrum(detail)
            return
        if self.current_channel is None:
            self._acquire_from(response)
            return
        spec = response.spec_for(self.current_channel)
        lease_expired = (
            self.current_spec is not None
            and now >= self.current_spec.expires_at
        )
        if spec is None or lease_expired:
            self._vacate("channel withdrawn" if spec is None else "lease expired")
            # Try to move to another channel offered in the same response.
            self._acquire_from(response)
            return
        # Refresh the rolling lease.
        self.current_spec = spec
        self._last_confirmed_s = now
        if self.compliance is not None:
            self.compliance.lease_granted(self.device.serial_number, spec.expires_at)

    def _acquire_from(self, response: AvailableSpectrumResponse) -> None:
        """Choose the best channel from ``response`` and start the radio."""
        chosen = self.choose_channel(response)
        if chosen is None:
            self._log_no_spectrum("database offered no usable channel")
            return
        channel, spec = chosen
        self._end_no_spectrum_streak()
        self.current_channel = channel
        self.current_spec = spec
        self._last_confirmed_s = self.sim.now
        if self.compliance is not None:
            self.compliance.lease_granted(self.device.serial_number, spec.expires_at)
        try:
            self.active_transport.notify_spectrum_use(
                self.device, channel, self.sim.now
            )
        except TransportError as error:
            # Best effort: the quote we hold is valid; the next successful
            # poll renews the lease server-side.
            self._robust("notify-failed", str(error))
        self._radio_start(channel, spec)
        self._log("radio-start", f"channel {channel}")

    def choose_channel(
        self, response: AvailableSpectrumResponse
    ) -> Optional[Tuple[int, SpectrumSpec]]:
        """Pick the best channel from a database response.

        Preference: idle > occupied-by-CellFi > occupied-by-other
        technology; ties break toward the lowest channel number.  Each
        channel is probed exactly once per decision and the class cached
        for the ranking, so a stateful or noisy probe cannot return
        inconsistent classes to the sort mid-comparison.
        """
        if not response.ok or not response.spectra:
            return None
        occupancy: Dict[int, str] = {}
        for spec in response.spectra:
            if spec.channel not in occupancy:
                occupancy[spec.channel] = self.probe.probe(spec.channel)
        ranked = sorted(
            response.spectra,
            key=lambda spec: (_PREFERENCE[occupancy[spec.channel]], spec.channel),
        )
        best = ranked[0]
        return best.channel, best

    # -- Grace mode --------------------------------------------------------------

    def _enter_grace(self, error: Exception) -> None:
        """Database unreachable while holding a channel: ride the lease."""
        now = self.sim.now
        anchor = self._last_confirmed_s if self._last_confirmed_s is not None else now
        deadline = anchor + VACATE_DEADLINE_S
        if self.current_spec is not None:
            deadline = min(deadline, self.current_spec.expires_at)
        self._grace_since = now
        detail = (
            f"{error}; transmitting on cached lease, forced vacate at "
            f"t={deadline:.1f}s unless the database recovers"
        )
        self._robust("grace-entered", detail)
        self._log("grace-entered", detail)
        if deadline <= now:
            self._grace_expired()
        else:
            self._grace_event = self.sim.schedule_at(deadline, self._grace_expired)

    def _grace_expired(self) -> None:
        self._grace_event = None
        if self._grace_since is None:
            return
        self._grace_since = None
        self._robust(
            "forced-vacate", "grace deadline reached with the database unreachable"
        )
        self._vacate("grace expired: database unreachable")

    def _exit_grace(self) -> None:
        """A response got through: the database is reachable again."""
        if self._grace_since is None:
            return
        outage_s = self.sim.now - self._grace_since
        if self._grace_event is not None:
            self._grace_event.cancel()
            self._grace_event = None
        self._grace_since = None
        detail = f"database reachable again after {outage_s:.1f}s"
        self._robust("grace-exited", detail)
        self._log("grace-exited", detail)

    # -- Vacating ----------------------------------------------------------------

    def _vacate(self, reason: str) -> None:
        if self._grace_event is not None:
            self._grace_event.cancel()
            self._grace_event = None
        self._grace_since = None
        if self.compliance is not None:
            self.compliance.channel_lost(self.device.serial_number, self.sim.now)
        self._radio_stop()
        if self.compliance is not None:
            self.compliance.transmission_stopped(self.device.serial_number, self.sim.now)
        self._log("radio-stop", reason)
        self.current_channel = None
        self.current_spec = None
        self._last_confirmed_s = None

    # -- Event logging -----------------------------------------------------------

    def _log(self, kind: str, detail: str) -> None:
        self.events.append(SelectorEvent(time=self.sim.now, kind=kind, detail=detail))
        tel = _obs_runtime.active()
        if tel is not None:
            tel.inc(f"selector.{kind}")
            tel.event(
                f"selector.{kind}",
                cat="selector",
                t=self.sim.now,
                args={"device": self.device.serial_number, "detail": detail},
            )

    def _log_no_spectrum(self, detail: str) -> None:
        """Log ``no-spectrum`` once per dry spell, not once per poll.

        Long outages poll every second for minutes; recording each miss
        would grow :attr:`events` without bound.  The first occurrence is
        logged, the rest are counted, and recovery emits one summarising
        event (see :meth:`_end_no_spectrum_streak`).
        """
        self._no_spectrum_streak += 1
        if self._no_spectrum_streak == 1:
            self._log("no-spectrum", detail)

    def _end_no_spectrum_streak(self) -> None:
        if self._no_spectrum_streak > 1:
            self._log(
                "no-spectrum-recovered",
                f"suppressed {self._no_spectrum_streak - 1} duplicate "
                "no-spectrum polls",
            )
        self._no_spectrum_streak = 0

    def _robust(self, kind: str, detail: str) -> None:
        self.robustness.record(
            self.sim.now, self.device.serial_number, kind, detail
        )

    def timeline(self) -> List[Tuple[float, str, str]]:
        """The (time, kind, detail) event list, e.g. for Figure 6."""
        return [(e.time, e.kind, e.detail) for e in self.events]

    # -- Checkpointing -----------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Mutable selector state.

        The grace-deadline event is stored by its queue ``seq``;
        :meth:`link_events` re-binds the live handle after the engine's
        heap has been restored.  A ``random.Random`` jitter source is
        serialized inline; a shared numpy generator is restored by the
        owning :class:`repro.sim.rng.RngStreams` subsystem instead.
        """
        rng_state: Optional[List[Any]] = None
        if isinstance(self._rng, random.Random):
            version, internal, gauss = self._rng.getstate()
            rng_state = [version, list(internal), gauss]
        grace_seq = None
        if self._grace_event is not None and not self._grace_event.cancelled:
            grace_seq = self._grace_event.seq
        return {
            "active_idx": self._active_idx,
            "current_channel": self.current_channel,
            "current_spec": self.current_spec,
            "events": list(self.events),
            "started": self._started,
            "registered": self._registered,
            "inflight": self._inflight,
            "grace_since": self._grace_since,
            "grace_event_seq": grace_seq,
            "last_confirmed_s": self._last_confirmed_s,
            "no_spectrum_streak": self._no_spectrum_streak,
            "poll_interval_s": self.poll_interval_s,
            "rng": rng_state,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self._active_idx = state["active_idx"]
        self.current_channel = state["current_channel"]
        self.current_spec = state["current_spec"]
        self.events = list(state["events"])
        self._started = state["started"]
        self._registered = state["registered"]
        self._inflight = state["inflight"]
        self._grace_since = state["grace_since"]
        self._grace_event = None
        self._grace_event_seq = state["grace_event_seq"]
        self._last_confirmed_s = state["last_confirmed_s"]
        self._no_spectrum_streak = state["no_spectrum_streak"]
        self.poll_interval_s = state["poll_interval_s"]
        if state["rng"] is not None and isinstance(self._rng, random.Random):
            version, internal, gauss = state["rng"]
            self._rng.setstate((version, tuple(internal), gauss))

    def link_events(self, lookup: Dict[int, Event]) -> None:
        """Re-bind the grace-deadline handle to the restored event heap."""
        if self._grace_event_seq is not None:
            self._grace_event = lookup[self._grace_event_seq]
        self._grace_event_seq = None
