"""CellFi channel selection (paper Section 4.2).

Responsibilities of the component:

* keep a list of available channels from the spectrum database (PAWS),
  querying with the AP's GPS location on behalf of the AP and all its
  clients ("a single database client manages both the access point and all
  its mobile clients");
* pick the best TV channel: the database only protects incumbents, so
  CellFi additionally *network-listens* and prefers an idle channel, then a
  channel used by other CellFi cells (whose interference management it can
  share the channel with), and only lastly a channel occupied by a non-LTE
  technology;
* vacate immediately when the lease disappears -- the AP silencing its
  radio instantly silences every client, because LTE uplink is grant-based;
* reacquire when spectrum returns (AP reboot + client cell search, the
  Figure 6 timeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.lte.rrc import ReacquisitionTiming
from repro.sim.engine import Simulator
from repro.tvws.paws import (
    AvailableSpectrumRequest,
    AvailableSpectrumResponse,
    DeviceDescriptor,
    GeoLocation,
    PawsServer,
    SpectrumSpec,
)
from repro.tvws.regulatory import EtsiComplianceRules

#: Network-listen occupancy classes, in descending preference order.
OCCUPANCY_IDLE = "idle"
OCCUPANCY_CELLFI = "cellfi"
OCCUPANCY_OTHER = "other"

_PREFERENCE = {OCCUPANCY_IDLE: 0, OCCUPANCY_CELLFI: 1, OCCUPANCY_OTHER: 2}


class OccupancyProbe:
    """Network listen: classify who occupies each TV channel.

    The default probe reports everything idle; simulations install a
    callback reflecting their scenario.
    """

    def __init__(
        self, classify: Optional[Callable[[int], str]] = None
    ) -> None:
        self._classify = classify or (lambda channel: OCCUPANCY_IDLE)

    def probe(self, channel: int) -> str:
        """Occupancy class of ``channel``.

        Raises:
            ValueError: if the callback returns an unknown class.
        """
        result = self._classify(channel)
        if result not in _PREFERENCE:
            raise ValueError(f"unknown occupancy class {result!r}")
        return result


@dataclass
class SelectorEvent:
    """One timeline entry (drives the Figure 6 reproduction)."""

    time: float
    kind: str
    detail: str = ""


class ChannelSelector:
    """The channel-selection component of one CellFi access point.

    Args:
        sim: discrete-event simulator (shared with the rest of the AP).
        paws: the spectrum database frontend.
        device: this AP's PAWS identity.
        location: the AP's GPS position.
        probe: network-listen classifier.
        radio_start: callback ``(channel_number, spec)`` bringing the LTE
            carrier up (the AP applies its reboot latency inside).
        radio_stop: callback silencing the carrier immediately.
        poll_interval_s: database re-validation period.  ETSI demands
            vacating within 60 s; polling at 1 s gives the 2 s observed
            response of the paper's testbed.
        compliance: optional ETSI monitor to report events to.
    """

    def __init__(
        self,
        sim: Simulator,
        paws: PawsServer,
        device: DeviceDescriptor,
        location: GeoLocation,
        probe: OccupancyProbe,
        radio_start: Callable[[int, SpectrumSpec], None],
        radio_stop: Callable[[], None],
        poll_interval_s: float = 1.0,
        compliance: Optional[EtsiComplianceRules] = None,
    ) -> None:
        if poll_interval_s <= 0.0:
            raise ValueError(f"poll interval must be > 0, got {poll_interval_s!r}")
        self.sim = sim
        self.paws = paws
        self.device = device
        self.location = location
        self.probe = probe
        self._radio_start = radio_start
        self._radio_stop = radio_stop
        self.poll_interval_s = poll_interval_s
        self.compliance = compliance
        self.current_channel: Optional[int] = None
        self.current_spec: Optional[SpectrumSpec] = None
        self.events: List[SelectorEvent] = []
        self._started = False

    # -- Lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Register with the database and acquire an initial channel."""
        if self._started:
            raise RuntimeError("channel selector already started")
        self._started = True
        self.paws.init_device(self.device)
        self._acquire()
        self.sim.schedule(self.poll_interval_s, self._poll)

    def _query(self) -> AvailableSpectrumResponse:
        request = AvailableSpectrumRequest(
            device=self.device,
            location=self.location,
            request_time=self.sim.now,
        )
        return self.paws.available_spectrum(request)

    def _acquire(self) -> None:
        """Query, choose the best channel and start the radio."""
        response = self._query()
        chosen = self.choose_channel(response)
        if chosen is None:
            self._log("no-spectrum", "database offered no usable channel")
            return
        channel, spec = chosen
        self.current_channel = channel
        self.current_spec = spec
        if self.compliance is not None:
            self.compliance.lease_granted(self.device.serial_number, spec.expires_at)
        self.paws.notify_spectrum_use(self.device, channel, self.sim.now)
        self._radio_start(channel, spec)
        self._log("radio-start", f"channel {channel}")

    def choose_channel(
        self, response: AvailableSpectrumResponse
    ) -> Optional[Tuple[int, SpectrumSpec]]:
        """Pick the best channel from a database response.

        Preference: idle > occupied-by-CellFi > occupied-by-other
        technology; ties break toward the lowest channel number.
        """
        if not response.ok or not response.spectra:
            return None
        ranked = sorted(
            response.spectra,
            key=lambda spec: (_PREFERENCE[self.probe.probe(spec.channel)], spec.channel),
        )
        best = ranked[0]
        return best.channel, best

    # -- Polling ----------------------------------------------------------------------

    def _poll(self) -> None:
        self.sim.schedule(self.poll_interval_s, self._poll)
        if self.current_channel is None:
            # Nothing held: keep trying to acquire.
            self._acquire()
            return
        response = self._query()
        spec = response.spec_for(self.current_channel) if response.ok else None
        lease_expired = (
            self.current_spec is not None
            and self.sim.now >= self.current_spec.expires_at
        )
        if spec is None or lease_expired:
            self._vacate("channel withdrawn" if spec is None else "lease expired")
            # Try to move to another channel right away, if one exists.
            self._acquire()
        else:
            # Refresh the rolling lease.
            self.current_spec = spec
            if self.compliance is not None:
                self.compliance.lease_granted(
                    self.device.serial_number, spec.expires_at
                )

    def _vacate(self, reason: str) -> None:
        if self.compliance is not None:
            self.compliance.channel_lost(self.device.serial_number, self.sim.now)
        self._radio_stop()
        if self.compliance is not None:
            self.compliance.transmission_stopped(self.device.serial_number, self.sim.now)
        self._log("radio-stop", reason)
        self.current_channel = None
        self.current_spec = None

    def _log(self, kind: str, detail: str) -> None:
        self.events.append(SelectorEvent(time=self.sim.now, kind=kind, detail=detail))

    def timeline(self) -> List[Tuple[float, str, str]]:
        """The (time, kind, detail) event list, e.g. for Figure 6."""
        return [(e.time, e.kind, e.detail) for e in self.events]
