"""LTE-U-style duty cycling for coexistence with 802.11af (paper Section 7).

"There are several other efforts (LTE-U, LAA, LWA) that look into
coexistence between LTE and WiFi.  These are orthogonal solutions that
could be deployed along CellFi to enable coexistence with 802.11af."

This module demonstrates that orthogonality: :class:`DutyCyclePolicy`
wraps *any* subchannel policy (CellFi's manager included) and inserts
silent epochs following an adaptive ON/OFF schedule -- during OFF epochs
the LTE network stays off the air so a co-located Wi-Fi network can use
the channel, exactly the LTE-U mechanism.  The duty cycle adapts to an
externally sensed Wi-Fi activity level (energy detection during OFF
periods, supplied by a callback).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from repro.lte.network import ApObservation, SubchannelPolicy

#: Bounds on the adaptive duty cycle: never hog more than 95%, never fall
#: below 30% (an LTE network that barely transmits cannot serve anyone).
MIN_DUTY_CYCLE = 0.30
MAX_DUTY_CYCLE = 0.95


class DutyCyclePolicy:
    """Wrap a subchannel policy with adaptive ON/OFF duty cycling.

    The schedule is a repeating window of ``period_epochs`` epochs, of
    which the first ``round(duty_cycle * period)`` are ON.  Before each
    window the duty cycle adapts: high sensed Wi-Fi activity shrinks it
    toward :data:`MIN_DUTY_CYCLE`, no activity grows it toward
    :data:`MAX_DUTY_CYCLE`.

    Args:
        inner: the wrapped policy (e.g. ``CellFiInterferenceManager``).
        period_epochs: ON/OFF window length.
        initial_duty_cycle: starting ON fraction.
        wifi_activity: optional callback ``epoch -> activity in [0, 1]``
            reporting energy sensed from the foreign technology; ``None``
            fixes the duty cycle.
    """

    def __init__(
        self,
        inner: SubchannelPolicy,
        period_epochs: int = 10,
        initial_duty_cycle: float = 0.8,
        wifi_activity: Optional[Callable[[int], float]] = None,
    ) -> None:
        if period_epochs < 2:
            raise ValueError(f"period must be >= 2 epochs, got {period_epochs}")
        if not MIN_DUTY_CYCLE <= initial_duty_cycle <= MAX_DUTY_CYCLE:
            raise ValueError(
                f"duty cycle must be in [{MIN_DUTY_CYCLE}, {MAX_DUTY_CYCLE}]"
            )
        self.inner = inner
        self.period_epochs = period_epochs
        self.duty_cycle = initial_duty_cycle
        self.wifi_activity = wifi_activity
        self.off_epochs = 0
        self.on_epochs = 0

    def _adapt(self, epoch_index: int) -> None:
        if self.wifi_activity is None:
            return
        activity = self.wifi_activity(epoch_index)
        if not 0.0 <= activity <= 1.0:
            raise ValueError(f"activity must be in [0, 1], got {activity!r}")
        # Proportional controller: split the channel with the neighbour in
        # proportion to how busy it is.
        target = MAX_DUTY_CYCLE - activity * (MAX_DUTY_CYCLE - MIN_DUTY_CYCLE)
        self.duty_cycle = 0.5 * self.duty_cycle + 0.5 * target

    def is_on(self, epoch_index: int) -> bool:
        """Whether the LTE network transmits in this epoch."""
        on_count = max(1, round(self.duty_cycle * self.period_epochs))
        return (epoch_index % self.period_epochs) < on_count

    def decide(
        self,
        epoch_index: int,
        observations: Optional[Dict[int, ApObservation]],
    ) -> Dict[int, Set[int]]:
        """SubchannelPolicy hook: the inner decision, or silence."""
        if epoch_index % self.period_epochs == 0:
            self._adapt(epoch_index)
        if not self.is_on(epoch_index):
            self.off_epochs += 1
            decisions = self.inner.decide(epoch_index, observations)
            return {ap: set() for ap in decisions}
        self.on_epochs += 1
        return self.inner.decide(epoch_index, observations)

    @property
    def realised_duty_cycle(self) -> float:
        """Fraction of decided epochs that were ON."""
        total = self.on_epochs + self.off_epochs
        return self.on_epochs / total if total else 1.0
