"""Channel aggregation: bonding contiguous TV channels (paper Section 7).

"CellFi currently only uses a single TV channel for its operations.  One
can think of a more flexible channel allocation that will allow channel
aggregation" -- this module implements that extension: given a database
response, find the best contiguous run of available TV channels that can
host a wider LTE carrier (10/15/20 MHz), preferring runs whose occupancy
(network listen) is most favourable, and fall back to narrower carriers
when the spectrum is fragmented.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.channel_selection import OccupancyProbe, _PREFERENCE
from repro.tvws.channels import ChannelPlan
from repro.tvws.paws import AvailableSpectrumResponse

#: LTE carrier bandwidths in descending preference order (Hz).
CARRIER_LADDER_HZ = (20e6, 15e6, 10e6, 5e6)


@dataclass(frozen=True)
class BondedCarrier:
    """A carrier placement across one or more TV channels.

    Attributes:
        channels: the TV channel numbers occupied (contiguous).
        bandwidth_hz: the LTE carrier bandwidth placed in them.
        center_hz: carrier centre frequency.
        max_eirp_dbm: the tightest EIRP cap across the bonded channels.
        worst_occupancy: the least favourable occupancy class in the run.
    """

    channels: Sequence[int]
    bandwidth_hz: float
    center_hz: float
    max_eirp_dbm: float
    worst_occupancy: str


def select_bonded_carrier(
    response: AvailableSpectrumResponse,
    plan: ChannelPlan,
    probe: OccupancyProbe,
    preferred_bandwidth_hz: float = 20e6,
    allow_fallback: bool = True,
) -> Optional[BondedCarrier]:
    """Choose the widest feasible carrier placement from a DB response.

    Tries the preferred bandwidth first; when no contiguous run is wide
    enough (and ``allow_fallback``), walks down the carrier ladder.  Among
    candidate runs of equal width, prefers the one whose *worst* occupancy
    class is most favourable (an entirely idle run beats one that overlaps
    another technology), then the lowest frequency.

    Returns ``None`` if even 5 MHz does not fit anywhere.
    """
    if not response.ok or not response.spectra:
        return None
    available = response.channel_numbers()
    by_number = {spec.channel: spec for spec in response.spectra}

    ladder = [bw for bw in CARRIER_LADDER_HZ if bw <= preferred_bandwidth_hz]
    if not ladder:
        ladder = [preferred_bandwidth_hz]
    if not allow_fallback:
        ladder = ladder[:1]

    for bandwidth in ladder:
        candidates: List[BondedCarrier] = []
        needed = -(-int(bandwidth) // int(plan.channel_width_hz))
        for run in plan.contiguous_runs(available):
            for start in range(0, len(run) - needed + 1):
                chosen = run[start : start + needed]
                low = plan.channel(chosen[0]).low_hz
                high = plan.channel(chosen[-1]).high_hz
                if high - low < bandwidth:
                    continue
                occupancies = [probe.probe(ch) for ch in chosen]
                worst = max(occupancies, key=lambda o: _PREFERENCE[o])
                candidates.append(
                    BondedCarrier(
                        channels=tuple(chosen),
                        bandwidth_hz=bandwidth,
                        center_hz=(low + high) / 2.0,
                        max_eirp_dbm=min(
                            by_number[ch].max_eirp_dbm for ch in chosen
                        ),
                        worst_occupancy=worst,
                    )
                )
        if candidates:
            candidates.sort(
                key=lambda c: (_PREFERENCE[c.worst_occupancy], c.channels[0])
            )
            return candidates[0]
    return None


def lease_expiry(response: AvailableSpectrumResponse, carrier: BondedCarrier) -> float:
    """The bonded carrier's effective lease expiry: the earliest member's.

    A bonded carrier must be vacated when *any* of its TV channels loses
    availability, so the expiry is the minimum across members.
    """
    expiries = []
    for channel in carrier.channels:
        spec = response.spec_for(channel)
        if spec is None:
            raise ValueError(f"channel {channel} missing from the response")
        expiries.append(spec.expires_at)
    return min(expiries)
