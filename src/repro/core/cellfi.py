"""CellFiAccessPoint: the full per-AP orchestration (paper Figure 3).

Ties together the unmodified LTE small-cell stack (:class:`repro.lte.enb.
EnodeB`), the channel-selection component and the reacquisition timing of
the paper's testbed: a radio-parameter change costs an AP reboot (1 min
36 s measured) and clients need a cell search (56 s measured) before
traffic resumes.  Clients stop transmitting the instant the radio stops
because LTE uplink is grant-based -- no explicit signalling needed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.channel_selection import ChannelSelector, OccupancyProbe
from repro.lte.enb import EnodeB
from repro.lte.rrc import ReacquisitionTiming
from repro.lte.scheduler import ProportionalFairScheduler
from repro.lte.ue import UserEquipment
from repro.phy.resource_grid import ResourceGrid
from repro.sim.checkpoint import BoundCall
from repro.sim.engine import Event, Simulator
from repro.tvws.paws import DeviceDescriptor, GeoLocation, PawsServer, SpectrumSpec
from repro.tvws.regulatory import EtsiComplianceRules
from repro.tvws.transport import RetryPolicy, RobustnessLog


@dataclass
class _Position:
    x: float
    y: float


class CellFiAccessPoint:
    """One deployable CellFi access point.

    Args:
        sim: the discrete-event simulator.
        paws: spectrum database frontend.
        x, y: GPS position (the mandatory GPS of the CellFi AP).
        carrier_bandwidth_hz: LTE carrier to fit into a TV channel.
        serial: PAWS device serial.
        timing: reacquisition latencies (reboot, cell search).
        compliance: optional ETSI monitor.
        probe: network-listen classifier for channel preference.
        transport: optional primary wire to the database (e.g. a
            :class:`~repro.tvws.transport.FaultyTransport` over
            ``paws``); defaults to the reliable in-process call.
        secondary: optional failover database endpoint (a second
            :class:`PawsServer` or any transport); the selector switches
            to it when the primary exhausts its retries.
        retry: PAWS timeout/retry/backoff policy.
        robustness: shared structured robustness log (faults, retries,
            grace transitions, failovers, forced vacates).
        rng: seeded jitter source for retry backoff.
    """

    def __init__(
        self,
        sim: Simulator,
        paws: PawsServer,
        x: float,
        y: float,
        carrier_bandwidth_hz: float = 5e6,
        serial: str = "cellfi-ap-0",
        timing: Optional[ReacquisitionTiming] = None,
        compliance: Optional[EtsiComplianceRules] = None,
        probe: Optional[OccupancyProbe] = None,
        transport=None,
        secondary=None,
        retry: Optional[RetryPolicy] = None,
        robustness: Optional[RobustnessLog] = None,
        rng=None,
    ) -> None:
        self.sim = sim
        self.carrier_bandwidth_hz = carrier_bandwidth_hz
        self.timing = timing or ReacquisitionTiming()
        self.compliance = compliance
        # PCI derived from the serial with a stable hash: ``hash(str)`` is
        # randomized per process, which would break cross-process
        # checkpoint digests.
        pci = int.from_bytes(
            hashlib.sha256(serial.encode()).digest()[:4], "little"
        ) % 504
        self.enb = EnodeB(
            cell_id=pci,
            node=_Position(x, y),
            scheduler=ProportionalFairScheduler(),
        )
        self.device = DeviceDescriptor(serial_number=serial, device_type="A")
        self.selector = ChannelSelector(
            sim=sim,
            paws=transport if transport is not None else paws,
            device=self.device,
            location=GeoLocation(x=x, y=y),
            probe=probe or OccupancyProbe(),
            radio_start=self._on_channel_granted,
            radio_stop=self._on_channel_lost,
            compliance=compliance,
            secondary=secondary,
            retry=retry,
            robustness=robustness,
            rng=rng,
        )
        #: The selector's structured robustness log (grace, retries, ...).
        self.robustness = self.selector.robustness
        self.clients: List[UserEquipment] = []
        self._pending_start: Optional[Event] = None
        # Event seq stashed by load_state until link_events re-binds it.
        self._pending_start_seq: Optional[int] = None
        self._ever_started = False
        #: (time, event) pairs for timeline reconstruction.
        self.timeline: List[Tuple[float, str]] = []

    # -- Deployment API ---------------------------------------------------------

    def start(self) -> None:
        """Power the AP on: begin database interaction."""
        self._log("ap-power-on")
        self.selector.start()

    def register_client(self, ue: UserEquipment) -> None:
        """A client within coverage that will camp on this cell."""
        self.clients.append(ue)
        if self.enb.radio_on:
            self._schedule_attach(ue)

    @property
    def radio_on(self) -> bool:
        """Whether the carrier is currently transmitting."""
        return self.enb.radio_on

    @property
    def connected_clients(self) -> int:
        """Clients currently attached."""
        return self.enb.n_attached

    # -- Channel-selection callbacks ------------------------------------------------

    def _on_channel_granted(self, channel: int, spec: SpectrumSpec) -> None:
        """Bring the radio up after the (re)configuration reboot."""
        delay = self.timing.ap_reboot_s
        self._log(f"reboot-begin channel={channel}")
        if self._pending_start is not None:
            self._pending_start.cancel()
        self._pending_start = self.sim.schedule(
            delay, BoundCall(self, "_radio_up", spec)
        )

    def _radio_up(self, spec: SpectrumSpec) -> None:
        """Reboot finished: configure the carrier and start transmitting."""
        self._pending_start = None
        grid = ResourceGrid(self.carrier_bandwidth_hz)
        center = (spec.low_hz + spec.high_hz) / 2.0
        # Snap to the 100 kHz EARFCN raster.
        center = round(center / 1e5) * 1e5
        self.enb.start_radio(center, grid, max_ue_power_dbm=20.0)
        self._ever_started = True
        if self.compliance is not None:
            self.compliance.transmission_started(
                self.device.serial_number,
                self.sim.now,
                eirp_dbm=min(spec.max_eirp_dbm, 36.0),
                max_eirp_dbm=spec.max_eirp_dbm,
            )
        self._log("radio-on")
        for ue in self.clients:
            self._schedule_attach(ue)

    def _on_channel_lost(self) -> None:
        """Silence the carrier immediately; clients stop instantly."""
        if self._pending_start is not None:
            self._pending_start.cancel()
            self._pending_start = None
        if self.enb.radio_on:
            self.enb.stop_radio()
            self._log("radio-off")

    def _schedule_attach(self, ue: UserEquipment) -> None:
        """Model the client cell search before it can reattach."""
        ue.start_cell_search()
        self._log(f"ue-{ue.ue_id}-search")
        self.sim.schedule(
            self.timing.cell_search_s, BoundCall(self, "_attach", ue.ue_id)
        )

    def _attach(self, ue_id: int) -> None:
        """Cell search finished: attach if the carrier is (still) up."""
        ue = next((u for u in self.clients if u.ue_id == ue_id), None)
        if ue is None:
            return
        if self.enb.radio_on and ue.serving_cell_id is None:
            self.enb.admit(ue)
            self._log(f"ue-{ue.ue_id}-connected")

    def _log(self, event: str) -> None:
        self.timeline.append((self.sim.now, event))

    # -- Checkpointing ----------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """AP-side state: reboot timer, timeline, cell and client state.

        The channel selector is its own checkpointable subsystem and is
        intentionally not nested here.
        """
        pending_seq = None
        if self._pending_start is not None and not self._pending_start.cancelled:
            pending_seq = self._pending_start.seq
        return {
            "ever_started": self._ever_started,
            "pending_start_seq": pending_seq,
            "timeline": [list(entry) for entry in self.timeline],
            "enb": self.enb.state_dict(),
            "clients": {ue.ue_id: ue.state_dict() for ue in self.clients},
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self._ever_started = state["ever_started"]
        self._pending_start = None
        self._pending_start_seq = state["pending_start_seq"]
        self.timeline = [tuple(entry) for entry in state["timeline"]]
        ues = {ue.ue_id: ue for ue in self.clients}
        for ue_id, ue_state in state["clients"].items():
            ues[ue_id].load_state(ue_state)
        self.enb.load_state(state["enb"], ues=ues)

    def link_events(self, lookup: Dict[int, Event]) -> None:
        """Re-bind the pending reboot timer to the restored event heap."""
        if self._pending_start_seq is not None:
            self._pending_start = lookup[self._pending_start_seq]
        self._pending_start_seq = None
