"""CellFi core: the paper's primary contribution.

Two software components extend a standard LTE access point (paper Figure 3):

* :mod:`repro.core.channel_selection` -- maintains spectrum-database leases
  over PAWS, picks the best available TV channel (network listen, preferring
  idle channels, then channels used by other CellFi cells), and vacates
  within the ETSI 60-second deadline when a channel is withdrawn.
* :mod:`repro.core.interference` -- the fully decentralized intra-channel
  interference management algorithm: PRACH-based contention estimation and
  CQI-drop interference detection (``sensing``), distributed share
  calculation (``share``), randomized subchannel hopping with exponential
  buckets and the channel re-use packing heuristic (``hopping``), the
  epoch-driven manager gluing it into the LTE simulator (``manager``) and
  the abstract convergence model behind Theorem 1 (``theory``).
* :mod:`repro.core.cellfi` -- :class:`CellFiAccessPoint`, the orchestration
  object a deployment would run: one eNodeB + channel selection +
  interference management.
"""

from repro.core.cellfi import CellFiAccessPoint
from repro.core.channel_selection import ChannelSelector, OccupancyProbe
from repro.core.interference.hopping import SubchannelHopper
from repro.core.interference.manager import CellFiInterferenceManager
from repro.core.interference.share import compute_share
from repro.core.interference.theory import HoppingGame, theorem1_round_bound

__all__ = [
    "CellFiAccessPoint",
    "CellFiInterferenceManager",
    "ChannelSelector",
    "HoppingGame",
    "OccupancyProbe",
    "SubchannelHopper",
    "compute_share",
    "theorem1_round_bound",
]
