"""Distributed share calculation (paper Section 5.2).

Each AP ``i`` computes its spectrum share without talking to anyone:

    "for each active client, the AP i reserves S/NP_i distinct shares,
    giving it a total share of S_i = N_i * S / NP_i"

where ``S`` is the total subchannel count, ``N_i`` the AP's own active
clients and ``NP_i`` the PRACH-estimated number of active clients in its
neighbourhood (own clients included).  The estimate is deliberately
conservative: imperfect sensing can only under-estimate the share, never
grab more than the fair fraction (Section 5.4, "suboptimal share").
"""

from __future__ import annotations

import math


def compute_share(
    total_subchannels: int,
    own_active_clients: int,
    estimated_contenders: int,
) -> int:
    """Number of subchannels AP ``i`` reserves: ``floor(N_i * S / NP_i)``.

    Rounding is downward (conservative) but an AP with at least one active
    client always reserves at least one subchannel, otherwise it could
    never serve anyone.

    Args:
        total_subchannels: ``S``, the subchannels on the carrier.
        own_active_clients: ``N_i``.
        estimated_contenders: ``NP_i``; clamped up to ``N_i`` since an AP
            always hears its own clients.

    Raises:
        ValueError: on non-positive ``S`` or negative client counts.
    """
    if total_subchannels <= 0:
        raise ValueError(f"need at least one subchannel, got {total_subchannels}")
    if own_active_clients < 0:
        raise ValueError(f"own client count must be >= 0, got {own_active_clients}")
    if estimated_contenders < 0:
        raise ValueError(
            f"contender estimate must be >= 0, got {estimated_contenders}"
        )
    if own_active_clients == 0:
        return 0
    contenders = max(estimated_contenders, own_active_clients)
    share = math.floor(own_active_clients * total_subchannels / contenders)
    return max(1, min(share, total_subchannels))


def per_client_share(total_subchannels: int, estimated_contenders: int) -> float:
    """The ``S / NP_i`` quantum each active client is entitled to."""
    if total_subchannels <= 0:
        raise ValueError(f"need at least one subchannel, got {total_subchannels}")
    if estimated_contenders <= 0:
        raise ValueError(
            f"contender estimate must be > 0, got {estimated_contenders}"
        )
    return total_subchannels / estimated_contenders


def shares_feasible(shares, total_subchannels: int) -> bool:
    """Whether a set of neighbourhood shares fits in the carrier.

    The hopping analysis (Section 5.5) requires the *demand assumption*:
    the sum of demands in every neighbourhood leaves slack.  This helper
    checks the global version used by tests.
    """
    return sum(shares) <= total_subchannels
