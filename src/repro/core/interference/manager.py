"""The CellFi interference manager: a SubchannelPolicy for the LTE simulator.

Combines the share calculation and the hopper into the epoch interface of
:class:`repro.lte.network.LteNetworkSimulator`.  On the first epoch -- with
nothing sensed yet -- every AP behaves like plain LTE (all subchannels);
from the second epoch on, each AP independently computes its share from the
PRACH estimate and steps its hopper with the CQI-based sensing input.
No state is shared between the per-AP components: coordination is entirely
emergent, as the paper requires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Set

from repro.core.interference.hopping import ClientSense, HopperConfig, SubchannelHopper
from repro.core.interference.share import compute_share
from repro.lte.network import ApObservation
from repro.obs import runtime as _obs_runtime
from repro.sim.rng import RngStreams


@dataclass
class ManagerStats:
    """Aggregate algorithm telemetry for convergence analysis."""

    epochs: int = 0
    total_hops: int = 0
    total_reuse_moves: int = 0
    last_shares: Dict[int, int] = None

    def __post_init__(self) -> None:
        if self.last_shares is None:
            self.last_shares = {}


class CellFiInterferenceManager:
    """Decentralized subchannel allocation across CellFi APs.

    Args:
        ap_ids: the access points under management (each gets an
            independent hopper with its own random stream).
        n_subchannels: carrier size (13 on 5 MHz).
        rngs: named random streams.
        bucket_mean: exponential bucket mean (paper: 10).
        reuse_enabled: channel re-use packing on/off (ablation switch).
        share_override: optional fixed share per AP (ablation: perfect
            sensing experiments feed ground-truth shares here).
    """

    def __init__(
        self,
        ap_ids: Sequence[int],
        n_subchannels: int,
        rngs: RngStreams,
        bucket_mean: float = 10.0,
        reuse_enabled: bool = True,
        share_override: Optional[Mapping[int, int]] = None,
    ) -> None:
        self.n_subchannels = n_subchannels
        self.share_override = dict(share_override) if share_override else None
        #: Kept so checkpointing drivers can register the hopper streams.
        self.rngs = rngs
        config = HopperConfig(
            n_subchannels=n_subchannels,
            bucket_mean=bucket_mean,
            reuse_enabled=reuse_enabled,
        )
        self.hoppers: Dict[int, SubchannelHopper] = {
            ap_id: SubchannelHopper(config, rngs.stream(f"hopper-{ap_id}"))
            for ap_id in ap_ids
        }
        self.stats = ManagerStats()

    def decide(
        self,
        epoch_index: int,
        observations: Optional[Dict[int, ApObservation]],
    ) -> Dict[int, Set[int]]:
        """SubchannelPolicy hook: allowed subchannels per AP for this epoch."""
        if observations is None:
            # Nothing sensed yet: transmit like plain LTE and listen.
            return {
                ap_id: set(range(self.n_subchannels)) for ap_id in self.hoppers
            }

        decisions: Dict[int, Set[int]] = {}
        self.stats.epochs += 1
        tel = _obs_runtime.active()
        hops_epoch_before = self.stats.total_hops
        span = (
            tel.span(
                "hopping.decide",
                cat="hopping",
                args={"epoch": epoch_index, "aps": len(self.hoppers)},
            )
            if tel is not None
            else None
        )
        if span is not None:
            span.__enter__()
        for ap_id, hopper in self.hoppers.items():
            obs = observations.get(ap_id)
            if obs is None:
                decisions[ap_id] = hopper.holdings or set(range(self.n_subchannels))
                continue
            share = self._share_for(ap_id, obs)
            senses = {
                client_id: ClientSense(
                    subband_cqi=c.subband_cqi,
                    max_subband_cqi=c.max_subband_cqi,
                    interference_detected=c.interference_detected,
                    scheduled_fraction=c.scheduled_fraction,
                )
                for client_id, c in obs.clients.items()
            }
            hops_before = hopper.hop_count
            reuse_before = hopper.reuse_moves
            decisions[ap_id] = set(hopper.step(share, senses))
            self.stats.total_hops += hopper.hop_count - hops_before
            self.stats.total_reuse_moves += hopper.reuse_moves - reuse_before
            self.stats.last_shares[ap_id] = share
            if tel is not None:
                tel.gauge(f"hopping.share.ap{ap_id}", share)
                if hopper.hop_count > hops_before:
                    tel.event(
                        "hopping.hop",
                        cat="hopping",
                        args={
                            "ap": ap_id,
                            "hops": hopper.hop_count - hops_before,
                            "epoch": epoch_index,
                        },
                    )
        if span is not None:
            span.__exit__(None, None, None)
            tel.inc("hopping.decide_epochs")
            tel.observe(
                "hopping.hops_per_epoch",
                self.stats.total_hops - hops_epoch_before,
                edges=(0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0),
            )
        return decisions

    def _share_for(self, ap_id: int, obs: ApObservation) -> int:
        if self.share_override is not None and ap_id in self.share_override:
            return min(self.share_override[ap_id], self.n_subchannels)
        return compute_share(
            self.n_subchannels, obs.n_active_clients, obs.estimated_contenders
        )

    def holdings(self) -> Dict[int, Set[int]]:
        """Current subchannel holdings per AP (diagnostics)."""
        return {ap_id: hopper.holdings for ap_id, hopper in self.hoppers.items()}

    # -- Checkpointing ------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Aggregate stats plus every per-AP hopper (hopper RNGs live in
        the shared :class:`~repro.sim.rng.RngStreams` subsystem)."""
        return {
            "stats": {
                "epochs": self.stats.epochs,
                "total_hops": self.stats.total_hops,
                "total_reuse_moves": self.stats.total_reuse_moves,
                "last_shares": dict(self.stats.last_shares),
            },
            "hoppers": {
                ap_id: hopper.state_dict()
                for ap_id, hopper in self.hoppers.items()
            },
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        stats = state["stats"]
        self.stats = ManagerStats(
            epochs=stats["epochs"],
            total_hops=stats["total_hops"],
            total_reuse_moves=stats["total_reuse_moves"],
            last_shares={int(k): int(v) for k, v in stats["last_shares"].items()},
        )
        for ap_id, hopper_state in state["hoppers"].items():
            self.hoppers[int(ap_id)].load_state(hopper_state)
