"""Sensing mechanisms: PRACH contention counting and CQI-drop detection.

Paper Section 5.1: a CellFi AP learns about its neighbourhood exclusively
through standard LTE radio procedures --

* **Number of active clients**: an extra PRACH detector overhears preambles
  from clients of *other* cells; PDCCH-order RACH solicits preambles every
  second so estimates expire and inactive clients age out.
* **Client interference per subchannel**: clients send mode 3-0 subband CQI
  reports every 2 ms; a run of reports below 60% of the recent maximum
  declares interference (implemented sample-accurately in
  :class:`repro.lte.cqi.SubbandCqiReporter`; this module adds the
  epoch-level wrapper with the measured 2%/80% error rates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.obs import runtime as _obs_runtime

#: Measured detector quality (paper Section 6.3.2): "less than 2% false
#: positives" and "when interference is strong, our detector correctly
#: reports interference with 80% probability".
TRUE_POSITIVE_RATE = 0.80
FALSE_POSITIVE_RATE = 0.02

#: Contention estimates expire after this long without a fresh preamble
#: ("This allows sensing nodes to expire each estimate after 1 second").
ESTIMATE_TTL_S = 1.0


@dataclass
class PrachContentionEstimator:
    """Counts distinct active clients heard via PRACH, with expiry.

    The surrounding simulator feeds it ``hear(client_id, now)`` whenever a
    preamble is detected at or above the -10 dB operating point;
    :meth:`estimate` returns the number of clients heard within the TTL.
    """

    ttl_s: float = ESTIMATE_TTL_S
    _last_heard: Dict[int, float] = field(default_factory=dict)

    def hear(self, client_id: int, now: float) -> None:
        """Record a detected preamble from ``client_id`` at time ``now``."""
        self._last_heard[client_id] = now
        tel = _obs_runtime.active()
        if tel is not None:
            tel.inc("prach.preambles_heard")

    def estimate(self, now: float) -> int:
        """Active-client estimate: preambles heard within the last TTL."""
        self._expire(now)
        return len(self._last_heard)

    def heard_clients(self, now: float) -> Set[int]:
        """The ids currently counted (for diagnostics and tests)."""
        self._expire(now)
        return set(self._last_heard)

    def _expire(self, now: float) -> None:
        cutoff = now - self.ttl_s
        self._last_heard = {
            cid: t for cid, t in self._last_heard.items() if t >= cutoff
        }


class CqiDropDetector:
    """Epoch-level interference detector with the measured error rates.

    Given ground truth ("is subchannel k really interfered for client u
    this epoch?") it produces the noisy verdict the algorithm acts on:
    flips a true interference event to "not detected" 20% of the time and a
    clean subchannel to "interfered" 2% of the time.  These are exactly the
    constants the paper measured on its testbed and injected into ns-3.

    Args:
        rng: random stream for the error draws.
        true_positive: detection probability under real interference.
        false_positive: false-alarm probability on clean subchannels.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        true_positive: float = TRUE_POSITIVE_RATE,
        false_positive: float = FALSE_POSITIVE_RATE,
    ) -> None:
        if not 0.0 <= false_positive <= true_positive <= 1.0:
            raise ValueError(
                "require 0 <= false_positive <= true_positive <= 1, got "
                f"{false_positive} / {true_positive}"
            )
        self.rng = rng
        self.true_positive = true_positive
        self.false_positive = false_positive

    def verdict(self, truly_interfered: bool) -> bool:
        """One noisy detector decision.

        Telemetry here counts outcomes only -- it must never draw from
        ``rng``, or instrumented runs would diverge from clean ones.
        """
        threshold = self.true_positive if truly_interfered else self.false_positive
        flagged = bool(self.rng.random() < threshold)
        tel = _obs_runtime.active()
        if tel is not None:
            tel.inc("cqi.detector_verdicts")
            if flagged:
                tel.inc("cqi.detector_flags")
        return flagged

    def verdicts(self, truth: List[bool]) -> List[bool]:
        """Vectorised verdicts for a list of ground-truth flags."""
        return [self.verdict(t) for t in truth]
