"""Distributed subchannel selection: hopping, buckets, and re-use packing.

Implements the Figure 4 procedure and the bucket/re-use rules of paper
Section 5.3:

* Initially an AP picks its ``S_i`` subchannels at random, drawing for each
  a bucket value from an exponential distribution with mean ``lambda = 10``
  ("we found lambda = 10 to be a good choice experimentally").
* Each period, for every client scheduled on a held subchannel: a "bad"
  verdict (interference detected) decrements the bucket by the fraction of
  time that client was scheduled there.  "The bucket update mechanism makes
  sure that a new AP is able to win a subchannel irrespective of how long
  the previous AP has been operating on it."
* When a bucket reaches zero the AP gives the subchannel up and hops to the
  subchannel of **maximum utility**, where utility is the sum of the
  throughputs achievable (estimated from CQI) by the clients recently
  scheduled on the abandoned subchannel, scaled by their scheduled time.
* **Channel re-use** (packing): the AP moves a held subchannel down to a
  lower index when that lower subchannel has looked interference-free to
  all relevant clients for a contiguous stretch -- clients that nobody
  interferes with (e.g. close to their AP) spontaneously stack onto the
  same low subchannels across networks, yielding "up to 2x gain in
  throughput for exposed clients".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Set

import numpy as np

from repro.obs import runtime as _obs_runtime
from repro.phy.mcs import efficiency_from_cqi


@dataclass(frozen=True)
class ClientSense:
    """What one client's reports tell its AP this epoch.

    Attributes:
        subband_cqi: latest CQI per subchannel.
        max_subband_cqi: running max CQI per subchannel (clean estimate).
        interference_detected: detector verdict per subchannel.
        scheduled_fraction: airtime per subchannel last epoch.
    """

    subband_cqi: Sequence[int]
    max_subband_cqi: Sequence[int]
    interference_detected: Sequence[bool]
    scheduled_fraction: Mapping[int, float]


@dataclass
class HopperConfig:
    """Tunables of the hopping procedure.

    Attributes:
        n_subchannels: subchannels on the carrier (13 on 5 MHz).
        bucket_mean: mean of the exponential bucket distribution (paper: 10).
        reuse_enabled: apply the channel re-use packing heuristic.
        reuse_persistence_epochs: how long a lower subchannel must look free
            before packing onto it.
    """

    n_subchannels: int
    bucket_mean: float = 10.0
    reuse_enabled: bool = True
    reuse_persistence_epochs: int = 3

    def __post_init__(self) -> None:
        if self.n_subchannels <= 0:
            raise ValueError(f"need subchannels, got {self.n_subchannels}")
        if self.bucket_mean <= 0.0:
            raise ValueError(f"bucket mean must be > 0, got {self.bucket_mean}")
        if self.reuse_persistence_epochs < 1:
            raise ValueError("re-use persistence must be >= 1 epoch")


class SubchannelHopper:
    """Per-AP hopping state machine.

    Args:
        config: tunables.
        rng: random stream (initial picks, bucket draws, tie breaks).
    """

    def __init__(self, config: HopperConfig, rng: np.random.Generator) -> None:
        self.config = config
        self.rng = rng
        #: Held subchannel -> remaining bucket value.
        self.buckets: Dict[int, float] = {}
        #: Clients recently scheduled per held subchannel (for utility and
        #: the re-use rule's "users scheduled ... in the recent past").
        self._recent_clients: Dict[int, Set[int]] = {}
        #: Consecutive epochs each subchannel has looked free to all of our
        #: relevant clients.
        self._free_streak: Dict[int, int] = {
            k: 0 for k in range(config.n_subchannels)
        }
        self.hop_count = 0
        self.reuse_moves = 0

    # -- Queries -----------------------------------------------------------------

    @property
    def holdings(self) -> Set[int]:
        """Currently held subchannels."""
        return set(self.buckets)

    @property
    def initialized(self) -> bool:
        """Whether the initial random pick has happened."""
        return bool(self.buckets) or self._initialized_empty

    _initialized_empty = False

    # -- Main per-epoch step ------------------------------------------------------

    def step(
        self,
        target_share: int,
        senses: Mapping[int, ClientSense],
    ) -> Set[int]:
        """Advance one epoch; returns the subchannels to use next epoch.

        Args:
            target_share: ``S_i`` from the share calculation.
            senses: per-client sensing input for the epoch just finished.

        Raises:
            ValueError: if ``target_share`` exceeds the carrier size.
        """
        if not 0 <= target_share <= self.config.n_subchannels:
            raise ValueError(
                f"share {target_share} out of range 0..{self.config.n_subchannels}"
            )
        if not self.buckets and not self._initialized_empty:
            self._initialize(target_share)
            return self.holdings

        hops_before = self.hop_count
        reuse_before = self.reuse_moves
        self._update_free_streaks(senses)
        self._drain_buckets(senses)
        self._hop_empty_buckets(senses)
        self._resize(target_share, senses)
        if self.config.reuse_enabled:
            self._pack_downwards(senses)
        self._remember_recent_clients(senses)
        tel = _obs_runtime.active()
        if tel is not None:
            hops = self.hop_count - hops_before
            tel.inc("hopping.steps")
            if hops:
                tel.inc("hopping.hops", hops)
            if self.reuse_moves > reuse_before:
                tel.inc("hopping.reuse_moves", self.reuse_moves - reuse_before)
            tel.observe(
                "hopping.hops_per_step",
                hops,
                edges=(0.0, 1.0, 2.0, 3.0, 5.0, 8.0, 13.0),
            )
        return self.holdings

    # -- Phase 0: initial random pick ----------------------------------------------

    def _initialize(self, target_share: int) -> None:
        if target_share == 0:
            self._initialized_empty = True
            return
        picks = self.rng.choice(
            self.config.n_subchannels, size=target_share, replace=False
        )
        for k in picks:
            self.buckets[int(k)] = self._draw_bucket()

    def _draw_bucket(self) -> float:
        return float(self.rng.exponential(self.config.bucket_mean))

    # -- Phase 1: bucket drain ---------------------------------------------------------

    def _drain_buckets(self, senses: Mapping[int, ClientSense]) -> None:
        for k in list(self.buckets):
            for sense in senses.values():
                frac = sense.scheduled_fraction.get(k, 0.0)
                if frac <= 0.0:
                    continue
                if sense.interference_detected[k]:
                    self.buckets[k] -= frac

    # -- Phase 2: hops -------------------------------------------------------------------

    def _hop_empty_buckets(self, senses: Mapping[int, ClientSense]) -> None:
        for k in sorted(self.buckets):
            if self.buckets[k] > 0.0:
                continue
            departing_clients = self._recent_clients.get(k, set())
            replacement = self._best_candidate(senses, departing_clients)
            del self.buckets[k]
            self._recent_clients.pop(k, None)
            if replacement is not None:
                self.buckets[replacement] = self._draw_bucket()
                self._recent_clients[replacement] = set(departing_clients)
            self.hop_count += 1

    def _best_candidate(
        self,
        senses: Mapping[int, ClientSense],
        weight_clients: Set[int],
    ) -> Optional[int]:
        """Maximum-utility subchannel not currently held.

        Utility of candidate ``k'``: sum over the relevant clients of the
        rate their CQI reading promises on ``k'``, weighted by how much
        airtime they recently received.  When no history exists (cold
        start, idle cell) all active clients weigh equally.
        """
        candidates = [
            k for k in range(self.config.n_subchannels) if k not in self.buckets
        ]
        if not candidates:
            return None
        best_k = None
        best_utility = -1.0
        # Random scan order randomises tie-breaks.
        for k in self.rng.permutation(candidates):
            utility = self._utility(int(k), senses, weight_clients)
            if utility > best_utility:
                best_utility = utility
                best_k = int(k)
        return best_k

    def _utility(
        self,
        candidate: int,
        senses: Mapping[int, ClientSense],
        weight_clients: Set[int],
    ) -> float:
        total = 0.0
        for client_id, sense in senses.items():
            if weight_clients and client_id not in weight_clients:
                continue
            weight = sum(sense.scheduled_fraction.values()) or 1.0
            rate = efficiency_from_cqi(sense.subband_cqi[candidate])
            if sense.interference_detected[candidate]:
                # A subchannel the client already flags is a bad bet.
                rate *= 0.1
            total += weight * rate
        return total

    # -- Phase 3: share resize ----------------------------------------------------------------

    def _resize(self, target_share: int, senses: Mapping[int, ClientSense]) -> None:
        while len(self.buckets) < target_share:
            extra = self._best_candidate(senses, set())
            if extra is None:
                break
            self.buckets[extra] = self._draw_bucket()
        while len(self.buckets) > target_share:
            # Shed the least useful holding.
            worst = min(
                self.buckets,
                key=lambda k: self._utility(k, senses, self._recent_clients.get(k, set())),
            )
            del self.buckets[worst]
            self._recent_clients.pop(worst, None)

    # -- Phase 4: channel re-use packing ----------------------------------------------------------

    def _update_free_streaks(self, senses: Mapping[int, ClientSense]) -> None:
        for k in range(self.config.n_subchannels):
            free_for_all = all(
                not sense.interference_detected[k] for sense in senses.values()
            ) if senses else False
            if free_for_all and k not in self.buckets:
                self._free_streak[k] += 1
            else:
                self._free_streak[k] = 0

    def _pack_downwards(self, senses: Mapping[int, ClientSense]) -> None:
        """Move the highest held subchannel onto a persistent-free lower one."""
        if not self.buckets:
            return
        highest = max(self.buckets)
        candidates = [
            k
            for k in range(highest)
            if k not in self.buckets
            and self._free_streak[k] >= self.config.reuse_persistence_epochs
        ]
        if not candidates:
            return
        target = min(candidates)
        recent = self._recent_clients.get(highest, set())
        # The paper's rule: all users recently scheduled on the abandoned
        # subchannel must have seen the target as free.
        for client_id in recent:
            sense = senses.get(client_id)
            if sense is not None and sense.interference_detected[target]:
                return
        bucket = self.buckets.pop(highest)
        self.buckets[target] = bucket
        self._recent_clients[target] = recent
        self._recent_clients.pop(highest, None)
        self._free_streak[target] = 0
        self.reuse_moves += 1

    # -- Checkpointing ----------------------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Hopping state.

        The RNG is excluded: it is one of the shared
        :class:`repro.sim.rng.RngStreams` generators and is restored in
        place by that subsystem, preserving the aliasing.
        """
        return {
            "buckets": dict(self.buckets),
            "recent_clients": dict(self._recent_clients),
            "free_streak": dict(self._free_streak),
            "hop_count": self.hop_count,
            "reuse_moves": self.reuse_moves,
            "initialized_empty": self._initialized_empty,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self.buckets = {int(k): float(v) for k, v in state["buckets"].items()}
        self._recent_clients = {
            int(k): set(v) for k, v in state["recent_clients"].items()
        }
        self._free_streak = {int(k): int(v) for k, v in state["free_streak"].items()}
        self.hop_count = state["hop_count"]
        self.reuse_moves = state["reuse_moves"]
        self._initialized_empty = state["initialized_empty"]

    # -- Bookkeeping ------------------------------------------------------------------------------

    def _remember_recent_clients(self, senses: Mapping[int, ClientSense]) -> None:
        for k in self.buckets:
            scheduled = {
                client_id
                for client_id, sense in senses.items()
                if sense.scheduled_fraction.get(k, 0.0) > 0.0
            }
            if scheduled:
                self._recent_clients[k] = scheduled
