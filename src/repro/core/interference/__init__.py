"""CellFi's decentralized interference management (paper Sections 4.3, 5).

The algorithm runs in two phases every second, with no communication
between access points:

1. **Distributed share calculation** (:mod:`share`): each AP estimates the
   number of contending clients in its neighbourhood from overheard PRACH
   preambles and reserves ``S_i = N_i * S / NP_i`` subchannels.
2. **Distributed subchannel selection** (:mod:`hopping`): APs converge on
   non-conflicting subchannel sets by randomized hopping -- exponential
   bucket values drain as clients report interference (via CQI drops,
   :mod:`sensing`) and an empty bucket triggers a hop to the
   maximum-utility subchannel.  A re-use heuristic packs interference-free
   clients onto low-index subchannels.

:mod:`theory` holds the abstract graph model of Section 5.5 and the
Theorem 1 bound; :mod:`manager` adapts everything to the epoch interface of
:class:`repro.lte.network.LteNetworkSimulator`.
"""

from repro.core.interference.hopping import HopperConfig, SubchannelHopper
from repro.core.interference.manager import CellFiInterferenceManager
from repro.core.interference.sensing import (
    CqiDropDetector,
    PrachContentionEstimator,
)
from repro.core.interference.share import compute_share
from repro.core.interference.theory import HoppingGame, theorem1_round_bound

__all__ = [
    "CellFiInterferenceManager",
    "CqiDropDetector",
    "HopperConfig",
    "HoppingGame",
    "PrachContentionEstimator",
    "SubchannelHopper",
    "compute_share",
    "theorem1_round_bound",
]
