"""The abstract hopping game of Section 5.5 and the Theorem 1 bound.

The paper abstracts the network as an undirected conflict graph
``G = (V, E)``: vertices are APs with integer demands ``d_i``, sharing
``M`` subchannels.  Under two assumptions --

* **Demand**: every closed neighbourhood's demand sum leaves slack
  ``gamma``: ``sum_{l in N(v)} d_l <= (1 - gamma) M``;
* **Fading**: a chosen-free subchannel is unusable with probability ``p``,
  independently per attempt --

Theorem 1 states the randomized hopping converges with probability 1, in
``O(M log n / ((1 - p) gamma))`` rounds in expectation and w.h.p.

:class:`HoppingGame` simulates exactly this abstract process (not the full
LTE machinery) so the bound can be validated empirically, including the
log-n scaling and the 1/(1-p), 1/gamma dependencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import networkx as nx
import numpy as np


def theorem1_round_bound(
    n_nodes: int, m_subchannels: int, gamma: float, fading_p: float, constant: float = 1.0
) -> float:
    """The Theorem 1 convergence bound: ``c * M log n / ((1-p) gamma)``.

    Raises:
        ValueError: for parameters outside the theorem's assumptions.
    """
    if n_nodes < 1:
        raise ValueError(f"need at least one node, got {n_nodes}")
    if m_subchannels < 1:
        raise ValueError(f"need at least one subchannel, got {m_subchannels}")
    if not 1.0 / m_subchannels < gamma <= 1.0:
        raise ValueError(f"gamma must be in (1/M, 1], got {gamma!r}")
    if not 0.0 <= fading_p < 1.0:
        raise ValueError(f"fading probability must be in [0, 1), got {fading_p!r}")
    return constant * m_subchannels * math.log(max(n_nodes, 2)) / ((1.0 - fading_p) * gamma)


@dataclass
class GameResult:
    """Outcome of one hopping-game run.

    Attributes:
        converged: every node satisfied its demand.
        rounds: rounds executed (equals ``max_rounds`` if not converged).
        rounds_to_converge: first all-satisfied round, or ``None``.
    """

    converged: bool
    rounds: int
    rounds_to_converge: Optional[int]


class HoppingGame:
    """The abstract randomized-hopping process on a conflict graph.

    Per round, every node with unmet demand picks uniformly at random among
    the subchannels that *appear free* in its neighbourhood; an attempt
    fails if another neighbour made the same choice this round (clash) or
    the subchannel is faded (probability ``p``).  Acquired subchannels are
    kept -- the analysis's process, which the full CellFi hopper refines
    with buckets and utility.

    Args:
        graph: conflict graph; nodes are hashable AP ids.
        demands: subchannels each node must acquire.
        m_subchannels: total subchannels ``M``.
        fading_p: per-attempt fading probability.
        rng: randomness for choices and fading.

    Raises:
        ValueError: if any demand is negative or exceeds ``M``.
    """

    def __init__(
        self,
        graph: nx.Graph,
        demands: Dict,
        m_subchannels: int,
        fading_p: float,
        rng: np.random.Generator,
    ) -> None:
        if m_subchannels < 1:
            raise ValueError(f"need at least one subchannel, got {m_subchannels}")
        if not 0.0 <= fading_p < 1.0:
            raise ValueError(f"fading probability must be in [0, 1), got {fading_p!r}")
        for node, demand in demands.items():
            if demand < 0 or demand > m_subchannels:
                raise ValueError(f"demand {demand} of node {node!r} out of range")
        self.graph = graph
        self.demands = dict(demands)
        self.m = m_subchannels
        self.p = fading_p
        self.rng = rng
        self.held: Dict = {node: set() for node in graph.nodes}

    # -- Assumptions -----------------------------------------------------------

    def demand_slack(self) -> float:
        """The realised ``gamma``: min over closed neighbourhoods.

        ``gamma = 1 - max_v sum_{l in N[v]} d_l / M``.  Must be positive
        for Theorem 1 to apply.
        """
        worst = 0
        for node in self.graph.nodes:
            neighbourhood = set(self.graph.neighbors(node)) | {node}
            worst = max(worst, sum(self.demands.get(v, 0) for v in neighbourhood))
        return 1.0 - worst / self.m

    # -- Dynamics -----------------------------------------------------------------

    def _free_for(self, node) -> List[int]:
        """Subchannels not held by ``node`` or any neighbour."""
        taken: Set[int] = set(self.held[node])
        for neighbour in self.graph.neighbors(node):
            taken |= self.held[neighbour]
        return [k for k in range(self.m) if k not in taken]

    def round(self) -> None:
        """One synchronized hopping round."""
        # All unsatisfied nodes choose simultaneously (clashes possible).
        choices: Dict = {}
        for node in self.graph.nodes:
            deficit = self.demands[node] - len(self.held[node])
            if deficit <= 0:
                continue
            free = self._free_for(node)
            if not free:
                continue
            picks = self.rng.choice(
                free, size=min(deficit, len(free)), replace=False
            )
            choices[node] = {int(k) for k in picks}

        for node, picks in choices.items():
            for k in picks:
                clashed = any(
                    k in choices.get(neighbour, ())
                    for neighbour in self.graph.neighbors(node)
                )
                faded = self.rng.random() < self.p
                if not clashed and not faded:
                    self.held[node].add(k)

    def satisfied(self) -> bool:
        """Whether every node has met its demand."""
        return all(
            len(self.held[node]) >= self.demands[node] for node in self.graph.nodes
        )

    def run(self, max_rounds: int = 10_000) -> GameResult:
        """Run until convergence or ``max_rounds``."""
        for round_index in range(1, max_rounds + 1):
            if self.satisfied():
                return GameResult(
                    converged=True,
                    rounds=round_index - 1,
                    rounds_to_converge=round_index - 1,
                )
            self.round()
        converged = self.satisfied()
        return GameResult(
            converged=converged,
            rounds=max_rounds,
            rounds_to_converge=max_rounds if converged else None,
        )


def random_conflict_graph(
    n_nodes: int, mean_degree: float, rng: np.random.Generator
) -> nx.Graph:
    """An Erdos-Renyi conflict graph with the given expected degree."""
    if n_nodes < 1:
        raise ValueError(f"need at least one node, got {n_nodes}")
    probability = min(1.0, mean_degree / max(1, n_nodes - 1))
    seed = int(rng.integers(0, 2**31))
    return nx.gnp_random_graph(n_nodes, probability, seed=seed)


def feasible_uniform_demands(
    graph: nx.Graph, m_subchannels: int, gamma: float
) -> Dict:
    """Uniform demands sized so the demand assumption holds with slack gamma.

    Every closed neighbourhood gets total demand at most ``(1-gamma) M``.
    """
    if not 0.0 < gamma <= 1.0:
        raise ValueError(f"gamma must be in (0, 1], got {gamma!r}")
    max_closed_degree = max(
        (graph.degree(v) + 1 for v in graph.nodes), default=1
    )
    per_node = max(1, int((1.0 - gamma) * m_subchannels / max_closed_degree))
    return {node: per_node for node in graph.nodes}
