"""Hybrid control plane: centralized per provider, distributed across.

Paper Section 7: "CellFi can be extended to include centralized
coordination among nodes from one provider, and distributed coordination
across multiple providers, which could further improve performance."

:class:`HybridInterferenceManager` implements that extension on top of the
stock machinery: each *provider* runs one hopper representing its pooled
spectrum claim (contending with other providers exactly like a single
CellFi AP would), and a per-provider coordinator splits the provider's
holdings among its member APs -- disjointly where members interfere with
each other, utility-greedily where they do not.  Across providers nothing
changes: no communication, pure sensing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set

from repro.core.interference.hopping import ClientSense, HopperConfig, SubchannelHopper
from repro.core.interference.share import compute_share
from repro.lte.network import ApObservation
from repro.phy.mcs import efficiency_from_cqi
from repro.sim.rng import RngStreams


class HybridInterferenceManager:
    """Per-provider centralized + cross-provider distributed allocation.

    Args:
        providers: provider name -> member AP ids (disjoint).
        n_subchannels: carrier size.
        rngs: named random streams.
        bucket_mean: hopper bucket mean (as in plain CellFi).

    Raises:
        ValueError: if an AP belongs to multiple providers.
    """

    def __init__(
        self,
        providers: Mapping[str, Sequence[int]],
        n_subchannels: int,
        rngs: RngStreams,
        bucket_mean: float = 10.0,
    ) -> None:
        seen: Set[int] = set()
        for members in providers.values():
            overlap = seen & set(members)
            if overlap:
                raise ValueError(f"APs {sorted(overlap)} in multiple providers")
            seen |= set(members)
        self.providers = {name: list(members) for name, members in providers.items()}
        self.n_subchannels = n_subchannels
        config = HopperConfig(n_subchannels=n_subchannels, bucket_mean=bucket_mean)
        self.hoppers: Dict[str, SubchannelHopper] = {
            name: SubchannelHopper(config, rngs.stream(f"provider-{name}"))
            for name in self.providers
        }
        self._last_split: Dict[int, Set[int]] = {}

    # -- SubchannelPolicy interface -------------------------------------------

    def decide(
        self,
        epoch_index: int,
        observations: Optional[Dict[int, ApObservation]],
    ) -> Dict[int, Set[int]]:
        """Allowed subchannels per AP for the coming epoch."""
        if observations is None:
            return {
                ap: set(range(self.n_subchannels))
                for members in self.providers.values()
                for ap in members
            }

        decisions: Dict[int, Set[int]] = {}
        for name, members in self.providers.items():
            member_obs = {
                ap: observations[ap] for ap in members if ap in observations
            }
            share = self._provider_share(member_obs)
            senses = self._pooled_senses(member_obs)
            holdings = self.hoppers[name].step(share, senses)
            split = self._split_holdings(holdings, member_obs)
            decisions.update(split)
            self._last_split.update(split)
        return decisions

    # -- Provider-level aggregation ----------------------------------------------

    def _provider_share(self, member_obs: Dict[int, ApObservation]) -> int:
        """Pooled share: provider clients vs. the neighbourhood estimate.

        Centralization means members share their sensing: the provider
        claims spectrum for the *sum* of its active clients against the
        *largest* contention estimate any member sees (conservative).
        """
        own = sum(obs.n_active_clients for obs in member_obs.values())
        contenders = max(
            (obs.estimated_contenders for obs in member_obs.values()), default=own
        )
        # Members hear their own provider's clients too; the pooled count
        # must dominate the per-member estimates.
        contenders = max(contenders, own)
        return compute_share(self.n_subchannels, own, contenders)

    def _pooled_senses(
        self, member_obs: Dict[int, ApObservation]
    ) -> Dict[int, ClientSense]:
        """All member clients' senses, keyed by client id."""
        senses: Dict[int, ClientSense] = {}
        for obs in member_obs.values():
            for client_id, c in obs.clients.items():
                senses[client_id] = ClientSense(
                    subband_cqi=c.subband_cqi,
                    max_subband_cqi=c.max_subband_cqi,
                    interference_detected=c.interference_detected,
                    scheduled_fraction=c.scheduled_fraction,
                )
        return senses

    # -- Intra-provider split -----------------------------------------------------

    def _split_holdings(
        self,
        holdings: Set[int],
        member_obs: Dict[int, ApObservation],
    ) -> Dict[int, Set[int]]:
        """Divide the provider's subchannels among member APs.

        Greedy utility assignment: each subchannel goes to the member whose
        clients report the best CQI on it, subject to keeping the member
        allocations balanced by client count.  Members that interfere with
        each other therefore never share a subchannel (centralized
        coordination); a member with no clients gets nothing.
        """
        members = [ap for ap in member_obs if member_obs[ap].clients]
        if not members:
            return {ap: set() for ap in member_obs}
        weights = {
            ap: max(1, member_obs[ap].n_active_clients) for ap in members
        }
        total_weight = sum(weights.values())
        quota = {
            ap: max(1, round(len(holdings) * weights[ap] / total_weight))
            for ap in members
        }
        split: Dict[int, Set[int]] = {ap: set() for ap in member_obs}

        def utility(ap: int, sub: int) -> float:
            total = 0.0
            for c in member_obs[ap].clients.values():
                rate = efficiency_from_cqi(c.subband_cqi[sub])
                if c.interference_detected[sub]:
                    rate *= 0.1
                total += rate
            return total

        for sub in sorted(holdings):
            eligible = [ap for ap in members if len(split[ap]) < quota[ap]]
            if not eligible:
                eligible = members
            best = max(eligible, key=lambda ap: (utility(ap, sub), -len(split[ap])))
            split[best].add(sub)
        return split

    def holdings(self) -> Dict[int, Set[int]]:
        """Latest per-AP allocation (diagnostics)."""
        return {ap: set(subs) for ap, subs in self._last_split.items()}

    def provider_holdings(self) -> Dict[str, Set[int]]:
        """Latest per-provider hopper holdings."""
        return {name: hopper.holdings for name, hopper in self.hoppers.items()}
