"""Spatial shard engine: city-scale epochs across worker processes.

The incremental backend (see ``docs/SIMULATION.md``) made per-epoch cost
proportional to activity, but the map was still one global process.  This
module partitions the map into rectangular spatial shards (one
:func:`repro.sim.topology.grid_partition` tile per worker) and runs each
shard's epoch in its own worker, while keeping the merged result **bitwise
identical** to the single-process run.  Sharding is a pure execution
strategy, never a semantics change.

Why bit-identity is even possible
---------------------------------

Each worker holds the *full* replicated topology but owns only the APs of
its tile and the clients attached to them (see ``shard_ap_ids`` on
:class:`repro.lte.network.LteNetworkSimulator`):

* **Downlink interference** at an owned client comes from the client's own
  gain-matrix row, which spans *every* AP on the map -- owned and foreign
  alike.  The "halo" is therefore implicit and exact: any foreign AP
  within the ``cull_loss_db`` horizon contributes its real received power,
  and anything beyond the horizon is the exact-``0.0`` watt no-op the
  culling contract already guarantees (adding ``0.0`` is an IEEE-754
  identity).  No power needs to cross shard boundaries at all.
* **PRACH contention** (``NP_i`` in the share formula ``S_i = N_i * S /
  NP_i``) is the one genuinely global quantity: an AP hears preambles from
  *active* clients of other shards.  Each worker computes partial integer
  counts over its owned clients (foreign rows of its preamble matrix are
  all-``False``), and the epoch barrier sums the disjoint partials --
  integer addition, no rounding -- and broadcasts the exact total.
* **RNG draws**: the unsharded epoch draws from the shared "rlf" and
  "cqi-detector" streams in topology AP order.  Workers fast-forward the
  streams over foreign APs with batched discards (NumPy's batched
  ``random(n)`` advances PCG64 exactly like ``n`` scalar draws), so every
  owned AP draws the same doubles at the same stream offsets as the
  unsharded run.

Epoch barrier protocol (per epoch):

1. parent pushes the epoch RNG stream states and the decision to every
   worker; each replies with its partial PRACH counts,
2. parent reduces the partials and broadcasts the exact total,
3. workers run their epoch slice; the parent merges the per-shard results
   (disjoint key sets) and adopts the synchronized stream states after
   asserting all workers ended at identical RNG offsets.

Cross-shard handover is a row migration at the epoch barrier: the old
owner exports the client's cross-epoch max-CQI row, every replica applies
the re-attach (disown / adopt on the two owners, topology-only elsewhere),
and the new owner imports the row.

Fault tolerance (see ``docs/ROBUSTNESS.md``)
--------------------------------------------

:class:`ShardSupervisor` wraps the barrier with liveness tracking: every
reply is read against a per-phase deadline derived from recent critical
path timings, failures are classified (crash / hang / protocol error),
and a failed worker is respawned from the last merged shard-agnostic
snapshot plus a bounded journal of the event ops and epoch barriers since
-- so the recovered run digest stays bit-identical to a fault-free run.
A per-worker retry budget with exponential backoff bounds the recovery
cost; exhausting it folds the shard into inline execution (slower, still
bit-identical) with a structured warning instead of aborting the run.
:class:`ChaosPolicy` schedules deterministic fault injection (SIGKILL,
SIGSTOP stalls, truncated replies, latency spikes) off epoch indices for
the chaos test net and ``make chaos-smoke``.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import signal
import threading
import time
import traceback
import warnings
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.lte.network import (
    ApObservation,
    BACKEND_INCREMENTAL,
    EpochResult,
    LteNetworkSimulator,
    SubchannelPolicy,
)
from repro.obs import runtime as _obs_runtime
from repro.obs.record import EventLog
from repro.obs.shardmerge import ShardTelemetryMerger
from repro.obs.shipping import TelemetryShipper
from repro.obs.telemetry import Telemetry
from repro.sim.checkpoint import clone_state
from repro.sim.topology import Topology, grid_partition

__all__ = [
    "CHAOS_KINDS",
    "ChaosEvent",
    "ChaosPolicy",
    "EPOCH_STREAMS",
    "ShardDegradedWarning",
    "ShardSupervisor",
    "ShardedNetwork",
    "SupervisionConfig",
    "SupervisionLog",
    "grid_partition",
]

# The only RNG streams the epoch loop draws from; they are pushed to the
# workers at every barrier and synchronized back afterwards.  Driver-side
# streams (demand, churn, policy) never enter the workers.
EPOCH_STREAMS = ("rlf", "cqi-detector")

NetFactory = Callable[[Optional[Sequence[int]]], LteNetworkSimulator]

#: Deadline for pulling a dying/closing worker's buffered telemetry.
#: Short on purpose: a hung worker must not stall recovery, and a
#: missed flush is only a telemetry loss (counted), never a state loss.
_TEL_FLUSH_DEADLINE_S = 2.0


def _worker_telemetry(tel_cfg: Optional[Dict[str, bool]]):
    """Build a worker-local (Telemetry, TelemetryShipper) pair, or Nones.

    ``tel_cfg`` is the parent's capture of *what* to record
    (``{"trace": bool, "profile": bool}``); ``None`` means telemetry is
    off and the worker must stay on the zero-allocation disabled path so
    barrier payloads remain byte-identical to an untraced run.
    """
    if not tel_cfg:
        return None, None
    tel = Telemetry(
        trace=bool(tel_cfg.get("trace")), profile=bool(tel_cfg.get("profile"))
    )
    return tel, TelemetryShipper(tel)


def _epoch_stream_states(rngs) -> Dict[str, Any]:
    return {
        name: rngs.stream(name).bit_generator.state for name in EPOCH_STREAMS
    }


def _apply_stream_states(rngs, states: Dict[str, Any]) -> None:
    for name, state in states.items():
        rngs.stream(name).bit_generator.state = state


class _InlineWorker:
    """In-process worker: same protocol, no pipes (tests, fallback).

    With ``tel_cfg`` set, the worker keeps its *own* telemetry instance
    and activates it around every op, so an inline (or degraded) shard
    records exactly like a process worker would -- into a shard-local
    buffer shipped via payloads -- instead of leaking unprefixed metrics
    into the parent registry.
    """

    def __init__(
        self,
        net_factory: NetFactory,
        ap_ids: Sequence[int],
        tel_cfg: Optional[Dict[str, bool]] = None,
    ) -> None:
        self._tel, self._shipper = _worker_telemetry(tel_cfg)
        with self._scope():
            self.net = net_factory(list(ap_ids))
        self._pending: Optional[tuple] = None
        self._partial: Optional[np.ndarray] = None
        self._result: Optional[tuple] = None
        #: Chaos hook: a "killed" inline worker refuses every op until the
        #: supervisor rebuilds it, mirroring a SIGKILL'd process worker.
        self.dead = False

    def _scope(self):
        """Activate the worker-local telemetry for one op (or no-op)."""
        if self._tel is None:
            return nullcontext()
        return _obs_runtime.activated(self._tel)

    def simulate_crash(self) -> None:
        self.dead = True

    def apply_move(self, client_id: int, x: float, y: float) -> None:
        with self._scope():
            self.net.move_client(client_id, x, y)

    def apply_reattach(self, client_id: int, new_ap_id: int) -> None:
        with self._scope():
            self.net.reattach_client(client_id, new_ap_id)

    def export_row(self, client_id: int) -> List[int]:
        with self._scope():
            return self.net.export_client_row(client_id)

    def import_row(self, client_id: int, row: Sequence[int]) -> None:
        with self._scope():
            self.net.import_client_row(client_id, row)

    def begin_epoch(self, epoch_index, allowed, demands_bits, rng_states) -> None:
        with self._scope():
            _apply_stream_states(self.net.rngs, rng_states)
            self._pending = (epoch_index, allowed, demands_bits)
            self._partial = self.net.prach_partial_counts(demands_bits)

    def read_partial(self) -> np.ndarray:
        partial, self._partial = self._partial, None
        return partial

    def commit_epoch(self, prach_total: np.ndarray) -> None:
        epoch_index, allowed, demands_bits = self._pending
        self._pending = None
        with self._scope():
            start = time.process_time()
            result = self.net.run_epoch(
                epoch_index, allowed, demands_bits, prach_counts=prach_total
            )
            compute_s = time.process_time() - start
            outcome = (
                result,
                _epoch_stream_states(self.net.rngs),
                dict(self.net.last_epoch_stats),
                compute_s,
            )
            if self._shipper is not None:
                outcome += (self._shipper.payload("epoch", epoch_index),)
        self._result = outcome

    def read_result(self) -> tuple:
        result, self._result = self._result, None
        return result

    def flush_payload(self) -> Optional[Dict[str, Any]]:
        """Drain buffered telemetry not yet shipped on a commit reply."""
        if self._shipper is None:
            return None
        return self._shipper.payload("flush")

    def build_stats(self) -> Dict[str, Any]:
        """Cache-build timings from the shard net (see ``gain_prefill_s``)."""
        return {"gain_prefill_s": getattr(self.net, "gain_prefill_s", None)}

    def state_dict(self) -> Dict[str, Any]:
        with self._scope():
            return self.net.state_dict()

    def begin_load_state(self, state: Dict[str, Any]) -> None:
        with self._scope():
            self.net.load_state(state)

    def finish_load_state(self) -> None:
        pass

    def close(self) -> None:
        pass


#: Signature used for event ops skipped because the shard was already
#: poisoned by an earlier failure (the state they would act on is suspect).
_SKIPPED_SIG = "skipped: op arrived after an earlier event failure"


def _worker_main(
    conn,
    net_factory: NetFactory,
    ap_ids: Sequence[int],
    tel_cfg: Optional[Dict[str, bool]] = None,
) -> None:
    """Worker-process loop: build the shard simulator, serve barrier ops.

    Event ops (``move`` / ``reattach`` / ``import``) are fire-and-forget so
    the parent can pipeline a whole inter-epoch event batch without a
    round-trip each; any exception they raise is deduplicated by signature
    (repeating identical failures only bump a count) and the structured
    report is surfaced at the next replying op, which every epoch barrier
    contains.  Once poisoned, further event ops are skipped -- and counted
    -- rather than run against suspect state.

    With ``tel_cfg`` the worker runs its own sim-clock-aware telemetry
    (``run_epoch`` advances its clock) and piggybacks incremental
    payloads on every commit reply; the ``tel_flush`` op drains whatever
    is still buffered (recovery/degrade/close pulls it).
    """
    # The fork start method clones the parent's activated telemetry into
    # the child; drop it first so a worker never records into (a copy of)
    # the parent registry, then activate a worker-local instance when the
    # parent asked for one.
    _obs_runtime.disable()
    tel, shipper = _worker_telemetry(tel_cfg)
    if tel is not None:
        _obs_runtime.enable(tel)
    net = net_factory(list(ap_ids))
    pending: Optional[tuple] = None
    # signature -> [count, first full traceback]
    deferred: Dict[str, List[Any]] = {}
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            return
        op = msg[0]
        if op == "stop":
            conn.close()
            return
        if op in ("move", "reattach", "import"):
            if deferred:
                entry = deferred.setdefault(_SKIPPED_SIG, [0, "(not run)"])
                entry[0] += 1
                continue
            try:
                if op == "move":
                    net.move_client(msg[1], msg[2], msg[3])
                elif op == "reattach":
                    net.reattach_client(msg[1], msg[2])
                else:
                    net.import_client_row(msg[1], msg[2])
            except Exception as exc:
                sig = f"{op}: {type(exc).__name__}: {exc}"
                entry = deferred.setdefault(sig, [0, traceback.format_exc()])
                entry[0] += 1
            continue
        if deferred:
            conn.send(
                (
                    "error",
                    {
                        "deferred_ops": [
                            {"signature": sig, "count": count, "traceback": tb}
                            for sig, (count, tb) in deferred.items()
                        ]
                    },
                )
            )
            continue
        try:
            if op == "export":
                conn.send(("ok", net.export_client_row(msg[1])))
            elif op == "begin":
                _, epoch_index, allowed, demands_bits, rng_states = msg
                _apply_stream_states(net.rngs, rng_states)
                pending = (epoch_index, allowed, demands_bits)
                conn.send(("ok", net.prach_partial_counts(demands_bits)))
            elif op == "commit":
                epoch_index, allowed, demands_bits = pending
                pending = None
                start = time.process_time()
                result = net.run_epoch(
                    epoch_index, allowed, demands_bits, prach_counts=msg[1]
                )
                compute_s = time.process_time() - start
                outcome = (
                    result,
                    _epoch_stream_states(net.rngs),
                    dict(net.last_epoch_stats),
                    compute_s,
                )
                if shipper is not None:
                    # Telemetry piggybacks on the commit reply; with
                    # telemetry off the wire format is byte-identical to
                    # the untraced run (digest neutrality).
                    outcome += (shipper.payload("epoch", epoch_index),)
                conn.send(("ok", outcome))
            elif op == "build_stats":
                conn.send(
                    ("ok", {"gain_prefill_s": getattr(net, "gain_prefill_s", None)})
                )
            elif op == "tel_flush":
                conn.send(
                    (
                        "ok",
                        shipper.payload("flush") if shipper is not None else None,
                    )
                )
            elif op == "state":
                conn.send(("ok", net.state_dict()))
            elif op == "load":
                net.load_state(msg[1])
                conn.send(("ok", None))
            else:
                raise ValueError(f"unknown shard worker op {op!r}")
        except Exception:
            conn.send(("error", traceback.format_exc()))


def _format_worker_error(payload: Any) -> str:
    """Human-readable text for a worker ``("error", payload)`` reply."""
    if isinstance(payload, dict) and "deferred_ops" in payload:
        rows = payload["deferred_ops"]
        total = sum(row["count"] for row in rows)
        lines = [
            f"{total} deferred shard event failure(s), "
            f"{len(rows)} distinct:"
        ]
        for row in rows:
            lines.append(f"  [x{row['count']}] {row['signature']}")
        lines.append("first traceback:")
        lines.append(str(rows[0]["traceback"]))
        return "\n".join(lines)
    return str(payload)


class _ProcessWorker:
    """Pipe-connected worker process (``fork`` start method)."""

    def __init__(
        self,
        ctx,
        net_factory: NetFactory,
        ap_ids: Sequence[int],
        tel_cfg: Optional[Dict[str, bool]] = None,
    ) -> None:
        #: Parent-side hook: called with the raw error payload of every
        #: ``("error", ...)`` reply, before the exception is raised, so the
        #: owning net can dedupe/record structured reports (obs layer).
        self.on_error_report: Optional[Callable[[Any], None]] = None
        parent_conn, child_conn = ctx.Pipe()
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, net_factory, ap_ids, tel_cfg),
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn

    def _recv(self):
        tag, payload = self.conn.recv()
        if tag == "error":
            if self.on_error_report is not None:
                self.on_error_report(payload)
            raise RuntimeError(
                f"shard worker failed:\n{_format_worker_error(payload)}"
            )
        return payload

    # -- Supervised primitives (used only by ShardSupervisor) ---------------

    def is_alive(self) -> bool:
        return self.proc.is_alive()

    def exitcode(self) -> Optional[int]:
        return self.proc.exitcode

    def send_safe(self, msg: tuple) -> bool:
        """Best-effort send; ``False`` when the pipe is already broken."""
        try:
            self.conn.send(msg)
            return True
        except (BrokenPipeError, OSError):
            return False

    def try_recv(self, timeout_s: float) -> Tuple[str, Any]:
        """Timed reply read with liveness polling.

        Returns ``(status, payload)`` where status is the worker's own
        ``"ok"``/``"error"`` tag, or ``"timeout"`` (deadline passed with
        the worker still alive -- a hang), ``"eof"`` (pipe closed / worker
        dead -- a crash), or ``"garbled"`` (the reply failed to decode --
        a protocol error).
        """
        deadline = time.monotonic() + timeout_s
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return ("timeout", None)
            try:
                ready = self.conn.poll(min(remaining, 0.05))
            except (BrokenPipeError, OSError):
                return ("eof", None)
            if ready:
                try:
                    tag, payload = self.conn.recv()
                except (EOFError, OSError):
                    return ("eof", None)
                except Exception:
                    return ("garbled", traceback.format_exc(limit=2))
                return (tag, payload)
            if not self.proc.is_alive() and not self.conn.poll(0):
                return ("eof", None)

    def signal_proc(self, sig: int) -> bool:
        """Deliver a raw signal to the worker process (chaos injection)."""
        try:
            os.kill(self.proc.pid, sig)
            return True
        except (ProcessLookupError, TypeError, OSError):
            return False

    def kill(self) -> None:
        """Hard-stop (SIGKILL) and reap the worker, closing the pipe."""
        try:
            self.proc.kill()
        except Exception:
            pass
        self.proc.join(timeout=5.0)
        try:
            if not self.conn.closed:
                self.conn.close()
        except OSError:
            pass

    def apply_move(self, client_id: int, x: float, y: float) -> None:
        self.conn.send(("move", client_id, x, y))

    def apply_reattach(self, client_id: int, new_ap_id: int) -> None:
        self.conn.send(("reattach", client_id, new_ap_id))

    def export_row(self, client_id: int) -> List[int]:
        self.conn.send(("export", client_id))
        return self._recv()

    def import_row(self, client_id: int, row: Sequence[int]) -> None:
        self.conn.send(("import", client_id, list(row)))

    def begin_epoch(self, epoch_index, allowed, demands_bits, rng_states) -> None:
        self.conn.send(("begin", epoch_index, allowed, demands_bits, rng_states))

    def read_partial(self) -> np.ndarray:
        return self._recv()

    def commit_epoch(self, prach_total: np.ndarray) -> None:
        self.conn.send(("commit", prach_total))

    def read_result(self) -> tuple:
        return self._recv()

    def build_stats(self) -> Dict[str, Any]:
        self.conn.send(("build_stats",))
        return self._recv()

    def state_dict(self) -> Dict[str, Any]:
        self.conn.send(("state",))
        return self._recv()

    def begin_load_state(self, state: Dict[str, Any]) -> None:
        self.conn.send(("load", state))

    def finish_load_state(self) -> None:
        self._recv()

    def close(self) -> None:
        if self.proc.is_alive():
            try:
                self.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            self.proc.join(timeout=5.0)
            if self.proc.is_alive():
                self.proc.terminate()
        try:
            if not self.conn.closed:
                self.conn.close()
        except OSError:
            pass


class SupervisionLog(EventLog):
    """Structured failure/recovery events from the shard supervisor.

    Mirrors into active telemetry under the ``shard.`` namespace, like the
    PAWS path's ``RobustnessLog`` does under ``robustness.`` (PR 3).
    """

    scope = "shard"


class ShardDegradedWarning(RuntimeWarning):
    """A shard exhausted its retry budget and was folded into inline
    execution (slower, still bit-identical) instead of aborting the run."""


@dataclass
class SupervisionConfig:
    """Tunables for :class:`ShardSupervisor`.

    ``phase_timeout_s`` pins every barrier deadline to a fixed value
    (tests); when ``None`` the deadline adapts to the fleet: at least
    ``min_deadline_s``, otherwise ``deadline_factor`` times the slowest
    recent wall-clock time of the same barrier phase, and a generous
    ``initial_deadline_s`` before any history exists.  ``retry_budget``
    counts failures per worker over the run; exceeding it degrades the
    shard to inline execution.  A merged recovery snapshot is refreshed
    every ``checkpoint_every`` epochs (and whenever the op journal grows
    past ``journal_cap``), which bounds replay depth.
    """

    retry_budget: int = 3
    checkpoint_every: int = 5
    journal_cap: int = 4096
    phase_timeout_s: Optional[float] = None
    initial_deadline_s: float = 300.0
    min_deadline_s: float = 5.0
    deadline_factor: float = 20.0
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0

    def __post_init__(self) -> None:
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.journal_cap < 1:
            raise ValueError("journal_cap must be >= 1")


#: Fault kinds the chaos harness can inject.
CHAOS_KINDS = ("kill", "stall", "malformed", "slow")

#: Barrier phase each kind hits unless the event overrides it.
_CHAOS_DEFAULT_PHASE = {
    "kill": "commit",
    "stall": "partial",
    "malformed": "commit",
    "slow": "partial",
}

#: Auto-resume delay for a "slow" spike when none is given: long enough
#: to register as a latency spike, short enough to stay under any sane
#: deadline.
_SLOW_DEFAULT_DELAY_S = 0.2


@dataclass(frozen=True)
class ChaosEvent:
    """One scheduled fault: ``kind`` hits ``shard`` at ``epoch``.

    ``kill`` SIGKILLs the worker process (inline workers flip their
    ``dead`` flag), ``stall`` SIGSTOPs it -- indefinitely when ``delay_s``
    is ``None``, so the barrier deadline must catch it -- ``slow`` is a
    stall that auto-resumes after ``delay_s`` (a latency spike, no
    recovery expected), and ``malformed`` truncates the worker's next
    barrier reply on the parent side, the way a half-written pipe would.
    ``phase`` ("partial" or "commit") picks the barrier phase; empty
    selects the kind's default.
    """

    kind: str
    epoch: int
    shard: int
    delay_s: Optional[float] = None
    phase: str = ""

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r}; want one of {CHAOS_KINDS}"
            )
        if self.epoch < 0 or self.shard < 0:
            raise ValueError("chaos epoch and shard must be >= 0")
        if self.phase == "":
            object.__setattr__(self, "phase", _CHAOS_DEFAULT_PHASE[self.kind])
        elif self.phase not in ("partial", "commit"):
            raise ValueError(f"chaos phase must be partial|commit, got {self.phase!r}")
        if self.kind == "slow" and self.delay_s is None:
            object.__setattr__(self, "delay_s", _SLOW_DEFAULT_DELAY_S)


class ChaosPolicy:
    """Deterministic fault schedule for the supervised shard barrier.

    Faults are scheduled off epoch indices like PR 3's ``FaultyTransport``
    schedules transport faults off request counts: explicit
    :class:`ChaosEvent` entries fire exactly when named, and optional
    per-kind rates draw from a private ``np.random.default_rng`` keyed by
    ``(seed, epoch)`` -- stateless per epoch and never touching the
    simulation streams, so the schedule is reproducible and the sim
    digest is unaffected by construction.
    """

    def __init__(
        self,
        events: Sequence[ChaosEvent] = (),
        seed: int = 0,
        rates: Optional[Dict[str, float]] = None,
    ) -> None:
        self.events = tuple(
            sorted(events, key=lambda e: (e.epoch, e.shard, e.kind))
        )
        self.seed = int(seed)
        self.rates = {kind: float(rate) for kind, rate in (rates or {}).items()}
        for kind, rate in self.rates.items():
            if kind not in CHAOS_KINDS:
                raise ValueError(f"unknown chaos kind {kind!r} in rates")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"chaos rate for {kind!r} must be in [0, 1]")

    @classmethod
    def parse(cls, spec: str) -> "ChaosPolicy":
        """Parse a CLI chaos spec.

        Comma-separated tokens: ``kind@epoch:shard[:delay_s]`` schedules
        one explicit event, ``seed=N`` seeds the probabilistic draws, and
        ``kind=rate`` sets a per-epoch-per-shard injection rate.  Example:
        ``"kill@3:1,stall@5:0:0.3,seed=7,malformed=0.05"``.
        """
        events: List[ChaosEvent] = []
        seed = 0
        rates: Dict[str, float] = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            if "@" in token:
                kind, _, rest = token.partition("@")
                parts = rest.split(":")
                if len(parts) not in (2, 3):
                    raise ValueError(
                        f"bad chaos token {token!r}: want kind@epoch:shard[:delay_s]"
                    )
                events.append(
                    ChaosEvent(
                        kind=kind.strip(),
                        epoch=int(parts[0]),
                        shard=int(parts[1]),
                        delay_s=float(parts[2]) if len(parts) == 3 else None,
                    )
                )
            elif "=" in token:
                key, _, value = token.partition("=")
                key = key.strip()
                if key == "seed":
                    seed = int(value)
                elif key in CHAOS_KINDS:
                    rates[key] = float(value)
                else:
                    raise ValueError(
                        f"unknown chaos key {key!r}: want seed or one of {CHAOS_KINDS}"
                    )
            else:
                raise ValueError(
                    f"bad chaos token {token!r}: want kind@epoch:shard[:delay_s] "
                    "or key=value"
                )
        return cls(events=events, seed=seed, rates=rates)

    def events_for(self, epoch: int, n_shards: int) -> List[ChaosEvent]:
        """All faults scheduled for ``epoch`` across ``n_shards`` workers."""
        out = [
            event
            for event in self.events
            if event.epoch == epoch and event.shard < n_shards
        ]
        if self.rates:
            rng = np.random.default_rng((0x5EED, self.seed, epoch))
            for kind in CHAOS_KINDS:
                rate = self.rates.get(kind, 0.0)
                if rate <= 0.0:
                    continue
                draws = rng.random(n_shards)
                for shard in range(n_shards):
                    if draws[shard] < rate:
                        out.append(
                            ChaosEvent(kind=kind, epoch=epoch, shard=shard)
                        )
        return out


class _RecoveryError(RuntimeError):
    """A respawn-and-replay attempt itself failed (retried under budget)."""


#: Floor for per-op deadlines during replay/state ops: recovery paths are
#: off the hot path, so erring generous beats spurious re-classification
#: on a loaded CI host even when tests pin phase_timeout_s low.
_RECOVERY_MIN_DEADLINE_S = 30.0


def _validate_partial(payload: Any, n_aps: int) -> Optional[str]:
    """Reply validation for phase 1: per-AP integer PRACH partials."""
    if not isinstance(payload, np.ndarray):
        return f"expected ndarray, got {type(payload).__name__}"
    if payload.shape != (n_aps,):
        return f"bad shape {payload.shape}, want ({n_aps},)"
    if not np.issubdtype(payload.dtype, np.integer):
        return f"non-integer dtype {payload.dtype}"
    if bool((payload < 0).any()):
        return "negative PRACH count"
    return None


def _validate_outcome(payload: Any, expect_payload: bool = False) -> Optional[str]:
    """Reply validation for phase 2: (result, rng states, stats, cpu_s).

    When the worker runs with telemetry (``expect_payload``) the outcome
    carries a fifth element -- the shipped telemetry payload dict -- and
    the arity check is strict in both directions: a 4-tuple from a traced
    worker (or a 5-tuple from an untraced one) is a protocol error.
    """
    want = 5 if expect_payload else 4
    if not isinstance(payload, tuple) or len(payload) != want:
        return (
            f"expected a {want}-tuple outcome, got {type(payload).__name__}"
            + (f" of length {len(payload)}" if isinstance(payload, tuple) else "")
        )
    result, states, stats, compute_s = payload[:4]
    if not isinstance(result, EpochResult):
        return f"result is {type(result).__name__}, want EpochResult"
    if not isinstance(states, dict) or set(states) != set(EPOCH_STREAMS):
        return "RNG stream states missing or wrong stream set"
    if not isinstance(stats, dict):
        return f"stats is {type(stats).__name__}, want dict"
    if not isinstance(compute_s, float):
        return f"compute_s is {type(compute_s).__name__}, want float"
    if expect_payload and not isinstance(payload[4], dict):
        return f"telemetry payload is {type(payload[4]).__name__}, want dict"
    return None


def _validate_row(payload: Any) -> Optional[str]:
    """Reply validation for a cross-shard max-CQI row export."""
    if not isinstance(payload, list):
        return f"expected list row, got {type(payload).__name__}"
    if not all(isinstance(value, int) for value in payload):
        return "non-integer row entry"
    return None


def _corrupt_payload(payload: Any) -> Any:
    """Damage a reply the way a truncated/garbled pipe write would.

    Tuples are cut to length 2 rather than just dropping the last element:
    a traced outcome is a 5-tuple whose last element is the telemetry
    payload, and truncating only that would yield a perfectly valid
    4-tuple -- chaos must always produce a detectable protocol error.
    """
    if isinstance(payload, np.ndarray):
        return payload[: max(0, payload.shape[0] - 1)].astype(np.float64)
    if isinstance(payload, tuple):
        return payload[:2]
    return "\x00garbage"


class ShardSupervisor:
    """Heartbeat, recovery, and chaos control for a :class:`ShardedNetwork`.

    The supervisor owns the barrier when attached: replies are read
    against per-phase deadlines (hangs SIGKILLed and classified), every
    reply is validated before it is merged, and any failure triggers
    deterministic recovery -- respawn the worker from the last merged
    shard-agnostic snapshot, replay the op journal (event ops and epoch
    barriers recorded since the snapshot, with their exact RNG stream
    states and PRACH totals), and rejoin the barrier bit-identically.
    Failures beyond ``retry_budget`` degrade the shard to inline
    execution with a :class:`ShardDegradedWarning` instead of aborting.
    """

    def __init__(
        self,
        net: "ShardedNetwork",
        config: Optional[SupervisionConfig] = None,
        chaos: Optional[ChaosPolicy] = None,
    ) -> None:
        self.net = net
        self.config = config if config is not None else SupervisionConfig()
        self.chaos = chaos
        self.log = net.events
        n = net.n_shards
        self._failures = [0] * n
        self.degraded = [False] * n
        self._malform_next = [False] * n
        self._replay_outcome: List[Optional[tuple]] = [None] * n
        self._journal: List[tuple] = []
        self._epochs_since_snapshot = 0
        self._recent_phase_s: Dict[str, Any] = {
            "partial": deque(maxlen=8),
            "commit": deque(maxlen=8),
        }
        self._timers: List[threading.Timer] = []
        self.stats: Dict[str, int] = {
            "restarts": 0,
            "crashes": 0,
            "hangs": 0,
            "protocol_errors": 0,
            "degraded": 0,
            "snapshots": 0,
            "replayed_ops": 0,
            "max_replay_depth": 0,
            "chaos_injected": 0,
            "telemetry_salvaged": 0,
            "telemetry_dropped": 0,
        }
        # Baseline snapshot: a worker lost before the first periodic
        # refresh must still be recoverable.  Workers are freshly built
        # here, so plain (unguarded) gathers are fine.
        self._snapshot = clone_state(
            net._merge_states([worker.state_dict() for worker in net.workers])
        )
        self.stats["snapshots"] += 1

    # -- Plumbing -----------------------------------------------------------

    def _now(self) -> float:
        return self.net._now

    def _deadline(self, phase: str) -> float:
        cfg = self.config
        if cfg.phase_timeout_s is not None:
            return cfg.phase_timeout_s
        recent = self._recent_phase_s[phase]
        if not recent:
            return cfg.initial_deadline_s
        return max(cfg.min_deadline_s, cfg.deadline_factor * max(recent))

    @staticmethod
    def _inline_execute(worker: _InlineWorker, msg: tuple) -> Any:
        """Run one pipe-protocol message against an inline worker."""
        op = msg[0]
        if op == "move":
            return worker.apply_move(msg[1], msg[2], msg[3])
        if op == "reattach":
            return worker.apply_reattach(msg[1], msg[2])
        if op == "import":
            return worker.import_row(msg[1], msg[2])
        if op == "export":
            return worker.export_row(msg[1])
        if op == "begin":
            worker.begin_epoch(msg[1], msg[2], msg[3], msg[4])
            return worker.read_partial()
        if op == "commit":
            worker.commit_epoch(msg[1])
            return worker.read_result()
        if op == "state":
            return worker.state_dict()
        if op == "load":
            worker.begin_load_state(msg[1])
            worker.finish_load_state()
            return None
        if op == "tel_flush":
            return worker.flush_payload()
        raise ValueError(f"unknown shard worker op {op!r}")

    def _request(self, worker: Any, msg: tuple, timeout_s: float) -> Tuple[str, Any]:
        """Send one replying op and read its reply, for either worker kind."""
        if isinstance(worker, _ProcessWorker):
            if not worker.send_safe(msg):
                return ("eof", None)
            return worker.try_recv(timeout_s)
        if worker.dead:
            return ("eof", None)
        try:
            return ("ok", self._inline_execute(worker, msg))
        except Exception:
            return ("error", traceback.format_exc())

    def _send_barrier(self, k: int, msg: tuple) -> bool:
        """Queue a barrier op; inline workers execute lazily at collect."""
        worker = self.net.workers[k]
        if isinstance(worker, _ProcessWorker):
            return worker.send_safe(msg)
        return True

    def _classify(
        self, k: int, status: str, payload: Any, where: str, deadline_s: float
    ) -> Tuple[str, str]:
        """Map a failed request status to (failure kind, detail)."""
        if status == "timeout":
            return ("hang", f"no reply within {deadline_s:.3g}s ({where})")
        if status == "eof":
            worker = self.net.workers[k]
            code = (
                worker.exitcode() if isinstance(worker, _ProcessWorker) else None
            )
            if code is not None and code < 0:
                return ("crash", f"worker killed by signal {-code} ({where})")
            return ("crash", f"worker pipe closed, exitcode {code} ({where})")
        if status == "garbled":
            return ("protocol", f"undecodable reply ({where}): {payload}")
        return (
            "protocol",
            f"worker error ({where}):\n{_format_worker_error(payload)}",
        )

    # -- Recovery -----------------------------------------------------------

    def _recover(
        self,
        k: int,
        kind: str,
        detail: str,
        expect_epoch: Optional[int] = None,
    ) -> None:
        """Respawn worker ``k`` from snapshot + journal replay (with retries).

        When ``expect_epoch`` names the epoch whose outcome the caller is
        collecting and the journal already holds that barrier, the
        replayed outcome is stashed for the caller -- a commit-phase
        failure needs no re-commit, the replay *is* the epoch.
        """
        cfg = self.config
        counter = {"crash": "crashes", "hang": "hangs", "protocol": "protocol_errors"}
        self.stats[counter[kind]] += 1
        self.log.record(self._now(), f"shard{k}", f"worker-{kind}", detail)
        self._replay_outcome[k] = None
        self._malform_next[k] = False
        respawn_wall0 = time.perf_counter_ns()
        # Salvage the dying worker's buffered telemetry before the kill:
        # a still-responsive worker (protocol error, degrade) can flush its
        # trace buffer; a SIGKILLed or hung one cannot, and the loss is
        # counted instead of silent.
        self._salvage_telemetry(k)
        while True:
            self._failures[k] += 1
            worker = self.net.workers[k]
            if isinstance(worker, _ProcessWorker):
                worker.kill()
            degrade = self.degraded[k] or self._failures[k] > cfg.retry_budget
            if degrade and not self.degraded[k]:
                self.degraded[k] = True
                self.stats["degraded"] += 1
                message = (
                    f"shard {k} exhausted its retry budget ({cfg.retry_budget}); "
                    "degrading to inline execution (slower, still bit-identical)"
                )
                self.log.record(
                    self._now(), f"shard{k}", "worker-degraded-inline", message
                )
                warnings.warn(message, ShardDegradedWarning, stacklevel=3)
            if not degrade and self._failures[k] > 1:
                time.sleep(
                    min(
                        cfg.backoff_max_s,
                        cfg.backoff_base_s * (2 ** (self._failures[k] - 2)),
                    )
                )
            try:
                replacement = self.net._build_worker(k, inline=degrade)
                self.net.workers[k] = replacement
                outcome, outcome_epoch = self._replay(replacement, k)
            except _RecoveryError as exc:
                self.log.record(
                    self._now(), f"shard{k}", "worker-respawn-failed", str(exc)
                )
                if degrade:
                    raise RuntimeError(
                        f"shard {k} failed even after degrading to inline "
                        f"execution:\n{exc}"
                    ) from exc
                continue
            break
        self.stats["restarts"] += 1
        depth = len(self._journal)
        self.stats["replayed_ops"] += depth
        self.stats["max_replay_depth"] = max(self.stats["max_replay_depth"], depth)
        self.log.record(
            self._now(),
            f"shard{k}",
            "worker-respawn",
            f"mode={'inline' if degrade else self.net.mode} after {kind}; "
            f"replayed {depth} journal op(s), attempt {self._failures[k]}",
        )
        tel = _obs_runtime.active()
        if tel is not None:
            tel.inc("shard.worker_restart")
            tel.gauge("shard.replay_depth", float(depth))
            if tel.tracer is not None:
                tel.tracer.complete(
                    "shard.respawn",
                    "supervisor",
                    tel.now,
                    0.0,
                    args={
                        "of": k,
                        "kind": kind,
                        "ops": depth,
                        "degraded": bool(self.degraded[k]),
                    },
                    wall_ns=respawn_wall0,
                    wall_dur_ns=time.perf_counter_ns() - respawn_wall0,
                )
        if (
            expect_epoch is not None
            and outcome is not None
            and outcome_epoch == expect_epoch
        ):
            self._replay_outcome[k] = outcome

    def _salvage_telemetry(self, k: int) -> None:
        """Flush a dying worker's buffered telemetry, or count the loss.

        Salvaged payloads merge trace rows only (tagged ``salvaged``):
        their metrics describe a partially executed epoch that journal
        replay regenerates in full, so merging them would double-count.
        """
        if self.net._tel_merger is None:
            return
        if self.net._flush_worker_telemetry(k, salvage=True):
            self.stats["telemetry_salvaged"] += 1
            # Mirrored into the ``shard.telemetry_salvaged`` counter.
            self.log.record(
                self._now(),
                f"shard{k}",
                "telemetry_salvaged",
                "buffered worker telemetry flushed before respawn",
            )
        else:
            self.stats["telemetry_dropped"] += 1
            # EventLog mirrors the kind into the ``shard.telemetry_dropped``
            # counter (plus a trace instant) for free.
            self.log.record(
                self._now(),
                f"shard{k}",
                "telemetry_dropped",
                "buffered worker telemetry lost with the worker",
            )

    def _replay(self, worker: Any, k: int) -> Tuple[Optional[tuple], Optional[int]]:
        """Load the pinned snapshot into ``worker``, re-apply the journal.

        Returns ``(outcome, epoch_index)`` of the last replayed epoch
        barrier (``(None, None)`` when the journal holds none).  Any
        anomaly raises :class:`_RecoveryError` so the caller can retry the
        whole respawn under the budget.
        """
        per_op_s = max(self._deadline("commit"), _RECOVERY_MIN_DEADLINE_S)
        replay_wall0 = time.perf_counter_ns()

        def call(msg: tuple, step: str) -> Any:
            status, payload = self._request(worker, msg, per_op_s)
            if status != "ok":
                detail = (
                    _format_worker_error(payload) if status == "error" else status
                )
                raise _RecoveryError(f"replay {step} failed: {detail}")
            return payload

        def post(msg: tuple, step: str) -> None:
            if isinstance(worker, _ProcessWorker):
                if not worker.send_safe(msg):
                    raise _RecoveryError(f"pipe closed during replay ({step})")
                return
            call(msg, step)

        # Hand the worker a detached clone: the pinned snapshot must stay
        # byte-stable across retries, and an inline worker must never end
        # up aliasing arrays inside it (or inside a sibling worker).
        call(("load", clone_state(self._snapshot)), "snapshot load")
        last: Tuple[Optional[tuple], Optional[int]] = (None, None)
        for entry in self._journal:
            op = entry[0]
            if op == "move":
                _, cid, x, y = entry
                post(("move", cid, x, y), "move")
            elif op == "reattach":
                _, cid, new_ap_id, row, new_shard = entry
                post(("reattach", cid, new_ap_id), "reattach")
                if row is not None and new_shard == k:
                    post(("import", cid, list(row)), "import")
            elif op == "epoch":
                _, epoch_index, allowed, demands_bits, rng_states, total = entry
                # The partial is discarded: the journaled exact total is
                # authoritative (it came from the fault-free reduction).
                call(
                    ("begin", epoch_index, allowed, demands_bits, rng_states),
                    f"begin[{epoch_index}]",
                )
                outcome = call(("commit", total), f"commit[{epoch_index}]")
                error = _validate_outcome(
                    outcome, self.net._tel_merger is not None
                )
                if error is not None:
                    raise _RecoveryError(
                        f"replayed epoch {epoch_index} outcome invalid: {error}"
                    )
                last = (outcome, epoch_index)
            else:  # pragma: no cover - journal is written by this class
                raise _RecoveryError(f"unknown journal entry {op!r}")
        tel = _obs_runtime.active()
        if tel is not None and tel.tracer is not None:
            tel.tracer.complete(
                "shard.replay",
                "supervisor",
                tel.now,
                0.0,
                args={"of": k, "ops": len(self._journal)},
                wall_ns=replay_wall0,
                wall_dur_ns=time.perf_counter_ns() - replay_wall0,
            )
        return last

    # -- Journal + snapshots ------------------------------------------------

    def _note_journal_depth(self) -> None:
        """Mirror the journal depth into a gauge (recovery-cost signal)."""
        tel = _obs_runtime.active()
        if tel is not None:
            tel.gauge("shard.journal_depth", float(len(self._journal)))

    def _append_epoch_entry(
        self,
        epoch_index: int,
        allowed: Dict[int, Set[int]],
        demands_bits: Dict[int, float],
        rng_states: Dict[str, Any],
        total: np.ndarray,
    ) -> None:
        self._journal.append(
            (
                "epoch",
                epoch_index,
                {ap_id: set(subs) for ap_id, subs in allowed.items()},
                dict(demands_bits),
                rng_states,
                np.array(total, copy=True),
            )
        )
        self._note_journal_depth()

    def _trim_journal(self) -> None:
        if len(self._journal) > self.config.journal_cap:
            self.take_snapshot()

    def take_snapshot(self) -> None:
        """Refresh the pinned merged snapshot and clear the journal."""
        states = [self._worker_state(k) for k in range(self.net.n_shards)]
        self._snapshot = clone_state(self.net._merge_states(states))
        self._journal = []
        self._epochs_since_snapshot = 0
        self.stats["snapshots"] += 1
        self.log.record(
            self._now(),
            "supervisor",
            "recovery-checkpoint",
            "merged snapshot refreshed; journal cleared",
        )
        tel = _obs_runtime.active()
        if tel is not None:
            tel.inc("shard.supervisor_snapshot")
            # Checkpoint-refresh gauges: when the recovery snapshot was
            # last rebuilt and how many refreshes the run has paid for.
            tel.gauge("shard.checkpoint_epoch", self._now())
            tel.gauge(
                "shard.checkpoint_refreshes", float(self.stats["snapshots"])
            )
        self._note_journal_depth()

    def _worker_state(self, k: int) -> Dict[str, Any]:
        deadline_s = max(self._deadline("commit"), _RECOVERY_MIN_DEADLINE_S)
        while True:
            status, payload = self._request(
                self.net.workers[k], ("state",), deadline_s
            )
            if status == "ok":
                if isinstance(payload, dict) and "schedulers" in payload:
                    return payload
                kind, detail = "protocol", "invalid state payload"
            else:
                kind, detail = self._classify(k, status, payload, "state", deadline_s)
            self._recover(k, kind, detail)

    # -- Events (journaled, then broadcast) ---------------------------------

    def _post_event(self, k: int, msg: tuple) -> None:
        """Fire-and-forget event op; failures recover via journal replay."""
        worker = self.net.workers[k]
        if isinstance(worker, _ProcessWorker):
            if worker.send_safe(msg):
                return
            # Replay re-applies the journaled op, so recovery is enough.
            self._recover(k, "crash", f"pipe closed while sending {msg[0]!r}")
            return
        status, payload = self._request(worker, msg, 0.0)
        if status != "ok":
            kind, detail = self._classify(
                k, status, payload, f"event {msg[0]!r}", 0.0
            )
            self._recover(k, kind, detail)

    def move_client(self, client_id: int, x: float, y: float) -> None:
        self.net.topology.move_client(client_id, x, y)
        self._journal.append(("move", client_id, float(x), float(y)))
        self._note_journal_depth()
        for k in range(self.net.n_shards):
            self._post_event(k, ("move", client_id, float(x), float(y)))
        self._trim_journal()

    def _export_row(self, k: int, client_id: int) -> List[int]:
        deadline_s = max(self._deadline("commit"), _RECOVERY_MIN_DEADLINE_S)
        while True:
            status, payload = self._request(
                self.net.workers[k], ("export", client_id), deadline_s
            )
            if status == "ok":
                error = _validate_row(payload)
                if error is None:
                    return payload
                kind, detail = "protocol", f"invalid exported row: {error}"
            else:
                kind, detail = self._classify(
                    k, status, payload, "export", deadline_s
                )
            self._recover(k, kind, detail)

    def reattach_client(self, client_id: int, new_ap_id: int) -> None:
        net = self.net
        old_ap_id = net.topology.client(client_id).ap_id
        if old_ap_id == new_ap_id:
            return
        old_shard = net._shard_of_ap[old_ap_id]
        new_shard = net._shard_of_ap[new_ap_id]
        row: Optional[List[int]] = None
        if old_shard != new_shard:
            row = self._export_row(old_shard, client_id)
        net.topology.reattach_client(client_id, new_ap_id)
        self._journal.append(
            (
                "reattach",
                client_id,
                new_ap_id,
                list(row) if row is not None else None,
                new_shard if row is not None else None,
            )
        )
        self._note_journal_depth()
        for k in range(net.n_shards):
            self._post_event(k, ("reattach", client_id, new_ap_id))
        if row is not None:
            self._post_event(new_shard, ("import", client_id, list(row)))
        self._trim_journal()

    # -- Chaos injection ----------------------------------------------------

    def _inject(self, events: Sequence[ChaosEvent], phase: str) -> None:
        for event in events:
            if event.phase != phase:
                continue
            k = event.shard
            worker = self.net.workers[k]
            self.stats["chaos_injected"] += 1
            detail = f"epoch {event.epoch} phase {phase}" + (
                f" delay {event.delay_s}s" if event.delay_s else ""
            )
            self.log.record(self._now(), f"shard{k}", f"chaos-{event.kind}", detail)
            if event.kind == "kill":
                if isinstance(worker, _ProcessWorker):
                    worker.signal_proc(signal.SIGKILL)
                else:
                    worker.simulate_crash()
            elif event.kind in ("stall", "slow"):
                if not isinstance(worker, _ProcessWorker):
                    self.log.record(
                        self._now(),
                        f"shard{k}",
                        "chaos-skip",
                        f"{event.kind} needs a process worker (inline mode)",
                    )
                    continue
                if worker.signal_proc(signal.SIGSTOP) and event.delay_s:
                    timer = threading.Timer(
                        event.delay_s, worker.signal_proc, args=(signal.SIGCONT,)
                    )
                    timer.daemon = True
                    timer.start()
                    self._timers.append(timer)
            elif event.kind == "malformed":
                self._malform_next[k] = True

    # -- The supervised epoch barrier ---------------------------------------

    def run_epoch(
        self,
        epoch_index: int,
        allowed: Dict[int, Set[int]],
        demands_bits: Dict[int, float],
    ) -> EpochResult:
        net = self.net
        n = net.n_shards
        chaos_events = (
            self.chaos.events_for(epoch_index, n) if self.chaos is not None else []
        )
        tel = _obs_runtime.active()
        barrier_t0 = time.monotonic()
        self._inject(chaos_events, "partial")
        rng_states = _epoch_stream_states(net.rngs)
        begin_msg = ("begin", epoch_index, allowed, demands_bits, rng_states)
        # Phase 1: push decision + epoch RNG states, gather PRACH partials.
        pending = [self._send_barrier(k, begin_msg) for k in range(n)]
        deadline_s = self._deadline("partial")
        phase_t0 = time.monotonic()
        with (
            tel.span(
                "shard.barrier.partial",
                "supervisor",
                args={"epoch": epoch_index, "deadline_s": deadline_s},
            )
            if tel is not None
            else nullcontext()
        ):
            partials = [
                self._collect_partial(k, begin_msg, pending, deadline_s)
                for k in range(n)
            ]
        self._recent_phase_s["partial"].append(
            max(time.monotonic() - phase_t0, 1e-9)
        )
        total: Optional[np.ndarray] = None
        for partial in partials:
            total = partial if total is None else total + partial
        # Journal the barrier *before* commit: a worker lost during commit
        # replays straight through this epoch and its replayed outcome is
        # the epoch result.
        self._append_epoch_entry(
            epoch_index, allowed, demands_bits, rng_states, total
        )
        # Phase 2: broadcast the exact global counts, run the epoch slices.
        self._inject(chaos_events, "commit")
        commit_msg = ("commit", total)
        committed = [self._send_barrier(k, commit_msg) for k in range(n)]
        deadline_s = self._deadline("commit")
        phase_t0 = time.monotonic()
        with (
            tel.span(
                "shard.barrier.commit",
                "supervisor",
                args={"epoch": epoch_index, "deadline_s": deadline_s},
            )
            if tel is not None
            else nullcontext()
        ):
            outcomes = [
                self._collect_outcome(
                    k, commit_msg, committed, deadline_s, epoch_index
                )
                for k in range(n)
            ]
        self._recent_phase_s["commit"].append(
            max(time.monotonic() - phase_t0, 1e-9)
        )
        merged = net._merge_outcomes(epoch_index, outcomes)
        if tel is not None:
            tel.observe("shard.barrier_wait_s", time.monotonic() - barrier_t0)
        self._epochs_since_snapshot += 1
        if self._epochs_since_snapshot >= self.config.checkpoint_every:
            self.take_snapshot()
        if tel is not None:
            tel.gauge(
                "shard.checkpoint_age_epochs",
                float(self._epochs_since_snapshot),
            )
        return merged

    def _collect_partial(
        self, k: int, begin_msg: tuple, pending: List[bool], deadline_s: float
    ) -> np.ndarray:
        n_aps = len(self.net.topology.aps)
        while True:
            worker = self.net.workers[k]
            if not pending[k]:
                if self._send_barrier(k, begin_msg):
                    pending[k] = True
                else:
                    self._recover(k, "crash", "pipe closed before begin")
                    continue
            if isinstance(worker, _ProcessWorker):
                status, payload = worker.try_recv(deadline_s)
            else:
                status, payload = self._request(worker, begin_msg, deadline_s)
            if status == "ok":
                if self._malform_next[k]:
                    self._malform_next[k] = False
                    payload = _corrupt_payload(payload)
                error = _validate_partial(payload, n_aps)
                if error is None:
                    return payload
                kind, detail = "protocol", f"invalid PRACH partial: {error}"
            else:
                kind, detail = self._classify(k, status, payload, "partial", deadline_s)
            self._recover(k, kind, detail)
            pending[k] = False

    def _collect_outcome(
        self,
        k: int,
        commit_msg: tuple,
        committed: List[bool],
        deadline_s: float,
        epoch_index: int,
    ) -> tuple:
        while True:
            if self._replay_outcome[k] is not None:
                outcome, self._replay_outcome[k] = self._replay_outcome[k], None
                return outcome
            worker = self.net.workers[k]
            if not committed[k]:
                if self._send_barrier(k, commit_msg):
                    committed[k] = True
                else:
                    self._recover(
                        k,
                        "crash",
                        "pipe closed before commit",
                        expect_epoch=epoch_index,
                    )
                    continue
            if isinstance(worker, _ProcessWorker):
                status, payload = worker.try_recv(deadline_s)
            else:
                status, payload = self._request(worker, commit_msg, deadline_s)
            if status == "ok":
                if self._malform_next[k]:
                    self._malform_next[k] = False
                    payload = _corrupt_payload(payload)
                error = _validate_outcome(
                    payload, self.net._tel_merger is not None
                )
                if error is None:
                    return payload
                kind, detail = "protocol", f"invalid epoch outcome: {error}"
            else:
                kind, detail = self._classify(k, status, payload, "commit", deadline_s)
            self._recover(k, kind, detail, expect_epoch=epoch_index)
            committed[k] = False

    # -- Checkpoint plumbing (guarded state gather / load) -------------------

    def state_dict(self) -> Dict[str, Any]:
        return self.net._merge_states(
            [self._worker_state(k) for k in range(self.net.n_shards)]
        )

    def load_workers(self, state: Dict[str, Any]) -> None:
        """Push a merged state to every worker; reset recovery bookkeeping."""
        self._snapshot = clone_state(state)
        self._journal = []
        self._epochs_since_snapshot = 0
        self._replay_outcome = [None] * self.net.n_shards
        self._note_journal_depth()
        if self.net._tel_merger is not None:
            # A restore rewinds the run: epochs will be re-run (and their
            # payloads re-shipped), so the dedup horizon must forget them.
            self.net._tel_merger.reset_horizon()
        load_msg = ("load", self._snapshot)
        deadline_s = max(self._deadline("commit"), _RECOVERY_MIN_DEADLINE_S)
        pending = [
            self._send_barrier(k, load_msg) for k in range(self.net.n_shards)
        ]
        for k in range(self.net.n_shards):
            while True:
                worker = self.net.workers[k]
                if not pending[k]:
                    # Recovery loads the (new) snapshot itself.
                    self._recover(k, "crash", "pipe closed before load")
                    break
                if isinstance(worker, _ProcessWorker):
                    status, payload = worker.try_recv(deadline_s)
                else:
                    status, payload = self._request(worker, load_msg, deadline_s)
                if status == "ok":
                    break
                kind, detail = self._classify(k, status, payload, "load", deadline_s)
                self._recover(k, kind, detail)
                break

    # -- Lifecycle ----------------------------------------------------------

    def close(self) -> None:
        for timer in self._timers:
            timer.cancel()
        self._timers = []


class ShardedNetwork:
    """Drive N shard workers so their merged epochs match one simulator.

    Drop-in replacement for :class:`LteNetworkSimulator` from a driver's
    point of view (``run_epoch`` / ``move_client`` / ``reattach_client`` /
    ``run`` / ``state_dict`` / ``load_state``), with the same digests.

    Args:
        topology: the parent's replica of the shared topology (mutated by
            the same event stream the workers receive).
        shard_plan: AP-id lists, one per shard -- disjoint and covering
            every AP (see :func:`repro.sim.topology.grid_partition`).
        net_factory: builds one shard simulator given its owned AP ids.
            Must rebuild the *same* deterministic scenario in every worker
            (same seed-derived topology/channel/RNG streams); with
            ``None`` it must build the plain unsharded simulator.
        rngs: the parent's mirror of the simulators' RNG streams (the
            object a checkpoint registry should register as the network
            RNG subsystem).
        grid: the shared resource grid (policy wiring reads it).
        mode: ``"process"`` (fork workers), ``"inline"`` (in-process, for
            tests and platforms without fork) or ``"auto"``.
        supervise: attach a :class:`ShardSupervisor` (fault-tolerant
            barrier with recovery-by-replay; see ``docs/ROBUSTNESS.md``).
        supervision: supervisor tunables; implies ``supervise=True``.
        chaos: a :class:`ChaosPolicy` fault schedule; implies
            ``supervise=True``.
    """

    def __init__(
        self,
        topology: Topology,
        shard_plan: Sequence[Sequence[int]],
        net_factory: NetFactory,
        rngs,
        grid,
        mode: str = "auto",
        supervise: bool = False,
        supervision: Optional[SupervisionConfig] = None,
        chaos: Optional[ChaosPolicy] = None,
    ) -> None:
        self.topology = topology
        self.grid = grid
        self.rngs = rngs
        self.backend = BACKEND_INCREMENTAL
        plan = [sorted(shard) for shard in shard_plan]
        flat = [ap_id for shard in plan for ap_id in shard]
        if len(set(flat)) != len(flat):
            raise ValueError("shard plan has overlapping AP assignments")
        if not all(plan):
            raise ValueError("shard plan contains an empty (workerless) shard")
        if set(flat) != {ap.ap_id for ap in topology.aps}:
            raise ValueError("shard plan must cover every AP exactly once")
        self.shard_plan = plan
        self._shard_of_ap = {
            ap_id: k for k, shard in enumerate(plan) for ap_id in shard
        }
        # Build-time row order: matches every worker's gain-matrix row
        # mapping (handover mutates attachment, never list positions).
        self._client_row = {
            c.client_id: i for i, c in enumerate(topology.clients)
        }
        if mode == "auto":
            # Daemonic processes (sweep-runner workers) may not fork
            # children, so a sharded cell inside a sweep runs inline.
            mode = (
                "process"
                if "fork" in mp.get_all_start_methods()
                and not mp.current_process().daemon
                else "inline"
            )
        if mode == "process":
            self._ctx = mp.get_context("fork")
        elif mode == "inline":
            self._ctx = None
        else:
            raise ValueError(f"unknown shard mode {mode!r}")
        self.mode = mode
        self._net_factory = net_factory
        self.events = SupervisionLog()
        self._reported_sigs: Set[tuple] = set()
        self._now = 0.0
        #: Sim-seconds per epoch; mirrors the workers' simulators so the
        #: parent's telemetry clock tracks the same timeline.
        self.epoch_s = 1.0
        # Telemetry plane: when the *parent* has telemetry active at build
        # time, every worker runs its own matching instance and ships
        # incremental payloads on commit replies; the merger folds them
        # into the parent registry/tracer under shard<k> labels.  With
        # telemetry off this stays None and the wire format is untouched.
        tel = _obs_runtime.active()
        self._worker_tel_cfg: Optional[Dict[str, bool]] = None
        self._tel_merger: Optional[ShardTelemetryMerger] = None
        if tel is not None:
            self._worker_tel_cfg = {
                "trace": tel.tracing,
                "profile": tel.profiler is not None,
            }
            self._tel_merger = ShardTelemetryMerger()
        self.workers: List[Any] = [
            self._build_worker(k) for k in range(len(plan))
        ]
        self.last_epoch_stats: Dict[str, int] = {}
        # Per-worker run_epoch CPU seconds for the last barrier (measured
        # with process_time, so sibling workers time-slicing on the same
        # core do not inflate it); max() is the critical-path epoch time
        # a one-worker-per-core host waits on.
        self.last_epoch_compute_s: List[float] = []
        self.supervisor: Optional[ShardSupervisor] = None
        if supervise or supervision is not None or chaos is not None:
            self.supervisor = ShardSupervisor(self, supervision, chaos=chaos)

    def _build_worker(self, shard_index: int, inline: bool = False) -> Any:
        """Build (or rebuild, for recovery) the worker for one shard."""
        ap_ids = self.shard_plan[shard_index]
        if inline or self.mode == "inline":
            return _InlineWorker(
                self._net_factory, ap_ids, tel_cfg=self._worker_tel_cfg
            )
        worker = _ProcessWorker(
            self._ctx, self._net_factory, ap_ids, tel_cfg=self._worker_tel_cfg
        )
        worker.on_error_report = (
            lambda payload, _k=shard_index: self._note_error_report(_k, payload)
        )
        return worker

    def _note_error_report(self, shard_index: int, payload: Any) -> None:
        """Dedupe structured deferred-op reports into single obs events.

        A poisoned worker re-reports the same signatures at every replying
        op; each ``(shard, signature)`` pair is recorded exactly once,
        carrying the worker-side repetition count.
        """
        if not isinstance(payload, dict) or "deferred_ops" not in payload:
            return
        for row in payload["deferred_ops"]:
            key = (shard_index, row["signature"])
            if key in self._reported_sigs:
                continue
            self._reported_sigs.add(key)
            self.events.record(
                self._now,
                f"shard{shard_index}",
                "worker-op-error",
                f"x{row['count']} {row['signature']}",
            )

    @property
    def n_shards(self) -> int:
        return len(self.workers)

    def shard_of_client(self, client_id: int) -> int:
        return self._shard_of_ap[self.topology.client(client_id).ap_id]

    def worker_build_stats(self) -> List[Dict[str, Any]]:
        """Per-shard cache-build timings, in shard order.

        Each entry currently carries ``gain_prefill_s`` -- the wall-clock
        seconds the worker's :class:`~repro.phy.propagation.GainMatrixCache`
        spent bulk-filling its owned rows at build time (the quantity the
        gain-fill kernels attack; see BENCH_shard_smoke.json).  After a
        supervised respawn the figure reflects the most recent rebuild.
        """
        return [worker.build_stats() for worker in self.workers]

    # -- Events (applied between epochs, i.e. at the barrier) ---------------

    def move_client(self, client_id: int, x: float, y: float) -> None:
        if self.supervisor is not None:
            self.supervisor.move_client(client_id, x, y)
            return
        self.topology.move_client(client_id, x, y)
        for worker in self.workers:
            worker.apply_move(client_id, x, y)

    def reattach_client(self, client_id: int, new_ap_id: int) -> None:
        if self.supervisor is not None:
            self.supervisor.reattach_client(client_id, new_ap_id)
            return
        old_ap_id = self.topology.client(client_id).ap_id
        if old_ap_id == new_ap_id:
            return
        old_shard = self._shard_of_ap[old_ap_id]
        new_shard = self._shard_of_ap[new_ap_id]
        payload = None
        if old_shard != new_shard:
            # Export before the old owner disowns (which zeroes the row).
            payload = self.workers[old_shard].export_row(client_id)
        self.topology.reattach_client(client_id, new_ap_id)
        for worker in self.workers:
            worker.apply_reattach(client_id, new_ap_id)
        if payload is not None:
            self.workers[new_shard].import_row(client_id, payload)

    # -- Epoch barrier ------------------------------------------------------

    def run_epoch(
        self,
        epoch_index: int,
        allowed: Dict[int, Set[int]],
        demands_bits: Dict[int, float],
    ) -> EpochResult:
        self._now = float(epoch_index)
        tel = _obs_runtime.active()
        if tel is not None:
            # Workers advance their own clocks inside run_epoch; the parent
            # mirrors the timeline so supervisor spans and merged metric
            # ticks line up with the shipped worker records.
            tel.set_time(epoch_index * self.epoch_s)
        if self.supervisor is not None:
            return self.supervisor.run_epoch(epoch_index, allowed, demands_bits)
        # Phase 1: push decision + epoch RNG states, gather PRACH partials.
        # The push is normally a no-op (workers advanced in lockstep) but
        # makes a freshly restored parent authoritative for free.
        rng_states = _epoch_stream_states(self.rngs)
        for worker in self.workers:
            worker.begin_epoch(epoch_index, allowed, demands_bits, rng_states)
        total: Optional[np.ndarray] = None
        for worker in self.workers:
            partial = worker.read_partial()
            total = partial if total is None else total + partial
        # Phase 2: broadcast the exact global counts, run the epoch slices.
        for worker in self.workers:
            worker.commit_epoch(total)
        outcomes = [worker.read_result() for worker in self.workers]
        return self._merge_outcomes(epoch_index, outcomes)

    def _merge_outcomes(
        self, epoch_index: int, outcomes: Sequence[tuple]
    ) -> EpochResult:
        # Telemetry rides as a 5th outcome element when workers trace;
        # fold each shard's payload into the parent (the merger's epoch
        # horizon drops re-shipped duplicates from journal replay) and
        # strip it before the sim-semantic merge below.
        if any(len(outcome) > 4 for outcome in outcomes):
            tel = _obs_runtime.active()
            stripped = []
            for k, outcome in enumerate(outcomes):
                if len(outcome) > 4:
                    if self._tel_merger is not None:
                        self._tel_merger.merge(k, outcome[4], tel)
                    outcome = outcome[:4]
                stripped.append(outcome)
            outcomes = stripped
        # Phase 3: merge.  Key sets are disjoint by ownership, and every
        # AP/client is owned by exactly one shard, so the merged dicts have
        # exactly the unsharded key population.
        states0 = outcomes[0][1]
        for _, states, _, _ in outcomes[1:]:
            if states != states0:
                raise RuntimeError(
                    "shard RNG streams diverged at the epoch barrier -- "
                    "the bit-identity contract is broken"
                )
        _apply_stream_states(self.rngs, states0)
        merged = EpochResult(
            epoch_index=epoch_index,
            served_bits={},
            throughput_bps={},
            allocations={},
            observations={},
            connected={},
        )
        stats_sum: Dict[str, int] = {}
        self.last_epoch_compute_s = [outcome[3] for outcome in outcomes]
        for result, _, stats, _ in outcomes:
            merged.served_bits.update(result.served_bits)
            merged.throughput_bps.update(result.throughput_bps)
            merged.allocations.update(result.allocations)
            merged.observations.update(result.observations)
            merged.connected.update(result.connected)
            for key, value in stats.items():
                stats_sum[key] = stats_sum.get(key, 0) + value
        self.last_epoch_stats = stats_sum
        return merged

    def run(
        self,
        n_epochs: int,
        policy: SubchannelPolicy,
        demand_fn: Callable[[int], Dict[int, float]],
    ) -> List[EpochResult]:
        """Mirror of :meth:`LteNetworkSimulator.run` over the shard fleet."""
        results: List[EpochResult] = []
        observations: Optional[Dict[int, ApObservation]] = None
        for epoch in range(n_epochs):
            allowed = policy.decide(epoch, observations)
            result = self.run_epoch(epoch, allowed, demand_fn(epoch))
            observations = result.observations
            results.append(result)
        return results

    # -- Checkpointing ------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Merged snapshot, byte-identical to the unsharded simulator's.

        Schedulers union disjointly by AP ownership, the max-CQI matrix is
        assembled from each client's owning shard, and positions/serving
        come from the parent's replicated topology.  A checkpoint registry
        therefore produces the same subsystem hash -- and the same run
        digest -- as the single-process run.
        """
        if self.supervisor is not None:
            return self.supervisor.state_dict()
        return self._merge_states(
            [worker.state_dict() for worker in self.workers]
        )

    def _merge_states(
        self, worker_states: Sequence[Dict[str, Any]]
    ) -> Dict[str, Any]:
        schedulers: Dict[Any, Any] = {}
        cqi_entries: Set[tuple] = set()
        for state in worker_states:
            schedulers.update(state["schedulers"])
            cqi_entries.update(tuple(entry) for entry in state["max_cqi_state"])
        vec = np.zeros_like(np.asarray(worker_states[0]["max_cqi_vec"]))
        for client in self.topology.clients:
            row = self._client_row[client.client_id]
            owner = self._shard_of_ap[client.ap_id]
            vec[row] = np.asarray(worker_states[owner]["max_cqi_vec"])[row]
        clients = sorted(self.topology.clients, key=lambda c: c.client_id)
        return {
            "schedulers": schedulers,
            "max_cqi_state": [list(entry) for entry in sorted(cqi_entries)],
            "max_cqi_vec": vec,
            "positions": [[c.client_id, c.x, c.y] for c in clients],
            "serving": [[c.client_id, c.ap_id] for c in clients],
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        # Parent replica first: ownership is derived from serving APs, so
        # the diff-application below keeps the shard map authoritative.
        for cid, x, y in state.get("positions", []):
            cid, x, y = int(cid), float(x), float(y)
            site = self.topology.client(cid)
            if site.x != x or site.y != y:
                self.topology.move_client(cid, x, y)
        for cid, ap_id in state.get("serving", []):
            cid, ap_id = int(cid), int(ap_id)
            if self.topology.client(cid).ap_id != ap_id:
                self.topology.reattach_client(cid, ap_id)
        # Every worker gets the full merged state: each applies the same
        # topology diffs, loads its owned schedulers (foreign entries are
        # skipped) and the full max-CQI matrix (only owned rows are live).
        if self.supervisor is not None:
            self.supervisor.load_workers(state)
        else:
            for worker in self.workers:
                worker.begin_load_state(state)
            for worker in self.workers:
                worker.finish_load_state()
            if self._tel_merger is not None:
                self._tel_merger.reset_horizon()
        self.last_epoch_stats = {}

    # -- Telemetry plumbing -------------------------------------------------

    def _flush_worker_telemetry(
        self, k: int, salvage: bool = False
    ) -> bool:
        """Pull and merge worker ``k``'s buffered telemetry.

        Returns ``False`` when the worker could not flush (dead, hung, or
        replying with something that is not a flush payload -- e.g. a
        stale barrier reply still queued in the pipe after a timeout).
        ``salvage`` marks a recovery-time flush: the merger keeps only
        the trace rows, since journal replay regenerates the metrics.
        """
        if self._tel_merger is None:
            return True
        tel = _obs_runtime.active()
        if tel is None:
            return True
        worker = self.workers[k]
        if isinstance(worker, _ProcessWorker):
            if not worker.is_alive() or not worker.send_safe(("tel_flush",)):
                return False
            status, payload = worker.try_recv(_TEL_FLUSH_DEADLINE_S)
            if status != "ok":
                return False
        else:
            if worker.dead:
                return False
            try:
                payload = worker.flush_payload()
            except Exception:
                return False
        if not isinstance(payload, dict) or payload.get("kind") != "flush":
            return False
        return self._tel_merger.merge(k, payload, tel, salvage=salvage)

    # -- Lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self.supervisor is not None:
            self.supervisor.close()
        if self._tel_merger is not None:
            # Final drain: anything recorded since the last commit reply
            # (event ops, a begun-but-uncommitted epoch) merges with full
            # metrics -- no replay follows a close, so nothing can
            # double-count.
            for k in range(len(self.workers)):
                self._flush_worker_telemetry(k)
        for worker in self.workers:
            worker.close()

    def __enter__(self) -> "ShardedNetwork":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
