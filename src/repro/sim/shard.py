"""Spatial shard engine: city-scale epochs across worker processes.

The incremental backend (see ``docs/SIMULATION.md``) made per-epoch cost
proportional to activity, but the map was still one global process.  This
module partitions the map into rectangular spatial shards (one
:func:`repro.sim.topology.grid_partition` tile per worker) and runs each
shard's epoch in its own worker, while keeping the merged result **bitwise
identical** to the single-process run.  Sharding is a pure execution
strategy, never a semantics change.

Why bit-identity is even possible
---------------------------------

Each worker holds the *full* replicated topology but owns only the APs of
its tile and the clients attached to them (see ``shard_ap_ids`` on
:class:`repro.lte.network.LteNetworkSimulator`):

* **Downlink interference** at an owned client comes from the client's own
  gain-matrix row, which spans *every* AP on the map -- owned and foreign
  alike.  The "halo" is therefore implicit and exact: any foreign AP
  within the ``cull_loss_db`` horizon contributes its real received power,
  and anything beyond the horizon is the exact-``0.0`` watt no-op the
  culling contract already guarantees (adding ``0.0`` is an IEEE-754
  identity).  No power needs to cross shard boundaries at all.
* **PRACH contention** (``NP_i`` in the share formula ``S_i = N_i * S /
  NP_i``) is the one genuinely global quantity: an AP hears preambles from
  *active* clients of other shards.  Each worker computes partial integer
  counts over its owned clients (foreign rows of its preamble matrix are
  all-``False``), and the epoch barrier sums the disjoint partials --
  integer addition, no rounding -- and broadcasts the exact total.
* **RNG draws**: the unsharded epoch draws from the shared "rlf" and
  "cqi-detector" streams in topology AP order.  Workers fast-forward the
  streams over foreign APs with batched discards (NumPy's batched
  ``random(n)`` advances PCG64 exactly like ``n`` scalar draws), so every
  owned AP draws the same doubles at the same stream offsets as the
  unsharded run.

Epoch barrier protocol (per epoch):

1. parent pushes the epoch RNG stream states and the decision to every
   worker; each replies with its partial PRACH counts,
2. parent reduces the partials and broadcasts the exact total,
3. workers run their epoch slice; the parent merges the per-shard results
   (disjoint key sets) and adopts the synchronized stream states after
   asserting all workers ended at identical RNG offsets.

Cross-shard handover is a row migration at the epoch barrier: the old
owner exports the client's cross-epoch max-CQI row, every replica applies
the re-attach (disown / adopt on the two owners, topology-only elsewhere),
and the new owner imports the row.
"""

from __future__ import annotations

import multiprocessing as mp
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from repro.lte.network import (
    ApObservation,
    BACKEND_INCREMENTAL,
    EpochResult,
    LteNetworkSimulator,
    SubchannelPolicy,
)
from repro.sim.topology import Topology, grid_partition

__all__ = ["EPOCH_STREAMS", "ShardedNetwork", "grid_partition"]

# The only RNG streams the epoch loop draws from; they are pushed to the
# workers at every barrier and synchronized back afterwards.  Driver-side
# streams (demand, churn, policy) never enter the workers.
EPOCH_STREAMS = ("rlf", "cqi-detector")

NetFactory = Callable[[Optional[Sequence[int]]], LteNetworkSimulator]


def _epoch_stream_states(rngs) -> Dict[str, Any]:
    return {
        name: rngs.stream(name).bit_generator.state for name in EPOCH_STREAMS
    }


def _apply_stream_states(rngs, states: Dict[str, Any]) -> None:
    for name, state in states.items():
        rngs.stream(name).bit_generator.state = state


class _InlineWorker:
    """In-process worker: same protocol, no pipes (tests, fallback)."""

    def __init__(self, net_factory: NetFactory, ap_ids: Sequence[int]) -> None:
        self.net = net_factory(list(ap_ids))
        self._pending: Optional[tuple] = None
        self._partial: Optional[np.ndarray] = None
        self._result: Optional[tuple] = None

    def apply_move(self, client_id: int, x: float, y: float) -> None:
        self.net.move_client(client_id, x, y)

    def apply_reattach(self, client_id: int, new_ap_id: int) -> None:
        self.net.reattach_client(client_id, new_ap_id)

    def export_row(self, client_id: int) -> List[int]:
        return self.net.export_client_row(client_id)

    def import_row(self, client_id: int, row: Sequence[int]) -> None:
        self.net.import_client_row(client_id, row)

    def begin_epoch(self, epoch_index, allowed, demands_bits, rng_states) -> None:
        _apply_stream_states(self.net.rngs, rng_states)
        self._pending = (epoch_index, allowed, demands_bits)
        self._partial = self.net.prach_partial_counts(demands_bits)

    def read_partial(self) -> np.ndarray:
        partial, self._partial = self._partial, None
        return partial

    def commit_epoch(self, prach_total: np.ndarray) -> None:
        epoch_index, allowed, demands_bits = self._pending
        self._pending = None
        start = time.process_time()
        result = self.net.run_epoch(
            epoch_index, allowed, demands_bits, prach_counts=prach_total
        )
        compute_s = time.process_time() - start
        self._result = (
            result,
            _epoch_stream_states(self.net.rngs),
            dict(self.net.last_epoch_stats),
            compute_s,
        )

    def read_result(self) -> tuple:
        result, self._result = self._result, None
        return result

    def state_dict(self) -> Dict[str, Any]:
        return self.net.state_dict()

    def begin_load_state(self, state: Dict[str, Any]) -> None:
        self.net.load_state(state)

    def finish_load_state(self) -> None:
        pass

    def close(self) -> None:
        pass


def _worker_main(conn, net_factory: NetFactory, ap_ids: Sequence[int]) -> None:
    """Worker-process loop: build the shard simulator, serve barrier ops.

    Event ops (``move`` / ``reattach`` / ``import``) are fire-and-forget so
    the parent can pipeline a whole inter-epoch event batch without a
    round-trip each; any exception they raise is stashed and reported at
    the next replying op, which every epoch barrier contains.
    """
    net = net_factory(list(ap_ids))
    pending: Optional[tuple] = None
    deferred_error: Optional[str] = None
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            return
        op = msg[0]
        if op == "stop":
            conn.close()
            return
        try:
            if deferred_error is not None:
                raise RuntimeError(
                    f"earlier shard event failed:\n{deferred_error}"
                )
            if op == "move":
                net.move_client(msg[1], msg[2], msg[3])
            elif op == "reattach":
                net.reattach_client(msg[1], msg[2])
            elif op == "import":
                net.import_client_row(msg[1], msg[2])
            elif op == "export":
                conn.send(("ok", net.export_client_row(msg[1])))
            elif op == "begin":
                _, epoch_index, allowed, demands_bits, rng_states = msg
                _apply_stream_states(net.rngs, rng_states)
                pending = (epoch_index, allowed, demands_bits)
                conn.send(("ok", net.prach_partial_counts(demands_bits)))
            elif op == "commit":
                epoch_index, allowed, demands_bits = pending
                pending = None
                start = time.process_time()
                result = net.run_epoch(
                    epoch_index, allowed, demands_bits, prach_counts=msg[1]
                )
                compute_s = time.process_time() - start
                conn.send(
                    (
                        "ok",
                        (
                            result,
                            _epoch_stream_states(net.rngs),
                            dict(net.last_epoch_stats),
                            compute_s,
                        ),
                    )
                )
            elif op == "state":
                conn.send(("ok", net.state_dict()))
            elif op == "load":
                net.load_state(msg[1])
                conn.send(("ok", None))
            else:
                raise ValueError(f"unknown shard worker op {op!r}")
        except Exception:
            if op in ("move", "reattach", "import"):
                deferred_error = traceback.format_exc()
            else:
                conn.send(("error", traceback.format_exc()))


class _ProcessWorker:
    """Pipe-connected worker process (``fork`` start method)."""

    def __init__(self, ctx, net_factory: NetFactory, ap_ids: Sequence[int]) -> None:
        parent_conn, child_conn = ctx.Pipe()
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, net_factory, ap_ids),
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.conn = parent_conn

    def _recv(self):
        tag, payload = self.conn.recv()
        if tag == "error":
            raise RuntimeError(f"shard worker failed:\n{payload}")
        return payload

    def apply_move(self, client_id: int, x: float, y: float) -> None:
        self.conn.send(("move", client_id, x, y))

    def apply_reattach(self, client_id: int, new_ap_id: int) -> None:
        self.conn.send(("reattach", client_id, new_ap_id))

    def export_row(self, client_id: int) -> List[int]:
        self.conn.send(("export", client_id))
        return self._recv()

    def import_row(self, client_id: int, row: Sequence[int]) -> None:
        self.conn.send(("import", client_id, list(row)))

    def begin_epoch(self, epoch_index, allowed, demands_bits, rng_states) -> None:
        self.conn.send(("begin", epoch_index, allowed, demands_bits, rng_states))

    def read_partial(self) -> np.ndarray:
        return self._recv()

    def commit_epoch(self, prach_total: np.ndarray) -> None:
        self.conn.send(("commit", prach_total))

    def read_result(self) -> tuple:
        return self._recv()

    def state_dict(self) -> Dict[str, Any]:
        self.conn.send(("state",))
        return self._recv()

    def begin_load_state(self, state: Dict[str, Any]) -> None:
        self.conn.send(("load", state))

    def finish_load_state(self) -> None:
        self._recv()

    def close(self) -> None:
        if self.proc.is_alive():
            try:
                self.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            self.proc.join(timeout=5.0)
            if self.proc.is_alive():
                self.proc.terminate()
        self.conn.close()


class ShardedNetwork:
    """Drive N shard workers so their merged epochs match one simulator.

    Drop-in replacement for :class:`LteNetworkSimulator` from a driver's
    point of view (``run_epoch`` / ``move_client`` / ``reattach_client`` /
    ``run`` / ``state_dict`` / ``load_state``), with the same digests.

    Args:
        topology: the parent's replica of the shared topology (mutated by
            the same event stream the workers receive).
        shard_plan: AP-id lists, one per shard -- disjoint and covering
            every AP (see :func:`repro.sim.topology.grid_partition`).
        net_factory: builds one shard simulator given its owned AP ids.
            Must rebuild the *same* deterministic scenario in every worker
            (same seed-derived topology/channel/RNG streams); with
            ``None`` it must build the plain unsharded simulator.
        rngs: the parent's mirror of the simulators' RNG streams (the
            object a checkpoint registry should register as the network
            RNG subsystem).
        grid: the shared resource grid (policy wiring reads it).
        mode: ``"process"`` (fork workers), ``"inline"`` (in-process, for
            tests and platforms without fork) or ``"auto"``.
    """

    def __init__(
        self,
        topology: Topology,
        shard_plan: Sequence[Sequence[int]],
        net_factory: NetFactory,
        rngs,
        grid,
        mode: str = "auto",
    ) -> None:
        self.topology = topology
        self.grid = grid
        self.rngs = rngs
        self.backend = BACKEND_INCREMENTAL
        plan = [sorted(shard) for shard in shard_plan]
        flat = [ap_id for shard in plan for ap_id in shard]
        if len(set(flat)) != len(flat):
            raise ValueError("shard plan has overlapping AP assignments")
        if set(flat) != {ap.ap_id for ap in topology.aps}:
            raise ValueError("shard plan must cover every AP exactly once")
        self.shard_plan = plan
        self._shard_of_ap = {
            ap_id: k for k, shard in enumerate(plan) for ap_id in shard
        }
        # Build-time row order: matches every worker's gain-matrix row
        # mapping (handover mutates attachment, never list positions).
        self._client_row = {
            c.client_id: i for i, c in enumerate(topology.clients)
        }
        if mode == "auto":
            mode = (
                "process"
                if "fork" in mp.get_all_start_methods()
                else "inline"
            )
        if mode == "process":
            ctx = mp.get_context("fork")
            self.workers: List[Any] = [
                _ProcessWorker(ctx, net_factory, shard) for shard in plan
            ]
        elif mode == "inline":
            self.workers = [_InlineWorker(net_factory, shard) for shard in plan]
        else:
            raise ValueError(f"unknown shard mode {mode!r}")
        self.mode = mode
        self.last_epoch_stats: Dict[str, int] = {}
        # Per-worker run_epoch CPU seconds for the last barrier (measured
        # with process_time, so sibling workers time-slicing on the same
        # core do not inflate it); max() is the critical-path epoch time
        # a one-worker-per-core host waits on.
        self.last_epoch_compute_s: List[float] = []

    @property
    def n_shards(self) -> int:
        return len(self.workers)

    def shard_of_client(self, client_id: int) -> int:
        return self._shard_of_ap[self.topology.client(client_id).ap_id]

    # -- Events (applied between epochs, i.e. at the barrier) ---------------

    def move_client(self, client_id: int, x: float, y: float) -> None:
        self.topology.move_client(client_id, x, y)
        for worker in self.workers:
            worker.apply_move(client_id, x, y)

    def reattach_client(self, client_id: int, new_ap_id: int) -> None:
        old_ap_id = self.topology.client(client_id).ap_id
        if old_ap_id == new_ap_id:
            return
        old_shard = self._shard_of_ap[old_ap_id]
        new_shard = self._shard_of_ap[new_ap_id]
        payload = None
        if old_shard != new_shard:
            # Export before the old owner disowns (which zeroes the row).
            payload = self.workers[old_shard].export_row(client_id)
        self.topology.reattach_client(client_id, new_ap_id)
        for worker in self.workers:
            worker.apply_reattach(client_id, new_ap_id)
        if payload is not None:
            self.workers[new_shard].import_row(client_id, payload)

    # -- Epoch barrier ------------------------------------------------------

    def run_epoch(
        self,
        epoch_index: int,
        allowed: Dict[int, Set[int]],
        demands_bits: Dict[int, float],
    ) -> EpochResult:
        # Phase 1: push decision + epoch RNG states, gather PRACH partials.
        # The push is normally a no-op (workers advanced in lockstep) but
        # makes a freshly restored parent authoritative for free.
        rng_states = _epoch_stream_states(self.rngs)
        for worker in self.workers:
            worker.begin_epoch(epoch_index, allowed, demands_bits, rng_states)
        total: Optional[np.ndarray] = None
        for worker in self.workers:
            partial = worker.read_partial()
            total = partial if total is None else total + partial
        # Phase 2: broadcast the exact global counts, run the epoch slices.
        for worker in self.workers:
            worker.commit_epoch(total)
        outcomes = [worker.read_result() for worker in self.workers]
        # Phase 3: merge.  Key sets are disjoint by ownership, and every
        # AP/client is owned by exactly one shard, so the merged dicts have
        # exactly the unsharded key population.
        states0 = outcomes[0][1]
        for _, states, _, _ in outcomes[1:]:
            if states != states0:
                raise RuntimeError(
                    "shard RNG streams diverged at the epoch barrier -- "
                    "the bit-identity contract is broken"
                )
        _apply_stream_states(self.rngs, states0)
        merged = EpochResult(
            epoch_index=epoch_index,
            served_bits={},
            throughput_bps={},
            allocations={},
            observations={},
            connected={},
        )
        stats_sum: Dict[str, int] = {}
        self.last_epoch_compute_s = [outcome[3] for outcome in outcomes]
        for result, _, stats, _ in outcomes:
            merged.served_bits.update(result.served_bits)
            merged.throughput_bps.update(result.throughput_bps)
            merged.allocations.update(result.allocations)
            merged.observations.update(result.observations)
            merged.connected.update(result.connected)
            for key, value in stats.items():
                stats_sum[key] = stats_sum.get(key, 0) + value
        self.last_epoch_stats = stats_sum
        return merged

    def run(
        self,
        n_epochs: int,
        policy: SubchannelPolicy,
        demand_fn: Callable[[int], Dict[int, float]],
    ) -> List[EpochResult]:
        """Mirror of :meth:`LteNetworkSimulator.run` over the shard fleet."""
        results: List[EpochResult] = []
        observations: Optional[Dict[int, ApObservation]] = None
        for epoch in range(n_epochs):
            allowed = policy.decide(epoch, observations)
            result = self.run_epoch(epoch, allowed, demand_fn(epoch))
            observations = result.observations
            results.append(result)
        return results

    # -- Checkpointing ------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Merged snapshot, byte-identical to the unsharded simulator's.

        Schedulers union disjointly by AP ownership, the max-CQI matrix is
        assembled from each client's owning shard, and positions/serving
        come from the parent's replicated topology.  A checkpoint registry
        therefore produces the same subsystem hash -- and the same run
        digest -- as the single-process run.
        """
        worker_states = [worker.state_dict() for worker in self.workers]
        schedulers: Dict[Any, Any] = {}
        cqi_entries: Set[tuple] = set()
        for state in worker_states:
            schedulers.update(state["schedulers"])
            cqi_entries.update(tuple(entry) for entry in state["max_cqi_state"])
        vec = np.zeros_like(np.asarray(worker_states[0]["max_cqi_vec"]))
        for client in self.topology.clients:
            row = self._client_row[client.client_id]
            owner = self._shard_of_ap[client.ap_id]
            vec[row] = np.asarray(worker_states[owner]["max_cqi_vec"])[row]
        clients = sorted(self.topology.clients, key=lambda c: c.client_id)
        return {
            "schedulers": schedulers,
            "max_cqi_state": [list(entry) for entry in sorted(cqi_entries)],
            "max_cqi_vec": vec,
            "positions": [[c.client_id, c.x, c.y] for c in clients],
            "serving": [[c.client_id, c.ap_id] for c in clients],
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        # Parent replica first: ownership is derived from serving APs, so
        # the diff-application below keeps the shard map authoritative.
        for cid, x, y in state.get("positions", []):
            cid, x, y = int(cid), float(x), float(y)
            site = self.topology.client(cid)
            if site.x != x or site.y != y:
                self.topology.move_client(cid, x, y)
        for cid, ap_id in state.get("serving", []):
            cid, ap_id = int(cid), int(ap_id)
            if self.topology.client(cid).ap_id != ap_id:
                self.topology.reattach_client(cid, ap_id)
        # Every worker gets the full merged state: each applies the same
        # topology diffs, loads its owned schedulers (foreign entries are
        # skipped) and the full max-CQI matrix (only owned rows are live).
        for worker in self.workers:
            worker.begin_load_state(state)
        for worker in self.workers:
            worker.finish_load_state()
        self.last_epoch_stats = {}

    # -- Lifecycle ----------------------------------------------------------

    def close(self) -> None:
        for worker in self.workers:
            worker.close()

    def __enter__(self) -> "ShardedNetwork":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
