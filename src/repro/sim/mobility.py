"""Client mobility models.

Supports the paper's Section 7 roaming discussion: CellFi "provides
seamless roaming across access points".  The classic random-waypoint model
moves each client toward a uniformly drawn waypoint at a per-leg speed,
pausing briefly on arrival -- pedestrian defaults suit the outdoor
cellular setting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np


@dataclass
class _WalkerState:
    x: float
    y: float
    target_x: float
    target_y: float
    speed_m_s: float
    pause_left_s: float = 0.0


class RandomWaypointModel:
    """Random-waypoint mobility over a square area.

    Args:
        area_m: side of the square arena.
        rng: random stream (waypoints, speeds, pauses).
        speed_range_m_s: per-leg speed drawn uniformly from this range
            (default: pedestrian 0.5-2 m/s).
        pause_range_s: dwell time at each waypoint.
    """

    def __init__(
        self,
        area_m: float,
        rng: np.random.Generator,
        speed_range_m_s: Tuple[float, float] = (0.5, 2.0),
        pause_range_s: Tuple[float, float] = (0.0, 10.0),
    ) -> None:
        if area_m <= 0.0:
            raise ValueError(f"area must be > 0, got {area_m!r}")
        lo, hi = speed_range_m_s
        if not 0.0 < lo <= hi:
            raise ValueError(f"bad speed range {speed_range_m_s!r}")
        self.area_m = area_m
        self.rng = rng
        self.speed_range = speed_range_m_s
        self.pause_range = pause_range_s
        self._walkers: Dict[int, _WalkerState] = {}

    def add_client(self, client_id: int, x: float, y: float) -> None:
        """Register a client at its starting position.

        Raises:
            ValueError: on duplicate registration.
        """
        if client_id in self._walkers:
            raise ValueError(f"client {client_id} already registered")
        state = _WalkerState(
            x=x, y=y, target_x=x, target_y=y,
            speed_m_s=self._draw_speed(),
        )
        self._pick_waypoint(state)
        self._walkers[client_id] = state

    def _draw_speed(self) -> float:
        return float(self.rng.uniform(*self.speed_range))

    def _pick_waypoint(self, state: _WalkerState) -> None:
        state.target_x = float(self.rng.uniform(0.0, self.area_m))
        state.target_y = float(self.rng.uniform(0.0, self.area_m))
        state.speed_m_s = self._draw_speed()

    def step(self, dt_s: float) -> Dict[int, Tuple[float, float]]:
        """Advance all walkers by ``dt_s``; returns new positions.

        Raises:
            ValueError: for a non-positive time step.
        """
        if dt_s <= 0.0:
            raise ValueError(f"time step must be > 0, got {dt_s!r}")
        positions: Dict[int, Tuple[float, float]] = {}
        for client_id, state in self._walkers.items():
            remaining = dt_s
            while remaining > 0.0:
                if state.pause_left_s > 0.0:
                    used = min(state.pause_left_s, remaining)
                    state.pause_left_s -= used
                    remaining -= used
                    continue
                dx = state.target_x - state.x
                dy = state.target_y - state.y
                distance = math.hypot(dx, dy)
                reach = state.speed_m_s * remaining
                if reach >= distance:
                    state.x, state.y = state.target_x, state.target_y
                    remaining -= distance / state.speed_m_s if state.speed_m_s else 0.0
                    state.pause_left_s = float(self.rng.uniform(*self.pause_range))
                    self._pick_waypoint(state)
                else:
                    state.x += dx / distance * reach
                    state.y += dy / distance * reach
                    remaining = 0.0
            positions[client_id] = (state.x, state.y)
        return positions

    def position(self, client_id: int) -> Tuple[float, float]:
        """Current position of one client."""
        state = self._walkers[client_id]
        return state.x, state.y
