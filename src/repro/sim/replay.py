"""Divergence replay: lockstep two restored runs and find the first split.

``replay_diff`` restores **two** driver instances from one snapshot --
optionally mutating the serialized state of instance B first, to inject a
deliberate divergence -- then fires events in lockstep on both simulators
and reports the first event at which the executions part ways.

Divergence is detected two ways:

* **Event mismatch** -- the two simulators fire events that differ in
  time, sequence number, or callback site.  This is the definitive signal
  that the heaps have forked.
* **State spread** -- the set of subsystems whose hashes differ *grows*.
  A ``--mutate`` edit makes some subsystem differ from the very start;
  that baseline set is recorded, and the run is flagged the moment any
  *other* subsystem's hash starts differing (the mutation has propagated).

Full per-subsystem hashing after every event is expensive, so hashes are
compared every ``stride`` events with in-memory boundary snapshots taken
at each clean boundary.  When a strided check trips, the window is
replayed from the last clean boundary one event at a time (fresh
instances restored from the boundary snapshots) to pinpoint the exact
first diverging event, which is reported with the
:class:`~repro.sim.engine.Event` repr context (time, seq, callback site).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sim.checkpoint import CheckpointError, Snapshot

__all__ = [
    "DivergenceReport",
    "apply_mutation",
    "load_driver",
    "replay_diff",
]


# Driver name (snapshot ``meta["driver"]``) -> "module:class".  Classes are
# imported lazily so loading this module never drags in the experiment
# stack.  Only event-driven drivers (those that register a Simulator with
# their CheckpointRegistry) can be replayed in lockstep; the epoch- and
# replication-granular drivers are listed so the error message can say
# *why* they are not replayable rather than just "unknown driver".
DRIVERS: Dict[str, str] = {
    "db_outage": "repro.experiments.db_outage:DbOutageRun",
    "large_scale_saturated": "repro.experiments.large_scale:SaturatedLteRun",
    "convergence": "repro.experiments.convergence:ConvergenceRun",
}


@dataclass
class DivergenceReport:
    """Outcome of a lockstep replay.

    ``event_index`` counts fired events after the restore point, 1-based;
    it is 0 when the runs never diverged.  ``event_a``/``event_b`` are the
    ``repr`` of the events fired at the diverging step (``None`` when that
    simulator had drained).  ``subsystems`` lists the subsystem hashes
    that differ at the divergence point; ``baseline`` lists those that
    already differed at the restore point (i.e. the injected mutations).
    """

    diverged: bool
    events_replayed: int
    event_index: int = 0
    time: float = 0.0
    event_a: Optional[str] = None
    event_b: Optional[str] = None
    subsystems: List[str] = field(default_factory=list)
    baseline: List[str] = field(default_factory=list)

    def describe(self) -> str:
        """Human-readable multi-line summary (what the CLI prints)."""
        lines: List[str] = []
        if self.baseline:
            lines.append(
                "mutated at restore: " + ", ".join(sorted(self.baseline))
            )
        if not self.diverged:
            lines.append(
                f"no divergence in {self.events_replayed} events "
                "(runs are lockstep-identical)"
            )
            return "\n".join(lines)
        lines.append(
            f"first diverging event: #{self.event_index} "
            f"at t={self.time:.6f}s"
        )
        lines.append(f"  run A fired: {self.event_a}")
        lines.append(f"  run B fired: {self.event_b}")
        if self.subsystems:
            lines.append(
                "  subsystem hashes differing: "
                + ", ".join(sorted(self.subsystems))
            )
        return "\n".join(lines)


def apply_mutation(snapshot: Snapshot, spec: str) -> None:
    """Edit one serialized subsystem field in place.

    ``spec`` is ``name.key[.subkey...]=json``, e.g.
    ``driver.held=41`` or ``selector.poll_interval_s=9.0``.  The path is
    resolved inside ``snapshot.subsystems[name]`` (string keys only --
    canonical-encoded containers like ``__map__`` are addressed through
    their encoding) and the payload is parsed as JSON.
    """
    target, sep, payload = spec.partition("=")
    if not sep:
        raise CheckpointError(f"mutation {spec!r} has no '=value' part")
    parts = target.split(".")
    if len(parts) < 2:
        raise CheckpointError(
            f"mutation target {target!r} must be subsystem.key[...]"
        )
    name, path = parts[0], parts[1:]
    if name not in snapshot.subsystems:
        known = ", ".join(sorted(snapshot.subsystems))
        raise CheckpointError(
            f"snapshot has no subsystem {name!r} (has: {known})"
        )
    try:
        value = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"mutation value {payload!r} is not valid JSON: {exc}"
        ) from exc
    node: Any = snapshot.subsystems[name]
    for key in path[:-1]:
        if not isinstance(node, dict) or key not in node:
            raise CheckpointError(
                f"mutation path {target!r}: no key {key!r} along the way"
            )
        node = node[key]
    if not isinstance(node, dict) or path[-1] not in node:
        raise CheckpointError(
            f"mutation path {target!r}: no field {path[-1]!r} "
            f"(fields: {', '.join(sorted(node)) if isinstance(node, dict) else node!r})"
        )
    node[path[-1]] = value


def load_driver(snapshot: Snapshot) -> Any:
    """Rebuild the driver object a snapshot came from (build-then-load)."""
    name = snapshot.meta.get("driver")
    if name not in DRIVERS:
        known = ", ".join(sorted(DRIVERS))
        raise CheckpointError(
            f"snapshot meta names unknown driver {name!r} (known: {known})"
        )
    module_name, _, class_name = DRIVERS[name].partition(":")
    module = __import__(module_name, fromlist=[class_name])
    return getattr(module, class_name).from_snapshot(snapshot)


def _event_key(event: Any) -> Optional[Tuple[float, int, str]]:
    if event is None:
        return None
    return (event.time, event.seq, repr(event))


def _differing(run_a: Any, run_b: Any) -> List[str]:
    """Subsystem names whose state hashes differ between the two runs."""
    hashes_a = run_a.registry.state_hashes()
    hashes_b = run_b.registry.state_hashes()
    return sorted(
        name
        for name in set(hashes_a) | set(hashes_b)
        if hashes_a.get(name) != hashes_b.get(name)
    )


def _step_pair(run_a: Any, run_b: Any) -> Tuple[Any, Any]:
    return run_a.sim.step(), run_b.sim.step()


def _fine_replay(
    snap_a: Snapshot,
    snap_b: Snapshot,
    start_index: int,
    window: int,
    baseline: List[str],
) -> DivergenceReport:
    """Re-run one strided window event by event to find the exact split.

    Fresh instances are restored from the boundary snapshots (checkpoint
    fidelity guarantees they retrace the window identically), then every
    event gets a full hash comparison.
    """
    run_a = load_driver(snap_a)
    run_b = load_driver(snap_b)
    base = set(baseline)
    index = start_index
    for _ in range(window):
        event_a, event_b = _step_pair(run_a, run_b)
        index += 1
        differing = _differing(run_a, run_b)
        if _event_key(event_a) != _event_key(event_b) or set(differing) != base:
            when = event_a.time if event_a is not None else (
                event_b.time if event_b is not None else run_a.sim.now
            )
            return DivergenceReport(
                diverged=True,
                events_replayed=index,
                event_index=index,
                time=when,
                event_a=repr(event_a) if event_a is not None else None,
                event_b=repr(event_b) if event_b is not None else None,
                subsystems=differing,
                baseline=baseline,
            )
    # The strided check tripped but the replayed window did not: the
    # boundary snapshots failed to reproduce the window.  That is itself a
    # checkpoint-fidelity bug worth failing loudly over.
    raise CheckpointError(
        "fine replay could not reproduce the divergence found by the "
        f"strided check in events {start_index + 1}..{start_index + window}"
    )


def replay_diff(
    snapshot_path: str,
    mutations: Sequence[str] = (),
    stride: int = 32,
    max_events: int = 200_000,
) -> DivergenceReport:
    """Restore two runs from ``snapshot_path`` and bisect their divergence.

    Args:
        snapshot_path: a ``ckpt_*.json`` written by a checkpointable run.
        mutations: ``name.key=json`` edits applied to instance B's
            serialized state before restoring it (deliberate divergence
            injection); empty means both instances restore identically.
        stride: events between full hash comparisons during the coarse
            phase.  1 hashes after every event (slow, never needs the
            fine-replay pass).
        max_events: stop declaring "no divergence" after this many events
            even if neither simulator has drained.

    Returns:
        A :class:`DivergenceReport`; ``diverged`` is False when the runs
        stayed in lockstep until both drained (or ``max_events``).
    """
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    snapshot_a = Snapshot.load(snapshot_path)
    if snapshot_a.sim is None:
        raise CheckpointError(
            f"snapshot from driver {snapshot_a.meta.get('driver')!r} has no "
            "event heap; replay-diff needs an event-driven run (db_outage)"
        )
    snapshot_b = Snapshot.load(snapshot_path)
    for spec in mutations:
        apply_mutation(snapshot_b, spec)

    run_a = load_driver(snapshot_a)
    run_b = load_driver(snapshot_b)
    baseline = _differing(run_a, run_b)
    base = set(baseline)
    meta = dict(snapshot_a.meta)

    # Clean boundary: snapshots of both runs plus the event count there.
    boundary: Tuple[Snapshot, Snapshot, int] = (
        run_a.registry.snapshot(meta=meta),
        run_b.registry.snapshot(meta=meta),
        0,
    )
    index = 0
    while index < max_events:
        event_a, event_b = _step_pair(run_a, run_b)
        if event_a is None and event_b is None:
            return DivergenceReport(
                diverged=False, events_replayed=index, baseline=baseline
            )
        index += 1
        if _event_key(event_a) != _event_key(event_b):
            # The heaps themselves forked.  A *state* divergence may have
            # slipped through earlier in this window (hashes are only
            # compared at stride boundaries), so replay the window from
            # the last clean boundary to find the true first divergence.
            snap_a, snap_b, start = boundary
            return _fine_replay(snap_a, snap_b, start, index - start, baseline)
        if index % stride == 0:
            differing = _differing(run_a, run_b)
            if set(differing) != base:
                snap_a, snap_b, start = boundary
                return _fine_replay(
                    snap_a, snap_b, start, index - start, baseline
                )
            boundary = (
                run_a.registry.snapshot(meta=meta),
                run_b.registry.snapshot(meta=meta),
                index,
            )
    return DivergenceReport(
        diverged=False, events_replayed=index, baseline=baseline
    )
