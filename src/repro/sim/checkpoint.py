"""Versioned checkpoint/restore for the discrete-event simulator.

A *checkpoint* captures everything a run needs to continue bit-identically:
the engine clock and event heap, every named RNG stream's generator state,
and the mutable state of each registered subsystem (selectors, schedulers,
hoppers, databases, logs, ...).  The restore protocol is *build-then-load*:

1. the driver reconstructs the object graph from its config exactly as a
   fresh run would (same constructors, same wiring, same aliasing), then
2. :meth:`CheckpointRegistry.restore` overwrites the mutable state of each
   subsystem in place.

Because generators are mutated in place (``gen.bit_generator.state = ...``)
rather than replaced, any subsystem holding a reference to a shared stream
keeps drawing from the restored state -- aliasing survives the round trip.

Event callbacks cannot be pickled portably, so the heap is serialized as
*callback tokens*: a bound method of a registered subsystem, a registry-named
driver callback, a :class:`BoundCall` (method + canonically-serialized
arguments), or a periodic wrapper.  Anything else -- a raw lambda, an
unregistered owner -- raises :class:`CheckpointError` at snapshot time,
naming the offending callback, instead of silently writing a snapshot that
cannot be restored.

Hashing: ``hash_state`` produces a SHA-256 over a canonical JSON encoding
(sorted keys, no whitespace, tagged containers), so two runs agree on a
digest iff they agree on state.  See ``docs/CHECKPOINT.md``.
"""

from __future__ import annotations

import dataclasses
import glob
import hashlib
import json
import os
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.obs import runtime as _obs_runtime
from repro.obs.profile import callback_site
from repro.sim.engine import Event, Simulator, _PeriodicCallback

#: Snapshot format version; bump on any incompatible change to the payload
#: layout or the canonical encoding (a changed encoding changes every hash).
SNAPSHOT_VERSION = 1


class CheckpointError(RuntimeError):
    """A state value or callback cannot be serialized (or restored)."""


# -- Canonical encoding -------------------------------------------------------

#: Registered dataclasses, keyed by qualified name.  Only whitelisted
#: dataclasses round-trip through snapshots; arbitrary objects are rejected
#: so a snapshot can never silently capture less than it claims.
_DATACLASSES: Dict[str, type] = {}


def register_dataclass(cls: type) -> type:
    """Whitelist ``cls`` for canonical (de)serialization.  Returns ``cls``.

    Usable as a decorator.  Reconstruction builds the instance from its
    init fields, then force-sets every field to the recorded value, so
    ``__post_init__`` recomputation cannot skew restored state.
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    _DATACLASSES[_dataclass_key(cls)] = cls
    return cls


def _dataclass_key(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def registered_dataclasses() -> Tuple[str, ...]:
    """Qualified names of all whitelisted dataclasses (for tests/docs)."""
    return tuple(sorted(_DATACLASSES))


def to_jsonable(value: Any) -> Any:
    """Encode ``value`` into the canonical JSON-compatible form.

    Tagged forms (``__map__``, ``__set__``, ``__ndarray__``, ``__dc__``)
    keep non-string keys, sets, arrays and registered dataclasses
    round-trippable; plain dicts are only used when every key is a plain
    string with no ``__`` prefix, so tags can never collide with data.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, (np.integer, np.floating)):
        return value.item()
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": {
                "dtype": str(value.dtype),
                "shape": list(value.shape),
                "data": value.ravel().tolist(),
            }
        }
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, (set, frozenset)):
        items = [to_jsonable(item) for item in value]
        return {"__set__": sorted(items, key=_sort_key)}
    if isinstance(value, dict):
        if all(
            isinstance(key, str) and not key.startswith("__") for key in value
        ):
            return {key: to_jsonable(value[key]) for key in value}
        entries = [[to_jsonable(k), to_jsonable(v)] for k, v in value.items()]
        entries.sort(key=lambda kv: _sort_key(kv[0]))
        return {"__map__": entries}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        key = _dataclass_key(type(value))
        if key not in _DATACLASSES:
            raise CheckpointError(
                f"dataclass {key} is not registered for checkpointing; "
                "call repro.sim.checkpoint.register_dataclass on it"
            )
        fields = {
            f.name: to_jsonable(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dc__": key, "fields": fields}
    raise CheckpointError(
        f"cannot serialize {type(value).__name__} value {value!r} canonically"
    )


def _sort_key(encoded: Any) -> str:
    """Deterministic ordering key for encoded set elements / map keys."""
    return json.dumps(encoded, sort_keys=True, separators=(",", ":"))


def from_jsonable(value: Any) -> Any:
    """Invert :func:`to_jsonable`.  Tuples come back as lists."""
    if isinstance(value, list):
        return [from_jsonable(item) for item in value]
    if isinstance(value, dict):
        if "__ndarray__" in value:
            spec = value["__ndarray__"]
            return np.array(
                spec["data"], dtype=np.dtype(spec["dtype"])
            ).reshape(spec["shape"])
        if "__set__" in value:
            return set(from_jsonable(item) for item in value["__set__"])
        if "__map__" in value:
            return {
                from_jsonable(k): from_jsonable(v) for k, v in value["__map__"]
            }
        if "__dc__" in value:
            key = value["__dc__"]
            cls = _DATACLASSES.get(key)
            if cls is None:
                raise CheckpointError(
                    f"snapshot references unregistered dataclass {key}"
                )
            fields = {
                name: from_jsonable(v) for name, v in value["fields"].items()
            }
            init_kwargs = {
                f.name: fields[f.name]
                for f in dataclasses.fields(cls)
                if f.init and f.name in fields
            }
            obj = cls(**init_kwargs)
            for name, restored in fields.items():
                object.__setattr__(obj, name, restored)
            return obj
        return {key: from_jsonable(v) for key, v in value.items()}
    return value


def canonical_json(value: Any) -> str:
    """Canonical JSON text of ``value`` (stable across runs and platforms)."""
    return json.dumps(to_jsonable(value), sort_keys=True, separators=(",", ":"))


def hash_state(value: Any) -> str:
    """SHA-256 hex digest of the canonical encoding of ``value``."""
    return hashlib.sha256(canonical_json(value).encode()).hexdigest()


def clone_state(value: Any) -> Any:
    """Deep, detached copy of a state tree via the canonical encoding.

    ``from_jsonable(to_jsonable(value))`` round-trips exactly the value
    population a snapshot can hold, so the copy shares no mutable storage
    with the source -- the property the shard supervisor relies on when it
    pins a merged checkpoint for later worker respawns while the live
    simulators keep mutating their state in place.  Tuples come back as
    lists, matching what a disk round trip would produce.
    """
    return from_jsonable(to_jsonable(value))


# -- Checkpointable contract --------------------------------------------------


class Checkpointable:
    """Contract for subsystems that participate in snapshots.

    Implementors provide ``state_dict()`` (all mutable state, canonically
    serializable) and ``load_state(state)`` (overwrite that state in
    place).  ``state_hash`` is derived, so any state a subsystem reports
    automatically strengthens the run digest.  Subsystems holding live
    :class:`Event` references additionally implement
    ``link_events(lookup)`` to re-bind them after an engine restore.
    """

    def state_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    def load_state(self, state: Dict[str, Any]) -> None:
        raise NotImplementedError

    def state_hash(self) -> str:
        """SHA-256 of this subsystem's canonical state."""
        return hash_state(self.state_dict())


class BoundCall:
    """A serializable deferred call: ``getattr(owner, method)(*args)``.

    Drivers and subsystems schedule these instead of argument-capturing
    lambdas; the snapshot records the owner's registry name, the method
    name, and the canonically-encoded arguments.
    """

    def __init__(self, owner: Any, method: str, *args: Any) -> None:
        if not callable(getattr(owner, method, None)):
            raise CheckpointError(
                f"{type(owner).__name__} has no callable {method!r}"
            )
        self.owner = owner
        self.method = method
        self.args = args
        # Instance attribute so callback_site() (traces, profiles,
        # Event.__repr__) names the target instead of a memory address.
        self.__qualname__ = f"{type(owner).__name__}.{method}"

    def __call__(self) -> Any:
        return getattr(self.owner, self.method)(*self.args)

    def __repr__(self) -> str:
        return f"BoundCall({type(self.owner).__name__}.{self.method}, args={self.args!r})"


# -- Snapshot payload ---------------------------------------------------------


@dataclasses.dataclass
class Snapshot:
    """One saved simulator state (already in canonical JSON-able form)."""

    version: int
    time: float
    sim: Optional[Dict[str, Any]]
    subsystems: Dict[str, Any]
    hashes: Dict[str, str]
    meta: Dict[str, Any]

    def digest(self) -> str:
        """Run digest: SHA-256 over the per-subsystem hash map."""
        return hashlib.sha256(
            json.dumps(self.hashes, sort_keys=True, separators=(",", ":")).encode()
        ).hexdigest()

    def to_payload(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "time": self.time,
            "sim": self.sim,
            "subsystems": self.subsystems,
            "hashes": self.hashes,
            "meta": self.meta,
        }

    def save(self, path: str) -> None:
        """Write the snapshot as sorted-key JSON."""
        tel = _obs_runtime.active()
        with open(path, "w") as handle:
            json.dump(self.to_payload(), handle, sort_keys=True)
            handle.write("\n")
        if tel is not None:
            tel.inc("checkpoint.saved")

    @classmethod
    def load(cls, path: str) -> "Snapshot":
        """Read a snapshot written by :meth:`save`."""
        with open(path) as handle:
            payload = json.load(handle)
        if payload.get("version") != SNAPSHOT_VERSION:
            raise CheckpointError(
                f"snapshot {path} has version {payload.get('version')!r}; "
                f"this build reads version {SNAPSHOT_VERSION}"
            )
        tel = _obs_runtime.active()
        if tel is not None:
            tel.inc("checkpoint.loaded")
        return cls(
            version=payload["version"],
            time=payload["time"],
            sim=payload.get("sim"),
            subsystems=payload["subsystems"],
            hashes=payload.get("hashes", {}),
            meta=payload.get("meta", {}),
        )


def latest_checkpoint(directory: str) -> Optional[str]:
    """Path of the newest ``ckpt_*.json`` in ``directory``, or ``None``.

    Snapshot filenames embed a zero-padded position (sim time or epoch),
    so the lexicographic maximum is the latest checkpoint.
    """
    if not os.path.isdir(directory):
        return None
    paths = glob.glob(os.path.join(directory, "ckpt_*.json"))
    return max(paths) if paths else None


# -- Registry -----------------------------------------------------------------


class CheckpointRegistry:
    """Names the checkpointable parts of one run and snapshots them.

    The registry is rebuilt (identically) by the driver on every run; a
    snapshot stores only *names* plus state, never object references, so
    restore works in a fresh process.
    """

    def __init__(self, sim: Optional[Simulator] = None) -> None:
        self._sim = sim
        self._subsystems: Dict[str, Any] = {}
        self._order: List[str] = []
        self._callbacks: Dict[str, Callable[[], None]] = {}
        self._callback_names: Dict[int, str] = {}
        self._owner_names: Dict[int, str] = {}

    @property
    def sim(self) -> Optional[Simulator]:
        return self._sim

    def register(self, name: str, subsystem: Any) -> Any:
        """Register ``subsystem`` under ``name``.  Returns the subsystem."""
        if name in self._subsystems:
            raise CheckpointError(f"subsystem name {name!r} already registered")
        for method in ("state_dict", "load_state"):
            if not callable(getattr(subsystem, method, None)):
                raise CheckpointError(
                    f"{type(subsystem).__name__} lacks {method}(); "
                    "it cannot be checkpointed"
                )
        self._subsystems[name] = subsystem
        self._order.append(name)
        self._owner_names[id(subsystem)] = name
        return subsystem

    def register_callback(self, name: str, fn: Callable[[], None]) -> Callable[[], None]:
        """Name a driver-level callback so the event heap can reference it."""
        if name in self._callbacks:
            raise CheckpointError(f"callback name {name!r} already registered")
        self._callbacks[name] = fn
        self._callback_names[id(fn)] = name
        return fn

    def subsystems(self) -> Dict[str, Any]:
        """Registered subsystems by name (insertion order preserved)."""
        return dict(self._subsystems)

    # -- callback tokens --

    def encode_callback(self, callback: Callable[[], None]) -> List[Any]:
        """Turn a live callback into its snapshot token."""
        if isinstance(callback, _PeriodicCallback):
            return ["periodic", callback.interval,
                    self.encode_callback(callback.callback)]
        if isinstance(callback, BoundCall):
            name = self._owner_names.get(id(callback.owner))
            if name is None:
                raise CheckpointError(
                    f"BoundCall owner {type(callback.owner).__name__} is not "
                    f"a registered subsystem (callback {callback!r})"
                )
            return ["call", name, callback.method, to_jsonable(callback.args)]
        owner = getattr(callback, "__self__", None)
        if owner is not None:
            name = self._owner_names.get(id(owner))
            if name is not None:
                return ["method", name, callback.__name__]
        name = self._callback_names.get(id(callback))
        if name is not None:
            return ["named", name]
        raise CheckpointError(
            "cannot serialize event callback "
            f"{callback_site(callback)}: not a bound method of a registered "
            "subsystem, a registered named callback, a BoundCall, or a "
            "periodic wrapper"
        )

    def decode_callback(self, token: List[Any]) -> Callable[[], None]:
        """Invert :meth:`encode_callback` against this registry."""
        kind = token[0]
        if kind == "periodic":
            if self._sim is None:
                raise CheckpointError("periodic token needs a registered sim")
            return _PeriodicCallback(
                self._sim, token[1], self.decode_callback(token[2])
            )
        if kind == "call":
            owner = self._lookup(token[1])
            args = from_jsonable(token[3])
            return BoundCall(owner, token[2], *args)
        if kind == "method":
            owner = self._lookup(token[1])
            method = getattr(owner, token[2], None)
            if not callable(method):
                raise CheckpointError(
                    f"subsystem {token[1]!r} has no method {token[2]!r}"
                )
            return method
        if kind == "named":
            fn = self._callbacks.get(token[1])
            if fn is None:
                raise CheckpointError(
                    f"snapshot references unregistered callback {token[1]!r}"
                )
            return fn
        raise CheckpointError(f"unknown callback token kind {kind!r}")

    def _lookup(self, name: str) -> Any:
        subsystem = self._subsystems.get(name)
        if subsystem is None:
            raise CheckpointError(
                f"snapshot references unregistered subsystem {name!r}"
            )
        return subsystem

    # -- snapshot / restore --

    def state_hashes(self) -> Dict[str, str]:
        """Per-subsystem SHA-256 hashes (plus ``sim`` when registered)."""
        hashes: Dict[str, str] = {}
        if self._sim is not None:
            hashes["sim"] = hash_state(self._sim.state_dict(self.encode_callback))
        for name in self._order:
            subsystem = self._subsystems[name]
            if hasattr(subsystem, "state_hash"):
                hashes[name] = subsystem.state_hash()
            else:
                hashes[name] = hash_state(subsystem.state_dict())
        return hashes

    def run_digest(self) -> str:
        """SHA-256 digest over all subsystem hashes -- one line per run."""
        return hashlib.sha256(
            json.dumps(
                self.state_hashes(), sort_keys=True, separators=(",", ":")
            ).encode()
        ).hexdigest()

    def snapshot(self, meta: Optional[Dict[str, Any]] = None) -> Snapshot:
        """Capture the full run state as a :class:`Snapshot`."""
        tel = _obs_runtime.active()
        sim_state = None
        now = 0.0
        if self._sim is not None:
            sim_state = self._sim.state_dict(self.encode_callback)
            now = self._sim.now
        subsystems = {}
        hashes = {}
        if sim_state is not None:
            hashes["sim"] = hash_state(sim_state)
        for name in self._order:
            subsystem = self._subsystems[name]
            # Hash the *raw* state, not the encoded form: to_jsonable is
            # not idempotent (a tagged dict re-encodes as __map__), so
            # hashing the encoding would disagree with state_hash().
            raw = subsystem.state_dict()
            subsystems[name] = to_jsonable(raw)
            hashes[name] = hash_state(raw)
        snap = Snapshot(
            version=SNAPSHOT_VERSION,
            time=now,
            sim=sim_state,
            subsystems=subsystems,
            hashes=hashes,
            meta=dict(meta or {}),
        )
        if tel is not None:
            tel.inc("checkpoint.snapshots")
            if tel.tracer is not None:
                tel.event(
                    "checkpoint.snapshot",
                    cat="checkpoint",
                    t=now,
                    args={"digest": snap.digest()[:16]},
                )
        return snap

    def restore(self, snapshot: Snapshot) -> None:
        """Overwrite all registered state from ``snapshot`` (build-then-load).

        The object graph must already exist, wired exactly as a fresh run
        would wire it; this only replaces mutable state, then re-binds any
        subsystem-held event references via ``link_events``.
        """
        if snapshot.version != SNAPSHOT_VERSION:
            raise CheckpointError(
                f"snapshot version {snapshot.version} != {SNAPSHOT_VERSION}"
            )
        missing = [n for n in snapshot.subsystems if n not in self._subsystems]
        if missing:
            raise CheckpointError(
                f"snapshot has state for unregistered subsystems: {missing}"
            )
        lookup: Dict[int, Event] = {}
        if snapshot.sim is not None:
            if self._sim is None:
                raise CheckpointError(
                    "snapshot contains engine state but no sim is registered"
                )
            lookup = self._sim.load_state(snapshot.sim, self.decode_callback)
        for name in self._order:
            if name not in snapshot.subsystems:
                continue
            state = from_jsonable(snapshot.subsystems[name])
            self._subsystems[name].load_state(state)
        for name in self._order:
            subsystem = self._subsystems[name]
            link = getattr(subsystem, "link_events", None)
            if callable(link):
                link(lookup)
        tel = _obs_runtime.active()
        if tel is not None:
            tel.inc("checkpoint.restored")


# Registered here rather than in repro.obs.record: the obs package must
# stay importable without the sim layer (engine telemetry would otherwise
# create an import cycle through the package __init__).
from repro.obs.record import Record as _Record  # noqa: E402

register_dataclass(_Record)
