"""A minimal, deterministic discrete-event simulator.

Design notes
------------
* Events carry a monotonically increasing sequence number so that two events
  scheduled for the same instant fire in scheduling order -- this makes every
  run bit-reproducible for a fixed seed, which the tests rely on.
* Cancellation is O(1): a cancelled event stays in the heap but is skipped
  when popped (the standard "lazy deletion" idiom; heapq has no remove).
  When cancelled entries outnumber live ones the heap is compacted, so
  heavy cancel/reschedule churn cannot grow the queue without bound.
* The engine is intentionally simple -- no coroutine processes.  Callers
  schedule callbacks; recurring behaviours reschedule themselves.  This keeps
  stack traces flat and state explicit, which matters when debugging MAC
  interactions.
"""

from __future__ import annotations

import heapq
from time import perf_counter_ns
from typing import Any, Callable, Dict, List, Optional

from repro.obs import runtime as _obs_runtime
from repro.obs.profile import callback_site


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Attributes:
        time: absolute simulation time (seconds) at which the event fires.
        callback: zero-argument callable invoked at ``time``.
    """

    __slots__ = ("time", "seq", "callback", "_cancelled", "_tally")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self._cancelled = False
        # While the event sits in a simulator's queue this holds the
        # simulator's cancelled-entry counter (a one-element list); it is
        # detached on pop so late cancels of already-fired events don't
        # skew the count.
        self._tally: Optional[List[int]] = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self._cancelled:
            self._cancelled = True
            if self._tally is not None:
                self._tally[0] += 1

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "pending"
        return (
            f"Event(t={self.time:.6f}, seq={self.seq}, {state}, "
            f"cb={callback_site(self.callback)})"
        )


class _PeriodicCallback:
    """The self-rescheduling wrapper behind :meth:`Simulator.schedule_every`.

    A class (rather than a closure) so checkpoints can serialize a pending
    periodic event as ``(interval, inner-callback)`` and rebuild it on
    restore -- closures have no stable identity across processes.

    The instance-level ``__qualname__`` keeps :func:`callback_site` (and
    therefore traces and profiles) deterministic; without it the site name
    would fall back to ``repr`` and leak a memory address.
    """

    def __init__(
        self, sim: "Simulator", interval: float, callback: Callable[[], None]
    ) -> None:
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self.__qualname__ = f"periodic({callback_site(callback)})"

    def __call__(self) -> None:
        self.callback()
        self.sim.schedule(self.interval, self)


class Simulator:
    """Event queue with a virtual clock.

    Typical use::

        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(sim.now))
        sim.run(until=10.0)

    When a telemetry sink is active at construction time (see
    ``repro.obs``), the simulator counts scheduled/fired/cancelled
    events, attributes per-callback wall-time to the profiler, and --
    when tracing is enabled -- emits a sim-time trace record for every
    event lifecycle transition.  With no sink active (the default) the
    run loop is the original tight loop.
    """

    #: Queues smaller than this are never compacted (heapify overhead is
    #: not worth it; also keeps the behaviour trivial for tiny tests).
    COMPACTION_MIN_SIZE = 64

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._next_seq = 0
        self._now = 0.0
        self._running = False
        self._cancelled_in_queue = [0]
        # Captured once: instrumentation must not appear mid-run, or two
        # otherwise-identical simulations could diverge in queue state.
        self._telemetry = _obs_runtime.active()

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        Args:
            delay: non-negative offset from the current time.
            callback: zero-argument callable.

        Returns:
            The :class:`Event`, which may be cancelled.

        Raises:
            ValueError: if ``delay`` is negative (scheduling into the past
                would silently reorder causality) or NaN (NaN compares
                false against everything, which would corrupt the heap
                invariant and make events fire in arbitrary order).
        """
        # `not (delay >= 0)` also catches NaN, which `delay < 0` lets through.
        if not (delay >= 0.0):
            if delay != delay:
                raise ValueError(
                    "cannot schedule at a NaN delay (NaN breaks heap ordering)"
                )
            raise ValueError(f"cannot schedule into the past (delay={delay!r})")
        event = Event(self._now + delay, self._next_seq, callback)
        self._next_seq += 1
        event._tally = self._cancelled_in_queue
        heapq.heappush(self._queue, event)
        self._maybe_compact()
        tel = self._telemetry
        if tel is not None:
            tel.inc("sim.events_scheduled")
            if tel.tracer is not None:
                tel.event(
                    "sim.schedule",
                    cat="sim",
                    t=self._now,
                    args={
                        "seq": event.seq,
                        "fire_at": event.time,
                        "cb": callback_site(callback),
                    },
                )
        return event

    def _maybe_compact(self) -> None:
        """Drop cancelled entries once they outnumber live ones (amortised O(1))."""
        if (
            len(self._queue) >= self.COMPACTION_MIN_SIZE
            and 2 * self._cancelled_in_queue[0] > len(self._queue)
        ):
            survivors = []
            dropped = 0
            for event in self._queue:
                if event.cancelled:
                    event._tally = None
                    dropped += 1
                else:
                    survivors.append(event)
            self._queue = survivors
            heapq.heapify(self._queue)
            self._cancelled_in_queue[0] = 0
            tel = self._telemetry
            if tel is not None and dropped:
                tel.inc("sim.events_cancelled", dropped)

    def _pop_event(self) -> Event:
        """Pop the earliest event, maintaining the cancelled-entry count."""
        event = heapq.heappop(self._queue)
        if event.cancelled:
            self._cancelled_in_queue[0] -= 1
        event._tally = None
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute time ``time`` (>= now)."""
        return self.schedule(time - self._now, callback)

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], None],
        start_delay: Optional[float] = None,
    ) -> Event:
        """Schedule ``callback`` every ``interval`` seconds, indefinitely.

        Returns the *first* event; cancelling it before it fires stops the
        chain.  To stop later, have the callback raise or track state -- or
        use :meth:`schedule` directly and reschedule manually.

        Raises:
            ValueError: if ``interval`` is not positive.
        """
        if interval <= 0.0:
            raise ValueError(f"interval must be > 0, got {interval!r}")

        first_delay = interval if start_delay is None else start_delay
        return self.schedule(first_delay, _PeriodicCallback(self, interval, callback))

    def run(self, until: float) -> None:
        """Advance the clock, firing events, until time ``until``.

        Events scheduled exactly at ``until`` do fire.  The clock always ends
        at ``until`` even if the queue drains early, so back-to-back ``run``
        calls observe a continuous timeline.

        Raises:
            ValueError: if ``until`` is before the current time.
            RuntimeError: if called re-entrantly from an event callback.
        """
        if until < self._now:
            raise ValueError(f"cannot run backwards: now={self._now}, until={until}")
        if self._running:
            raise RuntimeError("Simulator.run is not re-entrant")
        self._running = True
        try:
            if self._telemetry is None:
                # The original tight loop: zero telemetry overhead.
                while self._queue and self._queue[0].time <= until:
                    event = self._pop_event()
                    if event.cancelled:
                        continue
                    self._now = event.time
                    event.callback()
            else:
                while self._queue and self._queue[0].time <= until:
                    event = self._pop_event()
                    if event.cancelled:
                        self._telemetry.inc("sim.events_cancelled")
                        continue
                    self._now = event.time
                    self._fire_instrumented(event)
            self._now = until
        finally:
            self._running = False

    def run_until_idle(self, max_time: float = float("inf")) -> None:
        """Run until the queue is empty or ``max_time`` is reached.

        With a finite ``max_time`` the clock always ends at ``max_time``
        (exactly like :meth:`run`), even if the queue drains early, so a
        follow-up ``run(until=...)`` observes a continuous timeline.  With
        the default unbounded ``max_time`` the clock stops at the last
        fired event (there is no instant to advance to).
        """
        if self._running:
            raise RuntimeError("Simulator.run is not re-entrant")
        self._running = True
        try:
            if self._telemetry is None:
                while self._queue and self._queue[0].time <= max_time:
                    event = self._pop_event()
                    if event.cancelled:
                        continue
                    self._now = event.time
                    event.callback()
            else:
                while self._queue and self._queue[0].time <= max_time:
                    event = self._pop_event()
                    if event.cancelled:
                        self._telemetry.inc("sim.events_cancelled")
                        continue
                    self._now = event.time
                    self._fire_instrumented(event)
            if max_time != float("inf"):
                self._now = max(self._now, max_time)
        finally:
            self._running = False

    def _fire_instrumented(self, event: Event) -> None:
        """Fire one event under telemetry: count, profile, trace.

        Wall-time goes to the profiler keyed by the callback's qualified
        name; the trace record (when tracing) carries sim-time as ``t``
        and the wall measurement in the strippable ``wall_*`` fields.
        """
        tel = self._telemetry
        tel.set_time(event.time)
        tel.inc("sim.events_fired")
        site = callback_site(event.callback)
        wall0 = perf_counter_ns()
        event.callback()
        wall1 = perf_counter_ns()
        if tel.profiler is not None:
            tel.profiler.record(site, (wall1 - wall0) / 1e9)
        if tel.tracer is not None:
            tel.tracer.complete(
                site,
                "sim",
                event.time,
                0.0,
                args={"seq": event.seq},
                wall_ns=wall0,
                wall_dur_ns=wall1 - wall0,
            )

    def step(self) -> Optional[Event]:
        """Fire exactly one live event and return it (``None`` if idle).

        The lockstep primitive behind ``repro.cli replay-diff``: two
        restored simulators stepped together can be hash-compared after
        every single event to find the first divergence.
        """
        if self._running:
            raise RuntimeError("Simulator.step is not re-entrant")
        self._running = True
        try:
            while self._queue:
                event = self._pop_event()
                if event.cancelled:
                    if self._telemetry is not None:
                        self._telemetry.inc("sim.events_cancelled")
                    continue
                self._now = event.time
                if self._telemetry is None:
                    event.callback()
                else:
                    self._fire_instrumented(event)
                return event
            return None
        finally:
            self._running = False

    def state_dict(self, encode_callback: Callable[[Callable], Any]) -> Dict[str, Any]:
        """Serializable engine state: clock, sequence counter, live events.

        ``encode_callback`` (normally ``CheckpointRegistry.encode_callback``)
        turns each pending callback into a token; cancelled heap entries
        are dropped, which is safe because cancellation is observable only
        through the :class:`Event` handle -- and handles are re-linked from
        live events only (see ``CheckpointRegistry.restore``).
        """
        events = []
        for event in sorted(self._queue):
            if event.cancelled:
                continue
            events.append([event.time, event.seq, encode_callback(event.callback)])
        return {"now": self._now, "next_seq": self._next_seq, "events": events}

    def load_state(
        self,
        state: Dict[str, Any],
        decode_callback: Callable[[Any], Callable[[], None]],
    ) -> Dict[int, Event]:
        """Overwrite clock and heap from :meth:`state_dict` output.

        Returns a ``seq -> Event`` lookup so subsystems that stored event
        handles (grace timers, pending starts) can re-bind them.
        """
        self._now = state["now"]
        self._next_seq = state["next_seq"]
        self._cancelled_in_queue[0] = 0
        self._queue = []
        lookup: Dict[int, Event] = {}
        for time, seq, token in state["events"]:
            event = Event(time, seq, decode_callback(token))
            event._tally = self._cancelled_in_queue
            self._queue.append(event)
            lookup[seq] = event
        heapq.heapify(self._queue)
        return lookup

    def pending_events(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return len(self._queue) - self._cancelled_in_queue[0]

    def queue_size(self) -> int:
        """Raw heap size including lazily-deleted (cancelled) entries."""
        return len(self._queue)
