"""Seeded, named random-number streams.

Reproducibility discipline: every stochastic component (placement, shadowing,
traffic, hopping, sensing errors) draws from its *own* named stream derived
from a single experiment seed.  Adding a new consumer therefore never
perturbs the draws seen by existing ones -- topologies stay identical across
code changes, which keeps recorded experiment outputs comparable.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict

import numpy as np


class RngStreams:
    """A factory of independent :class:`numpy.random.Generator` streams.

    Each stream is keyed by a string name; the sub-seed is derived by hashing
    ``(master_seed, name)`` so streams are statistically independent and
    stable across runs and platforms.
    """

    def __init__(self, master_seed: int) -> None:
        if master_seed < 0:
            raise ValueError(f"seed must be non-negative, got {master_seed!r}")
        self._master_seed = master_seed
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def master_seed(self) -> int:
        """The experiment-level seed all streams derive from."""
        return self._master_seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``, creating it on demand."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(self._derive_seed(name))
        return self._streams[name]

    def _derive_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self._master_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def state_dict(self) -> Dict[str, Any]:
        """Master seed plus every created stream's bit-generator state."""
        return {
            "master_seed": self._master_seed,
            "streams": {
                name: gen.bit_generator.state
                for name, gen in self._streams.items()
            },
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        """Restore stream states *in place*.

        Existing generator objects are mutated (``bit_generator.state = ...``)
        rather than replaced, so subsystems holding a reference to a stream
        keep drawing from the restored sequence.  Streams the snapshot knows
        but this factory has not created yet are created first.
        """
        if state["master_seed"] != self._master_seed:
            raise ValueError(
                f"snapshot master_seed {state['master_seed']} != "
                f"{self._master_seed}; restore requires the original config"
            )
        for name, gen_state in state["streams"].items():
            self.stream(name).bit_generator.state = gen_state

    def fork(self, label: str) -> "RngStreams":
        """Create a child factory, e.g. one per topology replication.

        The child's master seed is derived from this factory's seed and
        ``label`` so replications are independent but reproducible.
        """
        return RngStreams(self._derive_seed(f"fork:{label}") % (2**31))
