"""Simulation substrate: discrete-event engine, seeded RNG streams, topology.

Everything time-driven in the repo (CSMA contention, CQI sampling, hopping
epochs, database lease timers) runs on :class:`repro.sim.engine.Simulator`.
"""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RngStreams
from repro.sim.topology import (
    AccessPointSite,
    ClientSite,
    Topology,
    random_topology,
)

__all__ = [
    "AccessPointSite",
    "ClientSite",
    "Event",
    "RngStreams",
    "Simulator",
    "Topology",
    "random_topology",
]
