"""Network topology: node placement and geometric queries.

The paper's large-scale evaluation (Section 6.3.4) simulates a 2 km x 2 km
area with randomly placed access points and a fixed number of clients placed
within the coverage range of each AP.  :func:`random_topology` reproduces
that setup; the resulting :class:`Topology` is shared by the LTE, Wi-Fi and
CellFi simulators so all technologies are compared on identical layouts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Tuple

import numpy as np


@dataclass(frozen=True)
class AccessPointSite:
    """A fixed access-point location.

    Attributes:
        ap_id: dense integer identifier, unique within a topology.
        x, y: position in metres.
        height_m: antenna height above ground (paper rooftop cells: 15 m).
    """

    ap_id: int
    x: float
    y: float
    height_m: float = 15.0

    def distance_to(self, other: "NodeSite") -> float:
        """Euclidean ground distance in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True)
class ClientSite:
    """A client location associated with one access point.

    Attributes:
        client_id: dense integer identifier, unique within a topology.
        x, y: position in metres.
        ap_id: identifier of the serving access point.
        height_m: device height (handheld: 1.5 m).
    """

    client_id: int
    x: float
    y: float
    ap_id: int
    height_m: float = 1.5

    def distance_to(self, other: "NodeSite") -> float:
        """Euclidean ground distance in metres."""
        return math.hypot(self.x - other.x, self.y - other.y)


# Either kind of placed node.
NodeSite = object


@dataclass
class Topology:
    """Immutable node layout plus association and adjacency queries."""

    area_m: float
    aps: List[AccessPointSite]
    clients: List[ClientSite]
    _clients_by_ap: Dict[int, List[ClientSite]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        ap_ids = {ap.ap_id for ap in self.aps}
        if len(ap_ids) != len(self.aps):
            raise ValueError("duplicate access-point ids in topology")
        by_ap: Dict[int, List[ClientSite]] = {ap.ap_id: [] for ap in self.aps}
        for client in self.clients:
            if client.ap_id not in ap_ids:
                raise ValueError(
                    f"client {client.client_id} references unknown AP {client.ap_id}"
                )
            by_ap[client.ap_id].append(client)
        self._clients_by_ap = by_ap

    def clients_of(self, ap_id: int) -> List[ClientSite]:
        """Clients associated with access point ``ap_id``."""
        return list(self._clients_by_ap[ap_id])

    def ap(self, ap_id: int) -> AccessPointSite:
        """Look up an access point by id."""
        for candidate in self.aps:
            if candidate.ap_id == ap_id:
                return candidate
        raise KeyError(f"no access point with id {ap_id}")

    def client(self, client_id: int) -> ClientSite:
        """Look up a client by id."""
        for candidate in self.clients:
            if candidate.client_id == client_id:
                return candidate
        raise KeyError(f"no client with id {client_id}")

    def move_client(self, client_id: int, x: float, y: float) -> ClientSite:
        """Relocate a client (mobility step), keeping its association.

        Sites are immutable, so the client is replaced in place by a new
        :class:`ClientSite` at ``(x, y)``.  Anything caching per-link
        quantities (e.g. a :class:`repro.phy.propagation.GainMatrixCache`
        or a simulator's link powers) must be invalidated for this client.

        Returns:
            The new site.

        Raises:
            KeyError: for an unknown client id.
        """
        old = self.client(client_id)
        new = ClientSite(
            client_id=old.client_id,
            x=x,
            y=y,
            ap_id=old.ap_id,
            height_m=old.height_m,
        )
        self.clients[self.clients.index(old)] = new
        siblings = self._clients_by_ap[old.ap_id]
        siblings[siblings.index(old)] = new
        return new

    def reattach_client(self, client_id: int, new_ap_id: int) -> ClientSite:
        """Move a client's association to another AP (handover/re-attach).

        Sites are immutable, so the client is replaced by a new
        :class:`ClientSite` with ``ap_id=new_ap_id`` at the same position.
        The per-AP client lists of *both* the old and the new serving AP
        are rebuilt by filtering ``self.clients``, which keeps them in
        canonical ``clients``-list order -- the same order a freshly built
        topology would produce.  Simulators iterate (and draw RNG values)
        in that order, so preserving it keeps incremental runs bit-
        identical to rebuilt ones.

        Returns:
            The new site (unchanged if already attached to ``new_ap_id``).

        Raises:
            KeyError: for an unknown client or AP id.
        """
        old = self.client(client_id)
        if new_ap_id not in self._clients_by_ap:
            raise KeyError(f"no access point with id {new_ap_id}")
        if old.ap_id == new_ap_id:
            return old
        new = ClientSite(
            client_id=old.client_id,
            x=old.x,
            y=old.y,
            ap_id=new_ap_id,
            height_m=old.height_m,
        )
        self.clients[self.clients.index(old)] = new
        for ap_id in (old.ap_id, new_ap_id):
            self._clients_by_ap[ap_id] = [
                c for c in self.clients if c.ap_id == ap_id
            ]
        return new

    def interference_graph(
        self, interferes: Callable[[AccessPointSite, ClientSite], bool]
    ) -> Dict[int, set]:
        """Build the AP-level conflict graph the paper analyses (Section 5.5).

        Two APs ``i`` and ``j`` conflict iff ``i`` may interfere with one of
        ``j``'s clients or vice-versa, as judged by the ``interferes``
        predicate (typically an SINR/path-loss test from ``repro.phy``).

        Returns:
            Adjacency sets keyed by AP id.
        """
        adjacency: Dict[int, set] = {ap.ap_id: set() for ap in self.aps}
        for ap_a in self.aps:
            for ap_b in self.aps:
                if ap_a.ap_id >= ap_b.ap_id:
                    continue
                conflict = any(
                    interferes(ap_b, client) for client in self._clients_by_ap[ap_a.ap_id]
                ) or any(
                    interferes(ap_a, client) for client in self._clients_by_ap[ap_b.ap_id]
                )
                if conflict:
                    adjacency[ap_a.ap_id].add(ap_b.ap_id)
                    adjacency[ap_b.ap_id].add(ap_a.ap_id)
        return adjacency


def random_topology(
    rng: np.random.Generator,
    n_aps: int,
    clients_per_ap: int,
    area_m: float = 2000.0,
    client_range_m: float = 1000.0,
    min_client_distance_m: float = 20.0,
) -> Topology:
    """Place APs uniformly in a square area and clients around each AP.

    Mirrors the paper's simulation settings: "We simulate an area of
    2 km x 2 km ... Base stations are randomly placed in this area with
    varying number of clients per AP."

    Clients are drawn uniformly *by area* within an annulus
    [``min_client_distance_m``, ``client_range_m``] of their AP, clipped to
    the simulation area.

    Raises:
        ValueError: on non-positive counts or inconsistent radii.
    """
    if n_aps <= 0:
        raise ValueError(f"need at least one AP, got {n_aps}")
    if clients_per_ap < 0:
        raise ValueError(f"clients_per_ap must be >= 0, got {clients_per_ap}")
    if not 0.0 <= min_client_distance_m < client_range_m:
        raise ValueError(
            "require 0 <= min_client_distance_m < client_range_m, got "
            f"{min_client_distance_m} and {client_range_m}"
        )

    aps = [
        AccessPointSite(ap_id=i, x=rng.uniform(0.0, area_m), y=rng.uniform(0.0, area_m))
        for i in range(n_aps)
    ]

    clients: List[ClientSite] = []
    client_id = 0
    for ap in aps:
        for _ in range(clients_per_ap):
            x, y = _draw_annulus_point(
                rng, ap.x, ap.y, min_client_distance_m, client_range_m, area_m
            )
            clients.append(ClientSite(client_id=client_id, x=x, y=y, ap_id=ap.ap_id))
            client_id += 1

    return Topology(area_m=area_m, aps=aps, clients=clients)


def _draw_annulus_point(
    rng: np.random.Generator,
    cx: float,
    cy: float,
    r_min: float,
    r_max: float,
    area_m: float,
    max_attempts: int = 64,
) -> Tuple[float, float]:
    """Sample a point uniformly by area in an annulus, clipped to the square.

    Rejection-samples against the area bounds; falls back to clamping after
    ``max_attempts`` so placement always terminates (an AP in a corner has a
    small acceptance region).
    """
    for _ in range(max_attempts):
        radius = math.sqrt(rng.uniform(r_min**2, r_max**2))
        theta = rng.uniform(0.0, 2.0 * math.pi)
        x = cx + radius * math.cos(theta)
        y = cy + radius * math.sin(theta)
        if 0.0 <= x <= area_m and 0.0 <= y <= area_m:
            return x, y
    return min(max(x, 0.0), area_m), min(max(y, 0.0), area_m)


def reassociate_strongest(
    topology: Topology, loss_db: Callable[[AccessPointSite, ClientSite], float]
) -> Topology:
    """Re-associate every client with the AP it receives most strongly.

    Real UEs camp on the strongest cell they can hear, not the one whose
    coverage disc they were spawned in; with shadowing the two differ.  The
    experiments apply this before comparing technologies so association is
    identical for all of them.

    Args:
        topology: the original layout.
        loss_db: propagation loss in dB between an AP and a client
            (typically ``CompositeChannel(...).loss_db``).
    """
    new_clients = []
    for client in topology.clients:
        best_ap = min(topology.aps, key=lambda ap: loss_db(ap, client))
        new_clients.append(
            ClientSite(
                client_id=client.client_id,
                x=client.x,
                y=client.y,
                ap_id=best_ap.ap_id,
                height_m=client.height_m,
            )
        )
    return Topology(area_m=topology.area_m, aps=list(topology.aps), clients=new_clients)


def grid_topology(
    n_aps_side: int,
    clients_per_ap: int,
    spacing_m: float,
    client_offset_m: float = 100.0,
) -> Topology:
    """A deterministic grid layout, handy for unit tests and examples.

    APs form an ``n x n`` grid with the given spacing; each AP's clients are
    placed on a circle of radius ``client_offset_m`` around it.
    """
    if n_aps_side <= 0:
        raise ValueError(f"grid side must be positive, got {n_aps_side}")
    aps = []
    for row in range(n_aps_side):
        for col in range(n_aps_side):
            aps.append(
                AccessPointSite(
                    ap_id=row * n_aps_side + col,
                    x=(col + 0.5) * spacing_m,
                    y=(row + 0.5) * spacing_m,
                )
            )
    clients = []
    client_id = 0
    for ap in aps:
        for k in range(clients_per_ap):
            angle = 2.0 * math.pi * k / max(1, clients_per_ap)
            clients.append(
                ClientSite(
                    client_id=client_id,
                    x=ap.x + client_offset_m * math.cos(angle),
                    y=ap.y + client_offset_m * math.sin(angle),
                    ap_id=ap.ap_id,
                )
            )
            client_id += 1
    return Topology(area_m=n_aps_side * spacing_m, aps=aps, clients=clients)


def _grid_shape(n_shards: int) -> Tuple[int, int]:
    """Factor ``n_shards`` into the most square ``(cols, rows)`` tiling."""
    if n_shards <= 0:
        raise ValueError(f"shard count must be positive, got {n_shards}")
    rows = int(math.isqrt(n_shards))
    while n_shards % rows:
        rows -= 1
    return n_shards // rows, rows


def grid_partition(topology: Topology, n_shards: int) -> List[List[int]]:
    """Partition the map into up to ``n_shards`` rectangular tiles of AP ids.

    The square ``area_m x area_m`` map is split into a ``cols x rows``
    grid of equal rectangles (``cols * rows == n_shards``, as square as
    the factorization allows) and each AP is assigned to the tile
    containing its position.  Shards are returned row-major as sorted AP
    id lists.  Degenerate tilings are clamped instead of silently
    producing workerless shards: asking for more shards than there are
    APs raises ``ValueError`` (every worker must own at least one AP),
    and tiles that end up empty because the APs cluster elsewhere are
    dropped, so the returned plan may be shorter than ``n_shards`` but
    never contains an empty shard.  Clients are not partitioned here --
    a client belongs to the shard owning its serving AP, which is what
    makes cross-shard handover a row migration rather than a
    re-partition.
    """
    n_aps = len(topology.aps)
    if n_shards > n_aps:
        raise ValueError(
            f"cannot split {n_aps} APs into {n_shards} shards: every "
            "shard needs at least one AP to own (lower the shard count)"
        )
    cols, rows = _grid_shape(n_shards)
    tile_w = topology.area_m / cols
    tile_h = topology.area_m / rows
    shards: List[List[int]] = [[] for _ in range(n_shards)]
    for ap in topology.aps:
        col = min(int(ap.x / tile_w), cols - 1)
        row = min(int(ap.y / tile_h), rows - 1)
        shards[row * cols + col].append(ap.ap_id)
    return [sorted(shard) for shard in shards if shard]


def halo_ap_ids(
    topology: Topology, shard_ap_ids: Iterable[int], margin_m: float
) -> List[int]:
    """Foreign APs within ``margin_m`` of the shard's bounding box.

    A geometric halo estimate for diagnostics and docs: the *authoritative*
    halo used by the sharded engine is audibility-derived (an AP is in a
    client's halo iff its links survive the ``cull_loss_db`` horizon), and
    with log-normal shadowing that set is not a simple disk.  This helper
    answers "which neighbors could matter" for a median-loss channel where
    ``margin_m`` is the distance at which path loss crosses the horizon.
    """
    members = set(shard_ap_ids)
    owned = [ap for ap in topology.aps if ap.ap_id in members]
    if not owned:
        return []
    x_lo = min(ap.x for ap in owned) - margin_m
    x_hi = max(ap.x for ap in owned) + margin_m
    y_lo = min(ap.y for ap in owned) - margin_m
    y_hi = max(ap.y for ap in owned) + margin_m
    halo = [
        ap.ap_id
        for ap in topology.aps
        if ap.ap_id not in members and x_lo <= ap.x <= x_hi and y_lo <= ap.y <= y_hi
    ]
    return sorted(halo)
