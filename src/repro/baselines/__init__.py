"""Baselines the paper compares CellFi against.

* :mod:`repro.baselines.plain_lte` -- uncoordinated LTE: every cell uses
  the full carrier (the paper's "LTE" curves).
* :mod:`repro.baselines.oracle` -- a centralized, perfect-information
  subchannel allocator standing in for FERMI [20]: it sees the true
  interference graph and client counts and computes a fair conflict-free
  allocation, providing the upper bound of Figure 9(b).
* 802.11af / 802.11ac come from :mod:`repro.wifi`.
"""

from repro.baselines.oracle import OracleAllocator, build_conflict_graph
from repro.baselines.plain_lte import PlainLtePolicy

__all__ = ["OracleAllocator", "PlainLtePolicy", "build_conflict_graph"]
