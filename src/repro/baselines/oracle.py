"""Centralized oracle allocator (the paper's FERMI [20] stand-in).

Figure 9(b) compares CellFi against "a centralized, oracle-based
state-of-the-art OFDMA resource isolation scheme": an allocator that knows
the *true* interference graph and client counts and hands out subchannels
so that no two conflicting cells share one.  CellFi's claim is that its
decentralized algorithm gets close to this upper bound.

The allocation is a weighted graph colouring computed by progressive
filling: repeatedly grant one more subchannel to the AP with the lowest
subchannels-per-client ratio that can still take one without conflicting,
until no AP can grow.  This is max-min fair on the conflict graph and
conflict-free by construction.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

import networkx as nx

from repro.lte.network import ApObservation, LteNetworkSimulator
from repro.utils.dbmath import thermal_noise_dbm


def build_conflict_graph(
    net: LteNetworkSimulator, interference_margin_db: float = -6.0
) -> nx.Graph:
    """The true AP conflict graph from perfect channel knowledge.

    AP ``j`` conflicts with AP ``i`` if ``j``'s downlink would land within
    ``interference_margin_db`` of the noise floor at any of ``i``'s clients
    (i.e. raise it materially), or vice versa.  The oracle -- unlike CellFi
    -- gets to read these true received powers directly.
    """
    graph = nx.Graph()
    topology = net.topology
    graph.add_nodes_from(ap.ap_id for ap in topology.aps)
    noise_rb_dbm = net._rb_noise_dbm
    for ap_a in topology.aps:
        for ap_b in topology.aps:
            if ap_a.ap_id >= ap_b.ap_id:
                continue
            conflict = False
            for client in topology.clients_of(ap_a.ap_id):
                rx = net.rx_rb_power_dbm(client.client_id, ap_b.ap_id)
                if rx >= noise_rb_dbm + interference_margin_db:
                    conflict = True
                    break
            if not conflict:
                for client in topology.clients_of(ap_b.ap_id):
                    rx = net.rx_rb_power_dbm(client.client_id, ap_a.ap_id)
                    if rx >= noise_rb_dbm + interference_margin_db:
                        conflict = True
                        break
            if conflict:
                graph.add_edge(ap_a.ap_id, ap_b.ap_id)
    return graph


class IsolationOracle:
    """Perfect-information, conflict-free, max-min-fair subchannel allocation.

    A pure resource-isolation allocator: no two conflicting cells ever
    share a subchannel.  On dense deployments the conflict graph is nearly
    complete and isolation wastes spectrum; :class:`OracleAllocator`
    improves on it with utility-driven local search.

    Args:
        net: the system simulator (read for true powers and client counts).
        n_subchannels: carrier size.
        interference_margin_db: conflict threshold for the graph.
    """

    def __init__(
        self,
        net: LteNetworkSimulator,
        n_subchannels: int,
        interference_margin_db: float = -6.0,
    ) -> None:
        if n_subchannels <= 0:
            raise ValueError(f"need subchannels, got {n_subchannels}")
        self.n_subchannels = n_subchannels
        self.graph = build_conflict_graph(net, interference_margin_db)
        self._clients = {
            ap.ap_id: max(1, len(net.topology.clients_of(ap.ap_id)))
            for ap in net.topology.aps
        }
        self.allocation = self._progressive_fill()

    def _progressive_fill(self) -> Dict[int, Set[int]]:
        allocation: Dict[int, Set[int]] = {ap: set() for ap in self.graph.nodes}

        def can_take(ap: int) -> Optional[int]:
            taken = set(allocation[ap])
            for neighbour in self.graph.neighbors(ap):
                taken |= allocation[neighbour]
            for k in range(self.n_subchannels):
                if k not in taken:
                    return k
            return None

        progress = True
        while progress:
            progress = False
            # Lowest per-client allocation first: max-min fairness.
            order = sorted(
                self.graph.nodes,
                key=lambda ap: (len(allocation[ap]) / self._clients[ap], ap),
            )
            for ap in order:
                k = can_take(ap)
                if k is not None:
                    allocation[ap].add(k)
                    progress = True
                    break
        return allocation

    def decide(
        self,
        epoch_index: int,
        observations: Optional[Dict[int, ApObservation]],
    ) -> Dict[int, Set[int]]:
        """SubchannelPolicy hook: the precomputed static allocation."""
        return {ap: set(subs) for ap, subs in self.allocation.items()}

    def is_conflict_free(self) -> bool:
        """Invariant check: no edge shares a subchannel."""
        for a, b in self.graph.edges:
            if self.allocation[a] & self.allocation[b]:
                return False
        return True


class OracleAllocator:
    """The Figure 9(b) upper bound: centralized proportional-fair allocation.

    Starts from the conflict-free :class:`IsolationOracle` assignment and
    runs local search over (AP, subchannel) toggles, maximising the global
    proportional-fairness objective ``sum_u log(T_u)`` with true, perfect
    channel knowledge.  ``T_u`` is the analytic throughput of client ``u``
    assuming each AP time-shares every held subchannel equally among its
    clients -- the same fluid model the system simulator realises.

    Unlike the isolation allocator it will deliberately *reuse* a
    subchannel across cells when the affected clients barely notice,
    which is what makes it a meaningful upper bound for CellFi.
    """

    def __init__(
        self,
        net: LteNetworkSimulator,
        n_subchannels: int,
        interference_margin_db: float = -6.0,
        max_passes: int = 6,
    ) -> None:
        if n_subchannels <= 0:
            raise ValueError(f"need subchannels, got {n_subchannels}")
        self.net = net
        self.n_subchannels = n_subchannels
        seed_oracle = IsolationOracle(net, n_subchannels, interference_margin_db)
        self.graph = seed_oracle.graph
        self.allocation: Dict[int, Set[int]] = {
            ap: set(subs) for ap, subs in seed_oracle.allocation.items()
        }
        self._ap_clients = {
            ap.ap_id: [c.client_id for c in net.topology.clients_of(ap.ap_id)]
            for ap in net.topology.aps
        }
        self._local_search(max_passes)

    # -- Analytic throughput model ------------------------------------------------

    def _column_rates(self, sub: int) -> Dict[int, float]:
        """Per-client rate on subchannel ``sub`` under current holders.

        SINRs are computed from the simulator's cached power matrix in one
        vector operation per holder; interference accumulates in holder
        order and the dB conversion goes through ``math.log10``, so results
        are bit-identical to per-link ``net.sinr_db`` queries (the local
        search toggles thousands of columns, making this the hot path).
        """
        import math

        import numpy as np

        from repro.phy.mcs import CQI_OUT_OF_RANGE, cqi_from_sinr, efficiency_from_cqi

        net = self.net
        power_w = net._rx_w_mat
        holders = [ap for ap, subs in self.allocation.items() if sub in subs]
        rates: Dict[int, float] = {}
        for ap in holders:
            clients = self._ap_clients[ap]
            if not clients:
                continue
            rows = net._rows_of_ap[ap]
            signal_w = power_w[rows, net._ap_col[ap]]
            interference_w = np.zeros(len(rows))
            for other in holders:
                if other != ap:
                    interference_w += power_w[rows, net._ap_col[other]]
            ratios = (signal_w / (net._rb_noise_w + interference_w)).tolist()
            for i, cid in enumerate(clients):
                sinr = 10.0 * math.log10(ratios[i])
                cqi = cqi_from_sinr(sinr)
                if cqi == CQI_OUT_OF_RANGE:
                    rates[cid] = 0.0
                    continue
                rate = self.net.grid.subchannel_downlink_rate_bps(
                    efficiency_from_cqi(cqi), sub
                )
                rates[cid] = (
                    rate * self.net._harq_scale(sinr, cqi) / len(clients)
                )
        return rates

    def _objective(self, column_rates: Dict[int, Dict[int, float]]) -> float:
        """Global proportional fairness: sum of log client throughputs."""
        import math

        totals: Dict[int, float] = {}
        for rates in column_rates.values():
            for cid, rate in rates.items():
                totals[cid] = totals.get(cid, 0.0) + rate
        objective = 0.0
        for client in self.net.topology.clients:
            throughput = totals.get(client.client_id, 0.0)
            objective += math.log(1e3 + throughput)
        return objective

    def _local_search(self, max_passes: int) -> None:
        columns = {k: self._column_rates(k) for k in range(self.n_subchannels)}
        best = self._objective(columns)
        for _ in range(max_passes):
            improved = False
            for ap in self.allocation:
                if not self._ap_clients[ap]:
                    continue
                for sub in range(self.n_subchannels):
                    holding = sub in self.allocation[ap]
                    if holding:
                        self.allocation[ap].discard(sub)
                    else:
                        self.allocation[ap].add(sub)
                    new_column = self._column_rates(sub)
                    old_column = columns[sub]
                    columns[sub] = new_column
                    candidate = self._objective(columns)
                    if candidate > best + 1e-9:
                        best = candidate
                        improved = True
                    else:
                        # Revert the toggle.
                        columns[sub] = old_column
                        if holding:
                            self.allocation[ap].add(sub)
                        else:
                            self.allocation[ap].discard(sub)
            if not improved:
                break

    # -- SubchannelPolicy interface ----------------------------------------------------

    def decide(
        self,
        epoch_index: int,
        observations: Optional[Dict[int, ApObservation]],
    ) -> Dict[int, Set[int]]:
        """SubchannelPolicy hook: the precomputed static allocation."""
        return {ap: set(subs) for ap, subs in self.allocation.items()}
