"""Plain LTE baseline: uncoordinated full-carrier transmission.

"LTE offers no mechanisms to mitigate interference in uncoordinated
deployments" (paper Section 3.2) -- so the baseline policy is simply every
AP scheduling over every subchannel, colliding freely.  All the degradation
(SINR collapse, starvation, radio link failures) then emerges from the
system simulator's physics.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set

from repro.lte.network import ApObservation


class PlainLtePolicy:
    """SubchannelPolicy: the full carrier for every AP, every epoch.

    Functionally identical to
    :class:`repro.lte.network.AllSubchannelsPolicy`; kept as a named
    baseline so experiment code reads ``PlainLtePolicy`` next to
    ``CellFiInterferenceManager`` and ``OracleAllocator``.
    """

    def __init__(self, ap_ids: Sequence[int], n_subchannels: int) -> None:
        if n_subchannels <= 0:
            raise ValueError(f"need subchannels, got {n_subchannels}")
        self._all = set(range(n_subchannels))
        self._ap_ids = list(ap_ids)

    def decide(
        self,
        epoch_index: int,
        observations: Optional[Dict[int, ApObservation]],
    ) -> Dict[int, Set[int]]:
        """Every AP gets every subchannel, unconditionally."""
        return {ap_id: set(self._all) for ap_id in self._ap_ids}
