"""Command-line interface: run any paper experiment from the shell.

Examples::

    python -m repro.cli fig1
    python -m repro.cli fig9a --densities 6 10 14 --seeds 1 2
    python -m repro.cli shootout --aps 10
    python -m repro.cli fig6
    python -m repro.cli sweep fig9a --jobs 4 --resume --out fig9a.jsonl

Each subcommand prints the same paper-vs-measured rows the benchmark
harness records, at a scale controlled by its flags.  ``sweep`` fans a
figure grid out across worker processes with caching, per-cell timeout
and retry (see ``docs/SWEEPS.md``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

import numpy as np

from repro.utils.render import ascii_plot, format_table


# -- Telemetry plumbing (see docs/OBSERVABILITY.md) ---------------------------

#: Subcommands that run simulations and therefore accept telemetry flags.
TELEMETRY_FLAGS = ("--trace", "--trace-jsonl", "--metrics-out", "--profile")


def _add_telemetry_flags(p: argparse.ArgumentParser) -> None:
    group = p.add_argument_group("telemetry")
    group.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a Chrome trace_event JSON (open in Perfetto)",
    )
    group.add_argument(
        "--trace-jsonl",
        default=None,
        metavar="PATH",
        help="write the raw sim-time trace as JSONL",
    )
    group.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the metrics snapshot (counters/gauges/histograms/series) as JSON",
    )
    group.add_argument(
        "--profile",
        action="store_true",
        help="print the top wall-time callback sites after the run",
    )


def _telemetry_from_args(args: argparse.Namespace):
    """Build a Telemetry for the run, or None when no flag asks for one."""
    want_trace = bool(
        getattr(args, "trace", None) or getattr(args, "trace_jsonl", None)
    )
    want_profile = bool(getattr(args, "profile", False))
    want_metrics = bool(getattr(args, "metrics_out", None))
    if not (want_trace or want_profile or want_metrics):
        return None
    from repro.obs import Telemetry

    return Telemetry(trace=want_trace, profile=want_profile)


def _write_telemetry_outputs(args: argparse.Namespace, tel) -> None:
    if getattr(args, "metrics_out", None):
        payload = tel.snapshot(include_profile=False)
        merged = getattr(args, "_sweep_cell_telemetry", None)
        if merged is not None:
            payload["sweep_cells"] = merged
        with open(args.metrics_out, "w") as handle:
            json.dump(payload, handle, sort_keys=True)
            handle.write("\n")
        print(f"metrics snapshot: {args.metrics_out}")
    if getattr(args, "trace", None):
        tel.tracer.write_chrome(args.trace)
        print(f"chrome trace: {args.trace} ({len(tel.tracer)} records; "
              "open in https://ui.perfetto.dev)")
    if getattr(args, "trace_jsonl", None):
        tel.tracer.write_jsonl(args.trace_jsonl)
        print(f"trace jsonl: {args.trace_jsonl}")
    if getattr(args, "profile", False) and tel.profiler is not None:
        print()
        print(tel.profiler.table(10))


def _cmd_fig1(args: argparse.Namespace) -> int:
    from repro.experiments.coverage import run_drive_test

    result = run_drive_test(seed=args.seed, samples_per_point=args.samples)
    rows = [
        ["coverage >= 1 Mb/s", f"{result.coverage_fraction(1.0) * 100:.1f}%"],
        ["range at 1 Mb/s", f"{result.max_range_m(1.0) / 1000:.2f} km"],
        ["median DL code rate", f"{np.median(result.all_code_rates('downlink')):.2f}"],
        ["HARQ beyond 500 m", f"{result.harq_usage_beyond(500.0) * 100:.1f}%"],
    ]
    print(format_table(["metric", "measured"], rows, title="Figure 1 drive test"))
    print()
    print(ascii_plot(result.throughput_curve(), x_label="distance [m]",
                     y_label="TCP [Mb/s]"))
    return 0


def _cmd_fig2(args: argparse.Namespace) -> int:
    from repro.experiments.wifi_macs import run_fig2

    result = run_fig2(seed=args.seed, duration_s=args.duration)
    rows = []
    for standard, samples in result.throughput_bps.items():
        arr = np.array(samples)
        rows.append([
            standard,
            f"{np.median(arr) / 1e6:.2f} Mb/s",
            f"{100 * (arr < 50e3).mean():.0f}%",
            f"{result.mean_snr_db[standard]:.1f} dB",
        ])
    print(format_table(["standard", "median", "starved", "mean SNR"], rows,
                       title="Figure 2: af vs ac"))
    return 0


def _cmd_fig6(args: argparse.Namespace) -> int:
    from repro.experiments.db_timeline import run_db_timeline

    result = run_db_timeline()
    print(f"vacate latency: {result.vacate_latency_s:.0f} s (ETSI limit: 60 s)")
    print(f"resume latency: {result.resume_latency_s:.0f} s "
          f"(paper: 96 s reboot + 56 s search)")
    print(f"ETSI compliant: {result.compliant}")
    for t, event in result.timeline:
        print(f"  t={t:8.1f}s  {event}")
    return 0


def _parse_outages(specs: List[str]) -> List[tuple]:
    """Parse ``start:duration`` outage windows (seconds after boot)."""
    windows = []
    for spec in specs:
        try:
            start_s, _, duration_s = spec.partition(":")
            windows.append((float(start_s), float(duration_s)))
        except ValueError:
            raise SystemExit(
                f"bad outage spec {spec!r}; expected start:duration, e.g. 60:30"
            )
    return windows


def _cmd_db_outage(args: argparse.Namespace) -> int:
    from repro.experiments.db_outage import run_db_outage
    from repro.utils.reportgen import robustness_summary

    result = run_db_outage(
        seed=args.seed,
        outages=_parse_outages(args.outages),
        timeout_prob=args.timeout_prob,
        drop_prob=args.drop_prob,
        error_prob=args.error_prob,
        malformed_prob=args.malformed_prob,
        latency_spike_prob=args.spike_prob,
        poll_interval_s=args.poll_interval,
        withdraw_in_outage=args.withdraw_in_outage,
        secondary=args.secondary,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        restore_from=args.restore_from,
        halt_at=args.halt_at,
    )
    if result is None:
        # Halted before the measurement window closed; the final snapshot
        # (written just before the halt) is the handoff to --restore-from.
        where = args.checkpoint_dir or "(no --checkpoint-dir: state discarded)"
        print(f"halted at t={args.halt_at:.1f}s; snapshots in {where}")
        return 0
    rows = [[f"{t:8.1f}", event] for t, event in result.timeline]
    shown = rows if args.full_timeline else rows[:40]
    print(format_table(["t [s]", "event"], shown,
                       title="Database-outage timeline (Figure 6 under faults)"))
    if len(rows) > len(shown):
        print(f"  ... {len(rows) - len(shown)} more events (--full-timeline)")
    print()
    if result.robustness_rows:
        print(robustness_summary(result.robustness_rows))
        print()
    print(f"radio downtime     : {result.downtime_s:.1f} s of "
          f"{result.window_s:.0f} s window")
    print(f"throughput loss    : {result.loss_fraction * 100:.1f}%")
    print(f"forced vacates     : {result.counts.get('forced-vacate', 0)}")
    print(f"ETSI compliant     : {result.compliant} "
          f"({len(result.violations)} violation(s))")
    print(f"run digest         : {result.digest}")
    return 0 if result.compliant else 1


def _cmd_replay_diff(args: argparse.Namespace) -> int:
    from repro.sim.replay import replay_diff

    report = replay_diff(
        args.snapshot,
        mutations=args.mutate,
        stride=args.stride,
        max_events=args.max_events,
    )
    print(report.describe())
    # Divergence is the *expected* outcome when mutations were injected,
    # and a defect when they were not -- exit status says which happened.
    if args.mutate:
        return 0 if report.diverged else 1
    return 1 if report.diverged else 0


def _cmd_obs_report(args: argparse.Namespace) -> int:
    from repro.obs.report import (
        DEFAULT_TOLERANCE,
        barrier_report,
        bench_diff,
        render_bench_diff,
        render_report,
    )
    from repro.obs.trace import load_jsonl

    tolerance = (
        args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    )
    if tolerance <= 0:
        raise SystemExit(f"error: --tolerance must be positive (got {tolerance})")
    if not args.obs_trace_jsonl and not args.bench:
        raise SystemExit(
            "error: nothing to report; pass --trace-jsonl and/or --bench"
        )
    blocks: List[str] = []
    regressed = 0
    for path in args.obs_trace_jsonl:
        try:
            rows = load_jsonl(path)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"{path}: cannot read trace ({exc})", file=sys.stderr)
            return 2
        blocks.append(f"== {path} ==\n" + render_report(barrier_report(rows)))
    for baseline_path, current_path in args.bench:
        try:
            with open(baseline_path) as handle:
                baseline = json.load(handle)
            with open(current_path) as handle:
                current = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read benchmark artifact: {exc}", file=sys.stderr)
            return 2
        diff = bench_diff(baseline, current, tolerance)
        blocks.append(
            render_bench_diff(
                diff,
                tolerance,
                title=(
                    f"{baseline_path} vs {current_path} "
                    f"(tolerance {tolerance:.3g})"
                ),
            )
        )
        regressed += sum(1 for row in diff if row["regression"])
    print("\n\n".join(blocks))
    if regressed:
        print(
            f"obs-report: {regressed} timing regression(s) beyond "
            f"{tolerance:.3g}x tolerance",
            file=sys.stderr,
        )
        return 1
    return 0


def _add_shard_flags(p: argparse.ArgumentParser, optional: bool = False) -> None:
    """Supervision/chaos flags shared by the shard-capable commands.

    ``optional`` leaves every default as ``None`` so the sweep command's
    kwargs filter can distinguish "not given" from an explicit value.
    """
    p.add_argument(
        "--shard-supervise",
        action="store_const", const=True,
        default=None if optional else False,
        help="wrap shard workers in the fault-tolerant supervisor "
             "(heartbeats, checkpointed respawn, graceful degradation)",
    )
    p.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help="chaos-injection schedule, e.g. "
             "'kill@3:1,stall@5:0:0.3,seed=7,malformed=0.05' "
             "(implies supervision; see docs/ROBUSTNESS.md)",
    )
    p.add_argument(
        "--shard-retry-budget", type=int, default=None, metavar="N",
        help="respawn attempts per worker before degrading that shard "
             "to inline execution (default 3)",
    )


def _validate_shard_args(args: argparse.Namespace) -> None:
    """Fail fast on bad --shards/--chaos combinations.

    Worker startup happens deep inside the experiment (possibly in a
    forked process), so argument mistakes are rejected here with a clear
    message instead.
    """
    shards = getattr(args, "shards", None)
    if shards is not None and shards < 1:
        raise SystemExit(f"error: --shards must be >= 1 (got {shards})")
    supervision_requested = bool(
        getattr(args, "shard_supervise", None)
        or getattr(args, "chaos", None)
        or getattr(args, "shard_retry_budget", None) is not None
    )
    if supervision_requested and (shards is None or shards <= 1):
        raise SystemExit(
            "error: --shard-supervise/--chaos/--shard-retry-budget act on "
            "the shard engine; pass --shards N with N > 1"
        )
    budget = getattr(args, "shard_retry_budget", None)
    if budget is not None and budget < 0:
        raise SystemExit(
            f"error: --shard-retry-budget must be >= 0 (got {budget})"
        )
    chaos = getattr(args, "chaos", None)
    if chaos:
        from repro.sim.shard import ChaosPolicy

        try:
            ChaosPolicy.parse(chaos)
        except ValueError as exc:
            raise SystemExit(f"error: bad --chaos spec: {exc}")
    if shards is not None and shards > 1:
        techs = getattr(args, "techs", None)
        if techs and "Oracle" in techs:
            raise SystemExit(
                "error: the Oracle baseline queries live radio state and "
                "cannot shard; drop it from --techs or run with --shards 1"
            )
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            print(
                "warning: the 'fork' start method is unavailable on this "
                "platform; shard workers will run inline (slower, results "
                "unchanged)",
                file=sys.stderr,
            )


def _cmd_fig9a(args: argparse.Namespace) -> int:
    from repro.experiments.large_scale import run_coverage_vs_density

    _validate_shard_args(args)
    result = run_coverage_vs_density(
        args.densities, args.seeds, epochs=args.epochs,
        wifi_duration_s=args.wifi_duration, shards=args.shards,
        shard_supervise=bool(args.shard_supervise),
        shard_retry_budget=args.shard_retry_budget,
        chaos=args.chaos,
    )
    rows = []
    for i, density in enumerate(result.densities):
        rows.append([
            density,
            f"{result.coverage['802.11af'][i] * 100:.0f}%",
            f"{result.coverage['LTE'][i] * 100:.0f}%",
            f"{result.coverage['CellFi'][i] * 100:.0f}%",
        ])
    print(format_table(["APs", "802.11af", "LTE", "CellFi"], rows,
                       title="Figure 9(a) coverage vs density"))
    return 0


def _cmd_fig9b(args: argparse.Namespace) -> int:
    from repro.experiments.large_scale import run_throughput_cdfs

    _validate_shard_args(args)
    result = run_throughput_cdfs(
        args.seeds, n_aps=args.aps, epochs=args.epochs,
        wifi_duration_s=args.wifi_duration, shards=args.shards,
        shard_supervise=bool(args.shard_supervise),
        shard_retry_budget=args.shard_retry_budget,
        chaos=args.chaos,
    )
    rows = []
    for tech in result.samples_bps:
        rows.append([
            tech,
            f"{result.median_bps(tech) / 1e3:.0f} kb/s",
            f"{result.starved_fraction(tech) * 100:.1f}%",
        ])
    print(format_table(["tech", "median", "starved"], rows,
                       title=f"Figure 9(b), {args.aps} APs"))
    return 0


def _cmd_prach(args: argparse.Namespace) -> int:
    from repro.experiments.prach_eval import run_prach_eval

    result = run_prach_eval(trials=args.trials)
    for snr, p in sorted(result.detection_by_snr.items()):
        print(f"  detect @ {snr:+.0f} dB : {p * 100:.0f}%")
    print(f"  false alarms       : {result.false_alarm * 100:.2f}%")
    print(f"  complexity ratio   : {result.complexity_ratio:.1f}x vs naive")
    print(f"  vs line rate       : {result.speed_factor_vs_line_rate:.2f}x")
    print(f"  vs occasion rate   : {result.speed_factor_vs_occasion_rate:.0f}x")
    return 0


def _cmd_convergence(args: argparse.Namespace) -> int:
    from repro.experiments.convergence import run_convergence_sweep

    points = run_convergence_sweep(
        n_nodes_list=args.sizes, replications=args.replications
    )
    rows = [
        [p.n_nodes, p.fading_p, f"{p.mean_rounds:.1f}", f"{p.bound_rounds:.0f}"]
        for p in points
    ]
    print(format_table(["n", "p", "rounds", "bound"], rows,
                       title="Theorem 1 convergence"))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    import pathlib

    from repro.utils.reportgen import write_report

    results = pathlib.Path(args.results_dir)
    try:
        output = write_report(
            results,
            sweep_logs=[pathlib.Path(p) for p in args.sweep_log],
            telemetry_files=[pathlib.Path(p) for p in args.telemetry],
        )
    except FileNotFoundError as error:
        print(error, file=sys.stderr)
        return 1
    print(f"wrote {output}")
    return 0


# -- Sweep subcommand ---------------------------------------------------------

#: Sweep spec builders by name; each maps CLI flags onto builder kwargs
#: (flag value ``None`` keeps the builder's default).
SWEEP_SPECS = ("fig9a", "fig9b", "fig1", "fig2", "convergence", "fig7", "db_outage")


def _sweep_kwargs(args: argparse.Namespace, **mapping) -> dict:
    """Collect builder kwargs from CLI flags, dropping unset ones."""
    return {
        key: value for key, value in mapping.items() if value is not None
    }


def build_sweep_spec(args: argparse.Namespace):
    """Construct the requested figure grid as a SweepSpec."""
    if args.spec == "fig9a":
        from repro.experiments.large_scale import fig9a_sweep_spec

        return fig9a_sweep_spec(
            **_sweep_kwargs(
                args,
                densities=args.densities,
                seeds=args.seeds,
                techs=args.techs,
                clients_per_ap=args.clients_per_ap,
                epochs=args.epochs,
                wifi_duration_s=args.wifi_duration,
                shards=args.shards,
                shard_supervise=args.shard_supervise,
                shard_retry_budget=args.shard_retry_budget,
                chaos=args.chaos,
            )
        )
    if args.spec == "fig9b":
        from repro.experiments.large_scale import fig9b_sweep_spec

        return fig9b_sweep_spec(
            **_sweep_kwargs(
                args,
                seeds=args.seeds,
                n_aps=args.aps,
                techs=args.techs,
                clients_per_ap=args.clients_per_ap,
                epochs=args.epochs,
                wifi_duration_s=args.wifi_duration,
                shards=args.shards,
                shard_supervise=args.shard_supervise,
                shard_retry_budget=args.shard_retry_budget,
                chaos=args.chaos,
            )
        )
    if args.spec == "fig1":
        from repro.experiments.coverage import fig1_sweep_spec

        return fig1_sweep_spec(
            **_sweep_kwargs(
                args, seeds=args.seeds, samples_per_point=args.samples
            )
        )
    if args.spec == "fig2":
        from repro.experiments.wifi_macs import fig2_sweep_spec

        return fig2_sweep_spec(
            **_sweep_kwargs(
                args,
                seeds=args.seeds,
                n_aps=args.aps,
                clients_per_ap=args.clients_per_ap,
                duration_s=args.duration,
            )
        )
    if args.spec == "convergence":
        from repro.experiments.convergence import convergence_sweep_spec

        return convergence_sweep_spec(
            **_sweep_kwargs(
                args,
                n_nodes_list=args.sizes,
                fading_list=args.fadings,
                replications=args.replications,
            )
        )
    if args.spec == "fig7":
        from repro.experiments.interference_exp import fig7_sweep_spec

        return fig7_sweep_spec(**_sweep_kwargs(args, seeds=args.seeds))
    if args.spec == "db_outage":
        from repro.experiments.db_outage import db_outage_sweep_spec

        return db_outage_sweep_spec(
            **_sweep_kwargs(
                args,
                durations=args.outage_durations,
                seeds=args.seeds,
                withdraw=args.withdraw or None,
                secondary=args.secondary or None,
            )
        )
    raise ValueError(f"unknown sweep spec {args.spec!r}")


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweep import run_sweep
    from repro.utils.reportgen import sweep_metric_table, sweep_outcome_summary

    from repro.obs import runtime as _obs_runtime

    _validate_shard_args(args)
    spec = build_sweep_spec(args)
    tel = _obs_runtime.active()
    result = run_sweep(
        spec,
        jobs=args.jobs,
        timeout_s=args.timeout,
        retries=args.retries,
        out_path=args.out,
        resume=args.resume,
        collect_telemetry=tel is not None,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
    )
    if tel is not None:
        # Fold worker-side snapshots into the run-level outputs: merged
        # counters/histograms land in --metrics-out, and each cell becomes
        # a trace span / profile site on the parent timeline.
        from repro.obs import merge_snapshots

        snapshots = []
        for record in result.records:
            if record.telemetry is not None:
                snapshots.append(record.telemetry)
            if tel.profiler is not None:
                tel.profiler.record(
                    f"sweep.cell.{record.scenario}", record.wall_time_s
                )
            if tel.tracer is not None:
                tel.tracer.instant(
                    f"sweep.{record.status}",
                    cat="sweep",
                    t=float(record.task_id),
                    args={"scenario": record.scenario, "attempts": record.attempts},
                )
        if snapshots:
            args._sweep_cell_telemetry = merge_snapshots(snapshots)
    print(
        f"sweep {spec.name!r}: {len(result.records)} cells "
        f"({result.computed} computed, {result.reused} reused from cache)"
    )
    payload = [
        {
            "scenario": r.scenario,
            "params": r.params,
            "status": r.status,
            "wall_time_s": r.wall_time_s,
            "metrics": r.metrics,
        }
        for r in result.records
    ]
    print(sweep_outcome_summary(payload))
    print()
    print(sweep_metric_table(payload, title=f"{spec.name} metrics (mean over seeds)"))
    if args.out:
        print(f"\nresults log: {args.out}")
    failures = [r for r in result.records if r.status != "ok"]
    for record in failures:
        print(
            f"  task {record.task_id} {record.status} after "
            f"{record.attempts} attempt(s): {record.error}",
            file=sys.stderr,
        )
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="CellFi (CoNEXT'17) reproduction experiments"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig1", help="single-cell drive test")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--samples", type=int, default=60)
    _add_telemetry_flags(p)
    p.set_defaults(fn=_cmd_fig1)

    p = sub.add_parser("fig2", help="802.11af vs 802.11ac")
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--duration", type=float, default=3.0)
    _add_telemetry_flags(p)
    p.set_defaults(fn=_cmd_fig2)

    p = sub.add_parser("fig6", help="database vacate/reacquire timeline")
    _add_telemetry_flags(p)
    p.set_defaults(fn=_cmd_fig6)

    p = sub.add_parser(
        "db-outage",
        help="Figure 6 timeline under database outages and wire faults",
    )
    p.add_argument("--seed", type=int, default=1)
    p.add_argument(
        "--outages",
        nargs="*",
        default=["60:30", "240:90"],
        help="outage windows as start:duration seconds after boot",
    )
    p.add_argument("--timeout-prob", type=float, default=0.0)
    p.add_argument("--drop-prob", type=float, default=0.0)
    p.add_argument("--error-prob", type=float, default=0.0)
    p.add_argument("--malformed-prob", type=float, default=0.0)
    p.add_argument("--spike-prob", type=float, default=0.0)
    p.add_argument("--poll-interval", type=float, default=2.0)
    p.add_argument(
        "--withdraw-in-outage",
        type=int,
        default=None,
        help="really withdraw the held channel during outage N",
    )
    p.add_argument(
        "--secondary",
        action="store_true",
        help="add a reliable secondary database endpoint (failover)",
    )
    p.add_argument("--full-timeline", action="store_true")
    p.add_argument(
        "--checkpoint-dir",
        default=None,
        help="write periodic ckpt_*.json snapshots into this directory",
    )
    p.add_argument(
        "--checkpoint-every",
        type=float,
        default=None,
        help="snapshot period in simulation seconds (needs --checkpoint-dir)",
    )
    p.add_argument(
        "--restore-from",
        default=None,
        help="resume from a snapshot file (scenario flags are then ignored)",
    )
    p.add_argument(
        "--halt-at",
        type=float,
        default=None,
        help="stop at this simulation time (with a final snapshot) and exit",
    )
    _add_telemetry_flags(p)
    p.set_defaults(fn=_cmd_db_outage)

    p = sub.add_parser("fig9a", help="coverage vs density")
    p.add_argument("--densities", type=int, nargs="+", default=[6, 10, 14])
    p.add_argument("--seeds", type=int, nargs="+", default=[1, 2])
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--wifi-duration", type=float, default=3.0)
    p.add_argument(
        "--shards", type=int, default=1,
        help="spatial shards per LTE-family cell (bit-identical results)",
    )
    _add_shard_flags(p)
    _add_telemetry_flags(p)
    p.set_defaults(fn=_cmd_fig9a)

    p = sub.add_parser("fig9b", help="throughput CDFs with oracle")
    p.add_argument("--seeds", type=int, nargs="+", default=[1])
    p.add_argument("--aps", type=int, default=10)
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--wifi-duration", type=float, default=3.0)
    p.add_argument(
        "--shards", type=int, default=1,
        help="spatial shards per LTE-family cell (drops the Oracle when > 1)",
    )
    _add_shard_flags(p)
    _add_telemetry_flags(p)
    p.set_defaults(fn=_cmd_fig9b)

    p = sub.add_parser("prach", help="PRACH detector evaluation")
    p.add_argument("--trials", type=int, default=40)
    _add_telemetry_flags(p)
    p.set_defaults(fn=_cmd_prach)

    p = sub.add_parser("convergence", help="Theorem 1 validation")
    p.add_argument("--sizes", type=int, nargs="+", default=[8, 16, 32])
    p.add_argument("--replications", type=int, default=8)
    _add_telemetry_flags(p)
    p.set_defaults(fn=_cmd_convergence)

    p = sub.add_parser("report", help="compile benchmarks/results into REPORT.md")
    p.add_argument("--results-dir", default="benchmarks/results")
    p.add_argument(
        "--sweep-log",
        nargs="*",
        default=[],
        help="sweep JSONL logs to aggregate into the report",
    )
    p.add_argument(
        "--telemetry",
        nargs="*",
        default=[],
        help="--metrics-out snapshots to summarise into a telemetry section",
    )
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser(
        "sweep",
        help="run a figure grid through the parallel fault-tolerant sweep runner",
    )
    p.add_argument("spec", choices=SWEEP_SPECS, help="which figure grid to run")
    p.add_argument(
        "--jobs",
        type=int,
        default=max(os.cpu_count() or 1, 1),
        help="worker processes (0 = inline in this process)",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-cell wall-clock limit in seconds",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=1,
        help="extra attempts for a failed or timed-out cell",
    )
    p.add_argument("--out", default=None, help="JSONL results log path")
    p.add_argument(
        "--resume",
        action="store_true",
        help="reuse successful cells already present in --out",
    )
    # Grid axes (None keeps each spec builder's default).
    p.add_argument("--seeds", type=int, nargs="+", default=None)
    p.add_argument("--densities", type=int, nargs="+", default=None)
    p.add_argument("--techs", nargs="+", default=None)
    p.add_argument("--aps", type=int, default=None)
    p.add_argument("--clients-per-ap", type=int, default=None)
    p.add_argument("--epochs", type=int, default=None)
    p.add_argument("--wifi-duration", type=float, default=None)
    p.add_argument("--shards", type=int, default=None)
    _add_shard_flags(p, optional=True)
    p.add_argument("--samples", type=int, default=None)
    p.add_argument("--duration", type=float, default=None)
    p.add_argument("--sizes", type=int, nargs="+", default=None)
    p.add_argument("--fadings", type=float, nargs="+", default=None)
    p.add_argument("--replications", type=int, default=None)
    p.add_argument("--outage-durations", type=float, nargs="+", default=None)
    p.add_argument("--withdraw", action="store_true")
    p.add_argument("--secondary", action="store_true")
    p.add_argument(
        "--checkpoint-dir",
        default=None,
        help="per-cell snapshot root; retried cells resume mid-run",
    )
    p.add_argument(
        "--checkpoint-every",
        type=float,
        default=None,
        help="snapshot period (driver units: sim seconds / epochs / reps)",
    )
    _add_telemetry_flags(p)
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser(
        "replay-diff",
        help="restore two runs from one snapshot and bisect their divergence",
    )
    p.add_argument("snapshot", help="a ckpt_*.json written by --checkpoint-dir")
    p.add_argument(
        "--mutate",
        action="append",
        default=[],
        metavar="NAME.KEY=JSON",
        help="edit run B's serialized state before restoring "
        "(e.g. driver.held=41); repeatable",
    )
    p.add_argument(
        "--stride",
        type=int,
        default=32,
        help="events between full state-hash comparisons",
    )
    p.add_argument(
        "--max-events",
        type=int,
        default=200_000,
        help="give up declaring 'no divergence' after this many events",
    )
    p.set_defaults(fn=_cmd_replay_diff)

    p = sub.add_parser(
        "obs-report",
        help="barrier/straggler analytics over a merged shard trace, plus "
             "BENCH_*.json regression diffs (nonzero exit on regression)",
    )
    p.add_argument(
        "--trace-jsonl",
        dest="obs_trace_jsonl",
        action="append",
        default=[],
        metavar="PATH",
        help="merged trace JSONL (from a --trace-jsonl run) to analyze; "
             "repeatable",
    )
    p.add_argument(
        "--bench",
        nargs=2,
        action="append",
        default=[],
        metavar=("BASELINE", "CURRENT"),
        help="diff two benchmark JSON artifacts, flagging *_s timing "
             "leaves that grew beyond tolerance; repeatable",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="regression tolerance ratio (default 1.05: +5%% wall time)",
    )
    p.set_defaults(fn=_cmd_obs_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        tel = _telemetry_from_args(args)
        if tel is None:
            return args.fn(args)
        from repro.obs import activated

        with activated(tel):
            rc = args.fn(args)
        _write_telemetry_outputs(args, tel)
        return rc
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an experiment failure.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
