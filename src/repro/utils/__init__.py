"""Shared utilities: dB arithmetic, empirical statistics, text rendering.

These helpers are deliberately dependency-light so every other subpackage
(PHY, MAC, experiments) can use them without import cycles.
"""

from repro.utils.dbmath import (
    db_to_linear,
    dbm_to_watt,
    linear_to_db,
    watt_to_dbm,
    wireless_sum_dbm,
)
from repro.utils.stats import (
    Cdf,
    RunningStat,
    jain_fairness,
    percentile,
)
from repro.utils.render import ascii_plot, format_table

__all__ = [
    "Cdf",
    "RunningStat",
    "ascii_plot",
    "db_to_linear",
    "dbm_to_watt",
    "format_table",
    "jain_fairness",
    "linear_to_db",
    "percentile",
    "watt_to_dbm",
    "wireless_sum_dbm",
]
