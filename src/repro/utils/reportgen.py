"""Aggregate benchmark artefacts into one report.

``pytest benchmarks/ --benchmark-only`` writes each reproduced table or
figure to ``benchmarks/results/<name>.txt``; this module stitches them into
a single Markdown report with the paper's figure ordering, so the whole
paper-vs-measured story is one file (``python -m repro.cli report``).
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

#: Report order and titles, following the paper's evaluation section.
SECTIONS: Tuple[Tuple[str, str], ...] = (
    ("table1", "Table 1 — 802.11af vs LTE design summary"),
    ("fig1", "Figure 1 — single-cell outdoor drive test"),
    ("fig2", "Figure 2 — Wi-Fi MAC inefficiency (af vs ac)"),
    ("fig6", "Figure 6 — spectrum-database vacate/reacquire"),
    ("fig7", "Figure 7 — two-cell interference walk"),
    ("fig8", "Figure 8 — CQI interference detector"),
    ("prach", "Section 6.3.3 — PRACH preamble detector"),
    ("fig9a", "Figure 9(a) — coverage vs density"),
    ("fig9b", "Figure 9(b) — client throughput CDFs"),
    ("fig9c", "Figure 9(c) — page load times"),
    ("theorem1", "Theorem 1 — hopping convergence"),
    ("reuse", "Section 5.3 — channel re-use packing"),
    ("overhead", "Section 6.3.4 — signalling overhead"),
    ("uplink", "Extensions — uplink protection"),
    ("ablations", "Extensions — design ablations"),
)


def collect_results(results_dir: pathlib.Path) -> Dict[str, str]:
    """Read every ``<name>.txt`` artefact in a results directory."""
    if not results_dir.is_dir():
        raise FileNotFoundError(
            f"no benchmark results at {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    artefacts: Dict[str, str] = {}
    for path in sorted(results_dir.glob("*.txt")):
        artefacts[path.stem] = path.read_text().rstrip()
    return artefacts


def render_report(
    artefacts: Dict[str, str],
    title: str = "CellFi reproduction — regenerated tables and figures",
) -> str:
    """Render the artefacts into a Markdown document.

    Sections follow :data:`SECTIONS`; artefacts without a known section
    are appended under "Other results" so nothing silently disappears.
    """
    lines: List[str] = [f"# {title}", ""]
    covered = set()
    for name, heading in SECTIONS:
        if name not in artefacts:
            continue
        covered.add(name)
        lines += [f"## {heading}", "", "```", artefacts[name], "```", ""]
    leftovers = sorted(set(artefacts) - covered)
    if leftovers:
        lines += ["## Other results", ""]
        for name in leftovers:
            lines += [f"### {name}", "", "```", artefacts[name], "```", ""]
    missing = [name for name, _ in SECTIONS if name not in artefacts]
    if missing:
        lines += [
            "## Missing artefacts",
            "",
            "The following benchmarks have not been run yet: "
            + ", ".join(missing),
            "",
        ]
    return "\n".join(lines)


def write_report(
    results_dir: pathlib.Path, output_path: Optional[pathlib.Path] = None
) -> pathlib.Path:
    """Collect, render and write the report; returns the output path."""
    artefacts = collect_results(results_dir)
    output = output_path or results_dir.parent / "REPORT.md"
    output.write_text(render_report(artefacts) + "\n")
    return output
