"""Aggregate benchmark artefacts into one report.

``pytest benchmarks/ --benchmark-only`` writes each reproduced table or
figure to ``benchmarks/results/<name>.txt``; this module stitches them into
a single Markdown report with the paper's figure ordering, so the whole
paper-vs-measured story is one file (``python -m repro.cli report``).
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.utils.render import format_table

#: Report order and titles, following the paper's evaluation section.
SECTIONS: Tuple[Tuple[str, str], ...] = (
    ("table1", "Table 1 — 802.11af vs LTE design summary"),
    ("fig1", "Figure 1 — single-cell outdoor drive test"),
    ("fig2", "Figure 2 — Wi-Fi MAC inefficiency (af vs ac)"),
    ("fig6", "Figure 6 — spectrum-database vacate/reacquire"),
    ("db_outage", "Robustness — Figure 6 under database outages and wire faults"),
    ("fig7", "Figure 7 — two-cell interference walk"),
    ("fig8", "Figure 8 — CQI interference detector"),
    ("prach", "Section 6.3.3 — PRACH preamble detector"),
    ("fig9a", "Figure 9(a) — coverage vs density"),
    ("fig9b", "Figure 9(b) — client throughput CDFs"),
    ("fig9c", "Figure 9(c) — page load times"),
    ("theorem1", "Theorem 1 — hopping convergence"),
    ("reuse", "Section 5.3 — channel re-use packing"),
    ("overhead", "Section 6.3.4 — signalling overhead"),
    ("uplink", "Extensions — uplink protection"),
    ("ablations", "Extensions — design ablations"),
    ("telemetry", "Telemetry — event counts, latency percentiles, profile"),
)


def collect_results(results_dir: pathlib.Path) -> Dict[str, str]:
    """Read every ``<name>.txt`` artefact in a results directory."""
    if not results_dir.is_dir():
        raise FileNotFoundError(
            f"no benchmark results at {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    artefacts: Dict[str, str] = {}
    for path in sorted(results_dir.glob("*.txt")):
        artefacts[path.stem] = path.read_text().rstrip()
    return artefacts


def render_report(
    artefacts: Dict[str, str],
    title: str = "CellFi reproduction — regenerated tables and figures",
) -> str:
    """Render the artefacts into a Markdown document.

    Sections follow :data:`SECTIONS`; artefacts without a known section
    are appended under "Other results" so nothing silently disappears.
    """
    lines: List[str] = [f"# {title}", ""]
    covered = set()
    for name, heading in SECTIONS:
        if name not in artefacts:
            continue
        covered.add(name)
        lines += [f"## {heading}", "", "```", artefacts[name], "```", ""]
    leftovers = sorted(set(artefacts) - covered)
    if leftovers:
        lines += ["## Other results", ""]
        for name in leftovers:
            lines += [f"### {name}", "", "```", artefacts[name], "```", ""]
    missing = [name for name, _ in SECTIONS if name not in artefacts]
    if missing:
        lines += [
            "## Missing artefacts",
            "",
            "The following benchmarks have not been run yet: "
            + ", ".join(missing),
            "",
        ]
    return "\n".join(lines)


# -- Sweep-log aggregation ----------------------------------------------------
#
# ``python -m repro.cli sweep`` writes a JSONL results log (one record
# per grid cell; see repro.experiments.sweep).  The helpers below turn
# such a log into the paper-vs-measured tables the report embeds.


def load_sweep_records(path: pathlib.Path) -> List[dict]:
    """Parse a sweep JSONL log, skipping blank or half-written lines."""
    records: List[dict] = []
    path = pathlib.Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no sweep log at {path}")
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    return records


def sweep_outcome_summary(records: Sequence[dict]) -> str:
    """Per-scenario outcome counts and wall-clock totals."""
    by_scenario: Dict[str, List[dict]] = {}
    for record in records:
        by_scenario.setdefault(record.get("scenario", "?"), []).append(record)
    rows = []
    for name in sorted(by_scenario):
        cells = by_scenario[name]
        statuses = [c.get("status") for c in cells]
        wall = sum(float(c.get("wall_time_s", 0.0)) for c in cells)
        rows.append(
            [
                name,
                len(cells),
                statuses.count("ok"),
                statuses.count("failed"),
                statuses.count("timeout"),
                f"{wall:.1f} s",
            ]
        )
    return format_table(
        ["scenario", "cells", "ok", "failed", "timeout", "wall"],
        rows,
        title="Sweep outcomes",
    )


def _scalar_metric_keys(records: Sequence[dict]) -> List[str]:
    keys: List[str] = []
    for record in records:
        for key, value in record.get("metrics", {}).items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if key not in keys:
                keys.append(key)
    return keys


def sweep_metric_table(
    records: Sequence[dict],
    group_by: Optional[Sequence[str]] = None,
    title: str = "Sweep metrics",
) -> str:
    """Mean scalar metrics, grouped by the varying grid parameters.

    By default rows group over every parameter that varies across the
    log *except* ``seed``, so repeated topologies average out -- the
    same convention the paper's tables use ("every scenario is repeated
    ... on a new topology").
    """
    ok = [r for r in records if r.get("status") == "ok"]
    if not ok:
        return format_table(["(no successful cells)"], [], title=title)
    param_keys = sorted({k for r in ok for k in r.get("params", {})})
    if group_by is None:
        group_by = [
            key
            for key in param_keys
            if key != "seed"
            and len({repr(r["params"].get(key)) for r in ok}) > 1
        ]
    metric_keys = _scalar_metric_keys(ok)
    groups: Dict[tuple, List[dict]] = {}
    for record in ok:
        key = tuple(record["params"].get(k) for k in group_by)
        groups.setdefault(key, []).append(record)
    rows = []
    for key in sorted(groups, key=repr):
        cells = groups[key]
        row: List[object] = list(key)
        for metric in metric_keys:
            values = [
                c["metrics"][metric]
                for c in cells
                if isinstance(c["metrics"].get(metric), (int, float))
                and not isinstance(c["metrics"].get(metric), bool)
            ]
            row.append(
                f"{sum(values) / len(values):.4g}" if values else "-"
            )
        rows.append(row)
    return format_table(list(group_by) + metric_keys, rows, title=title)


def robustness_summary(rows: Sequence[dict]) -> str:
    """Tally a structured robustness log (see ``RobustnessLog.to_rows``).

    One row per event kind: count, first and last occurrence time --
    enough to read off how many faults were injected, how often the
    client retried or failed over, and whether grace mode ever had to
    force a vacate.
    """
    by_kind: Dict[str, List[dict]] = {}
    for row in rows:
        by_kind.setdefault(str(row.get("kind", "?")), []).append(row)
    table_rows = []
    for kind in sorted(by_kind):
        events = by_kind[kind]
        times = [float(e.get("time", 0.0)) for e in events]
        table_rows.append(
            [kind, len(events), f"{min(times):.1f} s", f"{max(times):.1f} s"]
        )
    return format_table(
        ["event", "count", "first", "last"],
        table_rows,
        title="Robustness events",
    )


def telemetry_summary(snapshot: dict) -> str:
    """Render a metrics snapshot (``--metrics-out`` JSON) as report text.

    Four blocks, each skipped when its data is absent: per-scope event
    counts (counters), histogram percentiles (e.g. hopping rounds, HARQ
    attempts), PAWS latency percentiles, and the top wall-time profile
    sites when the snapshot was taken with profiling on.
    """
    from repro.obs.metrics import percentile_from_hist

    parts: List[str] = []

    # Sweep --metrics-out snapshots nest the merged per-cell data under
    # "sweep_cells" (the top level is the mostly-idle parent process);
    # fold it in so the table shows the cells' counters.
    nested = snapshot.get("sweep_cells")
    if nested:
        from repro.obs.metrics import merge_snapshots

        profile = snapshot.get("profile")
        snapshot = merge_snapshots(
            [
                {k: v for k, v in snapshot.items() if k != "sweep_cells"},
                nested,
            ]
        )
        if profile:
            snapshot["profile"] = profile

    counters = snapshot.get("counters", {})
    if counters:
        rows = [[name, f"{value:g}"] for name, value in sorted(counters.items())]
        parts.append(format_table(["counter", "count"], rows,
                                  title="Telemetry counters"))

    histograms = snapshot.get("histograms", {})
    if histograms:
        rows = []
        for name in sorted(histograms):
            hist = histograms[name]
            edges, counts = hist.get("edges", []), hist.get("counts", [])
            n = int(hist.get("count", 0))
            mean = hist.get("sum", 0.0) / n if n else 0.0
            rows.append([
                name,
                n,
                f"{mean:.3g}",
                f"{percentile_from_hist(edges, counts, 50.0):.3g}",
                f"{percentile_from_hist(edges, counts, 95.0):.3g}",
                f"{percentile_from_hist(edges, counts, 99.0):.3g}",
            ])
        parts.append(format_table(
            ["histogram", "n", "mean", "p50", "p95", "p99"], rows,
            title="Telemetry histograms (percentiles interpolated)",
        ))

    profile = snapshot.get("profile")
    if profile:
        rows = [
            [site["site"], site["calls"], f"{site['total_s']:.4f}",
             f"{site['mean_us']:.1f}"]
            for site in profile[:10]
        ]
        parts.append(format_table(
            ["site", "calls", "total [s]", "mean [us]"], rows,
            title="Top wall-time callback sites",
        ))

    if not parts:
        return format_table(["(empty snapshot)"], [], title="Telemetry")
    return "\n\n".join(parts)


def load_telemetry_snapshot(path: pathlib.Path) -> dict:
    """Read a ``--metrics-out`` JSON snapshot from disk."""
    path = pathlib.Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no telemetry snapshot at {path}")
    with path.open() as handle:
        return json.load(handle)


def render_sweep_summary(path: pathlib.Path) -> str:
    """The full aggregation of one sweep log: outcomes plus metric means.

    When the log was produced by a telemetry-enabled sweep (records
    carry a ``telemetry`` key), the per-cell snapshots are merged and
    summarised too.
    """
    records = load_sweep_records(path)
    parts = [sweep_outcome_summary(records), sweep_metric_table(records)]
    snapshots = [
        r["telemetry"] for r in records if r.get("telemetry") is not None
    ]
    if snapshots:
        from repro.obs import merge_snapshots

        parts.append(telemetry_summary(merge_snapshots(snapshots)))
    return "\n\n".join(parts)


def write_report(
    results_dir: pathlib.Path,
    output_path: Optional[pathlib.Path] = None,
    sweep_logs: Sequence[pathlib.Path] = (),
    telemetry_files: Sequence[pathlib.Path] = (),
) -> pathlib.Path:
    """Collect, render and write the report; returns the output path.

    ``sweep_logs`` are JSONL results logs from ``repro.cli sweep``; each
    is aggregated into a ``sweep-<name>`` artefact section.
    ``telemetry_files`` are ``--metrics-out`` snapshots; each becomes a
    ``telemetry-<name>`` section of counter/histogram/profile tables.
    """
    artefacts = collect_results(results_dir)
    for log in sweep_logs:
        log = pathlib.Path(log)
        artefacts[f"sweep-{log.stem}"] = render_sweep_summary(log)
    for snap_path in telemetry_files:
        snap_path = pathlib.Path(snap_path)
        artefacts[f"telemetry-{snap_path.stem}"] = telemetry_summary(
            load_telemetry_snapshot(snap_path)
        )
    output = output_path or results_dir.parent / "REPORT.md"
    output.write_text(render_report(artefacts) + "\n")
    return output
