"""Plain-text rendering of tables and plots.

The benchmark harness regenerates the paper's tables and figures as text so
they can be diffed and inspected without a plotting stack.  ``format_table``
mirrors the row/column layout of a paper table; ``ascii_plot`` gives a quick
visual sanity check of a curve or CDF.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a monospace table with aligned columns.

    Args:
        headers: column names.
        rows: row cells; each row must have ``len(headers)`` entries.
        title: optional title printed above the table.

    Raises:
        ValueError: if a row has the wrong number of cells.
    """
    str_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        str_rows.append([_format_cell(cell) for cell in row])

    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3g}"
    return str(cell)


def ascii_plot(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 15,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render a scatter/line of (x, y) points as an ASCII grid.

    Intended for eyeballing CDFs and sweeps in benchmark output; precision is
    one character cell.
    """
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = min(width - 1, int((x - x_min) / x_span * (width - 1)))
        row = min(height - 1, int((y - y_min) / y_span * (height - 1)))
        grid[height - 1 - row][col] = "*"

    lines = [f"{y_label} [{y_min:.3g} .. {y_max:.3g}]"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} [{x_min:.3g} .. {x_max:.3g}]")
    return "\n".join(lines)
