"""Decibel arithmetic helpers.

Radio computations constantly mix logarithmic (dB, dBm) and linear (ratio,
watt) quantities.  Centralising the conversions avoids the classic
"added dBm values" bug and documents the conventions used repo-wide:

* ``dB``  -- dimensionless power *ratio* on a log scale.
* ``dBm`` -- absolute power referenced to 1 milliwatt.
"""

from __future__ import annotations

import math
from typing import Iterable

#: Thermal noise power spectral density at 290 K, in dBm per hertz.
THERMAL_NOISE_DBM_PER_HZ = -174.0


def db_to_linear(db: float) -> float:
    """Convert a dB power ratio to a linear ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(ratio: float) -> float:
    """Convert a linear power ratio to dB.

    Raises:
        ValueError: if ``ratio`` is not strictly positive (log of zero or a
            negative power ratio has no physical meaning).
    """
    if ratio <= 0.0:
        raise ValueError(f"power ratio must be > 0, got {ratio!r}")
    return 10.0 * math.log10(ratio)


def dbm_to_watt(dbm: float) -> float:
    """Convert an absolute power in dBm to watts."""
    return 10.0 ** ((dbm - 30.0) / 10.0)


def watt_to_dbm(watt: float) -> float:
    """Convert an absolute power in watts to dBm.

    Raises:
        ValueError: if ``watt`` is not strictly positive.
    """
    if watt <= 0.0:
        raise ValueError(f"power must be > 0 W, got {watt!r}")
    return 10.0 * math.log10(watt) + 30.0


def wireless_sum_dbm(levels_dbm: Iterable[float]) -> float:
    """Sum incoherent signal powers expressed in dBm.

    Interfering transmissions add in the *linear* domain.  An empty input is
    treated as "no signal" and returns ``-inf`` dBm, which composes correctly
    with :func:`db_to_linear` in SINR denominators.
    """
    total_watt = sum(dbm_to_watt(level) for level in levels_dbm)
    if total_watt == 0.0:
        return float("-inf")
    return watt_to_dbm(total_watt)


def thermal_noise_dbm(bandwidth_hz: float, noise_figure_db: float = 0.0) -> float:
    """Thermal noise power over ``bandwidth_hz`` including receiver noise figure.

    Args:
        bandwidth_hz: occupied bandwidth in hertz; must be positive.
        noise_figure_db: receiver noise figure added on top of kTB.
    """
    if bandwidth_hz <= 0.0:
        raise ValueError(f"bandwidth must be > 0 Hz, got {bandwidth_hz!r}")
    return THERMAL_NOISE_DBM_PER_HZ + 10.0 * math.log10(bandwidth_hz) + noise_figure_db
