"""Empirical statistics used by the experiments and benchmarks.

The paper reports nearly every result as a CDF (Figures 1, 2, 7, 9) or a
percentile ("median flow completion times", "30-40% of starved clients"), so
this module provides a small, well-tested :class:`Cdf` type plus fairness and
streaming-moment helpers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile (0-100) using linear interpolation.

    Matches numpy's default ("linear") interpolation so results are stable
    whether callers use this helper or numpy directly.

    Raises:
        ValueError: on an empty input or ``q`` outside [0, 100].
    """
    if not values:
        raise ValueError("cannot take a percentile of an empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q!r}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = math.floor(rank)
    upper = math.ceil(rank)
    if lower == upper:
        return ordered[lower]
    weight = rank - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = maximally unfair.

    Raises:
        ValueError: on an empty input.
    """
    if not values:
        raise ValueError("cannot compute fairness of an empty sequence")
    total = sum(values)
    square_sum = sum(v * v for v in values)
    if square_sum == 0.0:
        # All-zero allocations are (degenerately) fair.
        return 1.0
    return (total * total) / (len(values) * square_sum)


class Cdf:
    """An empirical cumulative distribution function.

    Stores all samples; evaluation sorts lazily and caches.  This favours
    clarity over memory: experiment sample counts here are in the thousands.
    """

    def __init__(self, samples: Iterable[float] = ()) -> None:
        self._samples: List[float] = list(samples)
        self._sorted: List[float] | None = None

    def add(self, value: float) -> None:
        """Add one sample."""
        self._samples.append(value)
        self._sorted = None

    def extend(self, values: Iterable[float]) -> None:
        """Add many samples."""
        self._samples.extend(values)
        self._sorted = None

    def __len__(self) -> int:
        return len(self._samples)

    def _ensure_sorted(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self._samples)
        return self._sorted

    def evaluate(self, x: float) -> float:
        """Return P(X <= x)."""
        ordered = self._ensure_sorted()
        if not ordered:
            raise ValueError("CDF has no samples")
        # Binary search for the right-most index with value <= x.
        lo, hi = 0, len(ordered)
        while lo < hi:
            mid = (lo + hi) // 2
            if ordered[mid] <= x:
                lo = mid + 1
            else:
                hi = mid
        return lo / len(ordered)

    def quantile(self, fraction: float) -> float:
        """Return the value at CDF level ``fraction`` (0-1)."""
        return percentile(self._samples, fraction * 100.0)

    def median(self) -> float:
        """Return the 50th percentile."""
        return self.quantile(0.5)

    def fraction_below(self, threshold: float) -> float:
        """Return the fraction of samples strictly below ``threshold``.

        Used for starvation metrics, e.g. "fraction of clients with
        throughput below 50 kb/s".
        """
        ordered = self._ensure_sorted()
        if not ordered:
            raise ValueError("CDF has no samples")
        lo, hi = 0, len(ordered)
        while lo < hi:
            mid = (lo + hi) // 2
            if ordered[mid] < threshold:
                lo = mid + 1
            else:
                hi = mid
        return lo / len(ordered)

    def points(self, max_points: int = 200) -> List[Tuple[float, float]]:
        """Return (x, P(X<=x)) pairs suitable for plotting, downsampled."""
        ordered = self._ensure_sorted()
        if not ordered:
            return []
        n = len(ordered)
        step = max(1, n // max_points)
        pts = [(ordered[i], (i + 1) / n) for i in range(0, n, step)]
        if pts[-1][1] != 1.0:
            pts.append((ordered[-1], 1.0))
        return pts

    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        if not self._samples:
            raise ValueError("CDF has no samples")
        return sum(self._samples) / len(self._samples)

    @property
    def samples(self) -> List[float]:
        """A copy of the raw samples."""
        return list(self._samples)


@dataclass
class RunningStat:
    """Streaming mean/variance via Welford's algorithm.

    Useful inside simulators where holding every sample (e.g. per-subframe
    SINR) would be wasteful.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = field(default=0.0, repr=False)
    min: float = math.inf
    max: float = -math.inf

    def add(self, value: float) -> None:
        """Fold one observation into the running moments."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def variance(self) -> float:
        """Population variance of the observations seen so far."""
        if self.count == 0:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStat") -> "RunningStat":
        """Return a new stat combining ``self`` and ``other`` (Chan's method)."""
        if self.count == 0:
            return RunningStat(other.count, other.mean, other._m2, other.min, other.max)
        if other.count == 0:
            return RunningStat(self.count, self.mean, self._m2, self.min, self.max)
        total = self.count + other.count
        delta = other.mean - self.mean
        mean = self.mean + delta * other.count / total
        m2 = self._m2 + other._m2 + delta * delta * self.count * other.count / total
        return RunningStat(total, mean, m2, min(self.min, other.min), max(self.max, other.max))
