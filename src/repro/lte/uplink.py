"""Uplink system-level model: power control, scheduling and interference.

The paper's interference-management discussion "focuses on the downlink
because the uplink is much less saturated; yet, the uplink can be managed
similarly" (Section 5).  This module supplies that symmetric half:

* **Fractional open-loop power control** (TS 36.213): a UE transmits at
  ``min(P_max, P0 + alpha * PL)`` per resource block, so cell-interior
  clients radiate little -- the same physics that localises PRACH.
* **Per-cell uplink scheduling** over the AP's allowed subchannels (TDD
  uses one allocation for both directions, so CellFi's subchannel
  decisions protect the uplink for free).
* **Inter-cell uplink interference**: the aggressor on subchannel ``k`` at
  cell ``i`` is whatever client the neighbouring cell scheduled on ``k``,
  modelled fluidly as the time-share-weighted average over its active
  clients.

The model reuses the downlink simulator's topology and channel so UL/DL
results are directly comparable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.phy.harq import harq_goodput_scale
from repro.phy.mcs import CQI_OUT_OF_RANGE, cqi_from_sinr, efficiency_from_cqi
from repro.phy.resource_grid import RB_BANDWIDTH_HZ, ResourceGrid
from repro.sim.topology import Topology
from repro.utils.dbmath import dbm_to_watt, linear_to_db, thermal_noise_dbm

#: Fractional power-control defaults (TS 36.213 operator-typical values).
PC_P0_DBM_PER_RB = -85.0
PC_ALPHA = 0.8

#: eNodeB receiver noise figure (better than a handset's).
ENB_NOISE_FIGURE_DB = 5.0


@dataclass
class UplinkEpochResult:
    """Uplink outcome of one epoch.

    Attributes:
        throughput_bps: uplink throughput per client.
        tx_power_dbm: the power-controlled per-RB transmit PSD per client.
        sinr_db: average scheduled-subchannel SINR per client.
    """

    throughput_bps: Dict[int, float] = field(default_factory=dict)
    tx_power_dbm: Dict[int, float] = field(default_factory=dict)
    sinr_db: Dict[int, float] = field(default_factory=dict)


class UplinkModel:
    """Fluid uplink simulator sharing the downlink's substrate.

    Args:
        topology: node placement (same object the DL simulator uses).
        grid: the shared TDD carrier.
        channel: propagation model.
        max_ue_power_dbm: the TVWS portable cap (20 dBm).
        p0_dbm_per_rb / alpha: fractional power-control parameters.
    """

    def __init__(
        self,
        topology: Topology,
        grid: ResourceGrid,
        channel,
        max_ue_power_dbm: float = 20.0,
        p0_dbm_per_rb: float = PC_P0_DBM_PER_RB,
        alpha: float = PC_ALPHA,
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha!r}")
        self.topology = topology
        self.grid = grid
        self.channel = channel
        self.max_ue_power_dbm = max_ue_power_dbm
        self.p0_dbm_per_rb = p0_dbm_per_rb
        self.alpha = alpha
        self._rb_noise_dbm = thermal_noise_dbm(RB_BANDWIDTH_HZ, ENB_NOISE_FIGURE_DB)
        self._loss: Dict[Tuple[int, int], float] = {}
        for client in topology.clients:
            for ap in topology.aps:
                self._loss[(client.client_id, ap.ap_id)] = channel.loss_db(
                    client, ap
                )

    # -- Power control --------------------------------------------------------

    def tx_psd_dbm_per_rb(self, client_id: int, n_rbs: int = 1) -> float:
        """Power-controlled per-RB transmit power toward the serving cell.

        The total budget (20 dBm) is shared across the granted RBs; the
        power-control target caps it from below the budget when the path
        loss is small.
        """
        if n_rbs < 1:
            raise ValueError(f"need at least one RB, got {n_rbs}")
        client = self.topology.client(client_id)
        loss = self._loss[(client_id, client.ap_id)]
        target = self.p0_dbm_per_rb + self.alpha * loss
        budget_per_rb = self.max_ue_power_dbm - 10.0 * math.log10(n_rbs)
        return min(target, budget_per_rb)

    # -- SINR -------------------------------------------------------------------

    def uplink_sinr_db(
        self,
        client_id: int,
        aggressors: Sequence[Tuple[int, float]] = (),
    ) -> float:
        """Uplink SINR of ``client_id`` at its serving cell.

        Args:
            aggressors: ``(client_id, activity)`` pairs for co-subchannel
                uplink transmitters of other cells, with duty-cycle weights.
        """
        client = self.topology.client(client_id)
        serving = client.ap_id
        signal_dbm = (
            self.tx_psd_dbm_per_rb(client_id) - self._loss[(client_id, serving)]
        )
        noise_w = dbm_to_watt(self._rb_noise_dbm)
        interference_w = 0.0
        for other_id, activity in aggressors:
            if not 0.0 <= activity <= 1.0:
                raise ValueError(f"activity out of [0,1]: {activity!r}")
            rx = self.tx_psd_dbm_per_rb(other_id) - self._loss[(other_id, serving)]
            interference_w += activity * dbm_to_watt(rx)
        return linear_to_db(dbm_to_watt(signal_dbm) / (noise_w + interference_w))

    # -- Epoch evaluation ----------------------------------------------------------

    def run_epoch(
        self,
        allowed: Mapping[int, Set[int]],
        ul_demands_bits: Mapping[int, float],
        epoch_s: float = 1.0,
    ) -> UplinkEpochResult:
        """Fluid uplink allocation for one epoch.

        Each cell round-robins its UL-active clients across its allowed
        subchannels; inter-cell interference on a subchannel is the
        time-share-weighted mix of the other cell's active clients.
        """
        result = UplinkEpochResult()
        # Active clients per AP and their time share per subchannel.
        active_by_ap: Dict[int, List[int]] = {}
        for client in self.topology.clients:
            if ul_demands_bits.get(client.client_id, 0.0) > 0.0:
                active_by_ap.setdefault(client.ap_id, []).append(client.client_id)

        for ap in self.topology.aps:
            clients = active_by_ap.get(ap.ap_id, [])
            subs = sorted(allowed.get(ap.ap_id, set()))
            if not clients or not subs:
                for cid in clients:
                    result.throughput_bps[cid] = 0.0
                continue
            share = 1.0 / len(clients)
            for cid in clients:
                # Aggressors: other cells' clients active on the same
                # subchannels, each weighted by its own cell's time share.
                aggressors: List[Tuple[int, float]] = []
                for other in self.topology.aps:
                    if other.ap_id == ap.ap_id:
                        continue
                    other_clients = active_by_ap.get(other.ap_id, [])
                    other_subs = allowed.get(other.ap_id, set())
                    if not other_clients or not other_subs:
                        continue
                    overlap = len(set(subs) & set(other_subs)) / len(subs)
                    if overlap == 0.0:
                        continue
                    weight = overlap / len(other_clients)
                    aggressors.extend(
                        (ocid, weight) for ocid in other_clients
                    )
                sinr = self.uplink_sinr_db(cid, aggressors)
                cqi = cqi_from_sinr(sinr)
                result.sinr_db[cid] = sinr
                result.tx_power_dbm[cid] = self.tx_psd_dbm_per_rb(cid)
                if cqi == CQI_OUT_OF_RANGE:
                    result.throughput_bps[cid] = 0.0
                    continue
                rbs = sum(self.grid.subchannel_rbs(k) for k in subs)
                rate = self.grid.uplink_rate_bps(efficiency_from_cqi(cqi), rbs)
                rate *= harq_goodput_scale(sinr, cqi) * share
                served = min(rate * epoch_s, ul_demands_bits[cid])
                result.throughput_bps[cid] = served / epoch_s
        return result


def ack_traffic_bits(downlink_bits: float, ack_ratio: float = 0.02) -> float:
    """Uplink ACK load generated by a downlink transfer (TCP ~2%).

    The Figure 1 experiment showed this fits in a single RB; this helper
    lets workloads derive UL demand from DL service.
    """
    if downlink_bits < 0.0:
        raise ValueError(f"downlink bits must be >= 0, got {downlink_bits!r}")
    return downlink_bits * ack_ratio
