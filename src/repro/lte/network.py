"""Epoch-driven system-level LTE network simulator.

This module glues topology, PHY and MAC into the simulator used for the
paper's large-scale evaluation (Section 6.3.4).  It follows the standard
system-level methodology (the same one ns-3's LTE module uses): radio
quantities are evaluated analytically per *epoch* -- the 1-second
interference-management period -- while everything the paper's claims hinge
on is modelled explicitly:

* per-subchannel SINR including co-channel interference from other cells,
* control-channel (CRS/PDCCH) interference calibrated to Figure 7(b):
  a strong co-channel cell costs up to ~20% goodput even with no data,
* HARQ goodput scaling, CQI quantisation, PF scheduling,
* PRACH audibility at the -10 dB detector operating point,
* imperfect interference detection (2% false positives, 80% true
  positives -- the constants the paper measured and fed to its simulator).

A *subchannel policy* decides each AP's allowed subchannels every epoch.
Plain LTE uses :class:`AllSubchannelsPolicy`; CellFi plugs in its
interference manager (:mod:`repro.core`); the centralized oracle plugs in a
graph-coloring allocator (:mod:`repro.baselines.oracle`).

Two interchangeable epoch backends compute the radio quantities:

* ``backend="scalar"`` -- the reference implementation: per-link Python
  loops, easy to audit against the formulas in ``docs/SIMULATION.md``;
* ``backend="vectorized"`` (default) -- whole-matrix NumPy kernels over a
  cached AP<->client gain matrix.  Interference sums accumulate in the
  same per-interferer order and dB conversions go through the same
  ``math.log10`` calls, so the two backends are *bit-identical* for the
  same seeds (``tests/test_lte_network_vectorized.py`` enforces this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence, Set, Tuple

import numpy as np

from repro.lte.scheduler import Allocation, ProportionalFairScheduler, Scheduler
from repro.obs import runtime as _obs_runtime
from repro.phy.harq import harq_goodput_scale
from repro.phy.mcs import (
    CQI_OUT_OF_RANGE,
    LTE_CQI_TABLE,
    cqi_from_sinr,
    efficiency_from_cqi,
)
from repro.phy.propagation import CompositeChannel, GainMatrixCache
from repro.phy.resource_grid import RB_BANDWIDTH_HZ, ResourceGrid
from repro.sim.checkpoint import register_dataclass
from repro.sim.rng import RngStreams
from repro.sim.topology import Topology
from repro.utils.dbmath import dbm_to_watt, linear_to_db, thermal_noise_dbm

#: Epoch-kernel backend names.
BACKEND_SCALAR = "scalar"
BACKEND_VECTORIZED = "vectorized"

#: PRACH occupies 6 RBs (1.08 MHz); audibility is evaluated over this band.
PRACH_BANDWIDTH_HZ = 6 * RB_BANDWIDTH_HZ

#: The PRACH detector's reliable operating point (paper Section 6.3.3):
#: preambles below -10 dB SNR are not counted.
PRACH_DETECTION_SNR_DB = -10.0

#: PRACH open-loop power control target (TS 36.213
#: preambleInitialReceivedTargetPower): a UE transmits just enough for its
#: serving cell to receive the preamble at this level, so nearby clients
#: radiate far less than the 20 dBm cap.  This is what localises the
#: paper's contention estimate: an AP overhears exactly the clients whose
#: path loss to it is within ~a dozen dB of their serving-cell path loss --
#: the clients its downlink would actually disturb.
PRACH_TARGET_RX_DBM = -104.0

#: Interference-detection quality measured on the testbed (Section 6.3.2)
#: and injected into the large-scale simulation, as the paper did.
CQI_DETECTOR_TRUE_POSITIVE = 0.80
CQI_DETECTOR_FALSE_POSITIVE = 0.02

#: Interference ground truth follows the paper's estimator semantics: a
#: subchannel is "bad" when its CQI falls below this fraction of the
#: interference-free CQI.  Crucially this is *rate-relative*: a client next
#: to its AP keeps CQI 15 despite a weak interferer and is NOT considered
#: interfered -- the property the channel re-use heuristic exploits.
INTERFERENCE_CQI_DROP_FRACTION = 0.6

#: Control-channel interference ceiling calibrated to Figure 7(b): "the two
#: vary by at most 20% and in most cases much less than that".
CONTROL_INTERFERENCE_MAX_LOSS = 0.20

#: Throughput below which a client counts as starved / not connected in the
#: coverage metrics (Figure 9).  50 kb/s is ~5% of the 1 Mb/s target rate.
STARVATION_THRESHOLD_BPS = 50e3

#: Radio-link-failure model, calibrated to the Section 6.3.1 observation
#: that data interference at low SINR causes "frequent disconnections"
#: (which control-channel interference alone does not).  Below
#: ``RLF_SAFE_SINR_DB`` the per-epoch disconnection probability ramps up
#: linearly, saturating at ``RLF_MAX_PROBABILITY``.
RLF_SAFE_SINR_DB = 5.0
RLF_SLOPE_PER_DB = 0.08
RLF_MAX_PROBABILITY = 0.9


def _elementwise_db(ratio: np.ndarray) -> np.ndarray:
    """``10 * log10`` per element, through ``math.log10``.

    NumPy's vectorised ``log10`` uses SIMD polynomials that differ from
    libm in the last ulp, which would break the bit-for-bit equivalence
    between the epoch backends.  The element count per epoch is small
    (clients x subchannels), so scalar libm calls are cheap.
    """
    flat = np.array([10.0 * math.log10(v) for v in ratio.flat])
    return flat.reshape(ratio.shape)


def rlf_probability(data_sinr_db: float) -> float:
    """Per-epoch probability of radio link failure at a given data SINR."""
    if data_sinr_db >= RLF_SAFE_SINR_DB:
        return 0.0
    return min(
        RLF_MAX_PROBABILITY, RLF_SLOPE_PER_DB * (RLF_SAFE_SINR_DB - data_sinr_db)
    )


@dataclass
class ClientObservation:
    """Per-client sensing state an AP can legitimately learn in one epoch.

    Attributes:
        subband_cqi: latest reported CQI per subchannel (post-quantisation).
        max_subband_cqi: per-subchannel max-tracked CQI -- the estimate of
            interference-free quality the utility function uses.
        interference_detected: noisy detector verdict per subchannel.
        scheduled_fraction: airtime fraction per subchannel last epoch.
    """

    subband_cqi: List[int]
    max_subband_cqi: List[int]
    interference_detected: List[bool]
    scheduled_fraction: Dict[int, float] = field(default_factory=dict)


@dataclass
class ApObservation:
    """Everything one AP senses during an epoch (no explicit coordination).

    Attributes:
        ap_id: the observing access point.
        n_active_clients: its own active client count (N_i).
        estimated_contenders: PRACH-estimated active clients in the
            neighbourhood, including its own (NP_i).
        clients: per-client sensing detail.
    """

    ap_id: int
    n_active_clients: int
    estimated_contenders: int
    clients: Dict[int, ClientObservation] = field(default_factory=dict)


# Observations cross epoch boundaries (this epoch's sensing feeds the next
# decision), so epoch-granular checkpoints must serialize them.
register_dataclass(ClientObservation)
register_dataclass(ApObservation)


@dataclass
class EpochResult:
    """Outcome of one simulated epoch.

    Attributes:
        epoch_index: zero-based epoch number.
        served_bits: bits delivered per client.
        throughput_bps: epoch-average throughput per client.
        allocations: scheduler outcome per AP.
        observations: sensing snapshot per AP (input for the next decision).
        connected: whether each client cleared the starvation threshold.
    """

    epoch_index: int
    served_bits: Dict[int, float]
    throughput_bps: Dict[int, float]
    allocations: Dict[int, Allocation]
    observations: Dict[int, ApObservation]
    connected: Dict[int, bool]


@dataclass
class _EpochLinks:
    """What one backend computes for one AP before scheduling.

    ``observe`` is deferred (called after the scheduler ran) so detector
    RNG draws happen at the same point of the stream in both backends.
    """

    rate_fn: Callable[[int, int], float]
    disconnected: Set[int]
    observe: Callable[[Allocation, np.random.Generator], ApObservation]


class SubchannelPolicy(Protocol):
    """Decides each AP's allowed subchannels at the start of every epoch."""

    def decide(
        self,
        epoch_index: int,
        observations: Optional[Dict[int, ApObservation]],
    ) -> Dict[int, Set[int]]:
        """Return allowed subchannels per AP for the coming epoch.

        ``observations`` is ``None`` on the first epoch (nothing sensed yet).
        """


class AllSubchannelsPolicy:
    """Plain LTE: every AP transmits on the full carrier, uncoordinated."""

    def __init__(self, ap_ids: Sequence[int], n_subchannels: int) -> None:
        self._decision = {
            ap_id: set(range(n_subchannels)) for ap_id in ap_ids
        }

    def decide(self, epoch_index, observations):
        """All subchannels for everyone, always."""
        return {ap: set(subs) for ap, subs in self._decision.items()}


class LteNetworkSimulator:
    """System-level simulator of co-channel LTE cells on a shared carrier.

    Args:
        topology: node placement (shared across compared technologies).
        grid: the LTE carrier all cells share (paper: 5 MHz, TDD config 4).
        channel: propagation model.
        rngs: named random streams (detector noise, scheduling tie-breaks).
        ap_tx_power_dbm: per-cell conducted power (paper sims: 30 dBm).
        ue_tx_power_dbm: client power (TVWS cap: 20 dBm).
        noise_figure_db: client receiver noise figure.
        scheduler_factory: constructs one scheduler per AP.
        control_interference: apply the Figure 7(b) control-channel loss.
        epoch_s: epoch duration (the 1 s allocation interval).
        backend: ``"vectorized"`` (default) or ``"scalar"``; both produce
            bit-identical results for the same seeds.
        gain_cache: optional pre-built :class:`GainMatrixCache` for this
            topology/channel (shared with other consumers); built
            internally when omitted.
    """

    def __init__(
        self,
        topology: Topology,
        grid: ResourceGrid,
        channel: CompositeChannel,
        rngs: RngStreams,
        ap_tx_power_dbm: float = 30.0,
        ue_tx_power_dbm: float = 20.0,
        noise_figure_db: float = 7.0,
        scheduler_factory: Callable[[], Scheduler] = ProportionalFairScheduler,
        control_interference: bool = True,
        epoch_s: float = 1.0,
        detector_true_positive: float = CQI_DETECTOR_TRUE_POSITIVE,
        detector_false_positive: float = CQI_DETECTOR_FALSE_POSITIVE,
        backend: str = BACKEND_VECTORIZED,
        gain_cache: Optional[GainMatrixCache] = None,
    ) -> None:
        self.topology = topology
        self.grid = grid
        self.channel = channel
        self.rngs = rngs
        self.ap_tx_power_dbm = ap_tx_power_dbm
        self.ue_tx_power_dbm = ue_tx_power_dbm
        self.noise_figure_db = noise_figure_db
        self.control_interference = control_interference
        self.epoch_s = epoch_s
        if backend not in (BACKEND_SCALAR, BACKEND_VECTORIZED):
            raise ValueError(
                f"backend must be {BACKEND_SCALAR!r} or {BACKEND_VECTORIZED!r}, "
                f"got {backend!r}"
            )
        self.backend = backend
        if not 0.0 <= detector_false_positive <= detector_true_positive <= 1.0:
            raise ValueError(
                "require 0 <= detector_false_positive <= detector_true_positive <= 1"
            )
        self.detector_true_positive = detector_true_positive
        self.detector_false_positive = detector_false_positive
        self.schedulers: Dict[int, Scheduler] = {
            ap.ap_id: scheduler_factory() for ap in topology.aps
        }
        self.gain_cache = (
            gain_cache
            if gain_cache is not None
            else GainMatrixCache(channel, topology.aps, topology.clients)
        )
        self._precompute_link_powers()
        self._max_cqi_state: Dict[Tuple[int, int], int] = {}

    # -- Precomputation -------------------------------------------------------

    def _precompute_link_powers(self) -> None:
        """Cache per-RB received powers for every (client, AP) pair.

        Builds both the scalar per-link dicts (reference backend) and the
        dense matrices the vectorized backend indexes; both are filled from
        the same :class:`GainMatrixCache` queries, one client row at a time
        (see :meth:`_refresh_client_links`), so a mobility update refreshes
        exactly one row of everything.
        """
        # Power spectral density: total power spread across all RBs.
        psd_offset_db = 10.0 * math.log10(self.grid.n_rbs)
        self._per_rb_tx_dbm = self.ap_tx_power_dbm - psd_offset_db
        self._prach_noise_dbm = thermal_noise_dbm(
            PRACH_BANDWIDTH_HZ, self.noise_figure_db
        )
        # Noise over one subchannel (use the nominal subband width).
        self._subchannel_noise_dbm = thermal_noise_dbm(
            self.grid.subband_rbs * RB_BANDWIDTH_HZ, self.noise_figure_db
        )
        self._rb_noise_dbm = thermal_noise_dbm(RB_BANDWIDTH_HZ, self.noise_figure_db)
        self._rb_noise_w = dbm_to_watt(self._rb_noise_dbm)

        clients = self.topology.clients
        aps = self.topology.aps
        self._client_row: Dict[int, int] = dict(self.gain_cache.client_index)
        self._ap_col: Dict[int, int] = dict(self.gain_cache.ap_index)
        n_clients, n_aps = len(clients), len(aps)

        self._rx_rb_dbm: Dict[Tuple[int, int], float] = {}
        self._rx_rb_w: Dict[Tuple[int, int], float] = {}
        self._prach_audible: Dict[Tuple[int, int], bool] = {}
        self._rx_dbm_mat = np.zeros((n_clients, n_aps))
        self._rx_w_mat = np.zeros((n_clients, n_aps))
        self._prach_mat = np.zeros((n_clients, n_aps), dtype=bool)
        for client in clients:
            self._refresh_client_links(client)

        self._rows_of_ap: Dict[int, np.ndarray] = {
            ap.ap_id: np.array(
                [
                    self._client_row[c.client_id]
                    for c in self.topology.clients_of(ap.ap_id)
                ],
                dtype=np.intp,
            )
            for ap in aps
        }

        # Lookup tables for the vectorized kernel.  The rate table is built
        # through the very same scalar grid call the reference backend makes,
        # so table lookups are bit-identical to recomputation.
        n_subs = self.grid.n_subchannels
        self._cqi_min_sinr = np.array([e.min_sinr_db for e in LTE_CQI_TABLE])
        self._rate_table = np.zeros((len(LTE_CQI_TABLE) + 1, n_subs))
        for cqi in range(1, len(LTE_CQI_TABLE) + 1):
            eff = efficiency_from_cqi(cqi)
            for sub in range(n_subs):
                self._rate_table[cqi, sub] = self.grid.subchannel_downlink_rate_bps(
                    eff, sub
                )
        self._harq_cache: Dict[Tuple[float, int], float] = {}
        self._max_cqi_vec = np.zeros((n_clients, n_subs), dtype=np.int64)

    def _refresh_client_links(self, client) -> None:
        """(Re)compute every cached link quantity for one client.

        Used for the initial fill and after :meth:`move_client`.  All losses
        come from the gain cache; the channel is reciprocal so one cached
        entry serves the downlink data path and the uplink PRACH path.
        """
        cid = client.client_id
        row = self._client_row[cid]
        # Uplink PRACH open-loop power control toward the *serving* cell.
        serving_loss = self.gain_cache.loss_db(cid, client.ap_id)
        prach_tx_dbm = min(self.ue_tx_power_dbm, PRACH_TARGET_RX_DBM + serving_loss)
        for ap in self.topology.aps:
            loss = self.gain_cache.loss_db(cid, ap.ap_id)
            rx_dbm = self._per_rb_tx_dbm - loss
            rx_w = dbm_to_watt(rx_dbm)
            snr = prach_tx_dbm - loss - self._prach_noise_dbm
            audible = snr >= PRACH_DETECTION_SNR_DB
            col = self._ap_col[ap.ap_id]
            self._rx_rb_dbm[(cid, ap.ap_id)] = rx_dbm
            self._rx_rb_w[(cid, ap.ap_id)] = rx_w
            self._prach_audible[(cid, ap.ap_id)] = audible
            self._rx_dbm_mat[row, col] = rx_dbm
            self._rx_w_mat[row, col] = rx_w
            self._prach_mat[row, col] = audible

    def move_client(self, client_id: int, x: float, y: float) -> None:
        """Relocate a client (mobility step) and refresh its cached links.

        Invalidates exactly one row of the gain cache and of every derived
        power table; all other links stay untouched.
        """
        site = self.topology.move_client(client_id, x, y)
        self.gain_cache.invalidate_client(client_id, site)
        self._refresh_client_links(site)

    # -- Radio queries ----------------------------------------------------------

    def rx_rb_power_dbm(self, client_id: int, ap_id: int) -> float:
        """Per-RB received power at a client from an AP."""
        return self._rx_rb_dbm[(client_id, ap_id)]

    def prach_audible(self, client_id: int, ap_id: int) -> bool:
        """Whether ``ap_id`` can detect PRACH preambles of ``client_id``."""
        return self._prach_audible[(client_id, ap_id)]

    def sinr_db(
        self,
        client_id: int,
        serving_ap: int,
        interfering_aps: Sequence[int],
    ) -> float:
        """Per-RB SINR at a client for a given co-RB interferer set."""
        signal_w = self._rx_rb_w[(client_id, serving_ap)]
        noise_w = self._rb_noise_w
        interference_w = sum(
            self._rx_rb_w[(client_id, ap)] for ap in interfering_aps
        )
        return linear_to_db(signal_w / (noise_w + interference_w))

    def clean_sinr_db(self, client_id: int, serving_ap: int) -> float:
        """SINR with no secondary-user interference (SNR)."""
        return self.sinr_db(client_id, serving_ap, ())

    def _weighted_sinr_db(
        self,
        client_id: int,
        serving_ap: int,
        interfering_aps: Sequence[int],
        weights: Sequence[float],
    ) -> float:
        """SINR with per-interferer duty-cycle weights in [0, 1]."""
        signal_w = self._rx_rb_w[(client_id, serving_ap)]
        noise_w = self._rb_noise_w
        interference_w = sum(
            w * self._rx_rb_w[(client_id, ap)]
            for ap, w in zip(interfering_aps, weights)
        )
        return linear_to_db(signal_w / (noise_w + interference_w))

    def control_interference_scale(
        self, client_id: int, serving_ap: int, co_channel_aps: Sequence[int]
    ) -> float:
        """Goodput multiplier for CRS/PDCCH interference (Figure 7(b)).

        The loss decays with the signal-to-strongest-interferer ratio: ~20%
        when the interferer is as strong as the serving cell, negligible
        beyond ~+20 dB.
        """
        if not self.control_interference or not co_channel_aps:
            return 1.0
        signal = self._rx_rb_dbm[(client_id, serving_ap)]
        strongest = max(
            self._rx_rb_dbm[(client_id, ap)] for ap in co_channel_aps
        )
        sir_db = signal - strongest
        loss = CONTROL_INTERFERENCE_MAX_LOSS * math.exp(-max(sir_db, 0.0) / 10.0)
        return 1.0 - min(loss, CONTROL_INTERFERENCE_MAX_LOSS)

    # -- Epoch execution -----------------------------------------------------------

    def run_epoch(
        self,
        epoch_index: int,
        allowed: Dict[int, Set[int]],
        demands_bits: Dict[int, float],
    ) -> EpochResult:
        """Simulate one epoch under the given subchannel assignment.

        Args:
            epoch_index: epoch number (for bookkeeping only).
            allowed: allowed subchannels per AP.
            demands_bits: downlink demand per client for this epoch
                (``inf`` = saturated).

        Returns:
            The epoch outcome including the sensing observations a policy
            needs for the next decision.
        """
        tel = _obs_runtime.active()
        span = None
        if tel is not None:
            # Epoch drivers have no event engine, so the telemetry clock
            # follows the epoch boundary here.
            tel.set_time(epoch_index * self.epoch_s)
            span = tel.span("lte.epoch", cat="sim", args={"epoch": epoch_index})
            span.__enter__()

        active_aps = {
            ap.ap_id
            for ap in self.topology.aps
            if any(
                demands_bits.get(c.client_id, 0.0) > 0.0
                for c in self.topology.clients_of(ap.ap_id)
            )
        }

        # Per-subchannel interferer sets (only active cells interfere).
        interferers_on: Dict[int, List[int]] = {
            sub: [
                ap_id
                for ap_id, subs in allowed.items()
                if sub in subs and ap_id in active_aps
            ]
            for sub in range(self.grid.n_subchannels)
        }

        served_bits: Dict[int, float] = {}
        throughput: Dict[int, float] = {}
        allocations: Dict[int, Allocation] = {}
        observations: Dict[int, ApObservation] = {}
        connected: Dict[int, bool] = {}

        detector_rng = self.rngs.stream("cqi-detector")
        rlf_rng = self.rngs.stream("rlf")

        vectorized = self.backend == BACKEND_VECTORIZED
        if vectorized:
            # Epoch-wide active-client mask in gain-matrix row order, for
            # the PRACH contention estimate.
            active_client_vec = np.fromiter(
                (
                    demands_bits.get(c.client_id, 0.0) > 0.0
                    for c in self.topology.clients
                ),
                dtype=bool,
                count=len(self.topology.clients),
            )

        for ap in self.topology.aps:
            clients = self.topology.clients_of(ap.ap_id)
            ap_demands = {
                c.client_id: demands_bits.get(c.client_id, 0.0) for c in clients
            }
            ap_active_demands = {
                cid: d for cid, d in ap_demands.items() if d > 0.0
            }
            co_channel = [a.ap_id for a in self.topology.aps
                          if a.ap_id != ap.ap_id and a.ap_id in active_aps]

            if vectorized:
                links = self._vector_links(
                    ap, clients, allowed, active_aps, co_channel,
                    ap_demands, ap_active_demands, active_client_vec, rlf_rng,
                )
            else:
                links = self._scalar_links(
                    ap, clients, allowed, interferers_on, co_channel,
                    ap_demands, ap_active_demands, demands_bits, rlf_rng,
                )
            for cid in links.disconnected:
                ap_active_demands.pop(cid, None)

            if ap_active_demands and ap.ap_id in active_aps:
                allocation = self.schedulers[ap.ap_id].allocate(
                    sorted(allowed.get(ap.ap_id, set())),
                    ap_active_demands,
                    links.rate_fn,
                    self.epoch_s,
                )
            else:
                allocation = Allocation(epoch_s=self.epoch_s)
            allocations[ap.ap_id] = allocation

            for client in clients:
                bits = allocation.served_bits.get(client.client_id, 0.0)
                served_bits[client.client_id] = bits
                throughput[client.client_id] = bits / self.epoch_s
                demanded = ap_demands[client.client_id]
                if demanded > 0.0:
                    # A client with unmet demand and ~no service is starved.
                    satisfied = bits >= min(
                        demanded, STARVATION_THRESHOLD_BPS * self.epoch_s
                    )
                    connected[client.client_id] = satisfied
                else:
                    connected[client.client_id] = True

            observations[ap.ap_id] = links.observe(allocation, detector_rng)

        if tel is not None:
            span.__exit__(None, None, None)
            tel.inc("lte.epochs")
            tel.inc("lte.served_bits", sum(served_bits.values()))
            tel.inc(
                "lte.starved_clients",
                sum(1 for ok in connected.values() if not ok),
            )
            tel.gauge(
                "lte.connected_clients",
                sum(1 for ok in connected.values() if ok),
            )
            for obs in observations.values():
                tel.inc("prach.estimations")
                tel.observe(
                    "prach.estimated_contenders",
                    obs.estimated_contenders,
                    edges=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
                )
                tel.inc("cqi.reports", len(obs.clients))
                tel.inc(
                    "cqi.interference_flags",
                    sum(
                        sum(1 for hit in c.interference_detected if hit)
                        for c in obs.clients.values()
                    ),
                )
            # One series point per epoch, keyed by sim-time.
            tel.tick((epoch_index + 1) * self.epoch_s)

        return EpochResult(
            epoch_index=epoch_index,
            served_bits=served_bits,
            throughput_bps=throughput,
            allocations=allocations,
            observations=observations,
            connected=connected,
        )

    # -- Epoch backends ----------------------------------------------------------

    def _harq_scale(self, sinr_db: float, cqi: int) -> float:
        """:func:`harq_goodput_scale` memoised on (SINR, CQI).

        SINRs repeat heavily within an epoch (one value per client-subchannel
        link, stable while the interferer sets are stable), so the cache hit
        rate is high.  Cached values are the exact function outputs, keeping
        both backends bit-identical to direct evaluation.
        """
        key = (sinr_db, cqi)
        value = self._harq_cache.get(key)
        if value is None:
            value = harq_goodput_scale(sinr_db, cqi)
            self._harq_cache[key] = value
        return value

    def _scalar_links(
        self,
        ap,
        clients,
        allowed: Dict[int, Set[int]],
        interferers_on: Dict[int, List[int]],
        co_channel: List[int],
        ap_demands: Dict[int, float],
        ap_active_demands: Dict[int, float],
        demands_bits: Dict[int, float],
        rlf_rng: np.random.Generator,
    ) -> _EpochLinks:
        """Reference backend: per-link loops, one SINR query at a time."""
        # SINR per (client, subchannel), with and without interference.
        sinr_map: Dict[Tuple[int, int], float] = {}
        clean_map: Dict[int, float] = {}
        for client in clients:
            clean_map[client.client_id] = self.clean_sinr_db(
                client.client_id, ap.ap_id
            )
            for sub in range(self.grid.n_subchannels):
                others = [
                    a for a in interferers_on[sub] if a != ap.ap_id
                ]
                sinr_map[(client.client_id, sub)] = self.sinr_db(
                    client.client_id, ap.ap_id, others
                )

        # Radio link failure: a client whose *data* SINR (interference
        # weighted by allocation overlap with the serving cell) is deep
        # in the mud may drop its connection for the epoch -- the
        # "frequent disconnections" of Section 6.3.1.
        my_subs = allowed.get(ap.ap_id, set())
        disconnected: Set[int] = set()
        for client in clients:
            cid = client.client_id
            if ap_demands[cid] <= 0.0 or not my_subs:
                continue
            weights = []
            sources = []
            for other in co_channel:
                overlap = len(my_subs & allowed.get(other, set()))
                if overlap:
                    sources.append(other)
                    weights.append(overlap / len(my_subs))
            if not sources:
                # Noise-limited links do not drop: the paper observed
                # disconnections only under *data* interference
                # (Section 6.3.1), never on the clean long links of
                # the Figure 1 drive test.
                continue
            data_sinr = self._weighted_sinr_db(cid, ap.ap_id, sources, weights)
            if rlf_rng.random() < rlf_probability(data_sinr):
                disconnected.add(cid)

        def rate_fn(client_id: int, sub: int, _ap=ap, _sinr=sinr_map,
                    _co=co_channel) -> float:
            sinr = _sinr[(client_id, sub)]
            cqi = cqi_from_sinr(sinr)
            if cqi == CQI_OUT_OF_RANGE:
                return 0.0
            eff = efficiency_from_cqi(cqi)
            rate = self.grid.subchannel_downlink_rate_bps(eff, sub)
            rate *= harq_goodput_scale(sinr, cqi)
            rate *= self.control_interference_scale(client_id, _ap.ap_id, _co)
            return rate

        def observe(allocation: Allocation, rng: np.random.Generator):
            return self._observe(
                ap.ap_id,
                clients,
                ap_active_demands,
                sinr_map,
                clean_map,
                allocation,
                demands_bits,
                rng,
            )

        return _EpochLinks(
            rate_fn=rate_fn, disconnected=disconnected, observe=observe
        )

    def _vector_links(
        self,
        ap,
        clients,
        allowed: Dict[int, Set[int]],
        active_aps: Set[int],
        co_channel: List[int],
        ap_demands: Dict[int, float],
        ap_active_demands: Dict[int, float],
        active_client_vec: np.ndarray,
        rlf_rng: np.random.Generator,
    ) -> _EpochLinks:
        """Vectorized backend: whole-matrix kernels over the cached gains.

        Bit-for-bit identical to :meth:`_scalar_links` by construction:

        * interference accumulates per interferer in ``allowed`` iteration
          order, exactly as the scalar per-subchannel sums do (adding an
          exact ``0.0`` for subchannels an interferer does not hold is a
          bitwise no-op on IEEE-754 positive sums);
        * dB conversion uses the same ``10 * math.log10`` per element
          (NumPy's SIMD ``log10`` is *not* bit-identical to libm);
        * CQI quantisation via ``searchsorted(side="right")`` equals the
          table walk in :func:`cqi_from_sinr`;
        * rates come from a table prefilled with the scalar grid function,
          and RNG draws are batched -- NumPy's batched ``random`` yields
          the same doubles as repeated scalar draws.
        """
        ap_id = ap.ap_id
        n_subs = self.grid.n_subchannels
        rows = self._rows_of_ap[ap_id]
        col = self._ap_col[ap_id]
        W = self._rx_w_mat
        m = len(rows)

        signal_w = W[rows, col]                      # (m,)
        interference_w = np.zeros((m, n_subs))       # (m, n_subs)
        mask = np.empty(n_subs)
        for other_id, subs in allowed.items():
            if other_id == ap_id or other_id not in active_aps:
                continue
            mask[:] = 0.0
            for sub in subs:
                if 0 <= sub < n_subs:
                    mask[sub] = 1.0
            interference_w += W[rows, self._ap_col[other_id]][:, None] * mask

        ratio = signal_w[:, None] / (self._rb_noise_w + interference_w)
        sinr = _elementwise_db(ratio)
        clean_db = _elementwise_db(signal_w / self._rb_noise_w)
        cqi = np.searchsorted(self._cqi_min_sinr, sinr, side="right")
        clean_cqi = np.searchsorted(self._cqi_min_sinr, clean_db, side="right")

        # Rate matrix: table rate x HARQ scale x control-channel scale,
        # in the same multiply order as the scalar rate_fn.
        base = self._rate_table[cqi, np.arange(n_subs)]
        harq = np.empty((m, n_subs))
        sinr_rows = sinr.tolist()
        cqi_rows = cqi.tolist()
        for i in range(m):
            sinr_i, cqi_i = sinr_rows[i], cqi_rows[i]
            for k in range(n_subs):
                harq[i, k] = self._harq_scale(sinr_i[k], cqi_i[k])
        if not self.control_interference or not co_channel:
            ctrl = np.ones(m)
        else:
            cols = np.array(
                [self._ap_col[a] for a in co_channel], dtype=np.intp
            )
            strongest = self._rx_dbm_mat[rows[:, None], cols[None, :]].max(axis=1)
            sir_db = (self._rx_dbm_mat[rows, col] - strongest).tolist()
            ctrl = np.array(
                [
                    1.0
                    - min(
                        CONTROL_INTERFERENCE_MAX_LOSS
                        * math.exp(-max(s, 0.0) / 10.0),
                        CONTROL_INTERFERENCE_MAX_LOSS,
                    )
                    for s in sir_db
                ]
            )
        rate = base * harq
        rate *= ctrl[:, None]

        # Radio link failure (same model and RNG draw order as the scalar
        # backend: one draw per demanding client when co-channel data
        # interference exists).
        my_subs = allowed.get(ap_id, set())
        disconnected: Set[int] = set()
        if my_subs:
            source_cols = []
            weights = []
            for other in co_channel:
                overlap = len(my_subs & allowed.get(other, set()))
                if overlap:
                    source_cols.append(self._ap_col[other])
                    weights.append(overlap / len(my_subs))
            if source_cols:
                weighted_w = np.zeros(m)
                for c, w in zip(source_cols, weights):
                    weighted_w += w * W[rows, c]
                data_ratio = (
                    signal_w / (self._rb_noise_w + weighted_w)
                ).tolist()
                for i, client in enumerate(clients):
                    if ap_demands[client.client_id] <= 0.0:
                        continue
                    data_sinr = 10.0 * math.log10(data_ratio[i])
                    if rlf_rng.random() < rlf_probability(data_sinr):
                        disconnected.add(client.client_id)

        rate_rows = {
            clients[i].client_id: rate[i].tolist() for i in range(m)
        }

        def rate_fn(client_id: int, sub: int) -> float:
            return rate_rows[client_id][sub]

        def observe(allocation: Allocation, rng: np.random.Generator):
            estimated = int(
                np.count_nonzero(active_client_vec & self._prach_mat[:, col])
            )
            draws = rng.random((m, n_subs))
            best = np.maximum(self._max_cqi_vec[rows], cqi)
            self._max_cqi_vec[rows] = best
            truly_interfered = (clean_cqi[:, None] > 0) & (
                cqi < INTERFERENCE_CQI_DROP_FRACTION * clean_cqi[:, None]
            )
            threshold = np.where(
                truly_interfered,
                self.detector_true_positive,
                self.detector_false_positive,
            )
            flags = draws < threshold
            best_rows = best.tolist()
            flag_rows = flags.tolist()
            client_obs: Dict[int, ClientObservation] = {}
            for i in range(m):
                cid = clients[i].client_id
                fractions = {
                    sub: allocation.fraction(cid, sub) for sub in range(n_subs)
                }
                client_obs[cid] = ClientObservation(
                    subband_cqi=cqi_rows[i],
                    max_subband_cqi=best_rows[i],
                    interference_detected=flag_rows[i],
                    scheduled_fraction=fractions,
                )
            return ApObservation(
                ap_id=ap_id,
                n_active_clients=len(ap_active_demands),
                estimated_contenders=max(estimated, len(ap_active_demands), 1),
                clients=client_obs,
            )

        return _EpochLinks(
            rate_fn=rate_fn, disconnected=disconnected, observe=observe
        )

    # -- Sensing ----------------------------------------------------------------

    def _observe(
        self,
        ap_id: int,
        clients,
        active_demands: Dict[int, float],
        sinr_map: Dict[Tuple[int, int], float],
        clean_map: Dict[int, float],
        allocation: Allocation,
        all_demands: Dict[int, float],
        rng: np.random.Generator,
    ) -> ApObservation:
        """Build the sensing snapshot one AP gathers in an epoch."""
        # PRACH-based contention estimate: active clients (anyone's) whose
        # preamble is audible at this AP at >= -10 dB.
        estimated = 0
        for client in self.topology.clients:
            if all_demands.get(client.client_id, 0.0) <= 0.0:
                continue
            if self._prach_audible[(client.client_id, ap_id)]:
                estimated += 1

        client_obs: Dict[int, ClientObservation] = {}
        n_subs = self.grid.n_subchannels
        for client in clients:
            cid = client.client_id
            subband_cqi = []
            detected = []
            max_cqi = []
            for sub in range(n_subs):
                sinr = sinr_map[(cid, sub)]
                cqi = cqi_from_sinr(sinr)
                subband_cqi.append(cqi)
                key = (cid, sub)
                best = max(self._max_cqi_state.get(key, 0), cqi)
                self._max_cqi_state[key] = best
                max_cqi.append(best)
                clean_cqi = cqi_from_sinr(clean_map[cid])
                truly_interfered = (
                    clean_cqi > 0
                    and cqi < INTERFERENCE_CQI_DROP_FRACTION * clean_cqi
                )
                if truly_interfered:
                    flag = rng.random() < self.detector_true_positive
                else:
                    flag = rng.random() < self.detector_false_positive
                detected.append(flag)
            fractions = {
                sub: allocation.fraction(cid, sub) for sub in range(n_subs)
            }
            client_obs[cid] = ClientObservation(
                subband_cqi=subband_cqi,
                max_subband_cqi=max_cqi,
                interference_detected=detected,
                scheduled_fraction=fractions,
            )

        return ApObservation(
            ap_id=ap_id,
            n_active_clients=len(active_demands),
            estimated_contenders=max(estimated, len(active_demands), 1),
            clients=client_obs,
        )

    # -- Convenience driver --------------------------------------------------------

    def run(
        self,
        n_epochs: int,
        policy: SubchannelPolicy,
        demand_fn: Callable[[int], Dict[int, float]],
    ) -> List[EpochResult]:
        """Run ``n_epochs`` with ``policy`` deciding allocations.

        Args:
            n_epochs: number of 1 s epochs.
            policy: subchannel policy (plain LTE, CellFi, oracle...).
            demand_fn: epoch index -> per-client demand in bits.
        """
        results: List[EpochResult] = []
        observations: Optional[Dict[int, ApObservation]] = None
        for epoch in range(n_epochs):
            allowed = policy.decide(epoch, observations)
            result = self.run_epoch(epoch, allowed, demand_fn(epoch))
            observations = result.observations
            results.append(result)
        return results

    # -- Checkpointing -------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Cross-epoch mutable state.

        ``_harq_cache`` is excluded on purpose: it memoises a deterministic
        function, so a cold cache recomputes identical values.  The epoch
        RNG streams ("cqi-detector", "rlf") belong to the shared
        :class:`~repro.sim.rng.RngStreams` subsystem and are restored
        there.  ``max_cqi_state`` is tuple-keyed, so it is flattened into
        sorted ``[client, subchannel, cqi]`` triples.
        """
        return {
            "schedulers": {
                ap_id: (
                    scheduler.state_dict()
                    if hasattr(scheduler, "state_dict")
                    else None
                )
                for ap_id, scheduler in self.schedulers.items()
            },
            "max_cqi_state": [
                [cid, sub, cqi]
                for (cid, sub), cqi in sorted(self._max_cqi_state.items())
            ],
            "max_cqi_vec": self._max_cqi_vec,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        for ap_id, sched_state in state["schedulers"].items():
            scheduler = self.schedulers[int(ap_id)]
            if sched_state is not None and hasattr(scheduler, "load_state"):
                scheduler.load_state(sched_state)
        self._max_cqi_state = {
            (int(cid), int(sub)): int(cqi)
            for cid, sub, cqi in state["max_cqi_state"]
        }
        self._max_cqi_vec = np.asarray(
            state["max_cqi_vec"], dtype=np.int64
        ).reshape(self._max_cqi_vec.shape)
