"""Epoch-driven system-level LTE network simulator.

This module glues topology, PHY and MAC into the simulator used for the
paper's large-scale evaluation (Section 6.3.4).  It follows the standard
system-level methodology (the same one ns-3's LTE module uses): radio
quantities are evaluated analytically per *epoch* -- the 1-second
interference-management period -- while everything the paper's claims hinge
on is modelled explicitly:

* per-subchannel SINR including co-channel interference from other cells,
* control-channel (CRS/PDCCH) interference calibrated to Figure 7(b):
  a strong co-channel cell costs up to ~20% goodput even with no data,
* HARQ goodput scaling, CQI quantisation, PF scheduling,
* PRACH audibility at the -10 dB detector operating point,
* imperfect interference detection (2% false positives, 80% true
  positives -- the constants the paper measured and fed to its simulator).

A *subchannel policy* decides each AP's allowed subchannels every epoch.
Plain LTE uses :class:`AllSubchannelsPolicy`; CellFi plugs in its
interference manager (:mod:`repro.core`); the centralized oracle plugs in a
graph-coloring allocator (:mod:`repro.baselines.oracle`).

Three interchangeable epoch backends compute the radio quantities:

* ``backend="scalar"`` -- the reference implementation: per-link Python
  loops, easy to audit against the formulas in ``docs/SIMULATION.md``;
* ``backend="vectorized"`` (default) -- whole-matrix NumPy kernels over a
  cached AP<->client gain matrix.  Interference sums accumulate in the
  same per-interferer order and dB conversions go through the same
  ``math.log10`` calls, so the two backends are *bit-identical* for the
  same seeds (``tests/test_lte_network_vectorized.py`` enforces this);
* ``backend="incremental"`` -- the vectorized kernels plus a dirty-row
  tracker: per-AP SINR/CQI/rate blocks are cached and only recomputed
  when an event (mobility, handover/re-attach, a hopping decision, an
  activity change) invalidates them.  Interference from APs the cell
  cannot hear (culled by the gain cache's path-loss horizon) is skipped
  -- adding an exact ``0.0`` to an IEEE-754 sum is a bitwise no-op, so
  the backend stays bit-identical to the scalar oracle
  (``tests/test_lte_network_incremental.py`` enforces this).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Protocol, Sequence, Set, Tuple

import numpy as np

from repro.lte.scheduler import Allocation, ProportionalFairScheduler, Scheduler
from repro.obs import runtime as _obs_runtime
from repro.phy.harq import harq_goodput_scale
from repro.phy.mcs import (
    CQI_OUT_OF_RANGE,
    LTE_CQI_TABLE,
    cqi_from_sinr,
    efficiency_from_cqi,
)
from repro.phy.propagation import FILL_BATCHED, CompositeChannel, GainMatrixCache
from repro.phy.resource_grid import RB_BANDWIDTH_HZ, ResourceGrid
from repro.sim.checkpoint import register_dataclass
from repro.sim.rng import RngStreams
from repro.sim.topology import Topology
from repro.utils.dbmath import dbm_to_watt, linear_to_db, thermal_noise_dbm

#: Epoch-kernel backend names.
BACKEND_SCALAR = "scalar"
BACKEND_VECTORIZED = "vectorized"
BACKEND_INCREMENTAL = "incremental"
_BACKENDS = (BACKEND_SCALAR, BACKEND_VECTORIZED, BACKEND_INCREMENTAL)

#: SINR sentinel for links with exactly zero received signal power (a
#: client beyond the culling horizon of its serving AP, or a signal that
#: underflowed to 0.0 W).  ``log10(0)`` is ``-inf`` and NaN compares
#: unordered in ``searchsorted`` -- which used to map dead links to the
#: *highest* CQI bin.  A large-but-finite floor keeps every downstream
#: consumer on its ordinary path: CQI 0 (out of range), rate 0, HARQ
#: scale 0 and maximum radio-link-failure probability.
ZERO_SIGNAL_SINR_DB = -400.0

#: PRACH occupies 6 RBs (1.08 MHz); audibility is evaluated over this band.
PRACH_BANDWIDTH_HZ = 6 * RB_BANDWIDTH_HZ

#: The PRACH detector's reliable operating point (paper Section 6.3.3):
#: preambles below -10 dB SNR are not counted.
PRACH_DETECTION_SNR_DB = -10.0

#: PRACH open-loop power control target (TS 36.213
#: preambleInitialReceivedTargetPower): a UE transmits just enough for its
#: serving cell to receive the preamble at this level, so nearby clients
#: radiate far less than the 20 dBm cap.  This is what localises the
#: paper's contention estimate: an AP overhears exactly the clients whose
#: path loss to it is within ~a dozen dB of their serving-cell path loss --
#: the clients its downlink would actually disturb.
PRACH_TARGET_RX_DBM = -104.0

#: Interference-detection quality measured on the testbed (Section 6.3.2)
#: and injected into the large-scale simulation, as the paper did.
CQI_DETECTOR_TRUE_POSITIVE = 0.80
CQI_DETECTOR_FALSE_POSITIVE = 0.02

#: Interference ground truth follows the paper's estimator semantics: a
#: subchannel is "bad" when its CQI falls below this fraction of the
#: interference-free CQI.  Crucially this is *rate-relative*: a client next
#: to its AP keeps CQI 15 despite a weak interferer and is NOT considered
#: interfered -- the property the channel re-use heuristic exploits.
INTERFERENCE_CQI_DROP_FRACTION = 0.6

#: Control-channel interference ceiling calibrated to Figure 7(b): "the two
#: vary by at most 20% and in most cases much less than that".
CONTROL_INTERFERENCE_MAX_LOSS = 0.20

#: Throughput below which a client counts as starved / not connected in the
#: coverage metrics (Figure 9).  50 kb/s is ~5% of the 1 Mb/s target rate.
STARVATION_THRESHOLD_BPS = 50e3

#: Radio-link-failure model, calibrated to the Section 6.3.1 observation
#: that data interference at low SINR causes "frequent disconnections"
#: (which control-channel interference alone does not).  Below
#: ``RLF_SAFE_SINR_DB`` the per-epoch disconnection probability ramps up
#: linearly, saturating at ``RLF_MAX_PROBABILITY``.
RLF_SAFE_SINR_DB = 5.0
RLF_SLOPE_PER_DB = 0.08
RLF_MAX_PROBABILITY = 0.9


def _elementwise_db(ratio: np.ndarray) -> np.ndarray:
    """``10 * log10`` per element, through ``math.log10``.

    NumPy's vectorised ``log10`` uses SIMD polynomials that differ from
    libm in the last ulp, which would break the bit-for-bit equivalence
    between the epoch backends.  The element count per epoch is small
    (clients x subchannels), so scalar libm calls are cheap.

    Non-positive ratios (zero received signal on a culled or underflowed
    link) clamp to :data:`ZERO_SIGNAL_SINR_DB` instead of producing
    ``-inf``/NaN.
    """
    flat = np.array(
        [
            10.0 * math.log10(v) if v > 0.0 else ZERO_SIGNAL_SINR_DB
            for v in ratio.flat
        ]
    )
    return flat.reshape(ratio.shape)


def _control_scale(sir_db: float) -> float:
    """Figure 7(b) goodput multiplier from a signal-to-interferer ratio.

    Shared by all three epoch backends so the expression stays bit-for-bit
    identical.  ``sir_db`` may be infinite (one dead link) or NaN (both the
    serving and the strongest interfering link are dead); a dead serving
    link delivers zero rate anyway, so NaN resolves to "no control loss".
    """
    if math.isnan(sir_db):
        return 1.0
    loss = CONTROL_INTERFERENCE_MAX_LOSS * math.exp(-max(sir_db, 0.0) / 10.0)
    return 1.0 - min(loss, CONTROL_INTERFERENCE_MAX_LOSS)


def rlf_probability(data_sinr_db: float) -> float:
    """Per-epoch probability of radio link failure at a given data SINR."""
    if data_sinr_db >= RLF_SAFE_SINR_DB:
        return 0.0
    return min(
        RLF_MAX_PROBABILITY, RLF_SLOPE_PER_DB * (RLF_SAFE_SINR_DB - data_sinr_db)
    )


@dataclass
class ClientObservation:
    """Per-client sensing state an AP can legitimately learn in one epoch.

    Attributes:
        subband_cqi: latest reported CQI per subchannel (post-quantisation).
        max_subband_cqi: per-subchannel max-tracked CQI -- the estimate of
            interference-free quality the utility function uses.
        interference_detected: noisy detector verdict per subchannel.
        scheduled_fraction: airtime fraction per subchannel last epoch.
    """

    subband_cqi: List[int]
    max_subband_cqi: List[int]
    interference_detected: List[bool]
    scheduled_fraction: Dict[int, float] = field(default_factory=dict)


@dataclass
class ApObservation:
    """Everything one AP senses during an epoch (no explicit coordination).

    Attributes:
        ap_id: the observing access point.
        n_active_clients: its own active client count (N_i).
        estimated_contenders: PRACH-estimated active clients in the
            neighbourhood, including its own (NP_i).
        clients: per-client sensing detail.
    """

    ap_id: int
    n_active_clients: int
    estimated_contenders: int
    clients: Dict[int, ClientObservation] = field(default_factory=dict)


# Observations cross epoch boundaries (this epoch's sensing feeds the next
# decision), so epoch-granular checkpoints must serialize them.
register_dataclass(ClientObservation)
register_dataclass(ApObservation)


@dataclass
class EpochResult:
    """Outcome of one simulated epoch.

    Attributes:
        epoch_index: zero-based epoch number.
        served_bits: bits delivered per client.
        throughput_bps: epoch-average throughput per client.
        allocations: scheduler outcome per AP.
        observations: sensing snapshot per AP (input for the next decision).
        connected: whether each client cleared the starvation threshold.
    """

    epoch_index: int
    served_bits: Dict[int, float]
    throughput_bps: Dict[int, float]
    allocations: Dict[int, Allocation]
    observations: Dict[int, ApObservation]
    connected: Dict[int, bool]


@dataclass
class _EpochLinks:
    """What one backend computes for one AP before scheduling.

    ``observe`` is deferred (called after the scheduler ran) so detector
    RNG draws happen at the same point of the stream in both backends.
    """

    rate_fn: Callable[[int, int], float]
    disconnected: Set[int]
    observe: Callable[[Allocation, np.random.Generator], ApObservation]


class SubchannelPolicy(Protocol):
    """Decides each AP's allowed subchannels at the start of every epoch."""

    def decide(
        self,
        epoch_index: int,
        observations: Optional[Dict[int, ApObservation]],
    ) -> Dict[int, Set[int]]:
        """Return allowed subchannels per AP for the coming epoch.

        ``observations`` is ``None`` on the first epoch (nothing sensed yet).
        """


class AllSubchannelsPolicy:
    """Plain LTE: every AP transmits on the full carrier, uncoordinated."""

    def __init__(self, ap_ids: Sequence[int], n_subchannels: int) -> None:
        self._decision = {
            ap_id: set(range(n_subchannels)) for ap_id in ap_ids
        }

    def decide(self, epoch_index, observations):
        """All subchannels for everyone, always."""
        return {ap: set(subs) for ap, subs in self._decision.items()}


class LteNetworkSimulator:
    """System-level simulator of co-channel LTE cells on a shared carrier.

    Args:
        topology: node placement (shared across compared technologies).
        grid: the LTE carrier all cells share (paper: 5 MHz, TDD config 4).
        channel: propagation model.
        rngs: named random streams (detector noise, scheduling tie-breaks).
        ap_tx_power_dbm: per-cell conducted power (paper sims: 30 dBm).
        ue_tx_power_dbm: client power (TVWS cap: 20 dBm).
        noise_figure_db: client receiver noise figure.
        scheduler_factory: constructs one scheduler per AP.
        control_interference: apply the Figure 7(b) control-channel loss.
        epoch_s: epoch duration (the 1 s allocation interval).
        backend: ``"vectorized"`` (default), ``"scalar"`` or
            ``"incremental"``; all produce bit-identical results for the
            same seeds.
        gain_cache: optional pre-built :class:`GainMatrixCache` for this
            topology/channel (shared with other consumers); built
            internally when omitted.
        cull_loss_db: optional neighbor-culling path-loss horizon (dB)
            forwarded to the internally built gain cache: links lossier
            than this carry exactly zero power (no signal, no
            interference, no PRACH audibility) in *every* backend.  When
            ``gain_cache`` is injected its own horizon governs and this
            argument must match or stay ``None``.
        gain_fill: gain-cache fill mode (``"batched"`` default,
            ``"scalar"`` for the per-link oracle loop) forwarded to the
            internally built cache; bit-identical either way.  When
            ``gain_cache`` is injected its own ``fill_mode`` governs and
            this argument is ignored.
    """

    def __init__(
        self,
        topology: Topology,
        grid: ResourceGrid,
        channel: CompositeChannel,
        rngs: RngStreams,
        ap_tx_power_dbm: float = 30.0,
        ue_tx_power_dbm: float = 20.0,
        noise_figure_db: float = 7.0,
        scheduler_factory: Callable[[], Scheduler] = ProportionalFairScheduler,
        control_interference: bool = True,
        epoch_s: float = 1.0,
        detector_true_positive: float = CQI_DETECTOR_TRUE_POSITIVE,
        detector_false_positive: float = CQI_DETECTOR_FALSE_POSITIVE,
        backend: str = BACKEND_VECTORIZED,
        gain_cache: Optional[GainMatrixCache] = None,
        cull_loss_db: Optional[float] = None,
        gain_fill: str = FILL_BATCHED,
        shard_ap_ids: Optional[Sequence[int]] = None,
    ) -> None:
        self.topology = topology
        self.grid = grid
        self.channel = channel
        self.rngs = rngs
        self.ap_tx_power_dbm = ap_tx_power_dbm
        self.ue_tx_power_dbm = ue_tx_power_dbm
        self.noise_figure_db = noise_figure_db
        self.control_interference = control_interference
        self.epoch_s = epoch_s
        if backend not in _BACKENDS:
            raise ValueError(
                f"backend must be one of {_BACKENDS!r}, got {backend!r}"
            )
        self.backend = backend
        if not 0.0 <= detector_false_positive <= detector_true_positive <= 1.0:
            raise ValueError(
                "require 0 <= detector_false_positive <= detector_true_positive <= 1"
            )
        self.detector_true_positive = detector_true_positive
        self.detector_false_positive = detector_false_positive
        # Shard view: when ``shard_ap_ids`` is given this simulator owns
        # only those APs and the clients attached to them.  Link rows are
        # filled (and schedulers instantiated) for owned clients/APs only;
        # foreign rows stay exact zeros, which the culling contract already
        # treats as dead links.  ``run_epoch`` then requires externally
        # merged PRACH counts and fast-forwards the epoch RNG streams over
        # foreign APs so the shard-local draws land on the same PCG64
        # offsets as the unsharded run (see repro.sim.shard).
        if shard_ap_ids is not None:
            if backend != BACKEND_INCREMENTAL:
                raise ValueError(
                    "shard_ap_ids requires the incremental backend, "
                    f"got {backend!r}"
                )
            known = {ap.ap_id for ap in topology.aps}
            unknown = set(shard_ap_ids) - known
            if unknown:
                raise ValueError(
                    f"shard_ap_ids not in topology: {sorted(unknown)}"
                )
            self.shard_ap_ids: Optional[frozenset] = frozenset(shard_ap_ids)
            self._owned_clients: Optional[Set[int]] = {
                client.client_id
                for client in topology.clients
                if client.ap_id in self.shard_ap_ids
            }
        else:
            self.shard_ap_ids = None
            self._owned_clients = None
        self.schedulers: Dict[int, Scheduler] = {
            ap.ap_id: scheduler_factory()
            for ap in topology.aps
            if self._owns_ap(ap.ap_id)
        }
        if gain_cache is not None:
            if (
                cull_loss_db is not None
                and gain_cache.cull_loss_db != cull_loss_db
            ):
                raise ValueError(
                    "cull_loss_db conflicts with the injected gain cache: "
                    f"{cull_loss_db!r} vs {gain_cache.cull_loss_db!r}"
                )
            self.gain_cache = gain_cache
        else:
            self.gain_cache = GainMatrixCache(
                channel,
                topology.aps,
                topology.clients,
                cull_loss_db=cull_loss_db,
                fill_mode=gain_fill,
            )
        self._precompute_link_powers()
        self._max_cqi_state: Dict[Tuple[int, int], int] = {}
        # Incremental-backend state: per-AP row-set versions (bumped by
        # the events that dirty an AP's block -- mobility, handover,
        # re-attach), cached per-AP epoch blocks keyed on (version,
        # interference/control/RLF signatures), cached audible-column
        # masks, and per-epoch dirty/cull counters for benchmarks and CI.
        self._rows_version: Dict[int, int] = {ap.ap_id: 0 for ap in topology.aps}
        self._ap_blocks: Dict[int, Tuple[tuple, Dict[str, Any]]] = {}
        self._audible_cols: Dict[int, Tuple[int, np.ndarray, int]] = {}
        # Epoch decision context (active set + subchannel grants).  While it
        # repeats epoch over epoch, a per-AP (rows_version, ctx_serial)
        # stamp proves the cached block's signature cannot have changed,
        # so the signature rebuild is skipped entirely for clean APs.
        self._epoch_ctx: Optional[tuple] = None
        self._ctx_serial: int = 0
        self._block_fast: Dict[int, Tuple[int, int, bool]] = {}
        # Per-AP dirty client rows since the cached block was last
        # validated.  ``None`` means the AP's row membership itself changed
        # (handover), which forces a full block recompute; a set of client
        # ids allows the much cheaper row-level patch.
        self._dirty_rows: Dict[int, Optional[Set[int]]] = {
            ap.ap_id: set() for ap in topology.aps
        }
        # Subchannel-mask cache shared by block compute/patch: the mask
        # for a given grant tuple is a pure function of the tuple, so one
        # read-only array serves every AP and epoch.
        self._sub_masks: Dict[tuple, np.ndarray] = {}
        # Per-AP signature cache: when a dirty AP's audible-column set and
        # the epoch context both match the last rebuild, the signature
        # tuples are reused instead of being rebuilt from the grant maps.
        self._sig_cache: Dict[int, tuple] = {}
        # Foreign-AP RLF gate cache (shard mode): per epoch context, whether
        # a foreign AP draws RLF values, so the fast-forward discard count
        # is not recomputed from the grant maps every epoch.
        self._foreign_rlf_cache: Tuple[int, Dict[int, bool]] = (-1, {})
        self.last_epoch_stats: Dict[str, int] = {}

    # -- Shard ownership ------------------------------------------------------

    def _owns_ap(self, ap_id: int) -> bool:
        return self.shard_ap_ids is None or ap_id in self.shard_ap_ids

    def _owns_client(self, client_id: int) -> bool:
        return self._owned_clients is None or client_id in self._owned_clients

    # -- Precomputation -------------------------------------------------------

    def _precompute_link_powers(self) -> None:
        """Cache per-RB received powers for every (client, AP) pair.

        Builds both the scalar per-link dicts (reference backend) and the
        dense matrices the vectorized backend indexes; both are filled from
        the same :class:`GainMatrixCache` queries, one client row at a time
        (see :meth:`_refresh_client_links`), so a mobility update refreshes
        exactly one row of everything.
        """
        # Power spectral density: total power spread across all RBs.
        psd_offset_db = 10.0 * math.log10(self.grid.n_rbs)
        self._per_rb_tx_dbm = self.ap_tx_power_dbm - psd_offset_db
        self._prach_noise_dbm = thermal_noise_dbm(
            PRACH_BANDWIDTH_HZ, self.noise_figure_db
        )
        # Noise over one subchannel (use the nominal subband width).
        self._subchannel_noise_dbm = thermal_noise_dbm(
            self.grid.subband_rbs * RB_BANDWIDTH_HZ, self.noise_figure_db
        )
        self._rb_noise_dbm = thermal_noise_dbm(RB_BANDWIDTH_HZ, self.noise_figure_db)
        self._rb_noise_w = dbm_to_watt(self._rb_noise_dbm)

        clients = self.topology.clients
        aps = self.topology.aps
        self._client_row: Dict[int, int] = dict(self.gain_cache.client_index)
        self._ap_col: Dict[int, int] = dict(self.gain_cache.ap_index)
        n_clients, n_aps = len(clients), len(aps)

        self._rx_rb_dbm: Dict[Tuple[int, int], float] = {}
        self._rx_rb_w: Dict[Tuple[int, int], float] = {}
        self._prach_audible: Dict[Tuple[int, int], bool] = {}
        self._rx_dbm_mat = np.zeros((n_clients, n_aps))
        self._rx_w_mat = np.zeros((n_clients, n_aps))
        self._prach_mat = np.zeros((n_clients, n_aps), dtype=bool)
        # Bulk-fill every owned row up front so the per-client refresh
        # below only reads cached losses; the wall-clock of this fill is
        # what the ``--gain-fill`` benchmark arm and the shard smoke
        # gate's cache-build seconds measure.
        owned = [c for c in clients if self._owns_client(c.client_id)]
        fill_start = time.perf_counter()
        self.gain_cache.prefill([c.client_id for c in owned])
        self.gain_prefill_s = time.perf_counter() - fill_start
        for client in owned:
            self._refresh_client_links(client)

        self._rows_of_ap: Dict[int, np.ndarray] = {}
        for ap in aps:
            self._rebuild_rows_of(ap.ap_id)

        # Lookup tables for the vectorized kernel.  The rate table is built
        # through the very same scalar grid call the reference backend makes,
        # so table lookups are bit-identical to recomputation.
        n_subs = self.grid.n_subchannels
        self._cqi_min_sinr = np.array([e.min_sinr_db for e in LTE_CQI_TABLE])
        self._rate_table = np.zeros((len(LTE_CQI_TABLE) + 1, n_subs))
        for cqi in range(1, len(LTE_CQI_TABLE) + 1):
            eff = efficiency_from_cqi(cqi)
            for sub in range(n_subs):
                self._rate_table[cqi, sub] = self.grid.subchannel_downlink_rate_bps(
                    eff, sub
                )
        self._harq_cache: Dict[Tuple[float, int], float] = {}
        self._max_cqi_vec = np.zeros((n_clients, n_subs), dtype=np.int64)

    def _rebuild_rows_of(self, ap_id: int) -> None:
        """(Re)build one AP's gain-matrix row index array.

        Called at build time and whenever a client's *serving* AP changes
        (handover / re-attach): the vectorized and incremental backends
        read the serving column through this mapping, so a stale entry
        would feed them signal power from the old serving cell.
        """
        self._rows_of_ap[ap_id] = np.array(
            [
                self._client_row[c.client_id]
                for c in self.topology.clients_of(ap_id)
            ],
            dtype=np.intp,
        )

    def _refresh_client_links(self, client) -> None:
        """(Re)compute every cached link quantity for one client.

        Used for the initial fill and after :meth:`move_client` /
        :meth:`reattach_client`.  All losses come from the gain cache; the
        channel is reciprocal so one cached entry serves the downlink data
        path and the uplink PRACH path.

        Links beyond the gain cache's culling horizon are stored as dead:
        ``-inf`` dBm, exactly ``0.0`` W and inaudible PRACH.  All backends
        read these same tables, so culling changes the physics for all of
        them identically (the scalar oracle included).
        """
        cid = client.client_id
        row = self._client_row[cid]
        horizon = self.gain_cache.cull_loss_db
        # Uplink PRACH open-loop power control toward the *serving* cell.
        serving_loss = self.gain_cache.loss_db(cid, client.ap_id)
        prach_tx_dbm = min(self.ue_tx_power_dbm, PRACH_TARGET_RX_DBM + serving_loss)
        for ap in self.topology.aps:
            loss = self.gain_cache.loss_db(cid, ap.ap_id)
            if horizon is not None and loss > horizon:
                rx_dbm = float("-inf")
                rx_w = 0.0
                audible = False
            else:
                rx_dbm = self._per_rb_tx_dbm - loss
                rx_w = dbm_to_watt(rx_dbm)
                snr = prach_tx_dbm - loss - self._prach_noise_dbm
                audible = snr >= PRACH_DETECTION_SNR_DB
            col = self._ap_col[ap.ap_id]
            self._rx_rb_dbm[(cid, ap.ap_id)] = rx_dbm
            self._rx_rb_w[(cid, ap.ap_id)] = rx_w
            self._prach_audible[(cid, ap.ap_id)] = audible
            self._rx_dbm_mat[row, col] = rx_dbm
            self._rx_w_mat[row, col] = rx_w
            self._prach_mat[row, col] = audible

    def _mark_rows_dirty(self, ap_id: int) -> None:
        """Bump an AP's row-set version: its cached epoch block is stale."""
        self._rows_version[ap_id] += 1

    def move_client(self, client_id: int, x: float, y: float) -> None:
        """Relocate a client (mobility step) and refresh its cached links.

        Invalidates exactly one row of the gain cache and of every derived
        power table; all other links stay untouched.  Only the serving
        AP's cached epoch block is dirtied: the moved row feeds signal and
        control-channel terms of the serving cell alone, while its uplink
        audibility (used by the PRACH contention estimate) is re-read
        every epoch.
        """
        site = self.topology.move_client(client_id, x, y)
        self.gain_cache.invalidate_client(client_id, site)
        if self._owns_client(client_id):
            self._refresh_client_links(site)
        self._mark_rows_dirty(site.ap_id)
        dirty = self._dirty_rows[site.ap_id]
        if dirty is not None:
            dirty.add(client_id)

    def reattach_client(self, client_id: int, new_ap_id: int) -> None:
        """Hand a client over to another serving AP.

        Refreshes the client's cached links (PRACH power control targets
        the new serving cell) and rebuilds the row mapping of both the old
        and the new serving AP -- the fix for the stale ``_rows_of_ap``
        handover bug.  Both APs' cached epoch blocks are dirtied.
        """
        old_ap_id = self.topology.client(client_id).ap_id
        if old_ap_id == new_ap_id:
            return
        site = self.topology.reattach_client(client_id, new_ap_id)
        if self._owned_clients is None:
            self._refresh_client_links(site)
        else:
            was_owned = client_id in self._owned_clients
            now_owned = new_ap_id in self.shard_ap_ids
            if now_owned and not was_owned:
                # Adopt: the client migrated in across the shard boundary.
                # Its cross-epoch max-CQI row travels separately (see
                # import_client_row / repro.sim.shard).
                self._owned_clients.add(client_id)
                self._refresh_client_links(site)
            elif was_owned and not now_owned:
                # Disown: zero the link rows back to the dead-link state
                # the culling contract guarantees for foreign clients.
                self._owned_clients.discard(client_id)
                self._clear_client_links(site)
            elif was_owned:
                self._refresh_client_links(site)
            # Foreign-to-foreign handover touches only the replicated
            # topology and the version stamps below.
        for ap_id in (old_ap_id, new_ap_id):
            self._rebuild_rows_of(ap_id)
            self._mark_rows_dirty(ap_id)
            self._dirty_rows[ap_id] = None

    def _clear_client_links(self, client) -> None:
        """Reset a disowned client's cached links to the dead-link state."""
        cid = client.client_id
        row = self._client_row[cid]
        for ap in self.topology.aps:
            self._rx_rb_dbm.pop((cid, ap.ap_id), None)
            self._rx_rb_w.pop((cid, ap.ap_id), None)
            self._prach_audible.pop((cid, ap.ap_id), None)
        self._rx_dbm_mat[row, :] = 0.0
        self._rx_w_mat[row, :] = 0.0
        self._prach_mat[row, :] = False
        self._max_cqi_vec[row, :] = 0

    def export_client_row(self, client_id: int) -> List[int]:
        """Cross-shard migration: export the client's max-CQI tracker row."""
        return [int(v) for v in self._max_cqi_vec[self._client_row[client_id]]]

    def import_client_row(self, client_id: int, max_cqi_row: Sequence[int]) -> None:
        """Cross-shard migration: import a max-CQI row exported by the old owner."""
        self._max_cqi_vec[self._client_row[client_id]] = np.asarray(
            max_cqi_row, dtype=np.int64
        )

    # -- Radio queries ----------------------------------------------------------

    def rx_rb_power_dbm(self, client_id: int, ap_id: int) -> float:
        """Per-RB received power at a client from an AP."""
        return self._rx_rb_dbm[(client_id, ap_id)]

    def prach_audible(self, client_id: int, ap_id: int) -> bool:
        """Whether ``ap_id`` can detect PRACH preambles of ``client_id``."""
        return self._prach_audible[(client_id, ap_id)]

    def sinr_db(
        self,
        client_id: int,
        serving_ap: int,
        interfering_aps: Sequence[int],
    ) -> float:
        """Per-RB SINR at a client for a given co-RB interferer set."""
        signal_w = self._rx_rb_w[(client_id, serving_ap)]
        if signal_w <= 0.0:
            return ZERO_SIGNAL_SINR_DB
        noise_w = self._rb_noise_w
        interference_w = sum(
            self._rx_rb_w[(client_id, ap)] for ap in interfering_aps
        )
        return linear_to_db(signal_w / (noise_w + interference_w))

    def clean_sinr_db(self, client_id: int, serving_ap: int) -> float:
        """SINR with no secondary-user interference (SNR)."""
        return self.sinr_db(client_id, serving_ap, ())

    def _weighted_sinr_db(
        self,
        client_id: int,
        serving_ap: int,
        interfering_aps: Sequence[int],
        weights: Sequence[float],
    ) -> float:
        """SINR with per-interferer duty-cycle weights in [0, 1]."""
        signal_w = self._rx_rb_w[(client_id, serving_ap)]
        if signal_w <= 0.0:
            return ZERO_SIGNAL_SINR_DB
        noise_w = self._rb_noise_w
        interference_w = sum(
            w * self._rx_rb_w[(client_id, ap)]
            for ap, w in zip(interfering_aps, weights)
        )
        return linear_to_db(signal_w / (noise_w + interference_w))

    def control_interference_scale(
        self, client_id: int, serving_ap: int, co_channel_aps: Sequence[int]
    ) -> float:
        """Goodput multiplier for CRS/PDCCH interference (Figure 7(b)).

        The loss decays with the signal-to-strongest-interferer ratio: ~20%
        when the interferer is as strong as the serving cell, negligible
        beyond ~+20 dB.
        """
        if not self.control_interference or not co_channel_aps:
            return 1.0
        signal = self._rx_rb_dbm[(client_id, serving_ap)]
        strongest = max(
            self._rx_rb_dbm[(client_id, ap)] for ap in co_channel_aps
        )
        return _control_scale(signal - strongest)

    # -- Epoch execution -----------------------------------------------------------

    def prach_partial_counts(self, demands_bits: Dict[int, float]) -> np.ndarray:
        """Per-AP PRACH preamble counts from this shard's owned clients.

        Foreign clients' rows of ``_prach_mat`` are all-``False``, so the
        partial sums over shards are disjoint and their elementwise total
        equals the unsharded count exactly -- integer addition, no rounding.
        """
        clients = self.topology.clients
        active = np.fromiter(
            (demands_bits.get(c.client_id, 0.0) > 0.0 for c in clients),
            dtype=bool,
            count=len(clients),
        )
        return self._prach_mat[active].sum(axis=0)

    def _foreign_rlf_gate(
        self,
        ap_id: int,
        allowed: Dict[int, Set[int]],
        active_list: List[int],
    ) -> bool:
        """Whether a foreign active AP draws RLF values this epoch.

        Mirrors the ``has_rlf_sources`` computation of the simulated
        backends: the AP holds grants and at least one *other* active AP
        overlaps them.  Cached per decision context (``_ctx_serial``).
        """
        serial, gates = self._foreign_rlf_cache
        if serial != self._ctx_serial:
            gates = {}
            self._foreign_rlf_cache = (self._ctx_serial, gates)
        gate = gates.get(ap_id)
        if gate is None:
            my_subs = allowed.get(ap_id, set())
            gate = False
            if my_subs:
                for other in active_list:
                    if other != ap_id and not my_subs.isdisjoint(
                        allowed.get(other, set())
                    ):
                        gate = True
                        break
            gates[ap_id] = gate
        return gate

    def run_epoch(
        self,
        epoch_index: int,
        allowed: Dict[int, Set[int]],
        demands_bits: Dict[int, float],
        prach_counts: Optional[np.ndarray] = None,
    ) -> EpochResult:
        """Simulate one epoch under the given subchannel assignment.

        Args:
            epoch_index: epoch number (for bookkeeping only).
            allowed: allowed subchannels per AP.
            demands_bits: downlink demand per client for this epoch
                (``inf`` = saturated).
            prach_counts: externally merged per-AP PRACH contention counts.
                Required in shard mode (a shard only sees its own clients'
                preambles, so the barrier must reduce the partial counts
                from :meth:`prach_partial_counts` across shards); when
                omitted, the counts are computed locally as before.

        Returns:
            The epoch outcome including the sensing observations a policy
            needs for the next decision.
        """
        if self.shard_ap_ids is not None and prach_counts is None:
            raise ValueError(
                "sharded simulators need externally merged prach_counts "
                "(drive them through repro.sim.shard.ShardedNetwork)"
            )
        tel = _obs_runtime.active()
        span = None
        if tel is not None:
            # Epoch drivers have no event engine, so the telemetry clock
            # follows the epoch boundary here.
            tel.set_time(epoch_index * self.epoch_s)
            span = tel.span("lte.epoch", cat="sim", args={"epoch": epoch_index})
            span.__enter__()

        # One pass over the clients builds every per-AP demand dict (in
        # the same per-AP client order as ``clients_of``, which the
        # ``_clients_by_ap`` lists share by construction).
        ap_demand_map: Dict[int, Dict[int, float]] = {
            ap.ap_id: {} for ap in self.topology.aps
        }
        ap_active_map: Dict[int, Dict[int, float]] = {
            ap.ap_id: {} for ap in self.topology.aps
        }
        active_flags: List[bool] = []
        for c in self.topology.clients:
            d = demands_bits.get(c.client_id, 0.0)
            ap_demand_map[c.ap_id][c.client_id] = d
            if d > 0.0:
                ap_active_map[c.ap_id][c.client_id] = d
                active_flags.append(True)
            else:
                active_flags.append(False)
        active_aps = {ap_id for ap_id, act in ap_active_map.items() if act}
        # Active AP ids in topology order: the co-channel list every
        # backend iterates, hoisted out of the per-AP loop.
        active_list = [
            ap.ap_id for ap in self.topology.aps if ap.ap_id in active_aps
        ]

        scalar = self.backend == BACKEND_SCALAR
        incremental = self.backend == BACKEND_INCREMENTAL
        if scalar:
            # Per-subchannel interferer sets (only active cells interfere);
            # only the scalar backend consumes this dense map.
            interferers_on: Dict[int, List[int]] = {
                sub: [
                    ap_id
                    for ap_id, subs in allowed.items()
                    if sub in subs and ap_id in active_aps
                ]
                for sub in range(self.grid.n_subchannels)
            }

        served_bits: Dict[int, float] = {}
        throughput: Dict[int, float] = {}
        allocations: Dict[int, Allocation] = {}
        observations: Dict[int, ApObservation] = {}
        connected: Dict[int, bool] = {}

        detector_rng = self.rngs.stream("cqi-detector")
        rlf_rng = self.rngs.stream("rlf")

        if not scalar and prach_counts is None:
            # Epoch-wide active-client mask in gain-matrix row order (the
            # demand-map pass above iterates the same client order), and
            # the per-AP PRACH contention counts it implies -- computed
            # once per epoch instead of once per AP (the count for AP j is
            # exactly ``count_nonzero(active & prach[:, j])``).
            active_client_vec = np.array(active_flags, dtype=bool)
            prach_counts = self._prach_mat[active_client_vec].sum(axis=0)
        if incremental:
            # Canonicalised subchannel sets and the active slice of the
            # decision, shared by every AP's cache-key construction.
            subs_keys = {
                ap_id: tuple(sorted(subs)) for ap_id, subs in allowed.items()
            }
            active_entries = [
                (ap_id, subs_keys[ap_id])
                for ap_id in allowed
                if ap_id in active_aps
            ]
            # One serial per distinct decision context: while the policy
            # repeats its grants and the active set is stable, clean APs
            # can skip rebuilding their cache-key signatures.
            ctx = (
                tuple(active_list),
                tuple(active_entries),
                tuple(sorted(subs_keys.items())),
            )
            if ctx != self._epoch_ctx:
                self._epoch_ctx = ctx
                self._ctx_serial += 1
            self.last_epoch_stats = {
                "dirty_aps": 0,
                "clean_aps": 0,
                "dirty_rows": 0,
                "clean_rows": 0,
                "culled_columns": 0,
                "total_columns": 0,
            }

        # Shard mode walks the full topology-ordered AP sequence but only
        # simulates owned APs.  Foreign APs contribute no arithmetic (their
        # interference reaches owned clients through the full gain rows,
        # and culled links are exact 0.0 no-ops), yet their epoch RNG draws
        # must still advance the shared streams: the counts are accumulated
        # and discarded in one batched ``rng.random(n)`` per stream, which
        # advances PCG64 to exactly the offset n scalar draws would reach.
        sharded = self.shard_ap_ids is not None
        pending_rlf = 0
        pending_det = 0
        n_subs_total = self.grid.n_subchannels
        for ap in self.topology.aps:
            if sharded and ap.ap_id not in self.shard_ap_ids:
                acts = ap_active_map[ap.ap_id]
                # Mirrors _incremental_links: one RLF draw per demanding
                # client iff the AP has co-channel RLF sources, and one
                # detector draw per (attached client, subchannel) always.
                if acts and self._foreign_rlf_gate(ap.ap_id, allowed, active_list):
                    pending_rlf += len(acts)
                pending_det += len(self._rows_of_ap[ap.ap_id]) * n_subs_total
                continue
            if pending_rlf:
                rlf_rng.random(pending_rlf)
                pending_rlf = 0
            if pending_det:
                detector_rng.random(pending_det)
                pending_det = 0
            clients = self.topology.clients_of(ap.ap_id)
            ap_demands = ap_demand_map[ap.ap_id]
            ap_active_demands = ap_active_map[ap.ap_id]
            # Inactive APs never appear in the active list, so the hoisted
            # list doubles as their co-channel view (callees only read it).
            if ap.ap_id in active_aps:
                co_channel = [a for a in active_list if a != ap.ap_id]
            else:
                co_channel = active_list

            if incremental:
                links = self._incremental_links(
                    ap, clients, allowed, active_aps, co_channel,
                    ap_demands, ap_active_demands, prach_counts,
                    rlf_rng, subs_keys, active_entries,
                )
            elif scalar:
                links = self._scalar_links(
                    ap, clients, allowed, interferers_on, co_channel,
                    ap_demands, ap_active_demands, demands_bits, rlf_rng,
                )
            else:
                links = self._vector_links(
                    ap, clients, allowed, active_aps, co_channel,
                    ap_demands, ap_active_demands, prach_counts, rlf_rng,
                )
            for cid in links.disconnected:
                ap_active_demands.pop(cid, None)

            if ap_active_demands and ap.ap_id in active_aps:
                allocation = self.schedulers[ap.ap_id].allocate(
                    sorted(allowed.get(ap.ap_id, set())),
                    ap_active_demands,
                    links.rate_fn,
                    self.epoch_s,
                )
            else:
                allocation = Allocation(epoch_s=self.epoch_s)
            allocations[ap.ap_id] = allocation

            if allocation.served_bits:
                for client in clients:
                    cid = client.client_id
                    bits = allocation.served_bits.get(cid, 0.0)
                    served_bits[cid] = bits
                    throughput[cid] = bits / self.epoch_s
                    demanded = ap_demands[cid]
                    if demanded > 0.0:
                        # A client with unmet demand and ~no service is
                        # starved.
                        satisfied = bits >= min(
                            demanded, STARVATION_THRESHOLD_BPS * self.epoch_s
                        )
                        connected[cid] = satisfied
                    else:
                        connected[cid] = True
            else:
                # Nothing was scheduled: every client of this AP served
                # zero bits, and only zero-demand clients count connected.
                for client in clients:
                    cid = client.client_id
                    served_bits[cid] = 0.0
                    throughput[cid] = 0.0
                    connected[cid] = ap_demands[cid] <= 0.0

            observations[ap.ap_id] = links.observe(allocation, detector_rng)

        # Flush trailing foreign-AP discards so the stream state at the
        # epoch barrier matches the unsharded run exactly.
        if pending_rlf:
            rlf_rng.random(pending_rlf)
        if pending_det:
            detector_rng.random(pending_det)

        if tel is not None:
            span.__exit__(None, None, None)
            tel.inc("lte.epochs")
            tel.inc("lte.served_bits", sum(served_bits.values()))
            if incremental:
                stats = self.last_epoch_stats
                tel.inc("lte.incremental.dirty_aps", stats["dirty_aps"])
                tel.inc("lte.incremental.clean_aps", stats["clean_aps"])
                tel.inc("lte.incremental.dirty_rows", stats["dirty_rows"])
                if stats["total_columns"]:
                    tel.gauge(
                        "lte.incremental.cull_ratio",
                        stats["culled_columns"] / stats["total_columns"],
                    )
            tel.inc(
                "lte.starved_clients",
                sum(1 for ok in connected.values() if not ok),
            )
            tel.gauge(
                "lte.connected_clients",
                sum(1 for ok in connected.values() if ok),
            )
            for obs in observations.values():
                tel.inc("prach.estimations")
                tel.observe(
                    "prach.estimated_contenders",
                    obs.estimated_contenders,
                    edges=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
                )
                tel.inc("cqi.reports", len(obs.clients))
                tel.inc(
                    "cqi.interference_flags",
                    sum(
                        sum(1 for hit in c.interference_detected if hit)
                        for c in obs.clients.values()
                    ),
                )
            # One series point per epoch, keyed by sim-time.
            tel.tick((epoch_index + 1) * self.epoch_s)

        return EpochResult(
            epoch_index=epoch_index,
            served_bits=served_bits,
            throughput_bps=throughput,
            allocations=allocations,
            observations=observations,
            connected=connected,
        )

    # -- Epoch backends ----------------------------------------------------------

    def _harq_scale(self, sinr_db: float, cqi: int) -> float:
        """:func:`harq_goodput_scale` memoised on (SINR, CQI).

        SINRs repeat heavily within an epoch (one value per client-subchannel
        link, stable while the interferer sets are stable), so the cache hit
        rate is high.  Cached values are the exact function outputs, keeping
        both backends bit-identical to direct evaluation.
        """
        key = (sinr_db, cqi)
        value = self._harq_cache.get(key)
        if value is None:
            value = harq_goodput_scale(sinr_db, cqi)
            self._harq_cache[key] = value
        return value

    def _scalar_links(
        self,
        ap,
        clients,
        allowed: Dict[int, Set[int]],
        interferers_on: Dict[int, List[int]],
        co_channel: List[int],
        ap_demands: Dict[int, float],
        ap_active_demands: Dict[int, float],
        demands_bits: Dict[int, float],
        rlf_rng: np.random.Generator,
    ) -> _EpochLinks:
        """Reference backend: per-link loops, one SINR query at a time."""
        # SINR per (client, subchannel), with and without interference.
        sinr_map: Dict[Tuple[int, int], float] = {}
        clean_map: Dict[int, float] = {}
        for client in clients:
            clean_map[client.client_id] = self.clean_sinr_db(
                client.client_id, ap.ap_id
            )
            for sub in range(self.grid.n_subchannels):
                others = [
                    a for a in interferers_on[sub] if a != ap.ap_id
                ]
                sinr_map[(client.client_id, sub)] = self.sinr_db(
                    client.client_id, ap.ap_id, others
                )

        # Radio link failure: a client whose *data* SINR (interference
        # weighted by allocation overlap with the serving cell) is deep
        # in the mud may drop its connection for the epoch -- the
        # "frequent disconnections" of Section 6.3.1.
        my_subs = allowed.get(ap.ap_id, set())
        disconnected: Set[int] = set()
        for client in clients:
            cid = client.client_id
            if ap_demands[cid] <= 0.0 or not my_subs:
                continue
            weights = []
            sources = []
            for other in co_channel:
                overlap = len(my_subs & allowed.get(other, set()))
                if overlap:
                    sources.append(other)
                    weights.append(overlap / len(my_subs))
            if not sources:
                # Noise-limited links do not drop: the paper observed
                # disconnections only under *data* interference
                # (Section 6.3.1), never on the clean long links of
                # the Figure 1 drive test.
                continue
            data_sinr = self._weighted_sinr_db(cid, ap.ap_id, sources, weights)
            if rlf_rng.random() < rlf_probability(data_sinr):
                disconnected.add(cid)

        def rate_fn(client_id: int, sub: int, _ap=ap, _sinr=sinr_map,
                    _co=co_channel) -> float:
            sinr = _sinr[(client_id, sub)]
            cqi = cqi_from_sinr(sinr)
            if cqi == CQI_OUT_OF_RANGE:
                return 0.0
            eff = efficiency_from_cqi(cqi)
            rate = self.grid.subchannel_downlink_rate_bps(eff, sub)
            rate *= harq_goodput_scale(sinr, cqi)
            rate *= self.control_interference_scale(client_id, _ap.ap_id, _co)
            return rate

        def observe(allocation: Allocation, rng: np.random.Generator):
            return self._observe(
                ap.ap_id,
                clients,
                ap_active_demands,
                sinr_map,
                clean_map,
                allocation,
                demands_bits,
                rng,
            )

        return _EpochLinks(
            rate_fn=rate_fn, disconnected=disconnected, observe=observe
        )

    def _vector_links(
        self,
        ap,
        clients,
        allowed: Dict[int, Set[int]],
        active_aps: Set[int],
        co_channel: List[int],
        ap_demands: Dict[int, float],
        ap_active_demands: Dict[int, float],
        prach_counts: np.ndarray,
        rlf_rng: np.random.Generator,
    ) -> _EpochLinks:
        """Vectorized backend: whole-matrix kernels over the cached gains.

        Bit-for-bit identical to :meth:`_scalar_links` by construction:

        * interference accumulates per interferer in ``allowed`` iteration
          order, exactly as the scalar per-subchannel sums do (adding an
          exact ``0.0`` for subchannels an interferer does not hold is a
          bitwise no-op on IEEE-754 positive sums);
        * dB conversion uses the same ``10 * math.log10`` per element
          (NumPy's SIMD ``log10`` is *not* bit-identical to libm);
        * CQI quantisation via ``searchsorted(side="right")`` equals the
          table walk in :func:`cqi_from_sinr`;
        * rates come from a table prefilled with the scalar grid function,
          and RNG draws are batched -- NumPy's batched ``random`` yields
          the same doubles as repeated scalar draws.
        """
        ap_id = ap.ap_id
        n_subs = self.grid.n_subchannels
        rows = self._rows_of_ap[ap_id]
        col = self._ap_col[ap_id]
        W = self._rx_w_mat
        m = len(rows)

        signal_w = W[rows, col]                      # (m,)
        interference_w = np.zeros((m, n_subs))       # (m, n_subs)
        mask = np.empty(n_subs)
        for other_id, subs in allowed.items():
            if other_id == ap_id or other_id not in active_aps:
                continue
            mask[:] = 0.0
            for sub in subs:
                if 0 <= sub < n_subs:
                    mask[sub] = 1.0
            interference_w += W[rows, self._ap_col[other_id]][:, None] * mask

        ratio = signal_w[:, None] / (self._rb_noise_w + interference_w)
        sinr = _elementwise_db(ratio)
        clean_db = _elementwise_db(signal_w / self._rb_noise_w)
        cqi = np.searchsorted(self._cqi_min_sinr, sinr, side="right")
        clean_cqi = np.searchsorted(self._cqi_min_sinr, clean_db, side="right")

        # Rate matrix: table rate x HARQ scale x control-channel scale,
        # in the same multiply order as the scalar rate_fn.
        base = self._rate_table[cqi, np.arange(n_subs)]
        harq = np.empty((m, n_subs))
        sinr_rows = sinr.tolist()
        cqi_rows = cqi.tolist()
        for i in range(m):
            sinr_i, cqi_i = sinr_rows[i], cqi_rows[i]
            for k in range(n_subs):
                harq[i, k] = self._harq_scale(sinr_i[k], cqi_i[k])
        if not self.control_interference or not co_channel:
            ctrl = np.ones(m)
        else:
            cols = np.array(
                [self._ap_col[a] for a in co_channel], dtype=np.intp
            )
            strongest = self._rx_dbm_mat[rows[:, None], cols[None, :]].max(axis=1)
            sir_db = (self._rx_dbm_mat[rows, col] - strongest).tolist()
            ctrl = np.array([_control_scale(s) for s in sir_db])
        rate = base * harq
        rate *= ctrl[:, None]

        # Radio link failure (same model and RNG draw order as the scalar
        # backend: one draw per demanding client when co-channel data
        # interference exists).
        my_subs = allowed.get(ap_id, set())
        disconnected: Set[int] = set()
        if my_subs:
            source_cols = []
            weights = []
            for other in co_channel:
                overlap = len(my_subs & allowed.get(other, set()))
                if overlap:
                    source_cols.append(self._ap_col[other])
                    weights.append(overlap / len(my_subs))
            if source_cols:
                weighted_w = np.zeros(m)
                for c, w in zip(source_cols, weights):
                    weighted_w += w * W[rows, c]
                data_ratio = (
                    signal_w / (self._rb_noise_w + weighted_w)
                ).tolist()
                for i, client in enumerate(clients):
                    if ap_demands[client.client_id] <= 0.0:
                        continue
                    r = data_ratio[i]
                    data_sinr = (
                        10.0 * math.log10(r) if r > 0.0 else ZERO_SIGNAL_SINR_DB
                    )
                    if rlf_rng.random() < rlf_probability(data_sinr):
                        disconnected.add(client.client_id)

        rate_rows = {
            clients[i].client_id: rate[i].tolist() for i in range(m)
        }

        def rate_fn(client_id: int, sub: int) -> float:
            return rate_rows[client_id][sub]

        # Lets the PF scheduler prefetch straight from the table.
        rate_fn.rate_rows = rate_rows

        def observe(allocation: Allocation, rng: np.random.Generator):
            estimated = int(prach_counts[col])
            draws = rng.random((m, n_subs))
            best = np.maximum(self._max_cqi_vec[rows], cqi)
            self._max_cqi_vec[rows] = best
            truly_interfered = (clean_cqi[:, None] > 0) & (
                cqi < INTERFERENCE_CQI_DROP_FRACTION * clean_cqi[:, None]
            )
            threshold = np.where(
                truly_interfered,
                self.detector_true_positive,
                self.detector_false_positive,
            )
            flags = draws < threshold
            best_rows = best.tolist()
            flag_rows = flags.tolist()
            client_obs: Dict[int, ClientObservation] = {}
            for i in range(m):
                cid = clients[i].client_id
                fractions = {
                    sub: allocation.fraction(cid, sub) for sub in range(n_subs)
                }
                client_obs[cid] = ClientObservation(
                    subband_cqi=cqi_rows[i],
                    max_subband_cqi=best_rows[i],
                    interference_detected=flag_rows[i],
                    scheduled_fraction=fractions,
                )
            return ApObservation(
                ap_id=ap_id,
                n_active_clients=len(ap_active_demands),
                estimated_contenders=max(estimated, len(ap_active_demands), 1),
                clients=client_obs,
            )

        return _EpochLinks(
            rate_fn=rate_fn, disconnected=disconnected, observe=observe
        )

    def _audible_columns(
        self, ap_id: int, rows: np.ndarray
    ) -> Tuple[np.ndarray, int]:
        """Which AP columns any of this AP's clients can hear at all.

        A column is audible when at least one of the AP's client rows has
        non-zero received power from it; columns fully culled by the
        path-loss horizon are skipped by the incremental interference
        accumulation (they would add exact ``0.0``, a bitwise no-op).
        Cached per row-set version, along with the audible count the
        per-epoch cull counters consume.
        """
        version = self._rows_version[ap_id]
        cached = self._audible_cols.get(ap_id)
        if cached is not None and cached[0] == version:
            return cached[1], cached[2]
        audible = (self._rx_w_mat[rows] != 0.0).any(axis=0)
        n_audible = int(audible.sum())
        self._audible_cols[ap_id] = (version, audible, n_audible)
        return audible, n_audible

    def _sub_mask(self, subs_key: tuple) -> np.ndarray:
        """The 0/1 interference mask for a grant tuple (cached, read-only).

        The mask is a pure function of the grant tuple, so a single shared
        array replaces the per-row rebuild in the block compute/patch
        loops; the values are the exact same 0.0/1.0 floats, keeping the
        accumulation bitwise identical.
        """
        mask = self._sub_masks.get(subs_key)
        if mask is None:
            n_subs = self.grid.n_subchannels
            mask = np.zeros(n_subs)
            for sub in subs_key:
                if 0 <= sub < n_subs:
                    mask[sub] = 1.0
            mask.setflags(write=False)
            self._sub_masks[subs_key] = mask
        return mask

    def _incremental_links(
        self,
        ap,
        clients,
        allowed: Dict[int, Set[int]],
        active_aps: Set[int],
        co_channel: List[int],
        ap_demands: Dict[int, float],
        ap_active_demands: Dict[int, float],
        prach_counts: np.ndarray,
        rlf_rng: np.random.Generator,
        subs_keys: Dict[int, tuple],
        active_entries: List[Tuple[int, tuple]],
    ) -> _EpochLinks:
        """Dirty-row backend: cached per-AP blocks, recomputed on events.

        The deterministic part of an AP's epoch -- SINR, CQI, rates,
        control scale, detector thresholds, RLF data-SINR -- depends only
        on (a) the AP's row set and link powers (tracked by the row-set
        version the mobility/handover events bump) and (b) the epoch's
        decision signature (which audible active neighbours hold which
        subchannels).  When neither changed, the cached block is reused
        verbatim; stochastic stages (RLF and detector draws, max-CQI
        tracking, the PRACH contention count) re-execute every epoch so
        the RNG streams advance exactly as in the other backends.
        """
        ap_id = ap.ap_id
        n_subs = self.grid.n_subchannels
        rows = self._rows_of_ap[ap_id]
        col = self._ap_col[ap_id]
        m = len(rows)
        version = self._rows_version[ap_id]
        audible, n_audible = self._audible_columns(ap_id, rows)
        ap_cols = self._ap_col
        stats = self.last_epoch_stats

        fast = self._block_fast.get(ap_id)
        if (
            fast is not None
            and fast[0] == version
            and fast[1] == self._ctx_serial
        ):
            # Same rows and same epoch decision context as when the cached
            # block was last validated: every signature input is provably
            # unchanged, so the key comparison is skipped outright.
            block = self._ap_blocks[ap_id][1]
            has_rlf_sources = fast[2]
            stats["clean_aps"] += 1
            stats["clean_rows"] += m
        else:
            # The signature tuples depend only on the epoch context and on
            # which columns this AP's clients can hear.  A mobility event
            # bumps the row version but usually leaves audibility intact,
            # so dirty APs reuse the cached signature instead of walking
            # the grant maps again.
            audible_key = audible.tobytes()
            sig = self._sig_cache.get(ap_id)
            if (
                sig is not None
                and sig[0] == self._ctx_serial
                and sig[1] == audible_key
            ):
                (_, _, inter_sig, co_audible, my_subs,
                 rlf_entries, rlf_sig, has_rlf_sources) = sig
            else:
                inter_sig = tuple(
                    entry
                    for entry in active_entries
                    if entry[0] != ap_id and audible[ap_cols[entry[0]]]
                )
                co_audible = [a for a in co_channel if audible[ap_cols[a]]]
                my_subs = allowed.get(ap_id, set())
                has_rlf_sources = False
                rlf_entries: List[Tuple[int, int]] = []
                if my_subs:
                    for other in co_channel:
                        overlap = len(my_subs & allowed.get(other, set()))
                        if overlap:
                            has_rlf_sources = True
                            if audible[ap_cols[other]]:
                                rlf_entries.append((other, overlap))
                rlf_sig = (len(my_subs), tuple(rlf_entries))
                self._sig_cache[ap_id] = (
                    self._ctx_serial, audible_key, inter_sig, co_audible,
                    my_subs, rlf_entries, rlf_sig, has_rlf_sources,
                )

            key = (version, inter_sig, tuple(co_audible), rlf_sig)
            cached = self._ap_blocks.get(ap_id)
            dirty_cids = self._dirty_rows.get(ap_id)
            if cached is not None and cached[0] == key:
                block = cached[1]
                stats["clean_aps"] += 1
                stats["clean_rows"] += m
            elif (
                cached is not None
                and dirty_cids
                and cached[0][1:] == key[1:]
            ):
                # Same decision signature, same row membership: only the
                # recorded dirty rows' link data changed, so those rows
                # are recomputed in place and the rest reused verbatim.
                block = cached[1]
                patched = self._patch_ap_block(
                    block, clients, rows, col, m, n_subs,
                    inter_sig, co_audible, my_subs, rlf_entries, dirty_cids,
                )
                self._ap_blocks[ap_id] = (key, block)
                stats["dirty_aps"] += 1
                stats["dirty_rows"] += patched
                stats["clean_rows"] += m - patched
            else:
                block = self._compute_ap_block(
                    ap_id, clients, rows, col, m, n_subs,
                    inter_sig, co_audible, my_subs, rlf_entries,
                )
                self._ap_blocks[ap_id] = (key, block)
                stats["dirty_aps"] += 1
                stats["dirty_rows"] += m
            self._dirty_rows[ap_id] = set()
            self._block_fast[ap_id] = (
                version, self._ctx_serial, has_rlf_sources
            )
        n_aps = len(audible)
        stats["culled_columns"] += n_aps - n_audible
        stats["total_columns"] += n_aps

        # Radio link failure draws happen every epoch, in the same order
        # and count as the other backends: one draw per demanding client
        # whenever *any* co-channel overlap source exists -- audible or
        # not (a culled source contributes zero interference but still
        # gates the draw, exactly as the dense backends see it).
        disconnected: Set[int] = set()
        if has_rlf_sources and ap_active_demands:
            data_sinr = block["data_sinr"]
            for i, client in enumerate(clients):
                if ap_demands[client.client_id] <= 0.0:
                    continue
                if rlf_rng.random() < rlf_probability(data_sinr[i]):
                    disconnected.add(client.client_id)

        rate_rows = block["rate_rows"]

        def rate_fn(client_id: int, sub: int) -> float:
            return rate_rows[client_id][sub]

        # Lets the PF scheduler prefetch straight from the table.
        rate_fn.rate_rows = rate_rows

        cqi = block["cqi"]
        cqi_rows = block["cqi_rows"]
        threshold = block["threshold"]
        zero_fractions = block["zero_fractions"]

        def observe(allocation: Allocation, rng: np.random.Generator):
            estimated = int(prach_counts[col])
            draws = rng.random((m, n_subs))
            best = np.maximum(self._max_cqi_vec[rows], cqi)
            self._max_cqi_vec[rows] = best
            flags = draws < threshold
            best_rows = best.tolist()
            flag_rows = flags.tolist()
            # Invert the sparse (client, sub) -> fraction map once instead
            # of probing it n_subs times per client; overwriting entries
            # of a zero-filled template yields the exact same mapping.
            per_client_fractions: Dict[int, Dict[int, float]] = {}
            for (c, s), f in allocation.time_fraction.items():
                got = per_client_fractions.get(c)
                if got is None:
                    got = zero_fractions.copy()
                    per_client_fractions[c] = got
                got[s] = f
            client_obs: Dict[int, ClientObservation] = {}
            for i in range(m):
                cid = clients[i].client_id
                fractions = per_client_fractions.pop(cid, None)
                if fractions is None:
                    fractions = zero_fractions.copy()
                client_obs[cid] = ClientObservation(
                    subband_cqi=list(cqi_rows[i]),
                    max_subband_cqi=best_rows[i],
                    interference_detected=flag_rows[i],
                    scheduled_fraction=fractions,
                )
            return ApObservation(
                ap_id=ap_id,
                n_active_clients=len(ap_active_demands),
                estimated_contenders=max(estimated, len(ap_active_demands), 1),
                clients=client_obs,
            )

        return _EpochLinks(
            rate_fn=rate_fn, disconnected=disconnected, observe=observe
        )

    def _patch_ap_block(
        self,
        block: Dict[str, Any],
        clients,
        rows: np.ndarray,
        col: int,
        m: int,
        n_subs: int,
        inter_sig: Tuple[Tuple[int, tuple], ...],
        co_audible: List[int],
        my_subs: Set[int],
        rlf_entries: List[Tuple[int, int]],
        dirty_cids: Set[int],
    ) -> int:
        """Recompute only the dirty client rows of a cached block, in place.

        Every expression mirrors :meth:`_compute_ap_block` restricted to a
        single row -- the scalar/vector operations below perform the same
        IEEE-754 operations per element, so a patched block is bitwise
        equal to a freshly computed one (the fuzz tests pin this).

        Returns:
            The number of rows patched.
        """
        W = self._rx_w_mat
        cqi_mat = block["cqi"]
        cqi_rows = block["cqi_rows"]
        threshold = block["threshold"]
        rate_rows = block["rate_rows"]
        data_sinr = block["data_sinr"]
        ap_cols = self._ap_col
        # One fancy-indexed multiply yields every interferer's contribution
        # row; the accumulation below still adds them one by one in grant
        # order, so the float sequence matches the reference accumulation
        # exactly.
        n_inter = len(inter_sig)
        if n_inter:
            inter_cols = np.array(
                [ap_cols[other_id] for other_id, _ in inter_sig],
                dtype=np.intp,
            )
            mask_mat = np.vstack(
                [self._sub_mask(subs_key) for _, subs_key in inter_sig]
            )
        sub_range = np.arange(n_subs)
        cols = None
        patched = 0
        for i in range(m):
            cid = clients[i].client_id
            if cid not in dirty_cids:
                continue
            patched += 1
            r = rows[i]
            signal = W[r, col]
            inter = np.zeros(n_subs)
            if n_inter:
                contribs = W[r, inter_cols][:, None] * mask_mat
                for j in range(n_inter):
                    inter += contribs[j]
            ratio = signal / (self._rb_noise_w + inter)
            sinr_row = _elementwise_db(ratio)
            clean_ratio = signal / self._rb_noise_w
            clean_db = (
                10.0 * math.log10(clean_ratio)
                if clean_ratio > 0.0
                else ZERO_SIGNAL_SINR_DB
            )
            cqi_row = np.searchsorted(
                self._cqi_min_sinr, sinr_row, side="right"
            )
            clean_cqi = np.searchsorted(
                self._cqi_min_sinr, clean_db, side="right"
            )
            base = self._rate_table[cqi_row, sub_range]
            harq = np.empty(n_subs)
            sinr_list, cqi_list = sinr_row.tolist(), cqi_row.tolist()
            for k in range(n_subs):
                harq[k] = self._harq_scale(sinr_list[k], cqi_list[k])
            if not self.control_interference or not co_audible:
                ctrl = 1.0
            else:
                if cols is None:
                    cols = np.array(
                        [ap_cols[a] for a in co_audible], dtype=np.intp
                    )
                strongest = self._rx_dbm_mat[r, cols].max()
                sir_db = float(self._rx_dbm_mat[r, col] - strongest)
                ctrl = _control_scale(sir_db)
            rate = base * harq
            rate *= ctrl

            weighted = 0.0
            if my_subs:
                for other_id, overlap in rlf_entries:
                    weighted += (overlap / len(my_subs)) * W[
                        r, ap_cols[other_id]
                    ]
            data_ratio = float(signal / (self._rb_noise_w + weighted))
            data_sinr[i] = (
                10.0 * math.log10(data_ratio)
                if data_ratio > 0.0
                else ZERO_SIGNAL_SINR_DB
            )

            truly = (clean_cqi > 0) & (
                cqi_row < INTERFERENCE_CQI_DROP_FRACTION * clean_cqi
            )
            threshold[i] = np.where(
                truly,
                self.detector_true_positive,
                self.detector_false_positive,
            )
            cqi_mat[i] = cqi_row
            cqi_rows[i] = cqi_list
            rate_rows[cid] = rate.tolist()
        return patched

    def _compute_ap_block(
        self,
        ap_id: int,
        clients,
        rows: np.ndarray,
        col: int,
        m: int,
        n_subs: int,
        inter_sig: Tuple[Tuple[int, tuple], ...],
        co_audible: List[int],
        my_subs: Set[int],
        rlf_entries: List[Tuple[int, int]],
    ) -> Dict[str, Any]:
        """One AP's deterministic epoch quantities (the cacheable block).

        Identical arithmetic to :meth:`_vector_links`, restricted to the
        audible neighbour set: skipped neighbours contribute exact zeros,
        so results are bitwise equal to the dense accumulation.
        """
        W = self._rx_w_mat
        signal_w = W[rows, col]
        interference_w = np.zeros((m, n_subs))
        for other_id, subs_key in inter_sig:
            mask = self._sub_mask(subs_key)
            interference_w += W[rows, self._ap_col[other_id]][:, None] * mask

        ratio = signal_w[:, None] / (self._rb_noise_w + interference_w)
        sinr = _elementwise_db(ratio)
        clean_db = _elementwise_db(signal_w / self._rb_noise_w)
        cqi = np.searchsorted(self._cqi_min_sinr, sinr, side="right")
        clean_cqi = np.searchsorted(self._cqi_min_sinr, clean_db, side="right")

        base = self._rate_table[cqi, np.arange(n_subs)]
        harq = np.empty((m, n_subs))
        sinr_rows = sinr.tolist()
        cqi_rows = cqi.tolist()
        for i in range(m):
            sinr_i, cqi_i = sinr_rows[i], cqi_rows[i]
            for k in range(n_subs):
                harq[i, k] = self._harq_scale(sinr_i[k], cqi_i[k])
        if not self.control_interference or not co_audible:
            ctrl = np.ones(m)
        else:
            cols = np.array(
                [self._ap_col[a] for a in co_audible], dtype=np.intp
            )
            strongest = self._rx_dbm_mat[rows[:, None], cols[None, :]].max(axis=1)
            sir_db = (self._rx_dbm_mat[rows, col] - strongest).tolist()
            ctrl = np.array([_control_scale(s) for s in sir_db])
        rate = base * harq
        rate *= ctrl[:, None]

        # RLF data SINR (interference weighted by subchannel overlap with
        # the audible sources); computed even when no source exists this
        # epoch -- the cached value is simply unused then.
        weighted_w = np.zeros(m)
        if my_subs:
            for other_id, overlap in rlf_entries:
                weighted_w += (overlap / len(my_subs)) * W[
                    rows, self._ap_col[other_id]
                ]
        data_ratio = (signal_w / (self._rb_noise_w + weighted_w)).tolist()
        data_sinr = [
            10.0 * math.log10(r) if r > 0.0 else ZERO_SIGNAL_SINR_DB
            for r in data_ratio
        ]

        truly_interfered = (clean_cqi[:, None] > 0) & (
            cqi < INTERFERENCE_CQI_DROP_FRACTION * clean_cqi[:, None]
        )
        threshold = np.where(
            truly_interfered,
            self.detector_true_positive,
            self.detector_false_positive,
        )
        return {
            "cqi": cqi,
            "cqi_rows": cqi_rows,
            "threshold": threshold,
            "rate_rows": {
                clients[i].client_id: rate[i].tolist() for i in range(m)
            },
            "data_sinr": data_sinr,
            "zero_fractions": {sub: 0.0 for sub in range(n_subs)},
        }

    # -- Sensing ----------------------------------------------------------------

    def _observe(
        self,
        ap_id: int,
        clients,
        active_demands: Dict[int, float],
        sinr_map: Dict[Tuple[int, int], float],
        clean_map: Dict[int, float],
        allocation: Allocation,
        all_demands: Dict[int, float],
        rng: np.random.Generator,
    ) -> ApObservation:
        """Build the sensing snapshot one AP gathers in an epoch."""
        # PRACH-based contention estimate: active clients (anyone's) whose
        # preamble is audible at this AP at >= -10 dB.
        estimated = 0
        for client in self.topology.clients:
            if all_demands.get(client.client_id, 0.0) <= 0.0:
                continue
            if self._prach_audible[(client.client_id, ap_id)]:
                estimated += 1

        client_obs: Dict[int, ClientObservation] = {}
        n_subs = self.grid.n_subchannels
        for client in clients:
            cid = client.client_id
            subband_cqi = []
            detected = []
            max_cqi = []
            for sub in range(n_subs):
                sinr = sinr_map[(cid, sub)]
                cqi = cqi_from_sinr(sinr)
                subband_cqi.append(cqi)
                key = (cid, sub)
                best = max(self._max_cqi_state.get(key, 0), cqi)
                self._max_cqi_state[key] = best
                max_cqi.append(best)
                clean_cqi = cqi_from_sinr(clean_map[cid])
                truly_interfered = (
                    clean_cqi > 0
                    and cqi < INTERFERENCE_CQI_DROP_FRACTION * clean_cqi
                )
                if truly_interfered:
                    flag = rng.random() < self.detector_true_positive
                else:
                    flag = rng.random() < self.detector_false_positive
                detected.append(flag)
            fractions = {
                sub: allocation.fraction(cid, sub) for sub in range(n_subs)
            }
            client_obs[cid] = ClientObservation(
                subband_cqi=subband_cqi,
                max_subband_cqi=max_cqi,
                interference_detected=detected,
                scheduled_fraction=fractions,
            )

        return ApObservation(
            ap_id=ap_id,
            n_active_clients=len(active_demands),
            estimated_contenders=max(estimated, len(active_demands), 1),
            clients=client_obs,
        )

    # -- Convenience driver --------------------------------------------------------

    def run(
        self,
        n_epochs: int,
        policy: SubchannelPolicy,
        demand_fn: Callable[[int], Dict[int, float]],
    ) -> List[EpochResult]:
        """Run ``n_epochs`` with ``policy`` deciding allocations.

        Args:
            n_epochs: number of 1 s epochs.
            policy: subchannel policy (plain LTE, CellFi, oracle...).
            demand_fn: epoch index -> per-client demand in bits.
        """
        results: List[EpochResult] = []
        observations: Optional[Dict[int, ApObservation]] = None
        for epoch in range(n_epochs):
            allowed = policy.decide(epoch, observations)
            result = self.run_epoch(epoch, allowed, demand_fn(epoch))
            observations = result.observations
            results.append(result)
        return results

    # -- Checkpointing -------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Cross-epoch mutable state.

        ``_harq_cache``, ``_ap_blocks`` and ``_audible_cols`` are excluded
        on purpose: they memoise deterministic functions of serialized
        state, so a cold cache recomputes bit-identical values (and
        serializing them would make a resumed run's digest depend on cache
        warmth).  The epoch RNG streams ("cqi-detector", "rlf") belong to
        the shared :class:`~repro.sim.rng.RngStreams` subsystem and are
        restored there.  ``max_cqi_state`` is tuple-keyed, so it is
        flattened into sorted ``[client, subchannel, cqi]`` triples.
        Client positions and serving associations *are* semantic state
        (mutated by :meth:`move_client` / :meth:`reattach_client`), so
        they are serialized and re-applied on load.
        """
        clients = sorted(self.topology.clients, key=lambda c: c.client_id)
        return {
            "schedulers": {
                ap_id: (
                    scheduler.state_dict()
                    if hasattr(scheduler, "state_dict")
                    else None
                )
                for ap_id, scheduler in self.schedulers.items()
            },
            "max_cqi_state": [
                [cid, sub, cqi]
                for (cid, sub), cqi in sorted(self._max_cqi_state.items())
            ],
            "max_cqi_vec": self._max_cqi_vec,
            "positions": [[c.client_id, c.x, c.y] for c in clients],
            "serving": [[c.client_id, c.ap_id] for c in clients],
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        for ap_id, sched_state in state["schedulers"].items():
            # Shard views instantiate schedulers for owned APs only, but a
            # merged snapshot carries every AP's scheduler: skip foreign ones.
            scheduler = self.schedulers.get(int(ap_id))
            if scheduler is None:
                continue
            if sched_state is not None and hasattr(scheduler, "load_state"):
                scheduler.load_state(sched_state)
        self._max_cqi_state = {
            (int(cid), int(sub)): int(cqi)
            for cid, sub, cqi in state["max_cqi_state"]
        }
        # ``np.array`` (not ``asarray``): the caller may hand the same
        # snapshot dict to several shard workers, so the matrix must be
        # copied -- aliasing it would let one worker's disown-zeroing
        # bleed into every other worker sharing the snapshot.
        self._max_cqi_vec = np.array(
            state["max_cqi_vec"], dtype=np.int64
        ).reshape(self._max_cqi_vec.shape)
        # Older snapshots predate mobility/handover state; leave the
        # build-time layout untouched for them.
        for cid, x, y in state.get("positions", []):
            cid, x, y = int(cid), float(x), float(y)
            site = self.topology.client(cid)
            if site.x != x or site.y != y:
                self.move_client(cid, x, y)
        for cid, ap_id in state.get("serving", []):
            cid, ap_id = int(cid), int(ap_id)
            if self.topology.client(cid).ap_id != ap_id:
                self.reattach_client(cid, ap_id)
        # Volatile caches restart cold so a resumed run's arithmetic (and
        # digests) cannot depend on pre-checkpoint cache warmth.
        self._ap_blocks.clear()
        self._audible_cols.clear()
        self._harq_cache.clear()
        self._block_fast.clear()
        self._sig_cache.clear()
        self._epoch_ctx = None
        self._foreign_rlf_cache = (-1, {})
        self._dirty_rows = {ap.ap_id: set() for ap in self.topology.aps}
