"""LTE stack: a system-level simulator of eNodeBs, UEs and scheduling.

This package rebuilds the LTE substrate the paper's testbed (IP Access E40
small cells + Qualcomm UEs) and ns-3 simulations provided:

* :mod:`repro.lte.cqi` -- CQI measurement and reporting, including the
  higher-layer-configured aperiodic mode 3-0 subband reports CellFi relies
  on (paper Section 5.1).
* :mod:`repro.lte.ue` -- user equipment: attach state machine, PRACH, CQI.
* :mod:`repro.lte.enb` -- the eNodeB: admission, SIB broadcast, scheduling,
  PDCCH-order RACH solicitation.
* :mod:`repro.lte.scheduler` -- proportional-fair and round-robin resource
  allocation over an allowed subchannel set.
* :mod:`repro.lte.rrc` -- EARFCN arithmetic, SIB messages, cell-search and
  reboot timing models (Figure 6).
* :mod:`repro.lte.network` -- the epoch-driven system simulator gluing
  topology, PHY and MAC together, with a pluggable interference manager.
"""

from repro.lte.cqi import CqiReport, CqiReportingConfig, SubbandCqiReporter
from repro.lte.enb import EnodeB
from repro.lte.rrc import SibMessage, earfcn_from_frequency, frequency_from_earfcn
from repro.lte.scheduler import (
    Allocation,
    ProportionalFairScheduler,
    RoundRobinScheduler,
)
from repro.lte.ue import ConnectionState, UserEquipment

__all__ = [
    "Allocation",
    "ConnectionState",
    "CqiReport",
    "CqiReportingConfig",
    "EnodeB",
    "ProportionalFairScheduler",
    "RoundRobinScheduler",
    "SibMessage",
    "SubbandCqiReporter",
    "UserEquipment",
    "earfcn_from_frequency",
    "frequency_from_earfcn",
]
