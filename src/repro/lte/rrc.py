"""RRC-level plumbing: EARFCN arithmetic, SIB messages, timing models.

Paper Section 4.2: "Once a channel is selected, the LTE access point sets
the centre frequency (EARFCN) for downlink transmission and announces the
uplink frequency in the LTE SIB control message, both in granularity of
100 kHz."  Section 6.2 measures the reacquisition path: an AP reboot of
1 min 36 s after radio parameter changes and a 56 s client cell search.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.sim.checkpoint import register_dataclass

#: EARFCN granularity (3GPP 36.101): 100 kHz channel raster.
EARFCN_RASTER_HZ = 100_000.0

#: Offset anchoring our synthetic TVWS band at EARFCN 0 = 470 MHz, mirroring
#: how 3GPP band tables map EARFCN ranges onto band edges.
TVWS_BAND_BASE_HZ = 470e6

#: Measured AP reboot time after a radio parameter change (Figure 6).
AP_REBOOT_S = 96.0

#: Measured client cell-search + reattach time across multiple LTE bands
#: (Figure 6: "it takes another 56 s for a client to connect").
CELL_SEARCH_S = 56.0


def earfcn_from_frequency(frequency_hz: float) -> int:
    """Map a carrier centre frequency onto the 100 kHz EARFCN raster.

    Raises:
        ValueError: if the frequency is below the band base or off-raster
            by more than half a raster step (the AP must pick a centre
            frequency the raster can express).
    """
    if frequency_hz < TVWS_BAND_BASE_HZ:
        raise ValueError(
            f"frequency {frequency_hz / 1e6:.1f} MHz below TVWS band base "
            f"{TVWS_BAND_BASE_HZ / 1e6:.0f} MHz"
        )
    steps = (frequency_hz - TVWS_BAND_BASE_HZ) / EARFCN_RASTER_HZ
    earfcn = round(steps)
    if abs(steps - earfcn) > 1e-6:
        raise ValueError(
            f"frequency {frequency_hz} Hz is not on the 100 kHz raster"
        )
    return int(earfcn)


def frequency_from_earfcn(earfcn: int) -> float:
    """Inverse of :func:`earfcn_from_frequency`."""
    if earfcn < 0:
        raise ValueError(f"EARFCN must be >= 0, got {earfcn!r}")
    return TVWS_BAND_BASE_HZ + earfcn * EARFCN_RASTER_HZ


@dataclass(frozen=True)
class SibMessage:
    """System Information Block contents relevant to CellFi.

    The SIB announces the uplink frequency and the maximum transmit powers
    obtained from the spectrum database, "both in granularity of 100 kHz"
    (Section 4.2).  Clients "are allowed to use only the uplink frequency
    announced in the SIB messages".

    Attributes:
        downlink_earfcn: the cell's downlink centre frequency.
        uplink_earfcn: announced uplink centre frequency (TDD: same).
        max_ue_power_dbm: per-database uplink power cap.
        bandwidth_hz: carrier bandwidth.
        cell_id: physical cell identity.
    """

    downlink_earfcn: int
    uplink_earfcn: int
    max_ue_power_dbm: float
    bandwidth_hz: float
    cell_id: int

    @property
    def downlink_frequency_hz(self) -> float:
        """Downlink centre frequency in Hz."""
        return frequency_from_earfcn(self.downlink_earfcn)

    @property
    def uplink_frequency_hz(self) -> float:
        """Uplink centre frequency in Hz."""
        return frequency_from_earfcn(self.uplink_earfcn)


@dataclass
class ReacquisitionTiming:
    """Timing model of the Figure 6 vacate/reacquire cycle.

    Attributes:
        radio_off_latency_s: time from DB withdrawal detection to RF off
            (dominated by the DB polling interval; the paper observed 2 s).
        ap_reboot_s: AP reboot after radio parameter changes.
        cell_search_s: client search across LTE bands before reattach.
    """

    radio_off_latency_s: float = 2.0
    ap_reboot_s: float = AP_REBOOT_S
    cell_search_s: float = CELL_SEARCH_S

    def time_to_vacate(self) -> float:
        """Seconds from channel loss to clients silent (must be < 60)."""
        return self.radio_off_latency_s

    def time_to_resume(self) -> float:
        """Seconds from channel restoration to client traffic flowing."""
        return self.ap_reboot_s + self.cell_search_s


# SIBs appear in eNodeB/UE checkpoint state; the timing model appears in
# driver configs embedded in snapshot metadata.
register_dataclass(SibMessage)
register_dataclass(ReacquisitionTiming)


def cell_search_time_s(
    n_bands_scanned: int, per_band_s: float = 8.0, attach_s: float = 8.0
) -> float:
    """Model of client cell-search latency.

    The paper notes the 56 s reconnect "can be further reduced by disabling
    unused LTE bands"; this helper exposes that trade-off: scanning ``n``
    bands at ``per_band_s`` each plus a final attach.
    """
    if n_bands_scanned < 1:
        raise ValueError("client must scan at least one band")
    return n_bands_scanned * per_band_s + attach_s
