"""The eNodeB: cell state, SIB broadcast, admission and RACH solicitation.

The CellFi access point is a standard LTE small cell plus two software
components (channel selection and interference management) that talk to it
through standard interfaces (paper Figure 3).  :class:`EnodeB` models the
standard-LTE half: radio on/off, carrier configuration, attached clients,
scheduling and the PDCCH-order RACH solicitation CellFi's sensing uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set

from repro.lte.rrc import SibMessage, earfcn_from_frequency
from repro.lte.scheduler import Allocation, RateFn, Scheduler
from repro.lte.ue import UserEquipment
from repro.phy.resource_grid import ResourceGrid


class RadioOffError(RuntimeError):
    """Raised when an operation requires the radio to be transmitting."""


@dataclass
class EnodeB:
    """One LTE cell.

    Attributes:
        cell_id: physical cell identity.
        node: positioned object (``x``/``y``).
        grid: the carrier's resource grid (set when the radio starts).
        scheduler: downlink scheduler instance.
        tx_power_dbm: conducted power (paper small cell: 23-30 dBm).
    """

    cell_id: int
    node: object
    scheduler: Scheduler
    tx_power_dbm: float = 30.0
    grid: Optional[ResourceGrid] = None
    sib: Optional[SibMessage] = None
    radio_on: bool = False
    attached: Dict[int, UserEquipment] = field(default_factory=dict)
    _allowed_subchannels: Optional[Set[int]] = field(default=None, repr=False)
    rach_solicitations: int = 0

    @property
    def x(self) -> float:
        """Cell x position (metres)."""
        return self.node.x

    @property
    def y(self) -> float:
        """Cell y position (metres)."""
        return self.node.y

    # -- Radio / carrier lifecycle -------------------------------------------

    def start_radio(
        self,
        center_frequency_hz: float,
        grid: ResourceGrid,
        max_ue_power_dbm: float = 20.0,
    ) -> SibMessage:
        """Bring the carrier up and start broadcasting the SIB.

        Returns the SIB now on air.  TDD uses one channel for both
        directions, so the uplink EARFCN equals the downlink EARFCN.
        """
        earfcn = earfcn_from_frequency(center_frequency_hz)
        self.grid = grid
        self.sib = SibMessage(
            downlink_earfcn=earfcn,
            uplink_earfcn=earfcn,
            max_ue_power_dbm=max_ue_power_dbm,
            bandwidth_hz=grid.bandwidth_hz,
            cell_id=self.cell_id,
        )
        self.radio_on = True
        self._allowed_subchannels = None  # Default: everything.
        return self.sib

    def stop_radio(self) -> None:
        """Silence the carrier; every attached client detaches instantly.

        This is the channel-vacate path: no SIB, no grants, so clients
        cannot transmit (paper Section 4.2).
        """
        self.radio_on = False
        for ue in list(self.attached.values()):
            ue.detach()
        self.attached.clear()
        self.sib = None

    # -- Admission ----------------------------------------------------------------

    def admit(self, ue: UserEquipment) -> None:
        """Complete attach for a client that found this cell.

        Raises:
            RadioOffError: when the radio is not transmitting.
        """
        if not self.radio_on or self.sib is None:
            raise RadioOffError(f"cell {self.cell_id} radio is off")
        ue.attach(self.cell_id, self.sib)
        self.attached[ue.ue_id] = ue

    def release(self, ue_id: int) -> None:
        """Detach one client (mobility, inactivity)."""
        ue = self.attached.pop(ue_id, None)
        if ue is not None:
            ue.detach()

    @property
    def n_attached(self) -> int:
        """Number of connected clients."""
        return len(self.attached)

    # -- Interference-management interface -----------------------------------------

    def set_allowed_subchannels(self, subchannels: Optional[Sequence[int]]) -> None:
        """Restrict the scheduler to a subchannel subset.

        ``None`` removes the restriction (plain LTE behaviour).  This is the
        "standard interface" through which CellFi's interference management
        informs the unmodified scheduler (paper Section 4.3).

        Raises:
            RadioOffError: if no carrier is configured.
            ValueError: for subchannel indices outside the grid.
        """
        if self.grid is None:
            raise RadioOffError(f"cell {self.cell_id} has no carrier configured")
        if subchannels is None:
            self._allowed_subchannels = None
            return
        valid = set(self.grid.all_subchannels())
        requested = set(subchannels)
        unknown = requested - valid
        if unknown:
            raise ValueError(f"unknown subchannels {sorted(unknown)} for {self.grid}")
        self._allowed_subchannels = requested

    @property
    def allowed_subchannels(self) -> List[int]:
        """Subchannels the scheduler may currently use, sorted."""
        if self.grid is None:
            return []
        if self._allowed_subchannels is None:
            return self.grid.all_subchannels()
        return sorted(self._allowed_subchannels)

    # -- Scheduling -------------------------------------------------------------------

    def schedule_epoch(
        self,
        demands_bits: Dict[int, float],
        rate_fn: RateFn,
        epoch_s: float = 1.0,
    ) -> Allocation:
        """Run the downlink scheduler for one epoch.

        Only attached clients may appear in ``demands_bits``.

        Raises:
            RadioOffError: with the radio off.
            KeyError: for demands from unknown clients.
        """
        if not self.radio_on:
            raise RadioOffError(f"cell {self.cell_id} radio is off")
        for client in demands_bits:
            if client not in self.attached:
                raise KeyError(f"client {client} is not attached to cell {self.cell_id}")
        allocation = self.scheduler.allocate(
            self.allowed_subchannels, demands_bits, rate_fn, epoch_s
        )
        # Serving data implies granting uplink opportunities (TCP ACKs etc.).
        for client in demands_bits:
            if allocation.served_bits.get(client, 0.0) > 0.0:
                self.attached[client].grant_uplink()
        return allocation

    # -- Checkpointing -------------------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Cell state; attached clients are stored by id and re-linked on load."""
        return {
            "cell_id": self.cell_id,
            "radio_on": self.radio_on,
            "sib": self.sib,
            "grid_bandwidth_hz": None if self.grid is None else self.grid.bandwidth_hz,
            "attached_ids": sorted(self.attached),
            "allowed_subchannels": self._allowed_subchannels,
            "rach_solicitations": self.rach_solicitations,
            "scheduler": (
                self.scheduler.state_dict()
                if hasattr(self.scheduler, "state_dict")
                else None
            ),
        }

    def load_state(
        self,
        state: Dict[str, Any],
        ues: Optional[Dict[int, UserEquipment]] = None,
    ) -> None:
        """Restore cell state; ``ues`` maps client ids to live UE objects."""
        self.cell_id = state["cell_id"]
        self.radio_on = state["radio_on"]
        self.sib = state["sib"]
        bandwidth = state["grid_bandwidth_hz"]
        self.grid = None if bandwidth is None else ResourceGrid(bandwidth)
        allowed = state["allowed_subchannels"]
        self._allowed_subchannels = None if allowed is None else set(allowed)
        self.rach_solicitations = state["rach_solicitations"]
        if state["scheduler"] is not None and hasattr(self.scheduler, "load_state"):
            self.scheduler.load_state(state["scheduler"])
        self.attached = {}
        if ues is not None:
            for ue_id in state["attached_ids"]:
                self.attached[ue_id] = ues[ue_id]

    # -- Sensing hooks -------------------------------------------------------------------

    def solicit_prach(self) -> None:
        """Issue a PDCCH-order RACH to refresh contention estimates.

        "CellFi nodes use PDCCH-order RACH primitive of LTE to solicit
        PRACH preambles every second" (paper Section 5.1).
        """
        self.rach_solicitations += 1
