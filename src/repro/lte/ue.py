"""User equipment: connection state machine, PRACH and CQI behaviour.

A property of LTE the channel-selection design leans on (paper Section 4.2):
"An LTE client has to get a grant for each uplink transmission from its
access point.  Thus, once an access point looses a spectrum lease and stops
transmitting, all of its clients will stop transmitting instantly."
:class:`UserEquipment` enforces exactly that -- uplink transmission without
a grant raises, and grants vanish the moment the serving cell goes silent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.lte.cqi import CqiReport, measure_report
from repro.lte.rrc import SibMessage


class ConnectionState(enum.Enum):
    """RRC-level connection state of a client."""

    IDLE = "idle"
    SEARCHING = "searching"
    CONNECTED = "connected"


class NoUplinkGrantError(RuntimeError):
    """Raised when a UE attempts uplink transmission without a grant."""


@dataclass
class UserEquipment:
    """One LTE client.

    Attributes:
        ue_id: unique client identifier (matches the topology client id).
        node: positioned object (``x``/``y`` attributes).
        tx_power_dbm: uplink power; TVWS portable cap is 20 dBm.
        preamble_root: ZC root the UE draws PRACH signatures from.
    """

    ue_id: int
    node: object
    tx_power_dbm: float = 20.0
    preamble_root: int = 25
    state: ConnectionState = ConnectionState.IDLE
    serving_cell_id: Optional[int] = None
    sib: Optional[SibMessage] = None
    _uplink_granted: bool = field(default=False, repr=False)
    prach_sent_count: int = 0

    @property
    def x(self) -> float:
        """Client x position (metres)."""
        return self.node.x

    @property
    def y(self) -> float:
        """Client y position (metres)."""
        return self.node.y

    # -- Attach lifecycle ----------------------------------------------------

    def start_cell_search(self) -> None:
        """Begin searching for a cell (after power-on or serving-cell loss)."""
        self.state = ConnectionState.SEARCHING
        self.serving_cell_id = None
        self.sib = None
        self._uplink_granted = False

    def attach(self, cell_id: int, sib: SibMessage) -> None:
        """Complete attachment to a cell found during search.

        The SIB fixes the uplink frequency and power cap; the UE clamps its
        transmit power to the announced (database-derived) limit.

        Raises:
            ValueError: if attaching from the CONNECTED state (must detach
                first) -- catching accidental double-attach bugs.
        """
        if self.state is ConnectionState.CONNECTED:
            raise ValueError(f"UE {self.ue_id} is already attached")
        self.state = ConnectionState.CONNECTED
        self.serving_cell_id = cell_id
        self.sib = sib
        self.tx_power_dbm = min(self.tx_power_dbm, sib.max_ue_power_dbm)

    def detach(self) -> None:
        """Lose the serving cell (radio off, lease lost, out of coverage)."""
        self.state = ConnectionState.IDLE
        self.serving_cell_id = None
        self.sib = None
        self._uplink_granted = False

    # -- Checkpointing --------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Mutable connection state (identity/topology come from config)."""
        return {
            "tx_power_dbm": self.tx_power_dbm,
            "state": self.state.value,
            "serving_cell_id": self.serving_cell_id,
            "sib": self.sib,
            "uplink_granted": self._uplink_granted,
            "prach_sent_count": self.prach_sent_count,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self.tx_power_dbm = state["tx_power_dbm"]
        self.state = ConnectionState(state["state"])
        self.serving_cell_id = state["serving_cell_id"]
        self.sib = state["sib"]
        self._uplink_granted = state["uplink_granted"]
        self.prach_sent_count = state["prach_sent_count"]

    # -- PRACH ----------------------------------------------------------------

    def send_prach(self, rng: np.random.Generator) -> int:
        """Transmit a PRACH preamble; returns the chosen cyclic shift.

        Sent during initial access and whenever the eNodeB solicits RACH
        via PDCCH order (the mechanism CellFi uses for contention sensing).
        """
        self.prach_sent_count += 1
        return int(rng.integers(0, 64))

    # -- Uplink grant discipline ----------------------------------------------

    def grant_uplink(self) -> None:
        """Serving cell granted an uplink transmission opportunity.

        Raises:
            NoUplinkGrantError: if not connected (a grant can only arrive on
                the PDCCH of the serving cell).
        """
        if self.state is not ConnectionState.CONNECTED:
            raise NoUplinkGrantError(
                f"UE {self.ue_id} received a grant while {self.state.value}"
            )
        self._uplink_granted = True

    def transmit_uplink(self) -> float:
        """Send one uplink transmission; consumes the grant.

        Returns the transmit power used.

        Raises:
            NoUplinkGrantError: without a grant -- the property that makes
                LTE clients vacate instantly when their AP goes silent.
        """
        if not self._uplink_granted or self.state is not ConnectionState.CONNECTED:
            raise NoUplinkGrantError(
                f"UE {self.ue_id} has no uplink grant (state={self.state.value})"
            )
        self._uplink_granted = False
        return self.tx_power_dbm

    @property
    def can_transmit(self) -> bool:
        """Whether an uplink transmission would currently be allowed."""
        return self._uplink_granted and self.state is ConnectionState.CONNECTED

    # -- Measurements -----------------------------------------------------------

    def report_cqi(
        self,
        subband_sinrs_db,
        time: float = 0.0,
        measurement_noise_db: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> CqiReport:
        """Produce an aperiodic mode 3-0 CQI report from measured SINRs.

        Raises:
            NoUplinkGrantError: if idle -- reports ride on granted PUSCH.
        """
        if self.state is not ConnectionState.CONNECTED:
            raise NoUplinkGrantError(
                f"UE {self.ue_id} cannot report CQI while {self.state.value}"
            )
        return measure_report(
            subband_sinrs_db,
            time=time,
            measurement_noise_db=measurement_noise_db,
            rng=rng,
        )
