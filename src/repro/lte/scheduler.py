"""Downlink schedulers: allocation of subchannel airtime to clients.

CellFi deliberately leaves the standard LTE scheduler untouched: "the
scheduler is free to schedule any client in any of the resource blocks made
available by the interference management system" (paper Section 4.3).  The
simulators therefore use these schedulers both for plain LTE (all
subchannels allowed) and for CellFi (allowed set from interference
management).

The schedulers operate at *epoch* granularity (the 1 s interference-
management period): an epoch is divided into mini-slots and each allowed
subchannel is assigned to one client per mini-slot.  This captures
time-sharing, finite demands and per-subchannel rate differences without
simulating every 1 ms TTI.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.obs import runtime as _obs_runtime

#: Mini-slots per scheduling epoch.  50 slots x 1 s epoch = 20 ms granularity,
#: fine enough for fairness yet ~20x cheaper than per-TTI simulation.
MINISLOTS_PER_EPOCH = 50


@dataclass
class Allocation:
    """The outcome of scheduling one epoch.

    Attributes:
        epoch_s: epoch duration scheduled over.
        served_bits: bits delivered per client.
        time_fraction: fraction of the epoch each (client, subchannel) pair
            was scheduled -- the ``frac_j`` the bucket-update rule consumes.
    """

    epoch_s: float
    served_bits: Dict[int, float] = field(default_factory=dict)
    time_fraction: Dict[Tuple[int, int], float] = field(default_factory=dict)

    def client_throughput_bps(self, client_id: int) -> float:
        """Average throughput of ``client_id`` over the epoch."""
        return self.served_bits.get(client_id, 0.0) / self.epoch_s

    def fraction(self, client_id: int, subchannel: int) -> float:
        """Fraction of the epoch ``client_id`` was scheduled on ``subchannel``."""
        return self.time_fraction.get((client_id, subchannel), 0.0)

    def clients_on(self, subchannel: int) -> List[int]:
        """Clients that received any airtime on ``subchannel``."""
        return [
            client
            for (client, sub), frac in self.time_fraction.items()
            if sub == subchannel and frac > 0.0
        ]


#: Rate function signature: (client_id, subchannel) -> achievable bps when
#: scheduled full-time on that subchannel.
RateFn = Callable[[int, int], float]


class Scheduler(ABC):
    """Interface: divide subchannel airtime among clients for one epoch."""

    @abstractmethod
    def allocate(
        self,
        allowed_subchannels: Sequence[int],
        demands_bits: Dict[int, float],
        rate_fn: RateFn,
        epoch_s: float = 1.0,
    ) -> Allocation:
        """Produce an allocation for one epoch.

        Args:
            allowed_subchannels: subchannels this AP may use (from the
                interference manager; plain LTE passes all of them).
            demands_bits: per-client backlog for this epoch;
                ``float('inf')`` for saturated clients.
            rate_fn: achievable full-time rate per (client, subchannel).
            epoch_s: epoch duration in seconds.
        """

    def _slot_allocate(
        self,
        allowed_subchannels: Sequence[int],
        demands_bits: Dict[int, float],
        rate_fn: RateFn,
        epoch_s: float,
        pick: Callable[[int, Dict[int, float], Dict[int, float]], int],
    ) -> Allocation:
        """Shared mini-slot engine.

        ``pick(subchannel, remaining_demand, served_so_far)`` returns the
        client to serve, or -1 for none.
        """
        tel = _obs_runtime.active()
        span = (
            tel.span(
                "scheduler.allocate",
                cat="scheduler",
                args={
                    "clients": len(demands_bits),
                    "subchannels": len(allowed_subchannels),
                },
            )
            if tel is not None
            else None
        )
        if span is not None:
            span.__enter__()
        allocation = Allocation(epoch_s=epoch_s)
        remaining = dict(demands_bits)
        served: Dict[int, float] = {c: 0.0 for c in demands_bits}
        slot_s = epoch_s / MINISLOTS_PER_EPOCH
        for _ in range(MINISLOTS_PER_EPOCH):
            for sub in allowed_subchannels:
                client = pick(sub, remaining, served)
                if client < 0:
                    continue
                bits = min(rate_fn(client, sub) * slot_s, remaining[client])
                if bits <= 0.0:
                    continue
                remaining[client] -= bits
                served[client] += bits
                key = (client, sub)
                allocation.time_fraction[key] = (
                    allocation.time_fraction.get(key, 0.0) + 1.0 / MINISLOTS_PER_EPOCH
                )
        allocation.served_bits = served
        if span is not None:
            span.__exit__(None, None, None)
            tel.inc("scheduler.allocations")
            tel.inc("scheduler.served_bits", sum(served.values()))
            tel.inc(
                "scheduler.clients_served",
                sum(1 for bits in served.values() if bits > 0.0),
            )
        return allocation


class RoundRobinScheduler(Scheduler):
    """Cycle through backlogged clients on every subchannel.

    Deterministic and fair in airtime; used as the simple baseline and in
    unit tests where predictability matters.
    """

    def __init__(self) -> None:
        self._cursor: Dict[int, int] = {}

    def state_dict(self) -> Dict[str, object]:
        """Per-subchannel cursor positions (the only cross-epoch state)."""
        return {"cursor": dict(self._cursor)}

    def load_state(self, state: Dict[str, object]) -> None:
        self._cursor = dict(state["cursor"])

    def allocate(
        self,
        allowed_subchannels: Sequence[int],
        demands_bits: Dict[int, float],
        rate_fn: RateFn,
        epoch_s: float = 1.0,
    ) -> Allocation:
        client_order = sorted(demands_bits)

        def pick(sub: int, remaining: Dict[int, float], served: Dict[int, float]) -> int:
            eligible = [
                c for c in client_order if remaining[c] > 0.0 and rate_fn(c, sub) > 0.0
            ]
            if not eligible:
                return -1
            cursor = self._cursor.get(sub, 0)
            client = eligible[cursor % len(eligible)]
            self._cursor[sub] = cursor + 1
            return client

        return self._slot_allocate(
            allowed_subchannels, demands_bits, rate_fn, epoch_s, pick
        )


class ProportionalFairScheduler(Scheduler):
    """Classic proportional fairness: maximise ``rate / smoothed average``.

    The exponential average persists across epochs, so long-lived rate
    disparities even out over time exactly as in a real eNodeB.
    """

    def __init__(self, smoothing: float = 0.05, floor_bps: float = 1e3) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0,1], got {smoothing!r}")
        self.smoothing = smoothing
        self.floor_bps = floor_bps
        self._average_bps: Dict[int, float] = {}

    def state_dict(self) -> Dict[str, object]:
        """Smoothed per-client averages (the fairness memory)."""
        return {"average_bps": dict(self._average_bps)}

    def load_state(self, state: Dict[str, object]) -> None:
        self._average_bps = dict(state["average_bps"])

    def allocate(
        self,
        allowed_subchannels: Sequence[int],
        demands_bits: Dict[int, float],
        rate_fn: RateFn,
        epoch_s: float = 1.0,
    ) -> Allocation:
        for client in demands_bits:
            self._average_bps.setdefault(client, self.floor_bps)
        allocation = self._fast_allocate(
            allowed_subchannels, demands_bits, rate_fn, epoch_s
        )
        # Update the smoothed averages from realised epoch throughput.
        for client in demands_bits:
            realised = allocation.served_bits.get(client, 0.0) / epoch_s
            self._average_bps[client] = (
                (1.0 - self.smoothing) * self._average_bps[client]
                + self.smoothing * max(realised, self.floor_bps)
            )
        return allocation

    def _fast_allocate(
        self,
        allowed_subchannels: Sequence[int],
        demands_bits: Dict[int, float],
        rate_fn: RateFn,
        epoch_s: float,
    ) -> Allocation:
        """Inlined mini-slot engine for the PF pick rule.

        The scheduler is the hottest per-epoch loop of the system-level
        simulator (one pick per mini-slot per subchannel per AP), so the
        generic :meth:`Scheduler._slot_allocate` + pick-closure pair is
        specialised here: ``rate_fn`` is constant within an epoch and is
        prefetched once per (subchannel, client), and the per-pick history
        term is hoisted out of the slot loop.  Every floating-point
        expression, iteration order and tie-break below replicates the
        classic pick closure running inside ``_slot_allocate`` exactly --
        ``tests/test_lte_scheduler.py`` pins the bit-identity against a
        reference copy of that closure.
        """
        tel = _obs_runtime.active()
        span = (
            tel.span(
                "scheduler.allocate",
                cat="scheduler",
                args={
                    "clients": len(demands_bits),
                    "subchannels": len(allowed_subchannels),
                },
            )
            if tel is not None
            else None
        )
        if span is not None:
            span.__enter__()
        allocation = Allocation(epoch_s=epoch_s)
        remaining = dict(demands_bits)
        served: Dict[int, float] = {c: 0.0 for c in demands_bits}
        slot_s = epoch_s / MINISLOTS_PER_EPOCH
        slot_fraction = 1.0 / MINISLOTS_PER_EPOCH
        floor_denom = self.floor_bps * epoch_s / 100.0
        # Denominator mixes historical average with bits already served
        # *this epoch*, so fairness acts within the epoch too (otherwise
        # one client would win every mini-slot).
        averages = self._average_bps
        history = {
            client: self.smoothing * averages[client] * epoch_s
            for client in remaining
        }
        # Backends that precompute per-client rate rows expose them as an
        # attribute on the closure; prefetching from the table skips one
        # function call per (subchannel, client) pair.  The table holds
        # the exact floats ``rate_fn`` would return, so the allocation is
        # unchanged.
        rate_rows = getattr(rate_fn, "rate_rows", None)
        per_sub = []
        if rate_rows is None:
            for sub in allowed_subchannels:
                pairs = []
                for client in remaining:
                    rate = rate_fn(client, sub)
                    if rate > 0.0:
                        pairs.append((client, rate))
                per_sub.append((sub, pairs))
        else:
            client_rows = [(c, rate_rows[c]) for c in remaining]
            for sub in allowed_subchannels:
                pairs = []
                for client, row in client_rows:
                    rate = row[sub]
                    if rate > 0.0:
                        pairs.append((client, rate))
                per_sub.append((sub, pairs))
        time_fraction = allocation.time_fraction
        # A mini-slot that allocates nothing leaves (served, remaining)
        # untouched, so every later slot would be the same no-op: the
        # remaining slots are skipped wholesale.  This triggers once all
        # demand is exhausted (or only zero-rate backlog is left), so
        # finite-demand epochs stop paying for empty slots while the
        # produced allocation stays identical.
        n_live = sum(1 for left in remaining.values() if left > 0.0)
        progressed = True
        for _ in range(MINISLOTS_PER_EPOCH):
            if n_live == 0 or not progressed:
                break
            progressed = False
            for sub, pairs in per_sub:
                best_client = -1
                best_rate = 0.0
                best_metric = 0.0
                for client, rate in pairs:
                    if remaining[client] <= 0.0:
                        continue
                    denom = served[client] + history[client]
                    if denom < floor_denom:
                        denom = floor_denom
                    metric = rate / denom
                    if metric > best_metric:
                        best_metric = metric
                        best_client = client
                        best_rate = rate
                if best_client < 0:
                    continue
                left = remaining[best_client]
                bits = best_rate * slot_s
                if bits > left:
                    bits = left
                if bits <= 0.0:
                    continue
                left -= bits
                remaining[best_client] = left
                if left <= 0.0:
                    n_live -= 1
                progressed = True
                served[best_client] += bits
                key = (best_client, sub)
                got = time_fraction.get(key)
                time_fraction[key] = (
                    slot_fraction if got is None else got + slot_fraction
                )
                if n_live == 0:
                    break
        allocation.served_bits = served
        if span is not None:
            span.__exit__(None, None, None)
            tel.inc("scheduler.allocations")
            tel.inc("scheduler.served_bits", sum(served.values()))
            tel.inc(
                "scheduler.clients_served",
                sum(1 for bits in served.values() if bits > 0.0),
            )
        return allocation
