"""Handover: A3-style strongest-cell roaming for mobile clients.

Paper Section 7: "CellFi inherits the benefits of the LTE architecture.
It provides seamless roaming across access points, which is difficult to
engineer in current WiFi deployments."  This module adds the measurement-
driven handover decision (the LTE A3 event): a client re-associates when a
neighbour cell's RSRP exceeds the serving cell's by a hysteresis margin
for a sustained time-to-trigger, which suppresses ping-pong at cell edges.

:class:`MobileNetworkRunner` glues mobility, handover and the epoch
simulator: each epoch it moves the clients through the simulator's
incremental mobility API (:meth:`LteNetworkSimulator.move_client`),
applies handover decisions through
:meth:`LteNetworkSimulator.reattach_client` and runs the scheduler --
CellFi's interference manager rides along unchanged.  Only the rows of
moved/handed-over clients are refreshed; everything else (gain cache,
schedulers, CQI tracking) persists across epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.lte.network import EpochResult, LteNetworkSimulator
from repro.sim.mobility import RandomWaypointModel
from repro.sim.topology import AccessPointSite, ClientSite, Topology


@dataclass(frozen=True)
class HandoverEvent:
    """One completed handover."""

    epoch: int
    client_id: int
    source_ap: int
    target_ap: int


class HandoverController:
    """A3-event handover decisions from RSRP measurements.

    Args:
        hysteresis_db: neighbour must beat serving by this margin (A3
            offset; LTE-typical 2-3 dB).
        time_to_trigger_epochs: consecutive epochs the condition must hold.
    """

    def __init__(
        self, hysteresis_db: float = 3.0, time_to_trigger_epochs: int = 2
    ) -> None:
        if hysteresis_db < 0.0:
            raise ValueError(f"hysteresis must be >= 0, got {hysteresis_db!r}")
        if time_to_trigger_epochs < 1:
            raise ValueError("time-to-trigger must be >= 1 epoch")
        self.hysteresis_db = hysteresis_db
        self.ttt_epochs = time_to_trigger_epochs
        self._streak: Dict[int, Tuple[int, int]] = {}  # client -> (target, count)

    def decide(
        self,
        serving: Mapping[int, int],
        rsrp_dbm: Mapping[int, Mapping[int, float]],
    ) -> Dict[int, int]:
        """Return ``client -> new AP`` for clients that should hand over.

        Args:
            serving: current serving AP per client.
            rsrp_dbm: per-client RSRP toward every AP.
        """
        decisions: Dict[int, int] = {}
        for client_id, levels in rsrp_dbm.items():
            current = serving[client_id]
            best_ap = max(levels, key=lambda ap: levels[ap])
            qualifies = (
                best_ap != current
                and levels[best_ap] >= levels[current] + self.hysteresis_db
            )
            if not qualifies:
                self._streak.pop(client_id, None)
                continue
            target, count = self._streak.get(client_id, (best_ap, 0))
            if target != best_ap:
                target, count = best_ap, 0
            count += 1
            if count >= self.ttt_epochs:
                decisions[client_id] = best_ap
                self._streak.pop(client_id, None)
            else:
                self._streak[client_id] = (target, count)
        return decisions


class MobileNetworkRunner:
    """Epoch loop with mobility and roaming on top of the LTE simulator.

    Args:
        topology: initial layout.
        grid, channel, rngs: as for :class:`LteNetworkSimulator`.
        mobility: the walker model (clients are auto-registered).
        controller: handover decision logic.
        net_kwargs: forwarded to the simulator.
    """

    def __init__(
        self,
        topology: Topology,
        grid,
        channel,
        rngs,
        mobility: RandomWaypointModel,
        controller: Optional[HandoverController] = None,
        **net_kwargs,
    ) -> None:
        self.channel = channel
        self.grid = grid
        self.rngs = rngs
        self.mobility = mobility
        self.controller = controller or HandoverController()
        self.handovers: List[HandoverEvent] = []
        for client in topology.clients:
            mobility.add_client(client.client_id, client.x, client.y)
        self.net = LteNetworkSimulator(
            topology, grid, channel, rngs, **net_kwargs
        )
        # The runner mutates the simulator's topology in place (moves and
        # re-attachments); expose that single live object.
        self.topology = self.net.topology

    def _rsrp(self, topology: Topology) -> Dict[int, Dict[int, float]]:
        levels: Dict[int, Dict[int, float]] = {}
        for client in topology.clients:
            levels[client.client_id] = {
                ap.ap_id: self.net.rx_rb_power_dbm(client.client_id, ap.ap_id)
                for ap in topology.aps
            }
        return levels

    def run(
        self,
        n_epochs: int,
        policy,
        demand_fn,
        epoch_s: float = 1.0,
    ) -> List[EpochResult]:
        """Run with per-epoch movement and handover.

        Each epoch: move every walker through the simulator's incremental
        mobility path, evaluate A3 measurements against the refreshed
        links, apply qualifying handovers via ``reattach_client``, then
        run the epoch.  No caches are rebuilt wholesale -- the dirty-row
        machinery refreshes exactly the touched rows, so the incremental
        epoch backend sees precisely the cells events touched.
        """
        results: List[EpochResult] = []
        observations = None
        serving = {c.client_id: c.ap_id for c in self.topology.clients}
        for epoch in range(n_epochs):
            positions = self.mobility.step(epoch_s)
            for client_id, (x, y) in positions.items():
                site = self.topology.client(client_id)
                if site.x != x or site.y != y:
                    self.net.move_client(client_id, x, y)
            rsrp = self._rsrp(self.topology)
            for client_id, target in self.controller.decide(serving, rsrp).items():
                self.handovers.append(
                    HandoverEvent(
                        epoch=epoch,
                        client_id=client_id,
                        source_ap=serving[client_id],
                        target_ap=target,
                    )
                )
                serving[client_id] = target
                self.net.reattach_client(client_id, target)
            allowed = policy.decide(epoch, observations)
            result = self.net.run_epoch(epoch, allowed, demand_fn(epoch))
            observations = result.observations
            results.append(result)
        return results
