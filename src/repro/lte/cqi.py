"""CQI measurement and reporting.

CellFi "configures its clients to send higher layer-configured aperiodic
mode 3-0, sub-band CQI reports every 2 msec" and "tracks the maximum
reported CQI for each client and each subchannel over a period of time"
(paper Section 5.1).  This module implements:

* :class:`CqiReportingConfig` -- reporting mode, period and payload size
  (used for the Section 6.3.4 signalling-overhead accounting);
* :class:`CqiReport` -- one wideband + per-subband report;
* :class:`SubbandCqiReporter` -- generates noisy reports from true SINRs and
  implements the paper's max-tracking interference detector primitive used
  by :mod:`repro.core.interference.sensing`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.obs import runtime as _obs_runtime
from repro.phy.mcs import cqi_from_sinr

#: Bits for the wideband CQI field (TS 36.213).
WIDEBAND_CQI_BITS = 4

#: Bits per subband in a mode 3-0 report (2-bit differential CQI).
SUBBAND_CQI_BITS = 2


@dataclass(frozen=True)
class CqiReportingConfig:
    """Configuration of aperiodic CQI reporting.

    Attributes:
        mode: reporting mode string; CellFi uses "3-0" (higher-layer
            configured subband reports).
        period_s: reporting interval (paper: every 2 ms).
        n_subbands: number of subbands covered per report (13 on 5 MHz).
    """

    mode: str = "3-0"
    period_s: float = 2e-3
    n_subbands: int = 13

    @property
    def payload_bits(self) -> int:
        """Report payload: one wideband CQI + one differential CQI/subband.

        Note: the paper quotes "20 bits per report" for a 5 MHz mode 3-0
        report; a strict field count (4 + 13 x 2) gives 30 bits.  We expose
        the strict count and let the overhead benchmark report both.
        """
        return WIDEBAND_CQI_BITS + self.n_subbands * SUBBAND_CQI_BITS

    @property
    def uplink_overhead_bps(self) -> float:
        """Uplink signalling rate consumed by CQI reporting."""
        return self.payload_bits / self.period_s


@dataclass(frozen=True)
class CqiReport:
    """One CQI report from a client.

    Attributes:
        wideband_cqi: CQI over the whole carrier.
        subband_cqi: per-subchannel CQI values (index = subchannel).
        time: report timestamp in seconds.
    """

    wideband_cqi: int
    subband_cqi: Sequence[int]
    time: float = 0.0

    def cqi_for(self, subchannel: int) -> int:
        """CQI of one subchannel."""
        return self.subband_cqi[subchannel]


def measure_report(
    subband_sinrs_db: Sequence[float],
    time: float = 0.0,
    measurement_noise_db: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> CqiReport:
    """Quantise per-subband SINRs into a :class:`CqiReport`.

    Args:
        subband_sinrs_db: true SINR per subchannel.
        time: report timestamp.
        measurement_noise_db: std-dev of Gaussian estimation noise added to
            each subband SINR before quantisation (models the fluctuating
            reports seen in the paper's Figure 8 trace).
        rng: required when ``measurement_noise_db > 0``.
    """
    if measurement_noise_db > 0.0 and rng is None:
        raise ValueError("measurement noise requires an rng")
    noisy = list(subband_sinrs_db)
    if measurement_noise_db > 0.0:
        noise = rng.normal(0.0, measurement_noise_db, size=len(noisy))
        noisy = [s + n for s, n in zip(noisy, noise)]
    tel = _obs_runtime.active()
    if tel is not None:
        tel.inc("cqi.reports")
    subband_cqi = [cqi_from_sinr(s) for s in noisy]
    # Wideband CQI reflects average link quality in the linear domain.
    mean_sinr = 10.0 * np.log10(np.mean(np.power(10.0, np.asarray(noisy) / 10.0)))
    return CqiReport(
        wideband_cqi=cqi_from_sinr(float(mean_sinr)),
        subband_cqi=subband_cqi,
        time=time,
    )


class SubbandCqiReporter:
    """Tracks per-subchannel CQI history for one client at its AP.

    Implements the primitive behind the paper's interference estimator:
    "we consider the maximum CQI observed within a time window as an
    estimate of CQI for a channel without interference.  We declare that
    interference is present if we observe a CQI report below 60% of this
    maximum value over a window of 10 consecutive samples."

    Args:
        n_subbands: subchannel count of the carrier.
        max_window: number of recent reports over which the
            interference-free maximum is tracked.
        drop_fraction: "below 60% of max" -> 0.6.
        consecutive_required: consecutive low samples before declaring
            interference (paper: 10 samples at 2 ms).
    """

    def __init__(
        self,
        n_subbands: int,
        max_window: int = 500,
        drop_fraction: float = 0.6,
        consecutive_required: int = 10,
    ) -> None:
        if not 0.0 < drop_fraction < 1.0:
            raise ValueError(f"drop fraction must be in (0,1), got {drop_fraction!r}")
        if consecutive_required < 1:
            raise ValueError("need at least one consecutive sample")
        self.n_subbands = n_subbands
        self.max_window = max_window
        self.drop_fraction = drop_fraction
        self.consecutive_required = consecutive_required
        self._history: List[CqiReport] = []
        self._low_streak: Dict[int, int] = {k: 0 for k in range(n_subbands)}
        self._max_cqi: Dict[int, int] = {k: 0 for k in range(n_subbands)}

    def ingest(self, report: CqiReport) -> None:
        """Fold a new report into the tracked state.

        Raises:
            ValueError: if the report's subband count mismatches.
        """
        if len(report.subband_cqi) != self.n_subbands:
            raise ValueError(
                f"report has {len(report.subband_cqi)} subbands, expected {self.n_subbands}"
            )
        self._history.append(report)
        if len(self._history) > self.max_window:
            self._history.pop(0)
        tel = _obs_runtime.active()
        if tel is not None:
            tel.inc("cqi.reports_ingested")
        for k in range(self.n_subbands):
            cqi = report.subband_cqi[k]
            self._max_cqi[k] = max(
                (r.subband_cqi[k] for r in self._history), default=0
            )
            threshold = self.drop_fraction * self._max_cqi[k]
            if self._max_cqi[k] > 0 and cqi < threshold:
                self._low_streak[k] += 1
                if (
                    tel is not None
                    and self._low_streak[k] == self.consecutive_required
                ):
                    tel.inc("cqi.drop_detections")
                    tel.event(
                        "cqi.drop_detected",
                        cat="cqi",
                        t=report.time,
                        args={"subchannel": k, "max_cqi": self._max_cqi[k]},
                    )
            else:
                self._low_streak[k] = 0

    def interference_detected(self, subchannel: int) -> bool:
        """The paper's detector decision for one subchannel."""
        return self._low_streak[subchannel] >= self.consecutive_required

    def max_cqi(self, subchannel: int) -> int:
        """Best CQI seen recently -- the interference-free estimate."""
        return self._max_cqi[subchannel]

    def latest(self) -> Optional[CqiReport]:
        """Most recent report, or ``None``."""
        return self._history[-1] if self._history else None
