"""repro.obs — sim-clock-aware telemetry: metrics, tracing, profiling.

The observability layer for the CellFi reproduction (docs/OBSERVABILITY.md):

* :class:`MetricsRegistry` / :class:`Telemetry` — counters, gauges and
  fixed-edge histograms obtained via named scopes, plus a sim-time-keyed
  series of per-epoch ticks.
* :class:`Tracer` — structured trace records carrying sim-time; exports
  to JSONL and to Chrome ``trace_event`` JSON (Perfetto-loadable).
* :class:`Profiler` — wall-time attribution per event-callback site,
  rendered by the CLI's ``--profile`` table.
* :func:`active` / :func:`activated` — the process-global activation
  switch.  Disabled (the default) costs one global read and one branch
  at each instrumentation site; fault-free runs stay bit-identical
  because nothing in this package touches RNG streams or float paths.
"""

from repro.obs.metrics import (
    Counter,
    DEFAULT_EDGES,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    percentile_from_hist,
)
from repro.obs.profile import Profiler, callback_site
from repro.obs.record import EventLog, Record
from repro.obs.report import barrier_report, bench_diff
from repro.obs.runtime import activated, active, disable, enable
from repro.obs.shardmerge import ShardTelemetryMerger, shard_prefix
from repro.obs.shipping import TelemetryShipper
from repro.obs.telemetry import Telemetry
from repro.obs.trace import Tracer, TraceRecord, strip_wall

__all__ = [
    "Counter",
    "DEFAULT_EDGES",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Profiler",
    "Record",
    "ShardTelemetryMerger",
    "Telemetry",
    "TelemetryShipper",
    "TraceRecord",
    "Tracer",
    "activated",
    "active",
    "barrier_report",
    "bench_diff",
    "callback_site",
    "disable",
    "enable",
    "merge_snapshots",
    "percentile_from_hist",
    "shard_prefix",
    "strip_wall",
]
