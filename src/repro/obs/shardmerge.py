"""Merge worker telemetry payloads into one shard-tagged parent timeline.

The counterpart of :mod:`repro.obs.shipping`: the parent feeds each
worker payload (shipped on the epoch-barrier commit reply, or flushed on
degrade/close) into :class:`ShardTelemetryMerger`, which folds it into
the parent's active :class:`~repro.obs.telemetry.Telemetry` under
``shard<k>.``-prefixed names so one registry / one tracer holds the
whole fleet:

* **Counters / histograms** add their shipped deltas; **gauges** keep
  the shipped last-write value.  Per-shard sums of ``shard<k>.<name>``
  therefore equal the unsharded run's ``<name>`` totals exactly
  (integer/float adds in fixed shard order).
* **Trace rows** are appended to the parent tracer with their category
  prefixed ``shard<k>.`` and args extended with ``shard`` and a
  ``span_id`` (``s<k>-<seq>``) unique per parent tracer -- the sequence
  counters are shared across merger instances, so several sharded
  networks merging into one tracer never collide.  The Chrome exporter
  maps ``shard``
  args to per-shard ``pid`` tracks (see ``repro.obs.trace``).
* **Profile rows** merge into the parent profiler (when one is active)
  with ``shard<k>.``-prefixed sites.

Exactly-once semantics under supervision: ``epoch`` payloads carry
their epoch index and are dropped unless the index is *beyond* the
shard's merged horizon -- a respawned worker replaying its journal
re-produces payloads for epochs the parent already merged, and those
duplicates must not double-count (see ``docs/ROBUSTNESS.md``).  A
``salvage`` merge (recovery-time flush of a dying worker) keeps only
the trace rows, tagged ``salvaged``: its metrics describe a partially
executed epoch that journal replay will regenerate in full, so merging
them would double-count.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, Iterable, Optional

from repro.obs.telemetry import Telemetry


def shard_prefix(shard: int) -> str:
    """Label prefix for one shard's merged metrics/trace categories."""
    return f"shard{shard}"


class ShardTelemetryMerger:
    """Folds shipped worker payloads into the parent telemetry."""

    #: Span-id sequence counters keyed on the *target tracer*, shared by
    #: every merger instance: one run may build several ShardedNetworks
    #: (one per tech in fig9a, say) that all merge into the same parent
    #: tracer, and span ids must stay unique across all of them.
    _span_seq_by_tracer: "weakref.WeakKeyDictionary[Any, Dict[int, int]]" = (
        weakref.WeakKeyDictionary()
    )

    def __init__(self) -> None:
        #: Highest epoch index merged per shard (the dedup horizon).
        self.merged_through: Dict[int, int] = {}
        self.stats: Dict[str, int] = {
            "payloads_merged": 0,
            "spans_merged": 0,
            "duplicates_dropped": 0,
            "salvaged_payloads": 0,
            "edge_mismatches": 0,
        }

    def reset_horizon(self) -> None:
        """Forget merged epochs (checkpoint restore rewinds the run)."""
        self.merged_through.clear()

    def merge(
        self,
        shard: int,
        payload: Any,
        tel: Optional[Telemetry],
        salvage: bool = False,
    ) -> bool:
        """Fold one worker payload into ``tel``; ``True`` when merged."""
        if tel is None or not isinstance(payload, dict):
            return False
        if payload.get("kind") == "epoch":
            epoch = int(payload.get("epoch", -1))
            if epoch <= self.merged_through.get(shard, -1):
                self.stats["duplicates_dropped"] += 1
                return False
            self.merged_through[shard] = epoch
        if salvage:
            self.stats["salvaged_payloads"] += 1
        else:
            self._merge_metrics(shard, payload.get("metrics") or {}, tel)
            self._merge_profile(shard, payload.get("profile") or (), tel)
        self._merge_trace(shard, payload.get("trace") or (), tel, salvage)
        self.stats["payloads_merged"] += 1
        return True

    # -- section mergers ----------------------------------------------------

    def _merge_metrics(
        self, shard: int, metrics: Dict[str, Any], tel: Telemetry
    ) -> None:
        prefix = shard_prefix(shard)
        registry = tel.registry
        for name, delta in (metrics.get("counters") or {}).items():
            registry.counter(f"{prefix}.{name}").inc(delta)
        for name, value in (metrics.get("gauges") or {}).items():
            registry.gauge(f"{prefix}.{name}").set(value)
        for name, spec in (metrics.get("histograms") or {}).items():
            edges = tuple(float(edge) for edge in spec["edges"])
            hist = registry.histogram(f"{prefix}.{name}", edges)
            if hist.edges != edges or len(hist.counts) != len(spec["counts"]):
                # Never happens with fixed-edge histograms; refusing to
                # rebin beats silently mis-bucketing.
                self.stats["edge_mismatches"] += 1
                continue
            hist.counts = [a + b for a, b in zip(hist.counts, spec["counts"])]
            hist.total += spec["sum"]
            hist.count += spec["count"]

    def _merge_trace(
        self,
        shard: int,
        rows: Iterable[Dict[str, Any]],
        tel: Telemetry,
        salvage: bool,
    ) -> None:
        tracer = tel.tracer
        if tracer is None:
            return
        prefix = shard_prefix(shard)
        for row in rows:
            args = dict(row.get("args") or {})
            args["shard"] = shard
            if salvage:
                args["salvaged"] = True
            cat = f"{prefix}.{row.get('cat', 'span')}"
            if row.get("ph") == "X":
                seqs = self._span_seq_by_tracer.setdefault(tracer, {})
                seq = seqs.get(shard, 0)
                seqs[shard] = seq + 1
                args["span_id"] = f"s{shard}-{seq}"
                tracer.complete(
                    row["name"],
                    cat,
                    row["t"],
                    row.get("dur", 0.0),
                    args=args,
                    wall_ns=row.get("wall_ns", 0),
                    wall_dur_ns=row.get("wall_dur_ns", 0),
                )
                self.stats["spans_merged"] += 1
            else:
                tracer.instant(
                    row["name"],
                    cat,
                    row["t"],
                    args=args,
                    wall_ns=row.get("wall_ns", 0),
                )

    def _merge_profile(
        self, shard: int, rows: Iterable[Dict[str, Any]], tel: Telemetry
    ) -> None:
        profiler = tel.profiler
        if profiler is None:
            return
        prefix = shard_prefix(shard)
        for row in rows:
            profiler.merge(
                f"{prefix}.{row['site']}",
                row.get("calls", 0),
                row.get("total_s", 0.0),
                row.get("max_s", 0.0),
            )
