"""Wall-time attribution per event-callback site.

The simulator feeds every fired callback's wall-time here keyed by the
callback's qualified name (:func:`callback_site`); subsystem spans feed
their site names too, so epoch-driven experiments that never touch the
event engine still produce a useful ``--profile`` table.

Wall-time is inherently nondeterministic, so profile data is kept out
of metric snapshots used in determinism comparisons (see
``Telemetry.snapshot(include_profile=False)``).
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, List


def callback_site(callback: Callable[..., object]) -> str:
    """Stable human-readable name for a callback: ``module.qualname``.

    Unwraps ``functools.partial`` chains and names bound methods by the
    class that defines them, which is what you want in a profile table
    (``wifi.csma.CsmaMac._on_backoff_expiry`` rather than
    ``<bound method ...>``).
    """
    while isinstance(callback, functools.partial):
        callback = callback.func
    func = getattr(callback, "__func__", callback)  # unwrap bound methods
    qualname = getattr(func, "__qualname__", None)
    if qualname is None:
        return repr(callback)
    module = getattr(func, "__module__", None)
    return f"{module}.{qualname}" if module else qualname


class Profiler:
    """Accumulates call count, total and max wall seconds per site."""

    def __init__(self) -> None:
        self._sites: Dict[str, List[float]] = {}

    def record(self, site: str, wall_s: float) -> None:
        stats = self._sites.get(site)
        if stats is None:
            self._sites[site] = [1, wall_s, wall_s]
        else:
            stats[0] += 1
            stats[1] += wall_s
            if wall_s > stats[2]:
                stats[2] = wall_s

    def merge(self, site: str, calls: int, total_s: float, max_s: float) -> None:
        """Fold pre-aggregated stats in (shard workers ship these)."""
        stats = self._sites.get(site)
        if stats is None:
            self._sites[site] = [int(calls), float(total_s), float(max_s)]
        else:
            stats[0] += int(calls)
            stats[1] += float(total_s)
            if max_s > stats[2]:
                stats[2] = float(max_s)

    def rows(self) -> List[Dict[str, object]]:
        """Per-site stats sorted by total wall time, hottest first."""
        rows = [
            {
                "site": site,
                "calls": int(stats[0]),
                "total_s": stats[1],
                "mean_us": (stats[1] / stats[0]) * 1e6 if stats[0] else 0.0,
                "max_us": stats[2] * 1e6,
            }
            for site, stats in self._sites.items()
        ]
        rows.sort(key=lambda r: (-r["total_s"], r["site"]))
        return rows

    def table(self, top: int = 10) -> str:
        """Rendered top-N table of the hottest callback sites."""
        from repro.utils.render import format_table  # lazy: avoids cycles

        rows = self.rows()[:top]
        return format_table(
            ["site", "calls", "total s", "mean us", "max us"],
            [
                [
                    r["site"],
                    r["calls"],
                    f"{r['total_s']:.4f}",
                    f"{r['mean_us']:.1f}",
                    f"{r['max_us']:.1f}",
                ]
                for r in rows
            ],
            title=f"Profile — top {min(top, len(rows))} wall-time sites",
        )

    def __len__(self) -> int:
        return len(self._sites)
