"""Process-global telemetry activation with a no-op fast path.

Instrumentation sites throughout the stack are written as::

    tel = runtime.active()
    if tel is not None:
        tel.inc("scheduler.allocations")

When no telemetry is active (the default), ``active()`` returns ``None``
and the instrumented code pays one global read plus one ``is not None``
branch -- benchmarked in ``benchmarks/bench_obs_overhead.py`` to stay
under the 3% overhead budget on the epoch benchmark.

The global is process-local on purpose: sweep worker processes activate
their own :class:`~repro.obs.telemetry.Telemetry` instance and ship a
snapshot back over the result pipe, so parallel workers never share
mutable state (see ``repro.experiments.sweep``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.obs.telemetry import Telemetry

_ACTIVE: Optional["Telemetry"] = None


def active() -> Optional["Telemetry"]:
    """The currently active telemetry sink, or ``None`` when disabled."""
    return _ACTIVE


def enable(telemetry: "Telemetry") -> "Telemetry":
    """Make ``telemetry`` the process-global sink; returns it."""
    global _ACTIVE
    _ACTIVE = telemetry
    return telemetry


def disable() -> None:
    """Deactivate telemetry; instrumentation reverts to the no-op path."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def activated(telemetry: "Telemetry") -> Iterator["Telemetry"]:
    """Context manager scoping activation; restores the previous sink."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        _ACTIVE = previous
