"""Validate Chrome ``trace_event`` files and trace JSONL lines.

Used by ``make trace-smoke`` (and CI) to assert that a traced run
produced a Perfetto-loadable file.  The structural rules mirror
``benchmarks/trace_event.schema.json``; validation is implemented with
stdlib checks so the repo carries no new dependency — when the optional
``jsonschema`` package is importable the file is *additionally* checked
against the schema document.

Usage::

    python -m repro.obs.validate trace.json [trace.jsonl ...]
"""

from __future__ import annotations

import json
import pathlib
import sys
from typing import Dict, List, Sequence

#: Phases we emit (Perfetto accepts more; we only ever write these).
_ALLOWED_PHASES = {"X", "i", "M"}

#: Repo-relative location of the schema document.
SCHEMA_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "trace_event.schema.json"
)


class TraceValidationError(ValueError):
    """A trace file violated the trace_event structural rules."""


def _fail(message: str) -> None:
    raise TraceValidationError(message)


def validate_trace_event(entry: Dict[str, object], index: int) -> None:
    """Check one ``traceEvents`` entry."""
    if not isinstance(entry, dict):
        _fail(f"traceEvents[{index}]: not an object: {entry!r}")
    for key in ("name", "ph", "pid", "tid"):
        if key not in entry:
            _fail(f"traceEvents[{index}]: missing required key {key!r}")
    if not isinstance(entry["name"], str):
        _fail(f"traceEvents[{index}]: name must be a string")
    ph = entry["ph"]
    if ph not in _ALLOWED_PHASES:
        _fail(f"traceEvents[{index}]: unexpected phase {ph!r}")
    for key in ("pid", "tid"):
        if not isinstance(entry[key], int):
            _fail(f"traceEvents[{index}]: {key} must be an integer")
    if ph in ("X", "i"):
        if "ts" not in entry:
            _fail(f"traceEvents[{index}]: phase {ph!r} requires ts")
        if not isinstance(entry["ts"], (int, float)):
            _fail(f"traceEvents[{index}]: ts must be a number")
    if ph == "X":
        if "dur" not in entry:
            _fail(f"traceEvents[{index}]: complete event requires dur")
        if not isinstance(entry["dur"], (int, float)) or entry["dur"] < 0:
            _fail(f"traceEvents[{index}]: dur must be a non-negative number")
    if "args" in entry and not isinstance(entry["args"], dict):
        _fail(f"traceEvents[{index}]: args must be an object")


def _check_span_id(
    seen: Dict[str, int], entry: Dict[str, object], index: int, where: str
) -> None:
    """Reject duplicate span ids (shard-merged streams must not overlap).

    ``span_id`` is assigned at merge time by ``repro.obs.shardmerge``
    (``s<shard>-<seq>``); a collision means two shards' timelines were
    merged twice or with reused sequence counters.
    """
    args = entry.get("args")
    if not isinstance(args, dict):
        return
    span_id = args.get("span_id")
    if span_id is None:
        return
    if not isinstance(span_id, str):
        _fail(f"{where} {index + 1}: span_id must be a string")
    if span_id in seen:
        _fail(
            f"{where} {index + 1}: span id {span_id!r} already used at "
            f"{where} {seen[span_id] + 1} — overlapping shard spans"
        )
    seen[span_id] = index


def validate_chrome_trace(payload: object) -> int:
    """Validate a parsed Chrome trace document; returns the event count."""
    if not isinstance(payload, dict):
        _fail("top level must be a JSON object with a traceEvents array")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        _fail("traceEvents must be an array")
    if not events:
        _fail("traceEvents is empty — tracing produced no records")
    span_ids: Dict[str, int] = {}
    for index, entry in enumerate(events):
        validate_trace_event(entry, index)
        _check_span_id(span_ids, entry, index, "traceEvents")
    _maybe_jsonschema(payload)
    return len(events)


def validate_jsonl_row(row: Dict[str, object], index: int) -> None:
    """Check one line of our sim-time trace JSONL export."""
    for key in ("name", "cat", "ph", "t"):
        if key not in row:
            _fail(f"line {index + 1}: missing required key {key!r}")
    if row["ph"] not in ("X", "i"):
        _fail(f"line {index + 1}: unexpected phase {row['ph']!r}")
    if not isinstance(row["t"], (int, float)):
        _fail(f"line {index + 1}: t must be a number (sim seconds)")
    if row["ph"] == "X" and "dur" not in row:
        _fail(f"line {index + 1}: span rows require dur")


def validate_jsonl_file(path: pathlib.Path) -> int:
    """Validate a trace JSONL file; returns the row count."""
    count = 0
    span_ids: Dict[str, int] = {}
    with open(path) as handle:
        for index, line in enumerate(handle):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as exc:
                _fail(f"line {index + 1}: invalid JSON: {exc}")
            validate_jsonl_row(row, index)
            _check_span_id(span_ids, row, index, "line")
            count += 1
    if count == 0:
        _fail(f"{path}: no trace rows")
    return count


def _maybe_jsonschema(payload: Dict[str, object]) -> None:
    """Extra schema-document check when jsonschema happens to be present."""
    try:
        import jsonschema  # type: ignore
    except ImportError:
        return
    if not SCHEMA_PATH.exists():
        return
    schema = json.loads(SCHEMA_PATH.read_text())
    jsonschema.validate(payload, schema)


def validate_file(path: pathlib.Path) -> int:
    """Dispatch on extension: ``.jsonl`` rows vs Chrome trace JSON."""
    path = pathlib.Path(path)
    if path.suffix == ".jsonl":
        return validate_jsonl_file(path)
    with open(path) as handle:
        payload = json.load(handle)
    return validate_chrome_trace(payload)


def main(argv: Sequence[str]) -> int:
    if not argv:
        print("usage: python -m repro.obs.validate TRACE [TRACE ...]")
        return 2
    for arg in argv:
        path = pathlib.Path(arg)
        try:
            count = validate_file(path)
        except (TraceValidationError, OSError, json.JSONDecodeError) as exc:
            print(f"{path}: INVALID — {exc}")
            return 1
        print(f"{path}: ok ({count} events)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via make trace-smoke
    sys.exit(main(sys.argv[1:]))
