"""Structured tracing: sim-time records, JSONL and Chrome trace export.

Every record carries the *simulation* clock (``t``/``dur``, seconds);
wall-clock measurements ride along in ``wall_ns``/``wall_dur_ns`` fields
so determinism checks can strip them (:func:`strip_wall`) and compare
the rest byte-for-byte.

The Chrome export follows the ``trace_event`` JSON format understood by
Perfetto and ``chrome://tracing``: spans become phase-``"X"`` (complete)
events with ``ts``/``dur`` in microseconds of *sim-time*, instants
become phase-``"i"`` events, and each category is mapped to its own
``tid`` with a thread-name metadata record so subsystems appear as
separate tracks.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

#: Keys holding wall-clock data, excluded from determinism comparisons.
WALL_KEYS = ("wall_ns", "wall_dur_ns")


class TraceRecord:
    """One trace entry; ``ph`` is ``"X"`` (span) or ``"i"`` (instant)."""

    __slots__ = ("name", "cat", "ph", "t", "dur", "args", "wall_ns", "wall_dur_ns")

    def __init__(
        self,
        name: str,
        cat: str,
        ph: str,
        t: float,
        dur: float = 0.0,
        args: Optional[Dict[str, object]] = None,
        wall_ns: int = 0,
        wall_dur_ns: int = 0,
    ) -> None:
        self.name = name
        self.cat = cat
        self.ph = ph
        self.t = t
        self.dur = dur
        self.args = args or {}
        self.wall_ns = wall_ns
        self.wall_dur_ns = wall_dur_ns

    def to_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "t": self.t,
        }
        if self.ph == "X":
            row["dur"] = self.dur
        if self.args:
            row["args"] = self.args
        row["wall_ns"] = self.wall_ns
        row["wall_dur_ns"] = self.wall_dur_ns
        return row


def strip_wall(row: Dict[str, object]) -> Dict[str, object]:
    """Copy of a JSONL trace row without its wall-clock fields."""
    return {k: v for k, v in row.items() if k not in WALL_KEYS}


class Tracer:
    """Append-only trace buffer with JSONL and Chrome exporters."""

    def __init__(self) -> None:
        self._records: List[TraceRecord] = []

    def instant(
        self,
        name: str,
        cat: str,
        t: float,
        args: Optional[Dict[str, object]] = None,
        wall_ns: int = 0,
    ) -> None:
        self._records.append(
            TraceRecord(name, cat, "i", t, args=args, wall_ns=wall_ns)
        )

    def complete(
        self,
        name: str,
        cat: str,
        t: float,
        dur: float,
        args: Optional[Dict[str, object]] = None,
        wall_ns: int = 0,
        wall_dur_ns: int = 0,
    ) -> None:
        self._records.append(
            TraceRecord(
                name, cat, "X", t, dur=dur, args=args,
                wall_ns=wall_ns, wall_dur_ns=wall_dur_ns,
            )
        )

    @property
    def records(self) -> List[TraceRecord]:
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def to_jsonl(self, include_wall: bool = True) -> str:
        """One compact JSON object per line, in record order."""
        lines = []
        for record in self._records:
            row = record.to_dict()
            if not include_wall:
                row = strip_wall(row)
            lines.append(json.dumps(row, sort_keys=True, separators=(",", ":")))
        return "\n".join(lines) + ("\n" if lines else "")

    @staticmethod
    def _pid_of(record: TraceRecord) -> int:
        """Perfetto process id: shard-merged records get their own track.

        Records merged from a shard worker carry ``args["shard"]`` (see
        ``repro.obs.shardmerge``) and map to pid ``shard + 2``; everything
        recorded by the parent/supervisor stays on pid 1.
        """
        shard = record.args.get("shard")
        if isinstance(shard, int) and not isinstance(shard, bool):
            return shard + 2
        return 1

    def chrome_trace(self) -> Dict[str, object]:
        """Chrome ``trace_event`` JSON (open in Perfetto / chrome://tracing).

        ``ts`` and ``dur`` are sim-time microseconds so the Perfetto
        timeline reads in simulated seconds; the wall-clock measurement
        of each span is preserved under ``args.wall_us``.  Shard-merged
        records become one process track per shard (``process_name``
        metadata ``shard<k>``); within each process every category keeps
        its own ``tid`` with a ``thread_name`` metadata record.
        """
        pid_cats: Dict[int, List[str]] = {}
        for record in self._records:
            cats = pid_cats.setdefault(self._pid_of(record), [])
            if record.cat not in cats:
                cats.append(record.cat)
        tids: Dict[int, Dict[str, int]] = {}
        events: List[Dict[str, object]] = []
        for pid in sorted(pid_cats):
            if pid != 1:
                events.append(
                    {
                        "name": "process_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": 0,
                        "args": {"name": f"shard{pid - 2}"},
                    }
                )
            mapping = {
                cat: i + 1 for i, cat in enumerate(sorted(pid_cats[pid]))
            }
            tids[pid] = mapping
            events.extend(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": cat},
                }
                for cat, tid in sorted(mapping.items(), key=lambda kv: kv[1])
            )
        for record in self._records:
            pid = self._pid_of(record)
            entry: Dict[str, object] = {
                "name": record.name,
                "cat": record.cat,
                "ph": record.ph,
                "ts": record.t * 1e6,
                "pid": pid,
                "tid": tids[pid][record.cat],
            }
            args = dict(record.args)
            if record.ph == "X":
                entry["dur"] = record.dur * 1e6
                if record.wall_dur_ns:
                    args["wall_us"] = record.wall_dur_ns / 1e3
            elif record.ph == "i":
                entry["s"] = "t"  # instant scope: thread
            if args:
                entry["args"] = args
            events.append(entry)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_jsonl(self, path: str, include_wall: bool = True) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl(include_wall=include_wall))

    def write_chrome(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle)
            handle.write("\n")


def load_jsonl(path: str) -> List[Dict[str, object]]:
    """Parse a trace JSONL file back into row dicts."""
    rows: List[Dict[str, object]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows


def jsonl_without_wall(rows: Iterable[Dict[str, object]]) -> List[Dict[str, object]]:
    """Rows with wall-clock fields removed (for determinism comparisons)."""
    return [strip_wall(row) for row in rows]
