"""The common structured-event record shared across the stack.

``Record`` generalises the PAWS path's ``RobustnessEvent`` (PR 3) into
the one record type every subsystem logs through: a sim-time stamp, a
source identifier, an event kind, and free-form detail.  ``EventLog``
is the append-only container; ``repro.tvws.transport.RobustnessLog``
is now a thin subclass (scope ``"robustness"``) so existing consumers
-- ``reportgen.robustness_summary``, the db-outage digests -- keep
working on the exact same rows while the events also flow into any
active telemetry sink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.obs import runtime


@dataclass(frozen=True)
class Record:
    """One structured event: what happened, where, at what sim-time."""

    time: float
    source: str
    kind: str
    detail: str = ""

    def to_row(self) -> Dict[str, object]:
        """Plain-dict form for JSONL export and report aggregation."""
        return {
            "time": self.time,
            "source": self.source,
            "kind": self.kind,
            "detail": self.detail,
        }


class EventLog:
    """Append-only log of :class:`Record` entries.

    Subclasses set :attr:`scope` to name the metric/trace namespace the
    events are mirrored into when telemetry is active; recording stays
    a pure list-append when it is not.
    """

    #: Metric and trace-category prefix for mirrored events.
    scope = "events"

    def __init__(self) -> None:
        self._events: List[Record] = []

    def record(self, time: float, source: str, kind: str, detail: str = "") -> Record:
        """Append one event; mirrors it into active telemetry, if any."""
        event = Record(time=time, source=source, kind=kind, detail=detail)
        self._events.append(event)
        tel = runtime.active()
        if tel is not None:
            tel.inc(f"{self.scope}.{kind}")
            tel.event(
                f"{self.scope}.{kind}",
                cat=self.scope,
                t=time,
                args={"source": source, "detail": detail},
            )
        return event

    @property
    def events(self) -> Tuple[Record, ...]:
        return tuple(self._events)

    def state_dict(self) -> Dict[str, object]:
        """All recorded rows (the ``Record`` dataclass is whitelisted)."""
        return {"events": list(self._events)}

    def load_state(self, state: Dict[str, object]) -> None:
        self._events = list(state["events"])

    def counts(self) -> Dict[str, int]:
        """Event counts per kind (sorted by kind for stable output)."""
        tally: Dict[str, int] = {}
        for event in self._events:
            tally[event.kind] = tally.get(event.kind, 0) + 1
        return dict(sorted(tally.items()))

    def to_rows(self) -> List[Dict[str, object]]:
        return [event.to_row() for event in self._events]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._events)
