"""Worker-side telemetry shipping: compact incremental payloads.

A shard worker (see ``repro.sim.shard``) runs its own process-local
:class:`~repro.obs.telemetry.Telemetry` and must get its buffered data
back to the parent without a side channel.  :class:`TelemetryShipper`
wraps the worker's telemetry with *cursors* -- last-shipped counter and
gauge values, histogram bucket counts, the trace record index, and
per-site profile baselines -- and :meth:`TelemetryShipper.payload`
emits only what changed since the previous payload, then advances the
cursors.  Payloads therefore stay proportional to one epoch's activity
and can piggyback on the epoch-barrier commit reply.

Payload format (versioned; see docs/OBSERVABILITY.md):

``{"v": 1, "kind": "epoch"|"flush", "epoch": <int, epoch kind only>,
"metrics": {"counters": {name: delta}, "gauges": {name: value},
"histograms": {name: {"edges", "counts", "sum", "count"}}},
"trace": [<jsonl row dicts, wall fields included>],
"profile": [{"site", "calls", "total_s", "max_s"}]}``

Empty sections are omitted.  Counter/histogram entries are *deltas*
(the parent adds them); gauges are last-write values.  The registry's
sim-time series is deliberately **not** shipped: per-shard series would
need a global merge policy and the parent's own per-epoch ticks already
capture the merged counters (see ``repro.obs.shardmerge``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.telemetry import Telemetry

#: Payload schema version; bump on incompatible changes.
PAYLOAD_VERSION = 1

#: Payload kinds: ``epoch`` rides a commit reply and is deduplicated by
#: epoch index at merge time; ``flush`` drains the remaining buffer on
#: degrade/close and is merged unconditionally.
PAYLOAD_KINDS = ("epoch", "flush")


class TelemetryShipper:
    """Incremental exporter for one worker's telemetry buffers."""

    def __init__(self, tel: Telemetry) -> None:
        self._tel = tel
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._hist_counts: Dict[str, List[int]] = {}
        self._hist_sum: Dict[str, float] = {}
        self._hist_count: Dict[str, int] = {}
        self._trace_idx = 0
        self._profile: Dict[str, List[float]] = {}

    def payload(self, kind: str, epoch: Optional[int] = None) -> Dict[str, Any]:
        """Everything recorded since the last payload; advances cursors."""
        if kind not in PAYLOAD_KINDS:
            raise ValueError(f"unknown payload kind {kind!r}; want {PAYLOAD_KINDS}")
        out: Dict[str, Any] = {"v": PAYLOAD_VERSION, "kind": kind}
        if kind == "epoch":
            if epoch is None:
                raise ValueError("epoch payloads must carry their epoch index")
            out["epoch"] = int(epoch)
        metrics = self._metrics_delta()
        if metrics:
            out["metrics"] = metrics
        trace = self._trace_delta()
        if trace:
            out["trace"] = trace
        profile = self._profile_delta()
        if profile:
            out["profile"] = profile
        return out

    # -- section builders ---------------------------------------------------

    def _metrics_delta(self) -> Dict[str, Any]:
        registry = self._tel.registry
        counters: Dict[str, float] = {}
        for name in sorted(registry._counters):
            value = registry._counters[name].value
            delta = value - self._counters.get(name, 0.0)
            self._counters[name] = value
            if delta:
                counters[name] = delta
        gauges: Dict[str, float] = {}
        for name in sorted(registry._gauges):
            value = registry._gauges[name].value
            if name not in self._gauges or self._gauges[name] != value:
                gauges[name] = value
            self._gauges[name] = value
        histograms: Dict[str, Dict[str, Any]] = {}
        for name in sorted(registry._histograms):
            hist = registry._histograms[name]
            last = self._hist_counts.get(name, [0] * len(hist.counts))
            delta_counts = [a - b for a, b in zip(hist.counts, last)]
            delta_sum = hist.total - self._hist_sum.get(name, 0.0)
            delta_count = hist.count - self._hist_count.get(name, 0)
            self._hist_counts[name] = list(hist.counts)
            self._hist_sum[name] = hist.total
            self._hist_count[name] = hist.count
            if delta_count:
                histograms[name] = {
                    "edges": list(hist.edges),
                    "counts": delta_counts,
                    "sum": delta_sum,
                    "count": delta_count,
                }
        out: Dict[str, Any] = {}
        if counters:
            out["counters"] = counters
        if gauges:
            out["gauges"] = gauges
        if histograms:
            out["histograms"] = histograms
        return out

    def _trace_delta(self) -> List[Dict[str, Any]]:
        tracer = self._tel.tracer
        if tracer is None:
            return []
        records = tracer.records
        rows = [record.to_dict() for record in records[self._trace_idx:]]
        self._trace_idx = len(records)
        return rows

    def _profile_delta(self) -> List[Dict[str, Any]]:
        profiler = self._tel.profiler
        if profiler is None:
            return []
        rows: List[Dict[str, Any]] = []
        for site in sorted(profiler._sites):
            calls, total_s, max_s = profiler._sites[site]
            base = self._profile.get(site, [0, 0.0])
            delta_calls = int(calls - base[0])
            delta_total = total_s - base[1]
            self._profile[site] = [calls, total_s]
            if delta_calls:
                rows.append(
                    {
                        "site": site,
                        "calls": delta_calls,
                        "total_s": delta_total,
                        "max_s": max_s,
                    }
                )
        return rows
