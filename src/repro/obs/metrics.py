"""Deterministic metrics primitives: counters, gauges, histograms.

Design constraints (see docs/OBSERVABILITY.md):

* **Determinism** -- histograms use *fixed* bucket edges chosen at
  creation time, never adaptive ones, so two runs with the same seed
  produce byte-identical snapshots regardless of value order or worker
  count.  Snapshots sort every mapping by key.
* **No RNG, no wall clock** -- nothing in this module reads entropy or
  ``time``; sim-time is always passed in by the caller.  Instrumented
  code therefore cannot perturb a seeded run.
* **Cheap when idle** -- metric objects are plain ``__slots__`` holders;
  the disabled fast path never reaches this module at all (see
  ``repro.obs.runtime``).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

#: Default histogram bucket edges: a coarse log-ish ladder that suits
#: counts (hops per epoch, contenders) and sub-second latencies alike.
DEFAULT_EDGES: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-edge histogram with total sum/count for mean and percentiles.

    ``counts[i]`` tallies observations ``v <= edges[i]`` (first matching
    bucket); ``counts[-1]`` is the overflow bucket for ``v > edges[-1]``.
    """

    __slots__ = ("name", "edges", "counts", "total", "count")

    def __init__(self, name: str, edges: Sequence[float] = DEFAULT_EDGES) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError(f"histogram edges must be sorted and non-empty: {edges!r}")
        self.name = name
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # First bucket whose upper edge is >= value; past the last edge
        # lands in the overflow bucket counts[len(edges)].
        self.counts[bisect_left(self.edges, value)] += 1
        self.total += value
        self.count += 1

    def percentile(self, q: float) -> float:
        """Approximate q-th percentile (0..100) by bucket interpolation."""
        return percentile_from_hist(self.edges, self.counts, q)


def percentile_from_hist(
    edges: Sequence[float], counts: Sequence[int], q: float
) -> float:
    """Percentile estimate from bucket counts via linear interpolation.

    Works on live histograms and on snapshot dicts alike (reportgen uses
    the latter).  Returns 0.0 for an empty histogram.
    """
    total = sum(counts)
    if total == 0:
        return 0.0
    target = max(0.0, min(100.0, q)) / 100.0 * total
    cumulative = 0
    for i, bucket_count in enumerate(counts):
        if bucket_count == 0:
            continue
        lower = edges[i - 1] if i > 0 else 0.0
        upper = edges[i] if i < len(edges) else edges[-1]
        if cumulative + bucket_count >= target:
            if bucket_count == 0 or upper == lower:
                return upper
            fraction = (target - cumulative) / bucket_count
            return lower + fraction * (upper - lower)
        cumulative += bucket_count
    return edges[-1]


class Scope:
    """Named view onto a registry: metrics become ``<prefix>.<name>``."""

    __slots__ = ("_registry", "_prefix")

    def __init__(self, registry: "MetricsRegistry", prefix: str) -> None:
        self._registry = registry
        self._prefix = prefix

    def counter(self, name: str) -> Counter:
        return self._registry.counter(f"{self._prefix}.{name}")

    def gauge(self, name: str) -> Gauge:
        return self._registry.gauge(f"{self._prefix}.{name}")

    def histogram(
        self, name: str, edges: Sequence[float] = DEFAULT_EDGES
    ) -> Histogram:
        return self._registry.histogram(f"{self._prefix}.{name}", edges)


class MetricsRegistry:
    """All metrics for one run, plus a sim-time-keyed series of ticks.

    ``tick(sim_time)`` appends a point capturing every counter and gauge
    at that sim-time; calling it twice at the same time overwrites the
    earlier point, so re-entrant instrumentation stays deterministic.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._series: List[Dict[str, object]] = []

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(
        self, name: str, edges: Sequence[float] = DEFAULT_EDGES
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, edges)
        return metric

    def scope(self, prefix: str) -> Scope:
        return Scope(self, prefix)

    def tick(self, sim_time: float) -> None:
        """Record a series point of all counters and gauges at ``sim_time``."""
        point = {
            "t": sim_time,
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
        }
        if self._series and self._series[-1]["t"] == sim_time:
            self._series[-1] = point
        else:
            self._series.append(point)

    def snapshot(self) -> Dict[str, object]:
        """Deterministic plain-dict state: sorted keys, no wall-time."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "edges": list(h.edges),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for n, h in sorted(self._histograms.items())
            },
            "series": [dict(point) for point in self._series],
        }


def merge_snapshots(snapshots: Iterable[Mapping[str, object]]) -> Dict[str, object]:
    """Aggregate per-cell snapshots (e.g. from sweep workers) into one.

    Counters and histogram bucket counts/sums add; gauges keep the last
    value seen (they are instantaneous, summing would be meaningless);
    per-cell series are dropped -- each cell has its own sim timeline.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, object]] = {}
    merged_cells = 0
    for snap in snapshots:
        if not snap:
            continue
        merged_cells += 1
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0.0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = value
        for name, hist in snap.get("histograms", {}).items():
            existing = histograms.get(name)
            if existing is None:
                histograms[name] = {
                    "edges": list(hist["edges"]),
                    "counts": list(hist["counts"]),
                    "sum": hist["sum"],
                    "count": hist["count"],
                }
            elif list(existing["edges"]) == list(hist["edges"]):
                existing["counts"] = [
                    a + b for a, b in zip(existing["counts"], hist["counts"])
                ]
                existing["sum"] += hist["sum"]
                existing["count"] += hist["count"]
            # Mismatched edges: keep the first histogram untouched rather
            # than guessing a rebinning (never happens with fixed edges).
    return {
        "cells": merged_cells,
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }
