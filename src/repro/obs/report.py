"""Barrier analytics and benchmark regression diffs over merged telemetry.

Two consumers of the cross-shard telemetry plane (see
``repro.obs.shardmerge`` and docs/OBSERVABILITY.md):

* :func:`barrier_report` digests a merged trace-JSONL stream into
  per-phase wall-clock breakdowns, straggler attribution (which shard's
  ``lte.epoch`` span was the slowest each epoch, and how much of the
  epoch's total compute sat on that critical path), and
  recovery-overhead accounting (respawn/replay span walls).
* :func:`bench_diff` walks two ``BENCH_*.json`` artifacts in parallel
  and flags timing regressions: every numeric leaf whose key ends in
  ``_s`` (seconds) is compared as ``current / baseline`` against a
  tolerance ratio.  ``python -m repro.cli obs-report`` exits nonzero
  when any comparison regresses, giving CI a trajectory gate.

Everything here consumes plain dicts/rows (no live telemetry needed),
so reports can be produced offline from artifacts.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.utils.render import format_table

#: Default regression tolerance when neither the CLI nor the baseline
#: artifact provides one: current timings may grow 5% before failing.
DEFAULT_TOLERANCE = 1.05

#: Supervisor span names emitted by ``repro.sim.shard.ShardSupervisor``.
_PHASE_SPANS = {
    "shard.barrier.partial": "partial",
    "shard.barrier.commit": "commit",
}


def _wall_s(row: Mapping[str, Any]) -> float:
    return float(row.get("wall_dur_ns") or 0) / 1e9


def barrier_report(rows: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Analyze a merged trace-JSONL stream (rows from ``load_jsonl``)."""
    phases: Dict[str, List[float]] = {}
    epoch_shard_wall: Dict[int, Dict[int, float]] = {}
    recovery = {
        "respawns": 0,
        "respawn_wall_s": 0.0,
        "replays": 0,
        "replay_wall_s": 0.0,
        "replayed_ops": 0,
        "salvaged_rows": 0,
    }
    for row in rows:
        name = row.get("name")
        args = row.get("args") or {}
        if args.get("salvaged"):
            recovery["salvaged_rows"] += 1
        phase = _PHASE_SPANS.get(name)
        if phase is not None:
            phases.setdefault(phase, []).append(_wall_s(row))
        elif name == "shard.respawn":
            recovery["respawns"] += 1
            recovery["respawn_wall_s"] += _wall_s(row)
        elif name == "shard.replay":
            recovery["replays"] += 1
            recovery["replay_wall_s"] += _wall_s(row)
            recovery["replayed_ops"] += int(args.get("ops", 0))
        elif name == "lte.epoch" and "shard" in args and "epoch" in args:
            epoch_shard_wall.setdefault(int(args["epoch"]), {})[
                int(args["shard"])
            ] = _wall_s(row)
    phase_stats = {
        phase: {
            "count": len(walls),
            "total_s": sum(walls),
            "mean_s": sum(walls) / len(walls),
            "max_s": max(walls),
        }
        for phase, walls in sorted(phases.items())
    }
    shards: Dict[int, Dict[str, Any]] = {}
    slowest_counts: Dict[int, int] = {}
    shares: List[float] = []
    for epoch in sorted(epoch_shard_wall):
        walls = epoch_shard_wall[epoch]
        slowest = max(walls, key=lambda k: (walls[k], k))
        slowest_counts[slowest] = slowest_counts.get(slowest, 0) + 1
        total = sum(walls.values())
        if total > 0:
            shares.append(walls[slowest] / total)
        for shard, wall in walls.items():
            entry = shards.setdefault(
                shard, {"epochs": 0, "total_s": 0.0, "slowest_epochs": 0}
            )
            entry["epochs"] += 1
            entry["total_s"] += wall
    for shard, count in slowest_counts.items():
        shards[shard]["slowest_epochs"] = count
    return {
        "epochs": len(epoch_shard_wall),
        "phases": phase_stats,
        "shards": {shard: shards[shard] for shard in sorted(shards)},
        "stragglers": {
            "slowest_shard_counts": dict(sorted(slowest_counts.items())),
            "mean_critical_share": sum(shares) / len(shares) if shares else 0.0,
            "max_critical_share": max(shares) if shares else 0.0,
        },
        "recovery": recovery,
    }


def render_report(report: Mapping[str, Any]) -> str:
    """Human-readable rendering of a :func:`barrier_report` result."""
    blocks: List[str] = []
    if report["phases"]:
        blocks.append(
            format_table(
                ["phase", "epochs", "total s", "mean s", "max s"],
                [
                    [
                        phase,
                        stats["count"],
                        f"{stats['total_s']:.4f}",
                        f"{stats['mean_s']:.4f}",
                        f"{stats['max_s']:.4f}",
                    ]
                    for phase, stats in report["phases"].items()
                ],
                title="Barrier phases — wall-clock breakdown",
            )
        )
    if report["shards"]:
        blocks.append(
            format_table(
                ["shard", "epochs", "compute s", "slowest (epochs)"],
                [
                    [
                        shard,
                        stats["epochs"],
                        f"{stats['total_s']:.4f}",
                        stats["slowest_epochs"],
                    ]
                    for shard, stats in report["shards"].items()
                ],
                title=(
                    "Straggler attribution — critical-path share "
                    f"mean {report['stragglers']['mean_critical_share']:.2f}, "
                    f"max {report['stragglers']['max_critical_share']:.2f}"
                ),
            )
        )
    recovery = report["recovery"]
    blocks.append(
        "Recovery overhead: "
        f"{recovery['respawns']} respawn(s) ({recovery['respawn_wall_s']:.3f}s), "
        f"{recovery['replays']} replay(s) ({recovery['replay_wall_s']:.3f}s, "
        f"{recovery['replayed_ops']} op(s)), "
        f"{recovery['salvaged_rows']} salvaged trace row(s)"
    )
    return "\n\n".join(blocks)


def bench_diff(
    baseline: Any,
    current: Any,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Dict[str, Any]]:
    """Compare timing leaves of two benchmark artifacts.

    Walks both documents in parallel (dict keys by name, list items by
    position, labelled by a ``cells``/``name`` key when present) and
    compares every shared numeric leaf whose key ends with ``_s``.  A
    row regresses when ``current > baseline * tolerance``.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance!r}")
    rows: List[Dict[str, Any]] = []

    def walk(base: Any, cur: Any, path: Tuple[str, ...]) -> None:
        if isinstance(base, Mapping) and isinstance(cur, Mapping):
            for key in sorted(set(base) & set(cur), key=str):
                walk(base[key], cur[key], path + (str(key),))
        elif isinstance(base, list) and isinstance(cur, list):
            for i, (b, c) in enumerate(zip(base, cur)):
                label = str(i)
                if isinstance(b, Mapping):
                    label = str(b.get("cells", b.get("name", i)))
                walk(b, c, path + (label,))
        elif (
            isinstance(base, (int, float))
            and isinstance(cur, (int, float))
            and not isinstance(base, bool)
            and not isinstance(cur, bool)
        ):
            key = path[-1] if path else ""
            if key.endswith("_s") and base > 0:
                ratio = cur / base
                rows.append(
                    {
                        "metric": ".".join(path),
                        "baseline": float(base),
                        "current": float(cur),
                        "ratio": ratio,
                        "regression": ratio > tolerance,
                    }
                )

    walk(baseline, current, ())
    return rows


def render_bench_diff(
    rows: Iterable[Mapping[str, Any]],
    tolerance: float,
    title: Optional[str] = None,
) -> str:
    """Table of :func:`bench_diff` rows, regressions flagged."""
    rows = list(rows)
    if not rows:
        return "(no shared timing metrics to compare)"
    return format_table(
        ["metric", "baseline s", "current s", "ratio", "verdict"],
        [
            [
                row["metric"],
                f"{row['baseline']:.6g}",
                f"{row['current']:.6g}",
                f"{row['ratio']:.3f}",
                "REGRESSION" if row["regression"] else "ok",
            ]
            for row in rows
        ],
        title=title
        or f"Benchmark diff — tolerance ratio {tolerance:.3g}",
    )
