"""The telemetry facade instrumentation sites talk to.

One :class:`Telemetry` instance bundles a metrics registry, an optional
tracer, an optional profiler, and a settable sim clock.  The clock
matters because the stack has two kinds of drivers: event-driven
experiments advance a ``Simulator`` (which pushes its clock in here as
events fire), while the fig9a/fig9b epoch loops have no event engine --
they call :meth:`set_time` once per epoch so their metrics series and
trace records still carry sim-time.

Everything here is RNG-free and allocation-light; the disabled path
never reaches this module (see ``repro.obs.runtime``).
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Dict, Optional, Sequence

from repro.obs.metrics import DEFAULT_EDGES, MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.trace import Tracer


class _Span:
    """Context manager recording one span into tracer and/or profiler."""

    __slots__ = ("_tel", "name", "cat", "args", "_t0", "_wall0")

    def __init__(
        self,
        tel: "Telemetry",
        name: str,
        cat: str,
        args: Optional[Dict[str, object]],
    ) -> None:
        self._tel = tel
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self) -> "_Span":
        self._t0 = self._tel.now
        self._wall0 = perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall1 = perf_counter_ns()
        tel = self._tel
        t1 = tel.now
        if tel.tracer is not None:
            tel.tracer.complete(
                self.name,
                self.cat,
                self._t0,
                t1 - self._t0,
                args=self.args,
                wall_ns=self._wall0,
                wall_dur_ns=wall1 - self._wall0,
            )
        if tel.profiler is not None:
            tel.profiler.record(self.name, (wall1 - self._wall0) / 1e9)


class Telemetry:
    """Metrics + tracing + profiling behind one sim-clock-aware handle."""

    def __init__(
        self,
        trace: bool = False,
        profile: bool = False,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer: Optional[Tracer] = Tracer() if trace else None
        self.profiler: Optional[Profiler] = Profiler() if profile else None
        self.now = 0.0

    # -- sim clock ---------------------------------------------------------

    def set_time(self, sim_time: float) -> None:
        """Advance the telemetry clock (epoch drivers; Simulator does this)."""
        self.now = sim_time

    # -- metrics -----------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.registry.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(name).set(value)

    def observe(
        self, name: str, value: float, edges: Sequence[float] = DEFAULT_EDGES
    ) -> None:
        self.registry.histogram(name, edges).observe(value)

    def tick(self, sim_time: Optional[float] = None) -> None:
        """Append a series point at ``sim_time`` (defaults to the clock)."""
        self.registry.tick(self.now if sim_time is None else sim_time)

    # -- tracing -----------------------------------------------------------

    def event(
        self,
        name: str,
        cat: str = "event",
        t: Optional[float] = None,
        args: Optional[Dict[str, object]] = None,
    ) -> None:
        """Record an instant trace event (no-op when tracing is off)."""
        if self.tracer is not None:
            self.tracer.instant(
                name,
                cat,
                self.now if t is None else t,
                args=args,
                wall_ns=perf_counter_ns(),
            )

    def span(
        self,
        name: str,
        cat: str = "span",
        args: Optional[Dict[str, object]] = None,
    ) -> _Span:
        """Context manager timing a subsystem section (sim + wall)."""
        return _Span(self, name, cat, args)

    @property
    def tracing(self) -> bool:
        return self.tracer is not None

    # -- export ------------------------------------------------------------

    def snapshot(self, include_profile: bool = False) -> Dict[str, object]:
        """Metrics snapshot; optionally with (nondeterministic) profile rows.

        The default excludes profile data so snapshots embedded in sweep
        records stay byte-identical across worker counts and machines.
        """
        snap = self.registry.snapshot()
        if include_profile and self.profiler is not None:
            snap["profile"] = self.profiler.rows()
        return snap
