"""Wi-Fi network simulator: topology glue and workload drivers.

Builds an 802.11af or 802.11ac network on the *same* topology used by the
LTE/CellFi simulators so technology comparisons hold everything else equal
(paper Section 3.2: "In both cases we consider the same network of access
points and place the same number of clients within the corresponding range
of each access point").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.phy.propagation import CompositeChannel
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.topology import Topology
from repro.utils.dbmath import thermal_noise_dbm
from repro.wifi.csma import CsmaNode, DcfParams, Station, WifiMedium
from repro.wifi.frames import FrameTimings
from repro.wifi.rates import best_mcs

#: Station-id offset separating client ids from AP ids in the medium.
CLIENT_STATION_OFFSET = 10_000


@dataclass(frozen=True)
class WifiStandard:
    """A Wi-Fi flavour: bandwidth, powers and MAC switches.

    The paper's simulation settings: 802.11af on a 6 MHz TVWS channel at
    30 dBm (both directions), 802.11ac at 20 dBm on 20 MHz; RTS/CTS on.
    """

    name: str
    bandwidth_hz: float
    ap_tx_power_dbm: float
    client_tx_power_dbm: float
    rts_cts: bool = True
    #: Rate-adaptation margin: MCS is chosen ``mcs_margin_db`` below the
    #: clean SNR, as practical SINR-driven adaptation does, leaving headroom
    #: for residual interference.
    mcs_margin_db: float = 3.0


#: 802.11af outdoor configuration (Section 6.3.4 "RF" settings).
STANDARD_80211AF = WifiStandard(
    name="802.11af", bandwidth_hz=6e6, ap_tx_power_dbm=30.0, client_tx_power_dbm=30.0
)

#: 802.11ac home configuration.
STANDARD_80211AC = WifiStandard(
    name="802.11ac", bandwidth_hz=20e6, ap_tx_power_dbm=20.0, client_tx_power_dbm=20.0
)


@dataclass
class WifiRunResult:
    """Outcome of a Wi-Fi simulation run.

    Attributes:
        duration_s: simulated time.
        throughput_bps: delivered throughput per client id.
        reachable: whether each client had any usable MCS at all.
        data_attempts / data_failures: MAC-level delivery accounting.
    """

    duration_s: float
    throughput_bps: Dict[int, float] = field(default_factory=dict)
    reachable: Dict[int, bool] = field(default_factory=dict)
    data_attempts: int = 0
    data_failures: int = 0

    @property
    def failure_rate(self) -> float:
        """Fraction of data frames that failed their SINR check."""
        if self.data_attempts == 0:
            return 0.0
        return self.data_failures / self.data_attempts


class WifiNetworkSimulator:
    """An 802.11 network over a shared topology.

    Args:
        topology: AP/client layout (shared with the LTE simulators).
        channel: propagation model.
        standard: Wi-Fi flavour (bandwidth, powers).
        rngs: named random streams.
        noise_figure_db: receiver noise figure.
    """

    def __init__(
        self,
        topology: Topology,
        channel: CompositeChannel,
        standard: WifiStandard,
        rngs: RngStreams,
        noise_figure_db: float = 7.0,
        interference_activity: float = 0.5,
    ) -> None:
        """See class docstring.

        ``interference_activity`` is the long-term duty cycle assumed for
        other cells when computing the SINR that drives rate adaptation
        (the paper's "ideal rate adaptation based on the receiver's SINR").
        """
        self.topology = topology
        self.channel = channel
        self.standard = standard
        self.rngs = rngs
        self.sim = Simulator()
        self.params = DcfParams(
            timings=FrameTimings(bandwidth_hz=standard.bandwidth_hz),
            rts_cts=standard.rts_cts,
        )
        self.medium = WifiMedium(
            sim=self.sim,
            loss_db=channel.loss_db,
            bandwidth_hz=standard.bandwidth_hz,
            params=self.params,
            noise_figure_db=noise_figure_db,
        )
        self.noise_dbm = thermal_noise_dbm(standard.bandwidth_hz, noise_figure_db)
        self.interference_activity = interference_activity
        self.nodes: Dict[int, CsmaNode] = {}
        self.reachable: Dict[int, bool] = {}
        self._client_station: Dict[int, int] = {}
        self._build()

    def _build(self) -> None:
        for ap in self.topology.aps:
            self.medium.add_station(
                Station(
                    station_id=ap.ap_id,
                    x=ap.x,
                    y=ap.y,
                    tx_power_dbm=self.standard.ap_tx_power_dbm,
                )
            )
        for client in self.topology.clients:
            sid = CLIENT_STATION_OFFSET + client.client_id
            self._client_station[client.client_id] = sid
            self.medium.add_station(
                Station(
                    station_id=sid,
                    x=client.x,
                    y=client.y,
                    tx_power_dbm=self.standard.client_tx_power_dbm,
                )
            )
        for ap in self.topology.aps:
            node = CsmaNode(
                sim=self.sim,
                medium=self.medium,
                station=self.medium.station(ap.ap_id),
                params=self.params,
                rng=self.rngs.stream(f"csma-backoff-{ap.ap_id}"),
            )
            self.nodes[ap.ap_id] = node
            for client in self.topology.clients_of(ap.ap_id):
                sid = self._client_station[client.client_id]
                sinr_db = self._long_term_sinr_db(ap.ap_id, sid)
                mcs = best_mcs(sinr_db - self.standard.mcs_margin_db)
                self.reachable[client.client_id] = mcs is not None
                if mcs is not None:
                    node.add_destination(sid, mcs)

    def _long_term_sinr_db(self, serving_ap: int, client_station: int) -> float:
        """SINR driving rate adaptation: noise + duty-cycled interference."""
        from repro.utils.dbmath import dbm_to_watt, linear_to_db

        signal_w = dbm_to_watt(self.medium.rx_dbm(serving_ap, client_station))
        total_w = dbm_to_watt(self.noise_dbm)
        for other in self.topology.aps:
            if other.ap_id == serving_ap:
                continue
            total_w += self.interference_activity * dbm_to_watt(
                self.medium.rx_dbm(other.ap_id, client_station)
            )
        return linear_to_db(signal_w / total_w)

    def client_station_id(self, client_id: int) -> int:
        """Medium station id of a topology client."""
        return self._client_station[client_id]

    def enqueue(self, client_id: int, bits: float) -> None:
        """Queue downlink traffic for a client (dynamic workloads)."""
        client = self.topology.client(client_id)
        if not self.reachable.get(client_id, False):
            return  # Out of coverage: traffic is undeliverable.
        self.nodes[client.ap_id].enqueue(self._client_station[client_id], bits)

    def set_delivery_callback(
        self, callback: Callable[[int, float], None]
    ) -> None:
        """Install a delivery hook ``callback(client_id, bits)``."""

        def adapter(dest_station: int, bits: float, _cb=callback) -> None:
            _cb(dest_station - CLIENT_STATION_OFFSET, bits)

        for node in self.nodes.values():
            node.delivery_callback = adapter

    # -- Workload drivers -------------------------------------------------------

    def run_saturated(self, duration_s: float) -> WifiRunResult:
        """Backlogged downlink to every reachable client for ``duration_s``."""
        backlog_bits = 1e12  # Effectively infinite at these rates.
        for client in self.topology.clients:
            if self.reachable.get(client.client_id, False):
                self.enqueue(client.client_id, backlog_bits)
        return self._run(duration_s)

    def run_dynamic(
        self,
        duration_s: float,
        arrivals: List,
    ) -> WifiRunResult:
        """Run with scheduled traffic arrivals.

        Args:
            duration_s: simulated time.
            arrivals: iterable of ``(time_s, client_id, bits)`` tuples.
        """
        for time_s, client_id, bits in arrivals:
            self.sim.schedule_at(
                time_s,
                lambda c=client_id, b=bits: self.enqueue(c, b),
            )
        return self._run(duration_s)

    def _run(self, duration_s: float) -> WifiRunResult:
        # Periodically prune the interference history.
        self.sim.schedule_every(0.5, lambda: self.medium.prune_history())
        self.sim.run(until=duration_s)
        result = WifiRunResult(duration_s=duration_s)
        for client in self.topology.clients:
            cid = client.client_id
            result.reachable[cid] = self.reachable.get(cid, False)
            node = self.nodes[client.ap_id]
            sid = self._client_station[cid]
            stats = node.stats.get(sid)
            delivered = stats.bits_delivered if stats else 0.0
            result.throughput_bps[cid] = delivered / duration_s
            if stats:
                result.data_attempts += stats.data_attempts
                result.data_failures += stats.data_failures
        return result
