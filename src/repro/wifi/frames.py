"""Frame durations and MAC timing constants.

Encodes the Table 1 MAC facts: CSMA access with transmissions "up to 4 ms"
(the TXOP limit), plus A-MPDU aggregation with a "maximum possible
aggregated frame size of 65 KB" (Section 6.3.4 simulation settings).

Control-frame durations scale with the channel bandwidth because control
frames go out at the base rate, which is bandwidth-proportional -- one of
the reasons overheads weigh heavier on a 6 MHz TVWS channel.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wifi.rates import BASE_MCS, data_rate_bps

#: Maximum A-MPDU aggregate the paper simulates (bytes).
MAX_AMPDU_BYTES = 65_000

#: TXOP limit -- Table 1: 802.11 transmissions last "up to 4 ms".
TXOP_LIMIT_S = 4e-3

#: Frame body sizes in bytes (802.11-2016).
RTS_BYTES = 20
CTS_BYTES = 14
ACK_BYTES = 14  # Block-ack is larger but still preamble-dominated.


@dataclass(frozen=True)
class FrameTimings:
    """MAC/PHY timing parameters for one channel configuration.

    Attributes:
        bandwidth_hz: channel width (6 MHz for 802.11af, 20 MHz for ac).
        slot_s: backoff slot duration.
        sifs_s: short interframe space.
        preamble_s: PHY preamble + header duration.
        cw_min / cw_max: contention-window bounds (DCF: 15 / 1023).
    """

    bandwidth_hz: float
    slot_s: float = 9e-6
    sifs_s: float = 16e-6
    preamble_s: float = 40e-6
    cw_min: int = 15
    cw_max: int = 1023

    @property
    def difs_s(self) -> float:
        """DCF interframe space: SIFS + 2 slots."""
        return self.sifs_s + 2.0 * self.slot_s

    @property
    def base_rate_bps(self) -> float:
        """Control-frame rate: MCS 0 on this bandwidth."""
        return data_rate_bps(BASE_MCS, self.bandwidth_hz)

    def control_frame_s(self, n_bytes: int) -> float:
        """Airtime of a control frame (preamble + body at base rate)."""
        return self.preamble_s + n_bytes * 8.0 / self.base_rate_bps

    @property
    def rts_s(self) -> float:
        """RTS airtime."""
        return self.control_frame_s(RTS_BYTES)

    @property
    def cts_s(self) -> float:
        """CTS airtime."""
        return self.control_frame_s(CTS_BYTES)

    @property
    def ack_s(self) -> float:
        """(Block-)ACK airtime."""
        return self.control_frame_s(ACK_BYTES)

    def aggregate_bytes(self, data_rate: float) -> int:
        """A-MPDU size: fill the TXOP, capped at 65 KB.

        Args:
            data_rate: PHY rate for the data portion, in bit/s.

        Raises:
            ValueError: for a non-positive rate (caller must not transmit
                to an unreachable client).
        """
        if data_rate <= 0.0:
            raise ValueError(f"data rate must be > 0, got {data_rate!r}")
        txop_bytes = int(data_rate * TXOP_LIMIT_S / 8.0)
        return max(1, min(MAX_AMPDU_BYTES, txop_bytes))

    def data_frame_s(self, n_bytes: int, data_rate: float) -> float:
        """Airtime of an aggregated data frame."""
        if data_rate <= 0.0:
            raise ValueError(f"data rate must be > 0, got {data_rate!r}")
        return self.preamble_s + n_bytes * 8.0 / data_rate

    def exchange_overhead_s(self, rts_cts: bool) -> float:
        """Fixed per-TXOP overhead excluding the data frame itself.

        RTS + SIFS + CTS + SIFS (if protected) ... + SIFS + ACK.
        """
        overhead = self.sifs_s + self.ack_s
        if rts_cts:
            overhead += self.rts_s + self.sifs_s + self.cts_s + self.sifs_s
        return overhead
