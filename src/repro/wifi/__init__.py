"""Wi-Fi substrate: 802.11ac/af PHY rates and an event-driven CSMA/CA MAC.

Rebuilt from scratch (the paper used ns-3) to reproduce the MAC phenomena
the paper measures on long links: hidden and exposed terminals, RTS/CTS
behaviour, channel-acquisition overhead, and starvation under contention
(Figures 2 and 9).

* :mod:`repro.wifi.rates` -- 802.11 MCS table with ideal SINR-based rate
  adaptation, scaled to the channel bandwidth (6 MHz TVWS or 20 MHz).
* :mod:`repro.wifi.frames` -- frame and overhead durations (preamble, RTS,
  CTS, ACK, DIFS/SIFS/slot), including A-MPDU aggregation limits.
* :mod:`repro.wifi.csma` -- the DCF state machine: carrier sense, backoff,
  NAV, RTS/CTS, collisions with capture, retries.
* :mod:`repro.wifi.network` -- builds a Wi-Fi network from a shared
  :class:`repro.sim.topology.Topology` and runs saturated or dynamic
  workloads.
"""

from repro.wifi.csma import CsmaNode, DcfParams, WifiMedium
from repro.wifi.frames import FrameTimings
from repro.wifi.network import WifiNetworkSimulator, WifiStandard
from repro.wifi.rates import WIFI_MCS_TABLE, WifiMcs, best_mcs, data_rate_bps

__all__ = [
    "CsmaNode",
    "DcfParams",
    "FrameTimings",
    "WIFI_MCS_TABLE",
    "WifiMcs",
    "WifiMedium",
    "WifiNetworkSimulator",
    "WifiStandard",
    "best_mcs",
    "data_rate_bps",
]
