"""Event-driven CSMA/CA (DCF) with RTS/CTS, NAV and physical collisions.

The simulator reproduces the MAC behaviours the paper blames for Wi-Fi's
poor showing on long links (Sections 3.2, 6.3.4):

* **Hidden terminals** -- carrier sense is per-node and physical: node B
  defers for node A only if A's signal reaches B above the CS threshold.
  On 1 km cells many contenders cannot hear each other, so their frames
  collide at the receiver (SINR test at frame end).
* **Exposed terminals** -- a node that *can* hear a transmitter defers even
  when its own receiver would be fine, wasting airtime.
* **Acquisition overhead** -- every TXOP pays DIFS + backoff + RTS/CTS/ACK
  at the (bandwidth-proportional) base rate, a fixed tax that looms large
  on a 6 MHz TVWS channel.
* **Same-slot collisions** -- carrier-sense notifications propagate with a
  small detection delay, so two nodes whose backoff expires in the same
  slot both transmit, exactly as in real DCF.

Only access points contend (the evaluation is downlink, as in the paper);
clients participate as receivers and as CTS/ACK transmitters, which is what
makes the RTS/CTS protection physically meaningful.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.engine import Event, Simulator
from repro.utils.dbmath import dbm_to_watt, linear_to_db, thermal_noise_dbm
from repro.wifi.frames import FrameTimings
from repro.wifi.rates import BASE_MCS, WifiMcs


@dataclass(frozen=True)
class Station:
    """Any radio endpoint on the Wi-Fi channel (AP or client)."""

    station_id: int
    x: float
    y: float
    tx_power_dbm: float


#: Preamble-detect SNR: a frame is carrier-sensed when received at this many
#: dB above the thermal noise floor.  Anchors the classic -82 dBm threshold
#: (20 MHz) and scales it correctly to 6 MHz TVWS channels.
CS_DETECT_SNR_DB = 19.0


@dataclass
class DcfParams:
    """DCF configuration.

    Attributes:
        timings: channel timing constants.
        cs_threshold_dbm: carrier-sense (preamble-detect) threshold.  When
            ``None`` it is derived from the channel noise floor as
            ``noise + CS_DETECT_SNR_DB`` (-82 dBm on 20 MHz).
        cs_delay_s: signal-detection latency; backoffs expiring within this
            window of a new transmission proceed (the collision window).
        retry_limit: MAC retries before a frame is dropped.
        rts_cts: protect data with RTS/CTS (the paper enables it: "Wi-Fi
            performance is better with RTS/CTS").
    """

    timings: FrameTimings
    cs_threshold_dbm: Optional[float] = None
    cs_delay_s: float = 4e-6
    retry_limit: int = 7
    rts_cts: bool = True


#: SINR window over which A-MPDU delivery degrades from all to nothing.
#: Individual MPDUs fail progressively as the SINR slides below the MCS
#: operating point; 6 dB below it the whole aggregate is lost.
MPDU_LOSS_WINDOW_DB = 6.0


def mpdu_delivery_fraction(sinr_db: float, required_snr_db: float) -> float:
    """Fraction of an A-MPDU's MPDUs decoded at ``sinr_db``.

    1.0 at or above the MCS operating point, 0.0 once the SINR is
    ``MPDU_LOSS_WINDOW_DB`` below it, linear in between.  This is the
    aggregate-level view of per-MPDU error rates under block-ack.
    """
    if sinr_db >= required_snr_db:
        return 1.0
    deficit = required_snr_db - sinr_db
    if deficit >= MPDU_LOSS_WINDOW_DB:
        return 0.0
    return 1.0 - deficit / MPDU_LOSS_WINDOW_DB


@dataclass
class Transmission:
    """One frame on the air."""

    src: int
    dst: Optional[int]
    kind: str  # "rts", "cts", "data", "ack"
    start: float
    end: float
    bits: float = 0.0

    def overlap_fraction(self, other: "Transmission") -> float:
        """Fraction of *this* transmission overlapped by ``other``."""
        overlap = min(self.end, other.end) - max(self.start, other.start)
        duration = self.end - self.start
        if duration <= 0.0:
            return 0.0
        return max(0.0, overlap / duration)


class WifiMedium:
    """The shared channel: propagation, carrier sense and interference.

    Args:
        sim: the discrete-event simulator driving the network.
        loss_db: propagation loss callback ``(station_a, station_b) -> dB``.
        bandwidth_hz: channel bandwidth (noise floor + rate scaling).
        params: DCF parameters shared by all nodes.
        noise_figure_db: receiver noise figure.
    """

    def __init__(
        self,
        sim: Simulator,
        loss_db,
        bandwidth_hz: float,
        params: DcfParams,
        noise_figure_db: float = 7.0,
    ) -> None:
        self.sim = sim
        self.params = params
        self.bandwidth_hz = bandwidth_hz
        self.noise_dbm = thermal_noise_dbm(bandwidth_hz, noise_figure_db)
        if params.cs_threshold_dbm is None:
            params.cs_threshold_dbm = self.noise_dbm + CS_DETECT_SNR_DB
        self._loss_db = loss_db
        self._stations: Dict[int, Station] = {}
        self._nodes: List["CsmaNode"] = []
        self._rx_cache: Dict[Tuple[int, int], float] = {}
        self._active: List[Transmission] = []
        self._history: List[Transmission] = []

    # -- Setup ---------------------------------------------------------------

    def add_station(self, station: Station) -> None:
        """Register a radio endpoint.

        Raises:
            ValueError: on duplicate station ids.
        """
        if station.station_id in self._stations:
            raise ValueError(f"duplicate station id {station.station_id}")
        self._stations[station.station_id] = station

    def attach_node(self, node: "CsmaNode") -> None:
        """Register a contending node for busy/idle notifications."""
        self._nodes.append(node)

    def station(self, station_id: int) -> Station:
        """Look up a station."""
        return self._stations[station_id]

    # -- Radio ----------------------------------------------------------------

    def rx_dbm(self, src_id: int, dst_id: int) -> float:
        """Received power at ``dst`` from ``src`` (cached)."""
        key = (src_id, dst_id)
        if key not in self._rx_cache:
            src = self._stations[src_id]
            dst = self._stations[dst_id]
            self._rx_cache[key] = src.tx_power_dbm - self._loss_db(src, dst)
        return self._rx_cache[key]

    def hears(self, listener_station_id: int, talker_station_id: int) -> bool:
        """Whether ``listener`` carrier-senses ``talker``'s transmissions."""
        return (
            self.rx_dbm(talker_station_id, listener_station_id)
            >= self.params.cs_threshold_dbm
        )

    # -- Transmission lifecycle -------------------------------------------------

    def transmit(
        self,
        src_id: int,
        duration: float,
        kind: str,
        dst_id: Optional[int] = None,
        bits: float = 0.0,
    ) -> Transmission:
        """Put a frame on the air; notifies carrier-sensing nodes.

        Notifications arrive ``cs_delay_s`` after the frame starts, opening
        the same-slot collision window of real DCF.
        """
        tx = Transmission(
            src=src_id,
            dst=dst_id,
            kind=kind,
            start=self.sim.now,
            end=self.sim.now + duration,
            bits=bits,
        )
        self._active.append(tx)
        self._history.append(tx)

        listeners = [
            node
            for node in self._nodes
            if node.station.station_id != src_id and self.hears(
                node.station.station_id, src_id
            )
        ]
        for node in listeners:
            self.sim.schedule(self.params.cs_delay_s, node.on_medium_busy)

        def finish() -> None:
            self._active.remove(tx)
            for node in listeners:
                node.on_medium_idle_hint()

        self.sim.schedule(duration, finish)
        return tx

    def sinr_db(self, tx: Transmission) -> float:
        """SINR of ``tx`` at its destination, interference overlap-weighted.

        Evaluated at frame end, using the full history so interferers that
        already finished still count for the portion they overlapped.
        """
        if tx.dst is None:
            raise ValueError("transmission has no destination to evaluate")
        signal_w = dbm_to_watt(self.rx_dbm(tx.src, tx.dst))
        noise_w = dbm_to_watt(self.noise_dbm)
        interference_w = 0.0
        for other in self._history:
            if other is tx or other.src == tx.src:
                continue
            if other.src == tx.dst:
                continue  # The destination cannot interfere with itself.
            fraction = tx.overlap_fraction(other)
            if fraction <= 0.0:
                continue
            interference_w += fraction * dbm_to_watt(self.rx_dbm(other.src, tx.dst))
        return linear_to_db(signal_w / (noise_w + interference_w))

    def set_nav(self, around_station_id: int, until: float) -> None:
        """Set the NAV of every node that can hear ``around_station_id``."""
        for node in self._nodes:
            if node.station.station_id == around_station_id:
                continue
            if self.hears(node.station.station_id, around_station_id):
                node.set_nav(until)

    def busy_for(self, node: "CsmaNode") -> bool:
        """Whether ``node`` currently senses the medium busy (incl. NAV)."""
        now = self.sim.now
        if node.nav_until > now:
            return True
        for tx in self._active:
            if tx.src == node.station.station_id:
                continue
            # Only transmissions that started at least cs_delay ago are
            # detectable.
            if tx.start + self.params.cs_delay_s > now:
                continue
            if self.hears(node.station.station_id, tx.src):
                return True
        return False

    def prune_history(self, horizon_s: float = 0.1) -> None:
        """Drop finished transmissions older than ``horizon_s``.

        Keeps the interference bookkeeping O(recent frames); called
        periodically by the network driver.
        """
        cutoff = self.sim.now - horizon_s
        self._history = [t for t in self._history if t.end >= cutoff]


@dataclass
class LinkStats:
    """Delivery accounting for one AP -> client link."""

    bits_delivered: float = 0.0
    data_attempts: int = 0
    data_failures: int = 0
    drops: int = 0


class CsmaNode:
    """One contending access point running DCF.

    Args:
        sim: shared simulator.
        medium: the channel.
        station: this node's radio endpoint.
        params: DCF parameters.
        rng: backoff randomness.
    """

    def __init__(
        self,
        sim: Simulator,
        medium: WifiMedium,
        station: Station,
        params: DcfParams,
        rng: np.random.Generator,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.station = station
        self.params = params
        self.rng = rng
        self.nav_until = 0.0
        self.stats: Dict[int, LinkStats] = {}

        # Per-destination link configuration (MCS fixed by clean SNR).
        self._dest_mcs: Dict[int, WifiMcs] = {}
        self._queue_bits: Dict[int, float] = {}
        self._rr_order: List[int] = []
        self._rr_cursor = 0

        self._cw = params.timings.cw_min
        self._retry = 0
        self._backoff_slots = self._draw_backoff()
        self._attempt_event: Optional[Event] = None
        self._countdown_started: Optional[float] = None
        self._in_txop = False

        medium.attach_node(self)

    # -- Traffic interface ----------------------------------------------------

    def add_destination(self, station_id: int, mcs: WifiMcs) -> None:
        """Register a client reachable at ``mcs`` (ideal rate adaptation)."""
        self._dest_mcs[station_id] = mcs
        self._queue_bits.setdefault(station_id, 0.0)
        if station_id not in self._rr_order:
            self._rr_order.append(station_id)
        self.stats.setdefault(station_id, LinkStats())

    def enqueue(self, station_id: int, bits: float) -> None:
        """Queue downlink traffic for a client.

        Raises:
            KeyError: for an unregistered destination.
        """
        if station_id not in self._dest_mcs:
            raise KeyError(f"destination {station_id} not registered")
        self._queue_bits[station_id] += bits
        self.kick()

    def queued_bits(self, station_id: int) -> float:
        """Bits currently queued for a client."""
        return self._queue_bits.get(station_id, 0.0)

    def kick(self) -> None:
        """(Re)start channel access if there is traffic and none pending."""
        if self._in_txop or self._attempt_event is not None:
            return
        if self._peek_destination() is None:
            return
        self._schedule_attempt()

    # -- Medium notifications -----------------------------------------------------

    def on_medium_busy(self) -> None:
        """The medium became busy for this node: pause the countdown."""
        if self._attempt_event is None:
            return
        self._consume_elapsed_slots()
        self._attempt_event.cancel()
        self._attempt_event = None
        self._countdown_started = None

    def on_medium_idle_hint(self) -> None:
        """A transmission ended; resume the countdown if now idle."""
        if self._in_txop or self._attempt_event is not None:
            return
        if self._peek_destination() is None:
            return
        if not self.medium.busy_for(self):
            self._schedule_attempt()

    def set_nav(self, until: float) -> None:
        """Virtual carrier sense: defer until ``until``."""
        if until <= self.nav_until:
            return
        self.nav_until = until
        self.on_medium_busy()
        # Wake up when the NAV expires.
        self.sim.schedule_at(until, self.on_medium_idle_hint)

    # -- Backoff ----------------------------------------------------------------

    def _draw_backoff(self) -> int:
        return int(self.rng.integers(0, self._cw + 1))

    def _consume_elapsed_slots(self) -> None:
        if self._countdown_started is None:
            return
        slot = self.params.timings.slot_s
        difs = self.params.timings.difs_s
        elapsed = self.sim.now - self._countdown_started - difs
        if elapsed > 0.0:
            consumed = min(self._backoff_slots, int(elapsed / slot))
            self._backoff_slots -= consumed

    def _schedule_attempt(self) -> None:
        if self.medium.busy_for(self):
            return  # An idle hint or NAV expiry will retry.
        timings = self.params.timings
        delay = timings.difs_s + self._backoff_slots * timings.slot_s
        # Quantise onto the global slot grid so contenders that resumed at
        # the same idle transition can genuinely collide.
        fire_at = self.sim.now + delay
        fire_at = math.ceil(fire_at / timings.slot_s) * timings.slot_s
        self._countdown_started = self.sim.now
        self._attempt_event = self.sim.schedule_at(fire_at, self._fire_attempt)

    def _fire_attempt(self) -> None:
        self._attempt_event = None
        self._countdown_started = None
        dest = self._take_destination()
        if dest is None:
            return
        self._start_txop(dest)

    def _peek_destination(self) -> Optional[int]:
        """Next backlogged destination, WITHOUT advancing the cursor."""
        if not self._rr_order:
            return None
        for step in range(len(self._rr_order)):
            candidate = self._rr_order[(self._rr_cursor + step) % len(self._rr_order)]
            if self._queue_bits.get(candidate, 0.0) > 0.0:
                return candidate
        return None

    def _take_destination(self) -> Optional[int]:
        """Like :meth:`_peek_destination` but consumes the turn."""
        if not self._rr_order:
            return None
        for step in range(len(self._rr_order)):
            index = (self._rr_cursor + step) % len(self._rr_order)
            candidate = self._rr_order[index]
            if self._queue_bits.get(candidate, 0.0) > 0.0:
                self._rr_cursor = (index + 1) % len(self._rr_order)
                return candidate
        return None

    # -- TXOP state machine ---------------------------------------------------------

    def _start_txop(self, dest: int) -> None:
        self._in_txop = True
        self._current_dest = dest
        timings = self.params.timings
        if self.params.rts_cts:
            rts = self.medium.transmit(
                self.station.station_id, timings.rts_s, "rts", dst_id=dest
            )
            self.sim.schedule(timings.rts_s, lambda: self._rts_done(rts))
        else:
            self._send_data(dest)

    def _rts_done(self, rts: Transmission) -> None:
        timings = self.params.timings
        sinr = self.medium.sinr_db(rts)
        if sinr < BASE_MCS.min_snr_db:
            self._txop_failed()
            return
        # CTS after SIFS; nodes around the *client* defer for the rest of
        # the exchange (this is what protects against hidden terminals).
        dest = rts.dst
        mcs = self._dest_mcs[dest]
        from repro.wifi.rates import data_rate_bps

        rate = data_rate_bps(mcs, self.medium.bandwidth_hz)
        agg_bits = self._aggregate_bits(dest, rate)
        data_s = timings.data_frame_s(int(agg_bits / 8.0) + 1, rate)
        exchange_end = (
            self.sim.now
            + timings.sifs_s
            + timings.cts_s
            + timings.sifs_s
            + data_s
            + timings.sifs_s
            + timings.ack_s
        )

        def send_cts() -> None:
            self.medium.transmit(dest, timings.cts_s, "cts", dst_id=None)
            self.medium.set_nav(dest, exchange_end)
            self.sim.schedule(
                timings.cts_s + timings.sifs_s, lambda: self._send_data(dest)
            )

        self.sim.schedule(timings.sifs_s, send_cts)

    def _aggregate_bits(self, dest: int, rate_bps: float) -> float:
        agg_bytes = self.params.timings.aggregate_bytes(rate_bps)
        return min(self._queue_bits[dest], agg_bytes * 8.0)

    def _send_data(self, dest: int) -> None:
        timings = self.params.timings
        mcs = self._dest_mcs[dest]
        from repro.wifi.rates import data_rate_bps

        rate = data_rate_bps(mcs, self.medium.bandwidth_hz)
        bits = self._aggregate_bits(dest, rate)
        if bits <= 0.0:
            self._txop_complete(dest, delivered_bits=0.0)
            return
        duration = timings.data_frame_s(int(bits / 8.0) + 1, rate)
        data = self.medium.transmit(
            self.station.station_id, duration, "data", dst_id=dest, bits=bits
        )
        self.stats[dest].data_attempts += 1

        def data_done() -> None:
            sinr = self.medium.sinr_db(data)
            delivered_fraction = mpdu_delivery_fraction(sinr, mcs.min_snr_db)
            if delivered_fraction > 0.0:
                # Some MPDUs decoded: the client returns a block-ACK after
                # SIFS and the failed MPDUs simply stay queued for retry.
                self.sim.schedule(
                    timings.sifs_s,
                    lambda: self.medium.transmit(dest, timings.ack_s, "ack"),
                )
                self.sim.schedule(
                    timings.sifs_s + timings.ack_s,
                    lambda: self._txop_complete(dest, bits * delivered_fraction),
                )
                if delivered_fraction < 1.0:
                    self.stats[dest].data_failures += 1
            else:
                # Not even the PLCP survived: no block-ACK, full MAC retry.
                self.stats[dest].data_failures += 1
                self._txop_failed()

        self.sim.schedule(duration, data_done)

    #: Optional hook invoked as ``delivery_callback(dest, bits)`` after each
    #: successful data delivery (used for flow-completion tracking).
    delivery_callback = None

    def _txop_complete(self, dest: int, delivered_bits: float) -> None:
        if delivered_bits > 0.0:
            self._queue_bits[dest] -= delivered_bits
            self.stats[dest].bits_delivered += delivered_bits
            if self.delivery_callback is not None:
                self.delivery_callback(dest, delivered_bits)
        self._retry = 0
        self._cw = self.params.timings.cw_min
        self._backoff_slots = self._draw_backoff()
        self._in_txop = False
        self.kick()

    def _txop_failed(self) -> None:
        self._retry += 1
        dest = self._current_dest
        if self._retry > self.params.retry_limit:
            # Drop the head aggregate; with saturated queues this models
            # the MAC giving up on this frame.
            mcs = self._dest_mcs[dest]
            from repro.wifi.rates import data_rate_bps

            rate = data_rate_bps(mcs, self.medium.bandwidth_hz)
            dropped = self._aggregate_bits(dest, rate)
            self._queue_bits[dest] = max(0.0, self._queue_bits[dest] - dropped)
            self.stats[dest].drops += 1
            self._retry = 0
            self._cw = self.params.timings.cw_min
        else:
            self._cw = min(2 * self._cw + 1, self.params.timings.cw_max)
        self._backoff_slots = self._draw_backoff()
        self._in_txop = False
        self.kick()
