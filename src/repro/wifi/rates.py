"""802.11 MCS table and ideal rate adaptation.

802.11af "has the same modulation and coding rates as 802.11ac" (paper
Section 3.1): BPSK through 256-QAM with coding rates from **1/2** up --
there is nothing below rate 1/2, which is the crux of the paper's Table 1
comparison against LTE's rate-0.08 floor.

Rates scale linearly with channel bandwidth (the TVHT PHY of 802.11af is a
down-clocked 802.11ac PHY), so one table serves 6 MHz TVWS channels and
20 MHz Wi-Fi channels alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

#: Reference bandwidth the efficiency figures below are quoted against.
REFERENCE_BANDWIDTH_HZ = 20e6

#: Data subcarrier efficiency of a 20 MHz 802.11ac channel: 52 data
#: subcarriers x 1/4 us symbols -> 13 Msym/s per 20 MHz.
SYMBOL_RATE_PER_HZ = 13e6 / REFERENCE_BANDWIDTH_HZ


@dataclass(frozen=True)
class WifiMcs:
    """One 802.11 modulation-and-coding scheme.

    Attributes:
        index: MCS index 0..9.
        modulation: constellation name.
        bits_per_symbol: log2 of the constellation size.
        code_rate: channel code rate (>= 1/2 -- Wi-Fi has no lower rate).
        min_snr_db: SNR needed for ~10% PER at typical packet sizes.
    """

    index: int
    modulation: str
    bits_per_symbol: int
    code_rate: float
    min_snr_db: float

    @property
    def efficiency(self) -> float:
        """Information bits per subcarrier-symbol."""
        return self.bits_per_symbol * self.code_rate


#: 802.11ac single-stream MCS 0-9 with standard SNR operating points.
WIFI_MCS_TABLE: List[WifiMcs] = [
    WifiMcs(0, "BPSK", 1, 1 / 2, 2.0),
    WifiMcs(1, "QPSK", 2, 1 / 2, 5.0),
    WifiMcs(2, "QPSK", 2, 3 / 4, 9.0),
    WifiMcs(3, "16QAM", 4, 1 / 2, 11.0),
    WifiMcs(4, "16QAM", 4, 3 / 4, 15.0),
    WifiMcs(5, "64QAM", 6, 2 / 3, 18.0),
    WifiMcs(6, "64QAM", 6, 3 / 4, 20.0),
    WifiMcs(7, "64QAM", 6, 5 / 6, 25.0),
    WifiMcs(8, "256QAM", 8, 3 / 4, 29.0),
    WifiMcs(9, "256QAM", 8, 5 / 6, 31.0),
]


def best_mcs(snr_db: float) -> Optional[WifiMcs]:
    """Ideal rate adaptation: the fastest MCS whose SNR requirement is met.

    Returns ``None`` below the MCS-0 threshold: unlike LTE (whose CQI-1
    code rate of 0.08 works at -6.7 dB), Wi-Fi cannot communicate at all.
    This gap is exactly the coverage difference of paper Figure 9(a).
    """
    chosen: Optional[WifiMcs] = None
    for mcs in WIFI_MCS_TABLE:
        if snr_db >= mcs.min_snr_db:
            chosen = mcs
        else:
            break
    return chosen


def data_rate_bps(mcs: WifiMcs, bandwidth_hz: float) -> float:
    """PHY data rate of an MCS on a channel of ``bandwidth_hz``.

    Raises:
        ValueError: for non-positive bandwidth.
    """
    if bandwidth_hz <= 0.0:
        raise ValueError(f"bandwidth must be > 0, got {bandwidth_hz!r}")
    return mcs.efficiency * SYMBOL_RATE_PER_HZ * bandwidth_hz


def rate_for_snr(snr_db: float, bandwidth_hz: float) -> float:
    """Achievable PHY rate at ``snr_db``; 0.0 when below MCS 0."""
    mcs = best_mcs(snr_db)
    if mcs is None:
        return 0.0
    return data_rate_bps(mcs, bandwidth_hz)


#: Base (control) rate: MCS 0 -- RTS/CTS/ACK are sent at this rate.
BASE_MCS = WIFI_MCS_TABLE[0]
