"""The TVWS spectrum database: incumbents, availability and leases.

"TVWS spectrum is available to unlicensed devices (secondary users) only in
the absence of incumbents (TV and wireless microphones, also called primary
users)" (paper Section 2).  The database is used *only* to protect
incumbents -- never to coordinate secondary users with each other.

Time is explicit: every query passes ``now`` (simulation seconds), so the
database composes with :class:`repro.sim.engine.Simulator` without hidden
clocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.checkpoint import register_dataclass
from repro.tvws.channels import ChannelPlan


@dataclass
class Incumbent:
    """A primary user whose channel must be protected.

    Attributes:
        name: label ("KTV-33", "wireless-mic-17").
        channel: protected TV channel number.
        x, y: location in metres (same plane as the topology).
        protection_radius_m: secondary users within this radius of the
            incumbent may not use the channel.
        active_from / active_until: activity window in seconds; ``None``
            means unbounded on that side.  Wireless microphones for special
            events are the canonical time-bounded incumbents.
    """

    name: str
    channel: int
    x: float
    y: float
    protection_radius_m: float
    active_from: Optional[float] = None
    active_until: Optional[float] = None

    def active_at(self, now: float) -> bool:
        """Whether the incumbent is active at time ``now``."""
        if self.active_from is not None and now < self.active_from:
            return False
        if self.active_until is not None and now >= self.active_until:
            return False
        return True

    def protects(self, x: float, y: float, now: float) -> bool:
        """Whether a device at (x, y) is inside the protected contour now."""
        if not self.active_at(now):
            return False
        return math.hypot(self.x - x, self.y - y) <= self.protection_radius_m


@dataclass(frozen=True)
class ChannelLease:
    """Permission to use one channel from a given location.

    Attributes:
        channel: TV channel number.
        max_eirp_dbm: maximum allowed EIRP on the channel.
        granted_at / expires_at: validity window in seconds.
        device_id: the device the lease was issued to.
    """

    channel: int
    max_eirp_dbm: float
    granted_at: float
    expires_at: float
    device_id: str

    def valid_at(self, now: float) -> bool:
        """Whether the lease is still valid at ``now``."""
        return self.granted_at <= now < self.expires_at


register_dataclass(Incumbent)
register_dataclass(ChannelLease)


class SpectrumDatabase:
    """Authoritative channel availability for a region.

    Args:
        plan: the regional TV channel plan.
        default_max_eirp_dbm: EIRP cap handed out with availability
            (ETSI class-1 fixed devices: 36 dBm).
        lease_duration_s: validity of granted leases.  Regulators expect
            devices to re-query at least daily; experiments shorten this.
    """

    def __init__(
        self,
        plan: ChannelPlan,
        default_max_eirp_dbm: float = 36.0,
        lease_duration_s: float = 3600.0,
    ) -> None:
        if lease_duration_s <= 0.0:
            raise ValueError(f"lease duration must be > 0, got {lease_duration_s!r}")
        self.plan = plan
        self.default_max_eirp_dbm = default_max_eirp_dbm
        self.lease_duration_s = lease_duration_s
        self._incumbents: List[Incumbent] = []
        # Administrative overrides: channel -> unavailable (Figure 6 pulls a
        # channel from the DB directly, without modelling the incumbent).
        self._withdrawn: Dict[int, bool] = {}
        self._leases: List[ChannelLease] = []
        self._query_log: List[Tuple[float, str]] = []

    # -- Incumbent / admin management ---------------------------------------

    def register_incumbent(self, incumbent: Incumbent) -> None:
        """Add a primary user to protect.

        Raises:
            KeyError: if the incumbent's channel is not in the plan.
        """
        self.plan.channel(incumbent.channel)  # Raises KeyError if unknown.
        self._incumbents.append(incumbent)

    def withdraw_channel(self, channel: int) -> None:
        """Administratively mark a channel unavailable (Figure 6, t=57 s)."""
        self.plan.channel(channel)
        self._withdrawn[channel] = True

    def restore_channel(self, channel: int) -> None:
        """Undo :meth:`withdraw_channel` (Figure 6, five minutes later)."""
        self._withdrawn.pop(channel, None)

    # -- Queries -------------------------------------------------------------

    def channel_available(self, channel: int, x: float, y: float, now: float) -> bool:
        """Whether ``channel`` may be used from (x, y) at time ``now``."""
        if self._withdrawn.get(channel, False):
            return False
        return not any(
            inc.channel == channel and inc.protects(x, y, now)
            for inc in self._incumbents
        )

    def available_channels(self, x: float, y: float, now: float) -> List[int]:
        """All channel numbers usable from (x, y) at ``now``."""
        return [
            ch.number
            for ch in self.plan.channels
            if self.channel_available(ch.number, x, y, now)
        ]

    def lease_terms(
        self, channel: int, x: float, y: float, now: float
    ) -> Optional[Tuple[float, float]]:
        """Quote the ``(max_eirp_dbm, expires_at)`` a lease would carry.

        A quote is *not* recorded: it commits the database to nothing and
        leaves the lease table untouched.  Returns ``None`` when the
        channel is unavailable.  The expiry is clipped to the next time an
        already-scheduled incumbent becomes active on the channel, so a
        device never holds terms across an incumbent's start time.
        """
        if not self.channel_available(channel, x, y, now):
            return None
        expires = now + self.lease_duration_s
        for inc in self._incumbents:
            if (
                inc.channel == channel
                and inc.active_from is not None
                and now < inc.active_from < expires
                and math.hypot(inc.x - x, inc.y - y) <= inc.protection_radius_m
            ):
                expires = inc.active_from
        return self.default_max_eirp_dbm, expires

    def grant_lease(
        self, device_id: str, channel: int, x: float, y: float, now: float
    ) -> Optional[ChannelLease]:
        """Grant a lease on ``channel`` if it is available; else ``None``.

        The granted terms are exactly those of :meth:`lease_terms`; the
        lease is appended to the lease table and counted as a query.
        """
        terms = self.lease_terms(channel, x, y, now)
        if terms is None:
            return None
        max_eirp, expires = terms
        lease = ChannelLease(
            channel=channel,
            max_eirp_dbm=max_eirp,
            granted_at=now,
            expires_at=expires,
            device_id=device_id,
        )
        self._leases.append(lease)
        self._query_log.append((now, device_id))
        return lease

    def renew_lease(
        self, device_id: str, channel: int, x: float, y: float, now: float
    ) -> Optional[ChannelLease]:
        """Grant a lease, replacing any the device already holds on the channel.

        Repeated renewals therefore keep exactly one live entry per
        (device, channel) in the lease table instead of appending a fresh
        lease on every poll.
        """
        terms = self.lease_terms(channel, x, y, now)
        if terms is None:
            return None
        self._leases = [
            lease
            for lease in self._leases
            if not (lease.device_id == device_id and lease.channel == channel)
        ]
        return self.grant_lease(device_id, channel, x, y, now)

    @property
    def lease_table_size(self) -> int:
        """Number of lease records currently held (churn diagnostics)."""
        return len(self._leases)

    def lease_still_valid(self, lease: ChannelLease, now: float) -> bool:
        """Re-validate a lease: unexpired *and* the channel is still clear.

        A lease can be invalidated early by an administrative withdrawal or
        a newly registered incumbent; compliant devices poll for this.
        """
        if not lease.valid_at(now):
            return False
        # Location is not stored on the lease; incumbency is re-checked by
        # the owning client via available_channels.  Withdrawals are global:
        if self._withdrawn.get(lease.channel, False):
            return False
        return True

    @property
    def query_count(self) -> int:
        """Number of lease grants served (for overhead accounting)."""
        return len(self._query_log)

    # -- Checkpointing --------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Incumbents, withdrawals, the lease table and the query log."""
        return {
            "incumbents": list(self._incumbents),
            "withdrawn": dict(self._withdrawn),
            "leases": list(self._leases),
            "query_log": [list(entry) for entry in self._query_log],
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self._incumbents = list(state["incumbents"])
        self._withdrawn = dict(state["withdrawn"])
        self._leases = list(state["leases"])
        self._query_log = [tuple(entry) for entry in state["query_log"]]
