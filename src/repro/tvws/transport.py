"""Fault-injectable transport between the PAWS client and its database.

The paper's testbed talked to a *remote* certified database (Nominet) over
the Internet; the reproduction's original PAWS path was a perfectly
reliable, zero-latency in-process call, so nothing could exercise the
regulatory behaviour *under failure* -- yet ETSI EN 301 598's 60-second
vacate deadline is precisely about what a device does when its database
disappears.  This module makes the wire explicit:

* :class:`PawsTransport` -- the interface :class:`repro.core.
  channel_selection.ChannelSelector` speaks.  All three PAWS exchanges
  (INIT, AVAIL_SPECTRUM, SPECTRUM_USE_NOTIFY) go through it.
* :class:`DirectTransport` -- the original behaviour: in-process,
  zero-latency, always up.  Wrapping a bare :class:`~repro.tvws.paws.
  PawsServer` in it is what keeps all fault-free configs bit-identical
  to the pre-transport code paths.
* :class:`FaultyTransport` -- a wrapper that injects timeouts, dropped
  responses (server processed, reply lost), transient RFC 7545 error
  codes, malformed/short responses, latency spikes and scheduled full
  outages, driven by the simulation clock and a seeded RNG so every
  fault sequence is bit-reproducible.
* :class:`RetryPolicy` -- per-request timeout plus bounded exponential
  backoff with deterministic jitter, used by the resilient client.
* :class:`RobustnessLog` -- the structured event log (fault injected,
  retry, backoff, grace-entered, failover, forced-vacate, ...) that
  :mod:`repro.utils.reportgen` aggregates into report tables.

Determinism discipline: every stochastic decision draws from the seeded
RNG handed to the transport, in simulation-event order, and a fixed
number of draws is consumed per request -- so the same seed and fault
schedule reproduce bit-identical timelines at any ``--jobs`` level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs import runtime as _obs_runtime
from repro.obs.record import EventLog, Record
from repro.sim.checkpoint import register_dataclass
from repro.tvws.paws import (
    AvailableSpectrumRequest,
    AvailableSpectrumResponse,
    DeviceDescriptor,
    ERROR_DATABASE_UNAVAILABLE,
    PawsServer,
)

#: Fault kinds a :class:`FaultyTransport` can inject.
FAULT_TIMEOUT = "timeout"
FAULT_DROP = "drop"
FAULT_ERROR = "error"
FAULT_MALFORMED = "malformed"
FAULT_LATENCY_SPIKE = "latency-spike"
FAULT_OUTAGE = "outage"


class TransportError(Exception):
    """Base class for transport-level failures (not PAWS error responses).

    Attributes:
        elapsed_s: simulated time the failed exchange consumed before the
            client could tell it had failed (a timeout burns the full
            request timeout; a malformed reply only its latency).
    """

    def __init__(self, message: str, elapsed_s: float = 0.0) -> None:
        super().__init__(message)
        self.elapsed_s = elapsed_s


class TransportTimeout(TransportError):
    """No response within the request timeout (lost request or reply)."""


class MalformedResponse(TransportError):
    """A response arrived but could not be parsed (truncated/garbled)."""


@dataclass(frozen=True)
class TransportReply:
    """A successful exchange: the parsed response plus its wire latency."""

    response: AvailableSpectrumResponse
    latency_s: float = 0.0


#: The robustness log's entry type is the stack-wide common record
#: (:class:`repro.obs.record.Record`); the historical name is kept so
#: PR-3 era consumers and tests keep importing it from here.
RobustnessEvent = Record


class RobustnessLog(EventLog):
    """Append-only structured log of robustness events.

    A thin subclass of the common :class:`repro.obs.record.EventLog`
    under the ``robustness`` metric scope: rows, counts and digests are
    unchanged from PR 3, and when telemetry is active every recorded
    event additionally shows up as a ``robustness.<kind>`` counter and
    a trace instant.  Shared between transports and clients so one log
    tells the whole story of a run;
    :func:`repro.utils.reportgen.robustness_summary` renders it into
    the report.
    """

    scope = "robustness"

    @property
    def events(self) -> List[RobustnessEvent]:
        """All events so far (copy; historically a list)."""
        return list(self._events)


@dataclass(frozen=True)
class RetryPolicy:
    """Per-request timeout and bounded exponential backoff with jitter.

    Attributes:
        timeout_s: client-side wait before an exchange counts as lost.
        max_retries: extra attempts after the first failure, per
            transport, per poll cycle.
        backoff_base_s: backoff before retry ``k`` is
            ``base * factor**k`` (clipped to ``backoff_max_s``).
        jitter_s: uniform extra delay in ``[0, jitter_s)`` drawn from the
            client's seeded RNG, decorrelating synchronised retries.
    """

    timeout_s: float = 0.5
    max_retries: int = 2
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0
    backoff_max_s: float = 5.0
    jitter_s: float = 0.1

    def backoff_delay(self, attempt: int, u: float) -> float:
        """Delay before retry number ``attempt + 1`` (``u`` in [0, 1))."""
        base = min(
            self.backoff_base_s * self.backoff_factor**attempt, self.backoff_max_s
        )
        return base + self.jitter_s * u


class PawsTransport:
    """Interface between a PAWS client and a spectrum database endpoint.

    Implementations may raise :class:`TransportError` from any method to
    model the wire failing; a returned :class:`AvailableSpectrumResponse`
    with an error code models the *server* answering with an RFC 7545
    error instead.
    """

    #: Label used in robustness logs and failover messages.
    name: str = "transport"

    def init_device(self, device: DeviceDescriptor) -> Dict:
        """Deliver INIT_REQ; returns the ruleset info dict."""
        raise NotImplementedError

    def available_spectrum(
        self,
        request: AvailableSpectrumRequest,
        timeout_s: Optional[float] = None,
    ) -> TransportReply:
        """Deliver AVAIL_SPECTRUM_REQ; returns the reply with its latency.

        Raises:
            TransportError: when the exchange fails at the wire level.
        """
        raise NotImplementedError

    def notify_spectrum_use(
        self, device: DeviceDescriptor, channel: int, now: float
    ) -> Dict:
        """Deliver SPECTRUM_USE_NOTIFY (best effort)."""
        raise NotImplementedError


class DirectTransport(PawsTransport):
    """The perfectly reliable in-process wire to a :class:`PawsServer`.

    Zero latency and no failures: exactly the behaviour the rest of the
    code base had before the transport layer existed, which keeps every
    fault-free experiment bit-identical.
    """

    def __init__(self, server: PawsServer, name: str = "direct") -> None:
        self.server = server
        self.name = name

    def init_device(self, device: DeviceDescriptor) -> Dict:
        return self.server.init_device(device)

    def available_spectrum(
        self,
        request: AvailableSpectrumRequest,
        timeout_s: Optional[float] = None,
    ) -> TransportReply:
        return TransportReply(self.server.available_spectrum(request), 0.0)

    def notify_spectrum_use(
        self, device: DeviceDescriptor, channel: int, now: float
    ) -> Dict:
        return self.server.notify_spectrum_use(device, channel, now)


@dataclass(frozen=True)
class FaultSpec:
    """What a :class:`FaultyTransport` injects, and how often.

    The four probabilistic faults are mutually exclusive per request
    (one uniform draw partitioned over their cumulative probabilities):

    Attributes:
        timeout_prob: request lost before reaching the server.
        drop_prob: server processed the request (side effects happen,
            e.g. a lease renewal) but the reply is lost.
        error_prob: server answers with the transient RFC 7545 error
            :data:`~repro.tvws.paws.ERROR_DATABASE_UNAVAILABLE`.
        malformed_prob: reply arrives truncated and unparseable.
        latency_s: baseline round-trip latency of every exchange.
        latency_spike_prob: chance of adding ``latency_spike_s`` on top;
            a spike past the client timeout surfaces as a timeout (the
            server *did* process the request).
        latency_spike_s: spike magnitude in seconds.
        outages: ``(start_s, end_s)`` windows of absolute simulation time
            during which the database is fully unreachable (every method
            times out, nothing reaches the server).
    """

    timeout_prob: float = 0.0
    drop_prob: float = 0.0
    error_prob: float = 0.0
    malformed_prob: float = 0.0
    latency_s: float = 0.0
    latency_spike_prob: float = 0.0
    latency_spike_s: float = 2.0
    outages: Tuple[Tuple[float, float], ...] = ()

    def __post_init__(self) -> None:
        total = (
            self.timeout_prob + self.drop_prob + self.error_prob + self.malformed_prob
        )
        if total > 1.0 + 1e-9:
            raise ValueError(f"fault probabilities sum to {total:.3f} > 1")
        for start, end in self.outages:
            if end <= start:
                raise ValueError(f"outage window ({start}, {end}) is empty")

    def in_outage(self, now: float) -> bool:
        """Whether ``now`` falls inside a scheduled full outage."""
        return any(start <= now < end for start, end in self.outages)


# Both appear inside driver configs embedded in snapshot metadata.
register_dataclass(RetryPolicy)
register_dataclass(FaultSpec)


class FaultyTransport(PawsTransport):
    """Wrap another transport and inject wire faults deterministically.

    Args:
        inner: the transport actually reaching the server.
        clock: zero-argument callable returning the current simulation
            time (typically ``lambda: sim.now``); drives outage windows
            and fault-log timestamps.
        rng: seeded generator (``numpy.random.Generator`` or
            ``random.Random``); exactly two draws are consumed per
            AVAIL_SPECTRUM request, so fault sequences are stable.
        spec: the fault mix and outage schedule.
        log: optional shared robustness log; every injected fault is
            recorded as a ``fault-injected`` event.
        name: label for logs and failover messages.
    """

    def __init__(
        self,
        inner: PawsTransport,
        clock: Callable[[], float],
        rng,
        spec: FaultSpec,
        log: Optional[RobustnessLog] = None,
        name: str = "faulty",
    ) -> None:
        self.inner = inner
        self.clock = clock
        self.rng = rng
        self.spec = spec
        self.log = log
        self.name = name
        #: (time, method, kind) tuples of every injected fault.
        self.fault_log: List[Tuple[float, str, str]] = []

    def state_dict(self) -> Dict[str, object]:
        """The injected-fault history.

        The RNG is excluded: it is one of the shared
        :class:`repro.sim.rng.RngStreams` generators and is restored in
        place by that subsystem, preserving the aliasing.
        """
        return {"fault_log": [list(entry) for entry in self.fault_log]}

    def load_state(self, state: Dict[str, object]) -> None:
        self.fault_log = [tuple(entry) for entry in state["fault_log"]]

    # -- Fault bookkeeping ----------------------------------------------------

    def _inject(self, method: str, kind: str, detail: str) -> None:
        now = self.clock()
        self.fault_log.append((now, method, kind))
        if self.log is not None:
            self.log.record(now, self.name, "fault-injected", f"{method}: {detail}")
        tel = _obs_runtime.active()
        if tel is not None:
            tel.inc(f"paws.fault.{kind}")

    def _timeout(self, method: str, kind: str, detail: str, timeout_s: Optional[float]):
        self._inject(method, kind, detail)
        elapsed = timeout_s if timeout_s is not None else self.spec.latency_s
        return TransportTimeout(f"{kind} on {method} via {self.name}", elapsed)

    # -- PawsTransport --------------------------------------------------------

    def init_device(self, device: DeviceDescriptor) -> Dict:
        if self.spec.in_outage(self.clock()):
            raise self._timeout("init", FAULT_OUTAGE, "database unreachable", None)
        return self.inner.init_device(device)

    def notify_spectrum_use(
        self, device: DeviceDescriptor, channel: int, now: float
    ) -> Dict:
        if self.spec.in_outage(self.clock()):
            raise self._timeout(
                "notifySpectrumUse", FAULT_OUTAGE, "database unreachable", None
            )
        return self.inner.notify_spectrum_use(device, channel, now)

    def available_spectrum(
        self,
        request: AvailableSpectrumRequest,
        timeout_s: Optional[float] = None,
    ) -> TransportReply:
        method = "getSpectrum"
        if self.spec.in_outage(self.clock()):
            raise self._timeout(method, FAULT_OUTAGE, "database unreachable", timeout_s)

        # Exactly two draws per request keeps the stream aligned whatever
        # fault fires, so schedules are reproducible draw-for-draw.
        u_fault = float(self.rng.random())
        u_spike = float(self.rng.random())

        spec = self.spec
        edge = spec.timeout_prob
        if u_fault < edge:
            raise self._timeout(method, FAULT_TIMEOUT, "request lost", timeout_s)
        edge += spec.drop_prob
        if u_fault < edge:
            # The server processes the request; only the reply is lost.
            self.inner.available_spectrum(request, timeout_s)
            raise self._timeout(method, FAULT_DROP, "response dropped", timeout_s)
        edge += spec.error_prob
        if u_fault < edge:
            self._inject(method, FAULT_ERROR, "transient server error")
            return TransportReply(
                AvailableSpectrumResponse(error_code=ERROR_DATABASE_UNAVAILABLE),
                spec.latency_s,
            )
        edge += spec.malformed_prob
        if u_fault < edge:
            self._inject(method, FAULT_MALFORMED, "truncated response body")
            raise MalformedResponse(
                f"unparseable response on {method} via {self.name}", spec.latency_s
            )

        latency = spec.latency_s
        if u_spike < spec.latency_spike_prob:
            latency += spec.latency_spike_s
            self._inject(method, FAULT_LATENCY_SPIKE, f"+{spec.latency_spike_s:g}s")
        reply = self.inner.available_spectrum(request, timeout_s)
        latency += reply.latency_s
        if timeout_s is not None and latency >= timeout_s:
            # Processed server-side, but the reply came back too late.
            raise TransportTimeout(
                f"reply after {latency:.3f}s > timeout {timeout_s:g}s via {self.name}",
                timeout_s,
            )
        return TransportReply(reply.response, latency)


def as_transport(endpoint) -> PawsTransport:
    """Coerce a :class:`PawsServer` (or pass through a transport).

    Lets every caller keep handing :class:`ChannelSelector` a bare
    server; the resilient client then runs over a
    :class:`DirectTransport` with behaviour identical to the old
    in-process call.
    """
    if isinstance(endpoint, PawsTransport):
        return endpoint
    if isinstance(endpoint, PawsServer):
        return DirectTransport(endpoint)
    raise TypeError(
        f"expected PawsServer or PawsTransport, got {type(endpoint).__name__}"
    )
