"""TV white space substrate: channel plans, spectrum database, PAWS, rules.

TVWS spectrum is available to secondary users only in the absence of
incumbents, and "no device is allowed to access the spectrum before checking
spectrum availability in a database" (paper Section 2).  This package
implements the database side that the paper's testbed exercised against the
certified Nominet database:

* :mod:`repro.tvws.channels` -- TV channel plans (6 MHz US / 8 MHz EU).
* :mod:`repro.tvws.database` -- a spectrum database tracking incumbents and
  handing out time-limited channel leases.
* :mod:`repro.tvws.paws` -- the IETF PAWS request/response message layer.
* :mod:`repro.tvws.regulatory` -- ETSI EN 301 598 compliance rules (power
  limits, the 60-second vacate deadline).
* :mod:`repro.tvws.transport` -- the fault-injectable wire between the
  PAWS client and the database (timeouts, outages, retry policy, the
  structured robustness log).
"""

from repro.tvws.channels import ChannelPlan, TvChannel, EU_CHANNEL_PLAN, US_CHANNEL_PLAN
from repro.tvws.database import ChannelLease, Incumbent, SpectrumDatabase
from repro.tvws.paws import (
    AvailableSpectrumRequest,
    AvailableSpectrumResponse,
    DeviceDescriptor,
    GeoLocation,
    PawsServer,
    SpectrumSpec,
)
from repro.tvws.regulatory import EtsiComplianceRules
from repro.tvws.transport import (
    DirectTransport,
    FaultSpec,
    FaultyTransport,
    PawsTransport,
    RetryPolicy,
    RobustnessEvent,
    RobustnessLog,
    TransportError,
    TransportTimeout,
)

__all__ = [
    "AvailableSpectrumRequest",
    "AvailableSpectrumResponse",
    "ChannelLease",
    "ChannelPlan",
    "DeviceDescriptor",
    "DirectTransport",
    "EU_CHANNEL_PLAN",
    "EtsiComplianceRules",
    "FaultSpec",
    "FaultyTransport",
    "GeoLocation",
    "Incumbent",
    "PawsServer",
    "PawsTransport",
    "RetryPolicy",
    "RobustnessEvent",
    "RobustnessLog",
    "SpectrumDatabase",
    "SpectrumSpec",
    "TransportError",
    "TransportTimeout",
    "TvChannel",
    "US_CHANNEL_PLAN",
]
