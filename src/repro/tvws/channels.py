"""TV channel plans for the white-space bands.

TV channels are 6 MHz wide in the US and 8 MHz wide in the EU (paper
Section 3.1).  The UHF white-space range relevant to ETSI EN 301 598 is
470-790 MHz; the US plan covers channels 14-51 (470-698 MHz, post incentive
auction).  LTE carriers of 5/10/15/20 MHz are fitted into one or more
*contiguous* available TV channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TvChannel:
    """One broadcast TV channel.

    Attributes:
        number: channel number in the regional plan.
        low_hz / high_hz: band edges.
    """

    number: int
    low_hz: float
    high_hz: float

    @property
    def bandwidth_hz(self) -> float:
        """Channel width in hertz."""
        return self.high_hz - self.low_hz

    @property
    def center_hz(self) -> float:
        """Channel centre frequency in hertz."""
        return (self.low_hz + self.high_hz) / 2.0

    def overlaps(self, low_hz: float, high_hz: float) -> bool:
        """Whether this channel overlaps the range [low_hz, high_hz)."""
        return self.low_hz < high_hz and low_hz < self.high_hz


class ChannelPlan:
    """An ordered set of contiguous TV channels.

    Args:
        name: plan label ("US", "EU").
        first_channel: number of the first channel.
        n_channels: how many consecutive channels the plan contains.
        start_hz: lower band edge of the first channel.
        channel_width_hz: per-channel width (6 MHz US, 8 MHz EU).
    """

    def __init__(
        self,
        name: str,
        first_channel: int,
        n_channels: int,
        start_hz: float,
        channel_width_hz: float,
    ) -> None:
        if n_channels <= 0:
            raise ValueError(f"plan needs at least one channel, got {n_channels}")
        if channel_width_hz <= 0:
            raise ValueError(f"channel width must be > 0, got {channel_width_hz!r}")
        self.name = name
        self.channel_width_hz = channel_width_hz
        self.channels: List[TvChannel] = [
            TvChannel(
                number=first_channel + i,
                low_hz=start_hz + i * channel_width_hz,
                high_hz=start_hz + (i + 1) * channel_width_hz,
            )
            for i in range(n_channels)
        ]
        self._by_number = {ch.number: ch for ch in self.channels}

    def channel(self, number: int) -> TvChannel:
        """Look up a channel by number.

        Raises:
            KeyError: for a number outside the plan.
        """
        if number not in self._by_number:
            raise KeyError(f"channel {number} not in plan {self.name!r}")
        return self._by_number[number]

    def __contains__(self, number: int) -> bool:
        return number in self._by_number

    def __len__(self) -> int:
        return len(self.channels)

    def contiguous_runs(self, available: Sequence[int]) -> List[List[int]]:
        """Group available channel numbers into maximal contiguous runs."""
        runs: List[List[int]] = []
        for number in sorted(set(available)):
            if number not in self._by_number:
                raise KeyError(f"channel {number} not in plan {self.name!r}")
            if runs and runs[-1][-1] == number - 1:
                runs[-1].append(number)
            else:
                runs.append([number])
        return runs

    def fit_lte_carrier(
        self, available: Sequence[int], carrier_bandwidth_hz: float
    ) -> Optional[Tuple[List[int], float]]:
        """Find contiguous channels that can host an LTE carrier.

        Returns the lowest-frequency fit as ``(channel_numbers,
        center_frequency_hz)``, or ``None`` if no contiguous run is wide
        enough.  An LTE carrier must fit entirely inside the occupied
        channels (spectral-mask compliance at the band edges).
        """
        channels_needed = -(-int(carrier_bandwidth_hz) // int(self.channel_width_hz))
        for run in self.contiguous_runs(available):
            if len(run) < channels_needed:
                continue
            chosen = run[:channels_needed]
            low = self.channel(chosen[0]).low_hz
            high = self.channel(chosen[-1]).high_hz
            center = (low + high) / 2.0
            if high - low >= carrier_bandwidth_hz:
                return chosen, center
        return None


#: US plan: 6 MHz channels 14-51 covering 470-698 MHz.
US_CHANNEL_PLAN = ChannelPlan(
    name="US", first_channel=14, n_channels=38, start_hz=470e6, channel_width_hz=6e6
)

#: EU plan: 8 MHz channels 21-60 covering 470-790 MHz (ETSI EN 301 598 band).
EU_CHANNEL_PLAN = ChannelPlan(
    name="EU", first_channel=21, n_channels=40, start_hz=470e6, channel_width_hz=8e6
)
