"""PAWS: Protocol to Access White-Space databases (RFC 7545), simulated.

The CellFi access point talks to the spectrum database with PAWS (paper
Section 4.2: "We leverage this observation and build an ETSI-compliant TVWS
database client using the PAWS protocol").  This module implements the
message types relevant to the architecture -- INIT, AVAIL_SPECTRUM_REQ /
AVAIL_SPECTRUM_RESP and SPECTRUM_USE_NOTIFY -- as plain dataclasses plus an
in-process :class:`PawsServer` fronting a :class:`SpectrumDatabase`.

Messages serialise to/from JSON-compatible dicts mirroring RFC 7545 field
names, so a wire transport could be substituted without touching callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim.checkpoint import register_dataclass
from repro.tvws.database import ChannelLease, SpectrumDatabase

#: PAWS method names (RFC 7545 Section 4).
METHOD_INIT = "spectrum.paws.init"
METHOD_AVAIL_SPECTRUM = "spectrum.paws.getSpectrum"
METHOD_SPECTRUM_USE = "spectrum.paws.notifySpectrumUse"

#: Error codes (RFC 7545 Table 1, subset).
ERROR_OUTSIDE_COVERAGE = -101
ERROR_UNSUPPORTED = -102
ERROR_MISSING = -201
#: Server-side transient failure (RFC 7545 reserves the -32xxx range for
#: JSON-RPC; we use a compact code).  Unlike the authoritative denials
#: above, a client may retry after this without losing authorization.
ERROR_DATABASE_UNAVAILABLE = -301

#: Codes that are final answers about this device/location -- retrying
#: the identical request cannot succeed, so clients must treat them as a
#: loss of authorization rather than a transient failure.
AUTHORITATIVE_DENIALS = frozenset({ERROR_OUTSIDE_COVERAGE, ERROR_UNSUPPORTED})

#: Codes a client may retry or repair (e.g. by re-registering) without
#: treating them as a channel withdrawal.
TRANSIENT_ERRORS = frozenset({ERROR_DATABASE_UNAVAILABLE, ERROR_MISSING})


@dataclass(frozen=True)
class GeoLocation:
    """A device location.

    The paper's CellFi AP owns a GPS; clients inherit "the same generic
    location parameters determined from the access point's location".
    """

    x: float
    y: float
    uncertainty_m: float = 50.0

    def to_json(self) -> Dict:
        """RFC 7545 'geolocation' object (planar coordinates here)."""
        return {
            "point": {"center": {"x": self.x, "y": self.y}},
            "uncertainty": self.uncertainty_m,
        }


@dataclass(frozen=True)
class DeviceDescriptor:
    """Identifies a white-space device to the database.

    Attributes:
        serial_number: unique device id.
        device_type: ETSI type "A" (fixed, external antenna) or "B"
            (portable); CellFi APs are type A, clients type B.
    """

    serial_number: str
    device_type: str = "A"
    manufacturer: str = "cellfi"

    def to_json(self) -> Dict:
        """RFC 7545 'deviceDesc' object."""
        return {
            "serialNumber": self.serial_number,
            "etsiEnDeviceType": self.device_type,
            "manufacturerId": self.manufacturer,
        }


@dataclass(frozen=True)
class SpectrumSpec:
    """One available channel in a response: frequency range + power cap."""

    channel: int
    low_hz: float
    high_hz: float
    max_eirp_dbm: float
    expires_at: float

    def to_json(self) -> Dict:
        """RFC 7545-style 'spectrumSchedule' entry."""
        return {
            "channel": self.channel,
            "frequencyRange": {"startHz": self.low_hz, "stopHz": self.high_hz},
            "maxPowerDBm": self.max_eirp_dbm,
            "eventTime": {"stopTime": self.expires_at},
        }


@dataclass(frozen=True)
class AvailableSpectrumRequest:
    """AVAIL_SPECTRUM_REQ: who is asking, from where, at what time."""

    device: DeviceDescriptor
    location: GeoLocation
    request_time: float

    def to_json(self) -> Dict:
        """RFC 7545 request body."""
        return {
            "method": METHOD_AVAIL_SPECTRUM,
            "deviceDesc": self.device.to_json(),
            "location": self.location.to_json(),
            "requestTime": self.request_time,
        }


@dataclass(frozen=True)
class AvailableSpectrumResponse:
    """AVAIL_SPECTRUM_RESP: the channels the device may use, or an error."""

    spectra: List[SpectrumSpec] = field(default_factory=list)
    error_code: Optional[int] = None

    @property
    def ok(self) -> bool:
        """Whether the request succeeded."""
        return self.error_code is None

    def channel_numbers(self) -> List[int]:
        """Channels offered in this response."""
        return [spec.channel for spec in self.spectra]

    def spec_for(self, channel: int) -> Optional[SpectrumSpec]:
        """The entry for ``channel``, or ``None``."""
        for spec in self.spectra:
            if spec.channel == channel:
                return spec
        return None


# PAWS messages ride inside snapshots (pending-response event arguments,
# server registration tables), so the whole family is whitelisted.
for _cls in (
    GeoLocation,
    DeviceDescriptor,
    SpectrumSpec,
    AvailableSpectrumRequest,
    AvailableSpectrumResponse,
):
    register_dataclass(_cls)


class PawsServer:
    """An in-process PAWS endpoint fronting a :class:`SpectrumDatabase`.

    Args:
        database: the authority on channel availability.
        coverage_area_m: requests from outside [0, coverage]^2 are rejected
            with OUTSIDE_COVERAGE, mirroring real database behaviour.
        strict: when true, AVAIL_SPECTRUM_REQ from a device that never
            sent INIT_REQ is rejected with :data:`ERROR_MISSING` instead
            of being auto-registered -- the documented strictness hook,
            matching certified databases that require registration first.
    """

    def __init__(
        self,
        database: SpectrumDatabase,
        coverage_area_m: float = 1e7,
        strict: bool = False,
    ) -> None:
        self.database = database
        self.coverage_area_m = coverage_area_m
        self.strict = strict
        self._registered: Dict[str, DeviceDescriptor] = {}
        self._use_notifications: List[Dict] = []
        self._in_use: Dict[str, int] = {}

    def init_device(self, device: DeviceDescriptor) -> Dict:
        """Handle INIT_REQ: register the device, return ruleset info."""
        self._registered[device.serial_number] = device
        return {
            "method": METHOD_INIT,
            "rulesetInfos": [{"authority": "etsi", "rulesetId": "ETSI-EN-301-598"}],
        }

    def available_spectrum(
        self, request: AvailableSpectrumRequest
    ) -> AvailableSpectrumResponse:
        """Handle AVAIL_SPECTRUM_REQ against the backing database.

        The channel the device reported in use (via SPECTRUM_USE_NOTIFY)
        gets its lease *renewed*; every other available channel is
        returned as a short-lived quote that leaves the lease table
        untouched.  Polling every second therefore keeps at most one live
        lease per device instead of minting one per channel per poll.
        """
        loc = request.location
        if not (
            0.0 <= loc.x <= self.coverage_area_m
            and 0.0 <= loc.y <= self.coverage_area_m
        ):
            return AvailableSpectrumResponse(error_code=ERROR_OUTSIDE_COVERAGE)
        if request.device.serial_number not in self._registered:
            if self.strict:
                return AvailableSpectrumResponse(error_code=ERROR_MISSING)
            # Lenient mode mirrors servers that allow combined INIT:
            # unknown devices are registered on first contact.
            self._registered[request.device.serial_number] = request.device

        serial = request.device.serial_number
        in_use = self._in_use.get(serial)
        specs: List[SpectrumSpec] = []
        now = request.request_time
        for number in self.database.available_channels(loc.x, loc.y, now):
            if number == in_use:
                lease = self.database.renew_lease(serial, number, loc.x, loc.y, now)
                if lease is None:
                    continue
                terms = (lease.max_eirp_dbm, lease.expires_at)
            else:
                quoted = self.database.lease_terms(number, loc.x, loc.y, now)
                if quoted is None:
                    continue
                terms = quoted
            channel = self.database.plan.channel(number)
            specs.append(
                SpectrumSpec(
                    channel=number,
                    low_hz=channel.low_hz,
                    high_hz=channel.high_hz,
                    max_eirp_dbm=terms[0],
                    expires_at=terms[1],
                )
            )
        return AvailableSpectrumResponse(spectra=specs)

    def notify_spectrum_use(
        self, device: DeviceDescriptor, channel: int, now: float
    ) -> Dict:
        """Handle SPECTRUM_USE_NOTIFY: record which channel a device took.

        The in-use channel is what subsequent AVAIL_SPECTRUM_REQ handling
        renews a lease for; all other channels are merely quoted.
        """
        self._in_use[device.serial_number] = channel
        notification = {
            "method": METHOD_SPECTRUM_USE,
            "serialNumber": device.serial_number,
            "channel": channel,
            "time": now,
        }
        self._use_notifications.append(notification)
        return {"status": "ok"}

    @property
    def use_notifications(self) -> List[Dict]:
        """All SPECTRUM_USE_NOTIFY messages received (copy)."""
        return list(self._use_notifications)

    # -- Checkpointing --------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Registration table, notify history and per-device in-use map."""
        return {
            "registered": dict(self._registered),
            "use_notifications": [dict(n) for n in self._use_notifications],
            "in_use": dict(self._in_use),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self._registered = dict(state["registered"])
        self._use_notifications = [dict(n) for n in state["use_notifications"]]
        self._in_use = dict(state["in_use"])
