"""ETSI EN 301 598 compliance rules for white-space devices.

The rules the paper's evaluation exercises (Section 6.2):

* a device must stop transmitting **within 60 seconds** of its channel
  ceasing to be available ("ETSI specifications mandate that transmissions
  should stop within one minute after the channel ceases to be available");
* no transmission without a valid lease from a spectrum database;
* EIRP must not exceed the per-channel limit from the database (and the
  36 dBm overall cap for fixed devices; portable devices are capped at
  20 dBm, which is why the paper's clients transmit at 20 dBm).

:class:`EtsiComplianceRules` doubles as a *compliance monitor*: simulators
report transmission intervals and lease events to it, and tests assert that
no violation was recorded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.sim.checkpoint import register_dataclass

#: ETSI EN 301 598: maximum time to vacate after channel loss, seconds.
VACATE_DEADLINE_S = 60.0

#: EIRP caps by ETSI device type, dBm.
MAX_EIRP_FIXED_DBM = 36.0
MAX_EIRP_PORTABLE_DBM = 20.0


@dataclass(frozen=True)
class ComplianceViolation:
    """A recorded breach of the regulatory rules."""

    time: float
    device_id: str
    rule: str
    detail: str


@dataclass
class _DeviceState:
    lease_expiry: Optional[float] = None
    channel_lost_at: Optional[float] = None
    transmitting: bool = False


register_dataclass(ComplianceViolation)
register_dataclass(_DeviceState)


class EtsiComplianceRules:
    """Tracks device behaviour and flags ETSI EN 301 598 violations.

    Simulated radios call :meth:`lease_granted`, :meth:`channel_lost`,
    :meth:`transmission_started` and :meth:`transmission_stopped`; the
    monitor accumulates violations for assertion in tests/benchmarks.
    """

    def __init__(self) -> None:
        self._devices: dict = {}
        self.violations: List[ComplianceViolation] = []

    def _state(self, device_id: str) -> _DeviceState:
        return self._devices.setdefault(device_id, _DeviceState())

    # -- Events reported by devices -----------------------------------------

    def lease_granted(self, device_id: str, expires_at: float) -> None:
        """Device obtained (or renewed) a channel lease."""
        state = self._state(device_id)
        state.lease_expiry = expires_at
        state.channel_lost_at = None

    def channel_lost(self, device_id: str, now: float) -> None:
        """The device's channel ceased to be available at ``now``."""
        state = self._state(device_id)
        if state.channel_lost_at is None:
            state.channel_lost_at = now

    def transmission_started(
        self,
        device_id: str,
        now: float,
        eirp_dbm: float,
        max_eirp_dbm: float = MAX_EIRP_FIXED_DBM,
    ) -> None:
        """Device keyed up; validates lease presence and power cap."""
        state = self._state(device_id)
        state.transmitting = True
        if state.lease_expiry is None or now >= state.lease_expiry:
            self._violate(
                now, device_id, "no-valid-lease", "transmission without a valid lease"
            )
        if eirp_dbm > max_eirp_dbm + 1e-9:
            self._violate(
                now,
                device_id,
                "eirp-exceeded",
                f"EIRP {eirp_dbm:.1f} dBm exceeds cap {max_eirp_dbm:.1f} dBm",
            )

    def transmission_stopped(self, device_id: str, now: float) -> None:
        """Device stopped transmitting; checks the 60 s vacate deadline."""
        state = self._state(device_id)
        state.transmitting = False
        if state.channel_lost_at is not None:
            elapsed = now - state.channel_lost_at
            if elapsed > VACATE_DEADLINE_S:
                self._violate(
                    now,
                    device_id,
                    "vacate-deadline",
                    f"vacated {elapsed:.1f} s after channel loss (> {VACATE_DEADLINE_S:.0f} s)",
                )
            state.channel_lost_at = None

    def check_time(self, now: float) -> None:
        """Periodic audit: any device still transmitting past its deadline?"""
        for device_id, state in self._devices.items():
            if (
                state.transmitting
                and state.channel_lost_at is not None
                and now - state.channel_lost_at > VACATE_DEADLINE_S
            ):
                self._violate(
                    now,
                    device_id,
                    "vacate-deadline",
                    "still transmitting past the 60 s vacate deadline",
                )
                # Record once, then reset the marker to avoid duplicate spam.
                state.channel_lost_at = None

    def _violate(self, now: float, device_id: str, rule: str, detail: str) -> None:
        self.violations.append(
            ComplianceViolation(time=now, device_id=device_id, rule=rule, detail=detail)
        )

    @property
    def compliant(self) -> bool:
        """True when no violation has been recorded."""
        return not self.violations

    # -- Checkpointing --------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Per-device monitor state plus the recorded violations."""
        return {
            "devices": dict(self._devices),
            "violations": list(self.violations),
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        self._devices = dict(state["devices"])
        self.violations = list(state["violations"])


def max_eirp_for_device_type(device_type: str) -> float:
    """EIRP cap in dBm for an ETSI device type ("A" fixed / "B" portable).

    Raises:
        ValueError: for an unknown type.
    """
    if device_type == "A":
        return MAX_EIRP_FIXED_DBM
    if device_type == "B":
        return MAX_EIRP_PORTABLE_DBM
    raise ValueError(f"unknown ETSI device type {device_type!r}")
