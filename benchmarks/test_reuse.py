"""Section 5.3: the channel re-use (packing) heuristic.

Paper: clients close to their APs can safely share subchannels across
networks; packing interference-free holdings onto low indices yields "fast
convergence and upto 2x gain in throughput for exposed clients".
"""

from conftest import full_scale, once

from repro.experiments.convergence import run_reuse_experiment
from repro.utils.render import format_table


def test_channel_reuse_gain(benchmark, report):
    epochs = 40 if full_scale() else 25
    result = once(benchmark, run_reuse_experiment, epochs=epochs)

    assert result.reuse_moves > 0, "packing must actually happen"
    assert result.exposed_gain > 1.05, "exposed clients gain from packing"
    assert result.gain > 0.9, "overall median must not regress materially"

    rows = [
        ["exposed-client median (with reuse)", f"{result.exposed_with_reuse_bps / 1e6:.2f} Mb/s"],
        ["exposed-client median (without)", f"{result.exposed_without_reuse_bps / 1e6:.2f} Mb/s"],
        ["exposed-client gain", f"{result.exposed_gain:.2f}x (paper: up to 2x)"],
        ["overall median gain", f"{result.gain:.2f}x"],
        ["packing moves", str(result.reuse_moves)],
        ["subchannel overlap with/without", f"{result.overlap_with} / {result.overlap_without}"],
    ]
    report(
        "reuse",
        format_table(["metric", "value"], rows, title="Channel re-use ablation"),
    )
