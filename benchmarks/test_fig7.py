"""Figure 7: two-cell interference walk.

(b) signalling-only interference costs at most ~20% goodput;
(c) full data interference can halve goodput at SINR < 10 dB and causes
    disconnections, which signalling interference never does.
"""

import numpy as np
from conftest import full_scale, once

from repro.experiments.interference_exp import run_two_cell_walk
from repro.utils.render import ascii_plot, format_table


def test_fig7_interference_walk(benchmark, report):
    n_points = 240 if full_scale() else 120
    result = once(benchmark, run_two_cell_walk, n_points=n_points)

    max_gap = result.signalling_vs_none_max_gap()
    median_loss = result.full_interference_median_loss()
    disconnections = result.disconnection_count()

    assert max_gap <= 0.20 + 1e-9, "paper: signalling interference <= 20%"
    assert median_loss >= 0.25, "paper: data interference up to ~50% loss"
    assert disconnections > 0, "paper: frequent disconnects under data interference"
    low = [s for s in result.samples if s.sinr_db < -5.0]
    assert any(s.disconnected_full for s in low), "disconnects at the path's bad end"

    sinrs = [s.sinr_db for s in result.samples]
    rows = [
        ["SINR range on walk", "-15..+30 dB", f"{min(sinrs):.0f}..{max(sinrs):.0f} dB"],
        ["max signalling-only loss", "<= 20%", f"{max_gap * 100:.0f}%"],
        ["median data-interference loss (SINR<10)", "up to ~50%", f"{median_loss * 100:.0f}%"],
        ["disconnections (full interference)", "frequent, one end", f"{disconnections}/{len(result.samples)} points"],
    ]
    table = format_table(["metric", "paper", "measured"], rows, title="Figure 7")
    scatter = ascii_plot(
        [(s.rssi_dbm, s.goodput_signalling) for s in result.samples],
        x_label="RSSI [dBm]",
        y_label="goodput [bit/sym]",
    )
    report("fig7", table + "\n\nFig 7(b) signalling-interference goodput:\n" + scatter)
