"""Theorem 1: convergence of the distributed hopping algorithm.

Validates the O(M log n / ((1-p) gamma)) bound empirically: convergence is
certain, rounds stay under the bound, and the measured scaling follows the
bound's direction in n and p.
"""

import numpy as np
from conftest import full_scale, once

from repro.experiments.convergence import run_convergence_sweep
from repro.utils.render import format_table


def test_theorem1_convergence(benchmark, report):
    if full_scale():
        sizes, reps = (8, 16, 32, 64, 128), 20
    else:
        sizes, reps = (8, 16, 32, 64), 8
    points = once(
        benchmark,
        run_convergence_sweep,
        n_nodes_list=sizes,
        fading_list=(0.0, 0.3),
        replications=reps,
    )

    assert all(p.converged_all for p in points), "Theorem 1: converges w.p. 1"
    for point in points:
        assert point.mean_rounds <= point.bound_rounds, "within the bound"

    by_key = {(p.n_nodes, p.fading_p): p.mean_rounds for p in points}
    # Scaling direction: larger n and larger p need more rounds.
    assert by_key[(sizes[-1], 0.0)] >= by_key[(sizes[0], 0.0)]
    assert by_key[(sizes[-1], 0.3)] >= by_key[(sizes[-1], 0.0)]

    rows = [
        [p.n_nodes, p.fading_p, f"{p.mean_rounds:.1f}", f"{p.bound_rounds:.0f}"]
        for p in points
    ]
    report(
        "theorem1",
        format_table(
            ["n nodes", "fading p", "mean rounds", "bound (c=1)"],
            rows,
            title="Theorem 1 convergence",
        ),
    )
