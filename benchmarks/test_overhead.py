"""Section 6.3.4 "Overheads of signaling": CQI reporting cost.

Paper: mode 3-0 reports every 2 ms cost ~10 kb/s of uplink (the paper
counts 20 bits/report; a strict field count of 4 + 13 x 2 = 30 bits gives
15 kb/s -- both are negligible against the ~2.4 Mb/s uplink).
"""

from conftest import once

from repro.lte.cqi import CqiReportingConfig
from repro.phy.resource_grid import ResourceGrid
from repro.utils.render import format_table


def _measure():
    config = CqiReportingConfig()
    grid = ResourceGrid(5e6)
    uplink_capacity = grid.uplink_rate_bps(2.0, grid.n_rbs)  # Mid-CQI uplink.
    return config, uplink_capacity


def test_signalling_overhead(benchmark, report):
    config, uplink_capacity = once(benchmark, _measure)

    paper_bits, paper_rate = 20, 10e3
    measured_rate = config.uplink_overhead_bps

    assert config.n_subbands == 13
    assert config.period_s == 2e-3
    # Same order of magnitude as the paper's figure.
    assert 0.5 * paper_rate <= measured_rate <= 2.0 * paper_rate
    # And negligible against uplink capacity (< 2%).
    assert measured_rate / uplink_capacity < 0.02

    rows = [
        ["report payload", f"{paper_bits} bits (paper)", f"{config.payload_bits} bits (4 + 13x2)"],
        ["reporting period", "2 ms", f"{config.period_s * 1e3:.0f} ms"],
        ["uplink overhead", "10 kb/s", f"{measured_rate / 1e3:.0f} kb/s"],
        ["fraction of uplink", "-", f"{100 * measured_rate / uplink_capacity:.2f}%"],
    ]
    report(
        "overhead",
        format_table(["metric", "paper", "measured"], rows, title="CQI signalling overhead"),
    )
