"""Table 1: summary of differences between 802.11af and LTE.

Regenerates the table from the repo's own model constants, proving the
implementation embodies the design facts the paper tabulates.
"""

from conftest import once

from repro.phy.mcs import LTE_MIN_CODE_RATE, WIFI_MIN_CODE_RATE
from repro.phy.resource_grid import RB_BANDWIDTH_HZ, TDD_CONFIG_4, TTI_S, ResourceGrid
from repro.utils.render import format_table
from repro.wifi.frames import TXOP_LIMIT_S
from repro.wifi.rates import WIFI_MCS_TABLE


def _build_table1():
    grid = ResourceGrid(5e6)
    rows = [
        [
            "802.11af",
            "OFDM",
            "6-8 MHz",
            f">= {WIFI_MIN_CODE_RATE:.2f}",
            "no",
            "CSMA",
            f"up to {TXOP_LIMIT_S * 1e3:.0f} ms",
            "uncoordinated",
        ],
        [
            "LTE",
            "OFDMA",
            f"{RB_BANDWIDTH_HZ / 1e3:.0f} kHz",
            f">= {LTE_MIN_CODE_RATE:.2f}",
            "yes",
            "Static",
            f"{TTI_S * 1e3:.0f} ms subframes",
            "coordinated",
        ],
    ]
    headers = [
        "Design",
        "Mux",
        "Freq. chunks",
        "Coding rate",
        "Hybrid ARQ",
        "Access",
        "TX duration",
        "Mode",
    ]
    return headers, rows, grid


def test_table1(benchmark, report):
    headers, rows, grid = once(benchmark, _build_table1)

    # Assertions: the constants behind each cell.
    assert RB_BANDWIDTH_HZ == 180e3              # LTE frequency chunk.
    assert LTE_MIN_CODE_RATE < 0.1               # "Coding rate >= 0.1".
    assert WIFI_MIN_CODE_RATE == 0.5             # "Coding rate >= 0.5".
    assert min(m.code_rate for m in WIFI_MCS_TABLE) == 0.5
    assert TXOP_LIMIT_S == 4e-3                  # "up to 4ms".
    assert TTI_S == 1e-3                         # "1ms subframes".
    assert TDD_CONFIG_4.downlink_subframes == 7

    report("table1", format_table(headers, rows, title="Table 1 (reproduced)"))
