"""Figure 6: spectrum-database vacate/reacquire timeline.

Paper measurements: radio off 2 s after the channel leaves the database
(ETSI requires < 60 s); after restoration, 1 min 36 s AP reboot + 56 s
client cell search before traffic resumes.
"""

from conftest import once

from repro.experiments.db_timeline import run_db_timeline
from repro.utils.render import format_table


def test_fig6_timeline(benchmark, report):
    result = once(benchmark, run_db_timeline)

    assert result.vacate_latency_s is not None
    assert result.vacate_latency_s <= 60.0, "ETSI EN 301 598: vacate < 1 minute"
    assert result.vacate_latency_s <= 5.0, "paper observed ~2 s"
    assert result.compliant, "no ETSI violations along the whole timeline"
    assert result.radio_on_time_s is not None
    assert result.client_reconnect_time_s is not None
    reboot_plus_search = 96.0 + 56.0
    assert abs(result.resume_latency_s - reboot_plus_search) <= 10.0

    rows = [
        ["vacate latency", "2 s", f"{result.vacate_latency_s:.0f} s"],
        ["AP reboot + cell search", "96 s + 56 s", f"{result.resume_latency_s:.0f} s total"],
        ["ETSI compliant", "yes", "yes" if result.compliant else "NO"],
    ]
    table = format_table(["event", "paper", "measured"], rows, title="Figure 6")
    timeline = "\n".join(
        f"  t={t:8.1f}s  {event}" for t, event in result.timeline[:20]
    )
    report("fig6", table + "\n\ntimeline (first events):\n" + timeline)
