"""Section 6.3.3: PRACH preamble detection.

Paper claims: reliable detection at -10 dB SNR; the low-complexity detector
needs only two correlations (vs one per candidate signature); it ran 16x
faster than the 10 MHz line rate in the authors' C implementation on an i7
(a numpy implementation lands near 1x of the raw line rate but far above
the actual per-occasion processing requirement).
"""

from conftest import full_scale, once

from repro.experiments.prach_eval import run_prach_eval
from repro.utils.render import format_table


def test_prach_detector(benchmark, report):
    trials = 100 if full_scale() else 30
    result = once(benchmark, run_prach_eval, trials=trials, speed_trials=200)

    assert result.detection_by_snr[-10.0] >= 0.95, "paper: reliable at -10 dB"
    assert result.detection_by_snr[-20.0] < 0.5
    assert result.false_alarm <= 0.02
    assert result.complexity_ratio > 8.0, "two correlations vs 16 roots"
    assert result.speed_factor_vs_occasion_rate > 1.0
    assert result.shift_identified

    rows = [["detect @ %.0f dB" % snr, "-", f"{p * 100:.0f}%"]
            for snr, p in sorted(result.detection_by_snr.items())]
    rows += [
        ["false alarms", "low", f"{result.false_alarm * 100:.2f}%"],
        ["complexity vs naive", "~#signatures x", f"{result.complexity_ratio:.1f}x"],
        ["speed vs 10 MHz line rate", "16x (C, i7)", f"{result.speed_factor_vs_line_rate:.2f}x (numpy)"],
        ["speed vs PRACH occasion rate", ">> 1x", f"{result.speed_factor_vs_occasion_rate:.0f}x"],
    ]
    report(
        "prach",
        format_table(["metric", "paper", "measured"], rows, title="PRACH detector"),
    )
