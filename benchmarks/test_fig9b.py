"""Figure 9(b): client-throughput CDFs at the densest setting.

Paper: CellFi reduces starved clients by ~70-90% vs Wi-Fi and LTE without
sacrificing network throughput, roughly doubles Wi-Fi's median, and sits
near the centralized oracle.
"""

import numpy as np
from conftest import full_scale, once

from repro.experiments.large_scale import (
    TECH_CELLFI,
    TECH_LTE,
    TECH_ORACLE,
    TECH_WIFI,
    run_throughput_cdfs,
)
from repro.utils.render import format_table
from repro.utils.stats import Cdf


def test_fig9b_throughput_cdfs(benchmark, report):
    if full_scale():
        seeds, n_aps, epochs, wifi_s = list(range(1, 11)), 14, 15, 6.0
    else:
        seeds, n_aps, epochs, wifi_s = [1, 2], 10, 10, 3.0
    result = once(
        benchmark,
        run_throughput_cdfs,
        seeds,
        n_aps=n_aps,
        epochs=epochs,
        wifi_duration_s=wifi_s,
    )

    starved = {t: result.starved_fraction(t) for t in result.samples_bps}
    medians = {t: result.median_bps(t) for t in result.samples_bps}

    # Paper-shape assertions.
    assert starved[TECH_CELLFI] <= 0.4 * max(starved[TECH_LTE], 0.01), \
        "paper: ~70-90% fewer starved than LTE"
    assert starved[TECH_CELLFI] <= 0.4 * max(starved[TECH_WIFI], 0.01), \
        "paper: ~70-90% fewer starved than Wi-Fi"
    assert medians[TECH_CELLFI] >= 1.5 * medians[TECH_WIFI], \
        "paper: ~2x Wi-Fi's median"
    assert medians[TECH_CELLFI] >= 0.8 * medians[TECH_LTE], \
        "paper: total throughput not sacrificed"
    assert starved[TECH_ORACLE] <= starved[TECH_LTE]
    # Near-oracle: CellFi starvation within a few points of the oracle.
    assert starved[TECH_CELLFI] <= starved[TECH_ORACLE] + 0.05

    rows = []
    for tech in (TECH_WIFI, TECH_LTE, TECH_CELLFI, TECH_ORACLE):
        cdf = Cdf(result.samples_bps[tech])
        rows.append(
            [
                tech,
                f"{medians[tech] / 1e3:.0f} kb/s",
                f"{cdf.quantile(0.25) / 1e3:.0f} kb/s",
                f"{cdf.quantile(0.75) / 1e3:.0f} kb/s",
                f"{starved[tech] * 100:.1f}%",
            ]
        )
    report(
        "fig9b",
        format_table(
            ["tech", "median", "q25", "q75", "starved"],
            rows,
            title=f"Figure 9(b) client throughput ({n_aps} APs x 6 clients)",
        ),
    )
