#!/usr/bin/env python
"""Benchmark telemetry overhead on the LTE epoch hot path.

The observability layer (``repro.obs``) promises near-zero cost when
disabled: every instrumentation site is a module-global lookup plus a
``None`` check.  This benchmark quantifies that promise against the
reference epoch timings in ``BENCH_epoch.json`` (recorded by
``bench_epoch.py`` before the telemetry layer existed and refreshed
alongside it), and measures what enabling metrics / tracing actually
costs.  Results go to ``BENCH_obs.json`` at the repository root.

Three configurations are timed on the vectorized backend:

* ``disabled``  -- no active Telemetry (the default for every run).
* ``metrics``   -- counters/gauges/histograms collected, no tracer.
* ``traced``    -- full tracing + profiling (the ``--trace --profile`` CLI).

The disabled configuration must stay within ``--tolerance`` (default
3%) of the ``BENCH_epoch.json`` reference per-epoch time; the run exits
non-zero if it regresses.  ``--smoke`` skips the assertion (shared CI
runners are too noisy for a 3% gate) but still records the ratios.

Usage::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py           # full
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Dict, List, Optional

from bench_epoch import BACKEND_VECTORIZED, build_network, time_epochs

from repro.obs import Telemetry, activated

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT_PATH = REPO_ROOT / "BENCH_obs.json"
REFERENCE_PATH = REPO_ROOT / "BENCH_epoch.json"

DEFAULT_SIZES = (10, 50)
DEFAULT_TOLERANCE = 1.03

#: The timed configurations: name -> Telemetry factory (None = disabled).
CONFIGS = (
    ("disabled", None),
    ("metrics", lambda: Telemetry()),
    ("traced", lambda: Telemetry(trace=True, profile=True)),
)


def _best_of(n_cells: int, n_epochs: int, repeats: int, factory) -> float:
    """Min-of-``repeats`` per-epoch seconds for one configuration.

    A fresh network per repeat keeps cache state comparable; min-of-N
    filters scheduler noise the same way ``timeit`` does.
    """
    best = float("inf")
    for _ in range(repeats):
        net = build_network(n_cells, BACKEND_VECTORIZED)
        if factory is None:
            timing = time_epochs(net, n_epochs)
        else:
            with activated(factory()):
                timing = time_epochs(net, n_epochs)
        best = min(best, timing["per_epoch_s"])
    return best


def load_reference(path: pathlib.Path) -> Dict[int, float]:
    """Vectorized per-epoch reference seconds by cell count."""
    if not path.exists():
        return {}
    payload = json.loads(path.read_text())
    reference: Dict[int, float] = {}
    for entry in payload.get("results", []):
        vec = entry.get("vectorized")
        if vec:
            reference[int(entry["cells"])] = float(vec["per_epoch_s"])
    return reference


def run_benchmark(
    sizes: List[int], n_epochs: int, repeats: int, tolerance: float,
    check: bool,
) -> Dict:
    reference = load_reference(REFERENCE_PATH)
    results = []
    failures: List[str] = []
    for n_cells in sizes:
        entry: Dict = {"cells": n_cells}
        for name, factory in CONFIGS:
            entry[name] = {
                "per_epoch_s": _best_of(n_cells, n_epochs, repeats, factory)
            }
        disabled_s = entry["disabled"]["per_epoch_s"]
        for name, _ in CONFIGS[1:]:
            entry[name]["vs_disabled"] = entry[name]["per_epoch_s"] / disabled_s
        ref_s: Optional[float] = reference.get(n_cells)
        if ref_s:
            entry["reference_per_epoch_s"] = ref_s
            entry["disabled"]["vs_reference"] = disabled_s / ref_s
            if check and disabled_s / ref_s > tolerance:
                failures.append(
                    f"{n_cells} cells: disabled-telemetry epoch took "
                    f"{disabled_s * 1e3:.1f} ms vs reference "
                    f"{ref_s * 1e3:.1f} ms "
                    f"(ratio {disabled_s / ref_s:.3f} > {tolerance:g})"
                )
        print(
            f"{n_cells:4d} cells  disabled {disabled_s * 1e3:8.1f} ms/epoch"
            + (f"  ({disabled_s / ref_s:.3f}x of reference)" if ref_s else "")
        )
        for name, _ in CONFIGS[1:]:
            print(
                f"{n_cells:4d} cells  {name:8s} "
                f"{entry[name]['per_epoch_s'] * 1e3:8.1f} ms/epoch  "
                f"({entry[name]['vs_disabled']:.3f}x of disabled)"
            )
        results.append(entry)
    return {
        "benchmark": "obs-overhead",
        "tolerance": tolerance,
        "epochs_timed": n_epochs,
        "repeats": repeats,
        "results": results,
        "failures": failures,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick mode: small sizes, few epochs, no regression assertion",
    )
    parser.add_argument("--sizes", type=int, nargs="+", default=None)
    parser.add_argument("--epochs", type=int, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="max allowed disabled/reference per-epoch ratio",
    )
    parser.add_argument("--output", type=pathlib.Path, default=OUTPUT_PATH)
    args = parser.parse_args()
    if args.smoke:
        sizes = args.sizes or [10]
        n_epochs = args.epochs or 2
        repeats = args.repeats or 1
    else:
        sizes = args.sizes or list(DEFAULT_SIZES)
        n_epochs = args.epochs or 5
        repeats = args.repeats or 3
    payload = run_benchmark(
        sizes, n_epochs, repeats, args.tolerance, check=not args.smoke
    )
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    if payload["failures"]:
        for failure in payload["failures"]:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
