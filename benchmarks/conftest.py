"""Shared benchmark plumbing.

Every benchmark regenerates one paper table/figure, asserts the headline
*shape* (who wins, by roughly what factor) and writes the reproduced
rows/series to ``benchmarks/results/<name>.txt`` so the paper-vs-measured
comparison is inspectable after a run.

Scale: benchmark defaults are CI-sized; set ``REPRO_FULL=1`` for
paper-scale parameters (20 topologies, longer simulations).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def full_scale() -> bool:
    """Whether REPRO_FULL requests paper-scale runs (truthy spellings ok)."""
    from repro.experiments.common import full_scale as _full_scale

    return _full_scale()


@pytest.fixture
def report():
    """Write a named result artefact and echo it to stdout."""

    def _write(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}")

    return _write


def once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
