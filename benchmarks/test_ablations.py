"""Ablations of CellFi's design choices (DESIGN.md extension experiments).

* **Bucket mean (lambda)** -- the paper "found lambda = 10 to be a good
  choice experimentally": too small hops constantly, too large reacts
  slowly to interference.
* **Sensing quality** -- re-run CellFi with perfect (100%/0%) and degraded
  (50%/10%) CQI detection to quantify how much the measured 80%/2%
  operating point costs.
* **Hybrid control plane** -- the Section 7 extension: centralizing
  coordination *within* a provider must not hurt, and removes
  intra-provider conflicts by construction.
"""

import numpy as np
from conftest import full_scale, once

from repro.core.interference.hybrid import HybridInterferenceManager
from repro.core.interference.manager import CellFiInterferenceManager
from repro.experiments.common import build_scenario
from repro.lte.network import LteNetworkSimulator
from repro.traffic.backlogged import saturated_demand_fn
from repro.utils.render import format_table


def _run_cellfi(scenario, epochs, bucket_mean=10.0, detector=(0.80, 0.02),
                manager_cls=None, providers=None):
    net = LteNetworkSimulator(
        scenario.topology,
        scenario.grid(),
        scenario.channel,
        scenario.rngs.fork(f"net-{bucket_mean}-{detector}"),
        detector_true_positive=detector[0],
        detector_false_positive=detector[1],
    )
    if providers is not None:
        manager = HybridInterferenceManager(
            providers, net.grid.n_subchannels, scenario.rngs.fork("hybrid")
        )
        hops = lambda: 0  # noqa: E731 - hybrid tracks per-provider hoppers.
    else:
        manager = CellFiInterferenceManager(
            scenario.ap_ids,
            net.grid.n_subchannels,
            scenario.rngs.fork("mgr"),
            bucket_mean=bucket_mean,
        )
        hops = lambda: manager.stats.total_hops  # noqa: E731
    results = net.run(epochs, manager, saturated_demand_fn(scenario.topology))
    tail = results[epochs // 2:]
    throughput = [
        float(np.mean([r.throughput_bps[c.client_id] for r in tail]))
        for c in scenario.topology.clients
    ]
    connected = float(
        np.mean([np.mean(list(r.connected.values())) for r in tail])
    )
    return {
        "median_bps": float(np.median(throughput)),
        "connected": connected,
        "hops": hops(),
    }


def _sweep():
    epochs = 15 if full_scale() else 10
    n_aps = 10 if full_scale() else 8
    scenario = build_scenario(seed=3, n_aps=n_aps, clients_per_ap=6)

    lambdas = {}
    for bucket_mean in (1.0, 10.0, 100.0):
        lambdas[bucket_mean] = _run_cellfi(scenario, epochs, bucket_mean=bucket_mean)

    detectors = {}
    for label, rates in (
        ("paper 80%/2%", (0.80, 0.02)),
        ("perfect", (1.0, 0.0)),
        ("degraded 50%/10%", (0.50, 0.10)),
    ):
        detectors[label] = _run_cellfi(scenario, epochs, detector=rates)

    half = len(scenario.ap_ids) // 2
    providers = {
        "alpha": scenario.ap_ids[:half],
        "beta": scenario.ap_ids[half:],
    }
    hybrid = _run_cellfi(scenario, epochs, providers=providers)
    distributed = detectors["paper 80%/2%"]
    return lambdas, detectors, hybrid, distributed


def test_ablations(benchmark, report):
    lambdas, detectors, hybrid, distributed = once(benchmark, _sweep)

    # Lambda: the paper's 10 must not hop wildly more than larger means,
    # and must stay competitive in coverage with both extremes.
    best_connected = max(r["connected"] for r in lambdas.values())
    assert lambdas[10.0]["connected"] >= best_connected - 0.05
    assert lambdas[1.0]["hops"] >= lambdas[100.0]["hops"]

    # Sensing: perfect sensing is an upper bound; the measured operating
    # point must sit close to it, degraded sensing may fall below.
    assert detectors["perfect"]["connected"] >= detectors["paper 80%/2%"]["connected"] - 0.03
    assert detectors["paper 80%/2%"]["connected"] >= detectors["degraded 50%/10%"]["connected"] - 0.05

    # Hybrid: centralizing within providers must not hurt coverage.
    assert hybrid["connected"] >= distributed["connected"] - 0.08

    rows = []
    for mean, r in sorted(lambdas.items()):
        rows.append([f"lambda={mean:g}", f"{r['connected'] * 100:.0f}%",
                     f"{r['median_bps'] / 1e3:.0f} kb/s", str(r["hops"])])
    for label, r in detectors.items():
        rows.append([f"detector {label}", f"{r['connected'] * 100:.0f}%",
                     f"{r['median_bps'] / 1e3:.0f} kb/s", str(r["hops"])])
    rows.append(["hybrid (2 providers)", f"{hybrid['connected'] * 100:.0f}%",
                 f"{hybrid['median_bps'] / 1e3:.0f} kb/s", "-"])
    report(
        "ablations",
        format_table(
            ["variant", "connected", "median", "hops"],
            rows,
            title="CellFi design ablations",
        ),
    )
