"""Figure 2: Wi-Fi MAC inefficiency -- 802.11af vs 802.11ac client CDFs.

Same AP layout, same mean client SNR, 20 MHz channels, RTS/CTS on; the
long-range 802.11af network collapses under hidden/exposed terminals while
the short-range 802.11ac one shares cleanly.
"""

import numpy as np
from conftest import full_scale, once

from repro.experiments.wifi_macs import run_fig2
from repro.utils.render import format_table
from repro.utils.stats import Cdf


def test_fig2_af_vs_ac(benchmark, report):
    duration = 6.0 if full_scale() else 2.5
    result = once(benchmark, run_fig2, duration_s=duration)

    af = np.array(result.throughput_bps["802.11af"])
    ac = np.array(result.throughput_bps["802.11ac"])

    # Calibration: the scenarios really do have matched mean SNR.
    snr_gap = abs(result.mean_snr_db["802.11af"] - result.mean_snr_db["802.11ac"])
    assert snr_gap <= 1.5, "scenarios must have the same average SNR"

    # Paper shape: the af CDF sits far left of the ac CDF.
    assert np.median(ac) > 2 * max(np.median(af), 1e3)
    assert (af < 50e3).mean() > (ac < 50e3).mean()

    def quartiles(x):
        return [f"{np.percentile(x, q) / 1e6:.2f}" for q in (25, 50, 75)]

    rows = [
        ["802.11af Mb/s (25/50/75%)"] + quartiles(af),
        ["802.11ac Mb/s (25/50/75%)"] + quartiles(ac),
        [
            "starved (<50 kb/s)",
            f"af {100 * (af < 50e3).mean():.0f}%",
            f"ac {100 * (ac < 50e3).mean():.0f}%",
            "",
        ],
        [
            "mean SNR (calibration)",
            f"af {result.mean_snr_db['802.11af']:.1f} dB",
            f"ac {result.mean_snr_db['802.11ac']:.1f} dB",
            "",
        ],
    ]
    report(
        "fig2",
        format_table(["metric", "q25", "q50", "q75"], rows, title="Figure 2"),
    )
